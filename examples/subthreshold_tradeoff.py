"""Section IV: sub-clock power gating versus sub-threshold operation.

Sweeps the multiplier's supply voltage to find the minimum-energy point
(Fig. 9), sets that point's power as the budget, and asks what SCPG
achieves within it -- then shows how the gap narrows as the budget grows
and why the override's performance range matters.

Run:  python examples/subthreshold_tradeoff.py
"""

from repro import Mode
from repro.analysis.ascii_plot import ascii_chart
from repro.analysis.figures import subvt_series
from repro.paper import multiplier_study
from repro.subvt.compare import compare_with_scpg
from repro.subvt.energy import minimum_energy_point
from repro.units import fmt_energy, fmt_freq, fmt_power


def main():
    print("Building the multiplier case study...")
    study = multiplier_study()

    print("\nEnergy per operation vs supply voltage (Fig. 9):")
    print(ascii_chart([subvt_series(study.subvt, 0.15, 0.9, steps=50)],
                      width=70, height=14,
                      xlabel="Supply Voltage (V)",
                      ylabel="Energy per Operation (J)"))

    mep = minimum_energy_point(study.subvt)
    print("Minimum-energy point: {:.0f} mV, {} per op, Fmax {} "
          "(paper: 310 mV, 1.7 pJ)".format(
              mep.vdd * 1e3, fmt_energy(mep.energy), fmt_freq(mep.fmax_hz)))

    result = compare_with_scpg(study.subvt, study.model)
    print("\nAt the sub-threshold budget ({}):".format(
        fmt_power(result.budget)))
    print("  sub-threshold:", fmt_energy(result.subvt_point.energy),
          "per op at", fmt_freq(result.subvt_point.fmax_hz))
    print("  SCPG         :", fmt_energy(result.scpg_scenario.energy_per_op),
          "per op at", fmt_freq(result.scpg_scenario.freq_hz))
    print("  energy gap   : {:.1f}x (paper: ~5x)".format(
        result.energy_ratio))

    wider = compare_with_scpg(study.subvt, study.model,
                              budget=result.budget * 2)
    print("\nWith a 2x budget the gap narrows to {:.1f}x "
          "(paper: 2.9x at 40 uW).".format(wider.energy_ratio))

    peak = study.model.feasible_fmax(Mode.NO_PG)
    print("\nAnd unlike sub-threshold, the SCPG design can override the "
          "gating\nand peak to {} -- the MSP430-style dual-clock "
          "trade-off.".format(fmt_freq(peak)))


if __name__ == "__main__":
    main()
