"""Quickstart: apply sub-clock power gating to the paper's multiplier.

Opens a :class:`repro.Session`, pulls the 16-bit multiplier from the
design registry, applies the SCPG transform, and prints the headline
result -- the Table I power comparison and what SCPG buys at a glance.
The lower-level APIs appear where they add something: a measured
(simulated) switching energy replacing the vectorless estimate.

Run:  python examples/quickstart.py

Tips: ``Session(workers=4)`` fans sweeps over processes, and setting
``REPRO_CACHE_DIR=~/.cache/repro`` makes repeated runs warm-start from
the on-disk result cache.
"""

from repro import Mode, ScpgPowerModel, Session
from repro.power import dynamic_power, leakage_power
from repro.sim.testbench import ClockedTestbench, bus_values
from repro.units import fmt_energy, fmt_freq, fmt_power


def main():
    # 1. A session: the library plus an execution policy (workers/cache).
    session = Session()
    print("library:", session.library)
    print("designs:", ", ".join(session.designs()))

    # 2. The paper's multiplier, by registry name.
    handle = session.design("mult16")
    print("design :", handle.design.top)

    # 3. Apply sub-clock power gating (split, isolate, headers, UPF).
    scpg = handle.scpg()
    print("\nSCPG transform:")
    print("  gated module      :", scpg.comb_module.name)
    print("  isolation cells   :", len(scpg.iso_instances))
    print("  sleep headers     : {} x HEADER_X{}".format(
        scpg.headers.count, scpg.headers.cell.drive_strength))
    print("  area overhead     : {:.1f}% (paper: 3.9%)".format(
        scpg.area_overhead_pct))

    # 4. Measure switching energy with the event-driven simulator (the
    #    handle's default power model uses a vectorless estimate; a
    #    simulated workload is the paper's methodology).
    import random

    from repro.circuits import build_mult16

    lib = session.library
    tb = ClockedTestbench(build_mult16(lib))
    tb.reset_flops()
    rng = random.Random(0)
    for _ in range(200):
        tb.cycle({**bus_values("a", 16, rng.getrandbits(16)),
                  **bus_values("b", 16, rng.getrandbits(16))})
    dyn = dynamic_power(tb.sim.module, lib, tb.sim.toggle_snapshot(),
                        tb.cycles)
    print("\nmeasured switching energy:", fmt_energy(dyn.energy_per_cycle),
          "per cycle")

    # 5. The power model: No-PG vs SCPG vs SCPG-Max.
    model = ScpgPowerModel.from_scpg_design(scpg, dyn.energy_per_cycle)
    base = leakage_power(handle.design.top, lib)
    model.leak_comb_base = base.combinational
    model.leak_alwayson_base = base.always_on

    print("\n{:>10} {:>14} {:>14} {:>14}".format(
        "freq", "No-PG", "SCPG", "SCPG-Max"))
    data = handle.sweep([10e3, 100e3, 1e6, 5e6, 10e6], model=model)
    for i, freq in enumerate(data.freqs):
        def cell(mode):
            b = data.results[mode][i]
            return fmt_power(b.total) if b else "-"

        print("{:>10} {:>14} {:>14} {:>14}".format(
            fmt_freq(freq), cell(Mode.NO_PG), cell(Mode.SCPG),
            cell(Mode.SCPG_MAX)))

    at_10k = model.table_row(10e3)
    saving = at_10k[Mode.SCPG_MAX].saving_vs(at_10k[Mode.NO_PG])
    print("\nAt 10 kHz, SCPG-Max saves {:.1f}% of total power "
          "(paper: 80.2%).".format(saving))

    # 6. The Fig. 4 timing diagram at a concrete operating point.
    from repro.scpg.waveform import render_waveforms
    from repro.sta.constraints import ClockSpec

    print("\nIntra-cycle timing at 1 MHz, duty 0.9 (Fig. 4):")
    print(render_waveforms(ClockSpec(1e6, 0.9), scpg.timing,
                           rail=scpg.rail))

    # 7. The power intent, as a real flow would consume it.
    print("Generated UPF (excerpt):")
    for line in scpg.upf.splitlines()[:12]:
        print("  " + line)

    # 8. What the runner did on the session's behalf.
    print("\n" + session.stats.render(prefix="session"))


if __name__ == "__main__":
    main()