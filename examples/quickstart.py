"""Quickstart: apply sub-clock power gating to the paper's multiplier.

Builds the 16-bit multiplier on the synthetic 90nm library, applies the
SCPG transform, and prints the headline result -- the Table I power
comparison and what SCPG buys at a glance.

Run:  python examples/quickstart.py
"""

from repro import Design, Mode, apply_scpg, build_scl90
from repro.circuits import build_mult16
from repro.power import dynamic_power, leakage_power
from repro.scpg import ScpgPowerModel
from repro.sim.testbench import ClockedTestbench, bus_values
from repro.units import fmt_energy, fmt_freq, fmt_power


def main():
    # 1. Technology and design.
    lib = build_scl90()
    mult = build_mult16(lib)
    print("library:", lib)
    print("design :", mult)

    # 2. Apply sub-clock power gating (split, isolate, headers, UPF).
    scpg = apply_scpg(Design(mult, lib))
    print("\nSCPG transform:")
    print("  gated module      :", scpg.comb_module.name)
    print("  isolation cells   :", len(scpg.iso_instances))
    print("  sleep headers     : {} x HEADER_X{}".format(
        scpg.headers.count, scpg.headers.cell.drive_strength))
    print("  area overhead     : {:.1f}% (paper: 3.9%)".format(
        scpg.area_overhead_pct))

    # 3. Measure switching energy with the event-driven simulator.
    import random

    tb = ClockedTestbench(build_mult16(lib))
    tb.reset_flops()
    rng = random.Random(0)
    for _ in range(200):
        tb.cycle({**bus_values("a", 16, rng.getrandbits(16)),
                  **bus_values("b", 16, rng.getrandbits(16))})
    dyn = dynamic_power(tb.sim.module, lib, tb.sim.toggle_snapshot(),
                        tb.cycles)
    print("\nmeasured switching energy:", fmt_energy(dyn.energy_per_cycle),
          "per cycle")

    # 4. The power model: No-PG vs SCPG vs SCPG-Max.
    model = ScpgPowerModel.from_scpg_design(scpg, dyn.energy_per_cycle)
    base = leakage_power(mult, lib)
    model.leak_comb_base = base.combinational
    model.leak_alwayson_base = base.always_on

    print("\n{:>10} {:>14} {:>14} {:>14}".format(
        "freq", "No-PG", "SCPG", "SCPG-Max"))
    for freq in (10e3, 100e3, 1e6, 5e6, 10e6):
        row = model.table_row(freq)
        print("{:>10} {:>14} {:>14} {:>14}".format(
            fmt_freq(freq),
            fmt_power(row[Mode.NO_PG].total),
            fmt_power(row[Mode.SCPG].total) if row[Mode.SCPG] else "-",
            fmt_power(row[Mode.SCPG_MAX].total)
            if row[Mode.SCPG_MAX] else "-"))

    at_10k = model.table_row(10e3)
    saving = at_10k[Mode.SCPG_MAX].saving_vs(at_10k[Mode.NO_PG])
    print("\nAt 10 kHz, SCPG-Max saves {:.1f}% of total power "
          "(paper: 80.2%).".format(saving))

    # 5. The Fig. 4 timing diagram at a concrete operating point.
    from repro.scpg.waveform import render_waveforms
    from repro.sta.constraints import ClockSpec

    print("\nIntra-cycle timing at 1 MHz, duty 0.9 (Fig. 4):")
    print(render_waveforms(ClockSpec(1e6, 0.9), scpg.timing,
                           rail=scpg.rail))

    # 6. The power intent, as a real flow would consume it.
    print("Generated UPF (excerpt):")
    for line in scpg.upf.splitlines()[:12]:
        print("  " + line)


if __name__ == "__main__":
    main()
