"""Apply SCPG to your own circuit.

Shows the full user workflow on a custom design -- an 8-bit registered
multiply-accumulate unit built with the circuit builder:

1. construct a netlist with :class:`repro.circuits.CircuitBuilder`;
2. write/read it as structural Verilog (the flow's exchange format);
3. run the Fig. 5 SCPG flow (split, isolate, headers, CTS, reports);
4. evaluate power at a few operating points and dump the UPF.

Run:  python examples/custom_circuit_scpg.py
"""

import random

from repro import Design, Mode
from repro.circuits import CircuitBuilder, ripple_adder
from repro.circuits.builder import new_module
from repro.netlist.verilog import dumps_verilog, parse_verilog
from repro.power import dynamic_power, leakage_power
from repro.scpg import ScpgPowerModel
from repro.sim.testbench import ClockedTestbench, bus_values, read_bus
from repro.tech import build_scl90
from repro.techniques import technique
from repro.units import fmt_freq, fmt_power


def build_mac8(lib):
    """8x8 multiply-accumulate: acc <= acc + a*b (24-bit accumulator)."""
    module, b = new_module("mac8", lib)
    clk = module.add_input("clk")
    a = b.input_bus("a", 8)
    x = b.input_bus("b", 8)
    acc_out = b.output_bus("acc", 24)

    # Partial-product array (reuse the multiplier structure inline).
    from repro.circuits.alu import lower_half_multiplier

    a24 = a + [b.const(0)] * 16
    x24 = x + [b.const(0)] * 16
    product = lower_half_multiplier(b, a24, x24)

    total, _carry = ripple_adder(b, product, acc_out)
    b.register(total, clk, q=acc_out, name="acc")
    return module


def main():
    lib = build_scl90()

    # 1. Build and sanity-simulate the custom design.
    mac = build_mac8(lib)
    tb = ClockedTestbench(mac)
    tb.reset_flops()
    rng = random.Random(7)
    expected = 0
    for _ in range(20):
        a, b_ = rng.getrandbits(8), rng.getrandbits(8)
        tb.cycle({**bus_values("a", 8, a), **bus_values("b", 8, b_)})
        expected = (expected + a * b_) & 0xFFFFFF
    assert read_bus(tb.sim, "acc", 24) == expected
    print("mac8 functional check: PASS (acc = {})".format(expected))

    # 2. Verilog round-trip (what a real flow would hand off).
    text = dumps_verilog(mac)
    print("\nstructural verilog: {} lines".format(len(text.splitlines())))
    reparsed = parse_verilog(text, lib)

    # 3. The SCPG implementation flow, baseline included.
    result = technique("scpg").implement(
        lambda: parse_verilog(dumps_verilog(mac), lib), lib)
    print("\nSCPG flow on mac8:")
    print("  area overhead: {:.1f}%".format(result.area_overhead_pct))
    print("  headers      : {} x X{}".format(
        result.scpg.headers.count,
        result.scpg.headers.cell.drive_strength))
    print("  isolation    : {} cells".format(
        len(result.scpg.iso_instances)))

    # 4. Power at a few operating points.
    toggles = tb.sim.toggle_snapshot()
    dyn = dynamic_power(mac, lib, toggles, tb.cycles)
    model = ScpgPowerModel.from_scpg_design(result.scpg,
                                            dyn.energy_per_cycle)
    base = leakage_power(reparsed.top, lib)
    model.leak_comb_base = base.combinational
    model.leak_alwayson_base = base.always_on
    print("\n{:>10} {:>12} {:>12} {:>12}".format(
        "freq", "No-PG", "SCPG", "SCPG-Max"))
    for freq in (10e3, 1e6, 10e6):
        row = model.table_row(freq)
        print("{:>10} {:>12} {:>12} {:>12}".format(
            fmt_freq(freq),
            fmt_power(row[Mode.NO_PG].total) if row[Mode.NO_PG] else "-",
            fmt_power(row[Mode.SCPG].total) if row[Mode.SCPG] else "-",
            fmt_power(row[Mode.SCPG_MAX].total)
            if row[Mode.SCPG_MAX] else "-"))

    # 5. Power intent out.
    print("\nUPF written to mac8.upf")
    with open("mac8.upf", "w") as f:
        f.write(result.scpg.upf)


if __name__ == "__main__":
    main()
