"""Combining SCPG with traditional idle-mode power gating.

A sensor node computes in bursts: active at 2 MHz for a fraction of the
time, idle otherwise.  Traditional power gating [5] only helps while
idle; SCPG only helps while active.  This example sweeps the activity
fraction and shows the crossover -- and that the combination (SCPG during
bursts, header parked off between them, no retention registers needed)
dominates both.

Run:  python examples/duty_cycled_node.py
"""

from repro.analysis.ascii_plot import ascii_chart
from repro.analysis.figures import FigureSeries
from repro.paper import multiplier_study
from repro.scpg.idle_mode import (
    GatingScheme,
    WorkloadProfile,
    crossover_activity,
    idle_mode_study,
)
from repro.units import fmt_power

FREQ = 2e6


def main():
    print("Building the multiplier case study...")
    study = multiplier_study()
    model = study.model

    fractions = [k / 40 for k in range(1, 40)]
    series = {scheme: [] for scheme in GatingScheme}
    for fraction in fractions:
        result = idle_mode_study(model, WorkloadProfile(fraction, FREQ))
        for scheme in GatingScheme:
            series[scheme].append(result[scheme].average)

    print("\nAverage power vs activity fraction (2 MHz bursts):")
    print(ascii_chart(
        [FigureSeries(s.value, x=fractions, y=series[s])
         for s in GatingScheme],
        width=70, height=16,
        xlabel="active fraction", ylabel="avg power (W)"))

    table = idle_mode_study(model, WorkloadProfile(0.25, FREQ))
    print("\nAt 25% activity:")
    for scheme, result in table.items():
        print("  {:>11}: {:>10}  (active {}, idle {})".format(
            scheme.value, fmt_power(result.average),
            fmt_power(result.active_power), fmt_power(result.idle_power)))

    cross = crossover_activity(model, FREQ)
    print("\nSCPG alone beats traditional PG above {:.0%} activity; the "
          "combined\nscheme wins everywhere above a few percent -- and "
          "needs no retention\nregisters, because SCPG's registers were "
          "never power-gated.".format(cross))


if __name__ == "__main__":
    main()
