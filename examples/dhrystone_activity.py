"""Reproduce the paper's Cortex-M0 workload methodology (Fig. 7).

Runs Dhrystone-lite on the gate-level M0-lite core in lock-step with the
instruction-set simulator, verifies architectural equivalence, groups the
switching activity into 10-vector groups, plots the Fig. 7 series as an
ASCII chart, and extracts the max/min/avg representative groups exactly
as the paper does before its detailed HSpice runs.

Run:  python examples/dhrystone_activity.py [iterations]
"""

import sys

from repro.analysis.ascii_plot import ascii_chart
from repro.analysis.figures import switching_series
from repro.circuits import build_m0lite
from repro.isa import cosimulate
from repro.isa.programs import dhrystone_memory, dhrystone_program
from repro.tech import build_scl90


def main(iterations=12):
    lib = build_scl90()
    print("Generating the M0-lite core...")
    core = build_m0lite(lib)

    print("Running Dhrystone-lite ({} iterations) on the ISS and the "
          "gate-level core...".format(iterations))
    result = cosimulate(core, dhrystone_program(iterations),
                        dhrystone_memory())
    print("  instructions retired :", result.instructions)
    print("  gate-level cycles    :", result.cycles)
    print("  CPI                  : {:.2f}".format(result.cpi))
    print("  architectural match  :", "PASS" if result.ok else "FAIL")
    if not result.ok:
        for m in result.mismatches[:5]:
            print("    ", m)
        raise SystemExit(1)

    trace = result.trace
    print("\nSwitching probability per 10-vector group "
          "({} groups):".format(len(trace.groups)))
    print(ascii_chart([switching_series(trace)], width=70, height=14,
                      xlabel="Vector Group",
                      ylabel="Switching Probability"))

    reps = trace.representative_groups()
    print("\nRepresentative groups (paper: simulated in detail):")
    for kind, group in reps.items():
        print("  {:>4}: group {:>4}, switching probability {:.3f}".format(
            kind, group.index, group.switching_probability))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
