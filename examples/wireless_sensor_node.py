"""Energy-harvester scenario: the paper's wireless-sensor-node use case.

"One target application envisaged for the proposed technique is designs
with tight power budgets, e.g., a wireless sensor node powered by an
energy harvester."  Given a harvester budget, this example finds the best
operating point of each configuration and reports the frequency and
energy-efficiency gains SCPG delivers (paper: ~50x clock / ~45x energy at
30 uW for the multiplier).

Run:  python examples/wireless_sensor_node.py [budget_uW]
"""

import sys

from repro import Mode
from repro.paper import multiplier_study
from repro.scpg.budget import compare_at_budget
from repro.units import fmt_energy, fmt_freq, fmt_power


def main(budget_uw=30.0):
    budget = budget_uw * 1e-6
    print("Harvester budget: {}".format(fmt_power(budget)))
    print("Building the multiplier case study (flows + simulation)...")
    study = multiplier_study()

    comparison = compare_at_budget(study.model, budget)
    print("\nBest operating point per configuration:")
    for mode in (Mode.NO_PG, Mode.SCPG, Mode.SCPG_MAX):
        s = comparison[mode]
        print("  {:>9}: {:>10} at {:>9}  ({} per operation)".format(
            mode.value, fmt_freq(s.freq_hz), fmt_power(s.power),
            fmt_energy(s.energy_per_op)))

    nopg = comparison[Mode.NO_PG]
    best = comparison[Mode.SCPG_MAX]
    print("\nSCPG-Max vs no power gating within the same budget:")
    print("  clock frequency : {:.1f}x higher".format(
        best.speedup_vs(nopg)))
    print("  energy/operation: {:.1f}x better".format(
        best.efficiency_vs(nopg)))
    print("\n(paper, 30 uW: 100 kHz -> ~5 MHz, 294.4 pJ -> 6.56 pJ;")
    print(" ~50x clock and ~45x energy efficiency)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 30.0)
