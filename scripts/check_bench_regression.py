#!/usr/bin/env python
"""Compare a measured benchmark JSON against the committed baseline.

Usage::

    python scripts/check_bench_regression.py CANDIDATE [BASELINE]

``CANDIDATE`` is the JSON written by ``benchmarks/
test_artifact_cache_speedup.py`` (``REPRO_BENCH_SWEEP_JSON=path``);
``BASELINE`` defaults to the committed ``BENCH_sweep.json``.  The gate is
deliberately generous -- CI runners are noisy and share cores -- so only
a change that costs more than **2x** of the baseline speedup fails:

    candidate.speedup >= baseline.speedup / 2

Absolute wall-clocks are reported but never gated on; they are not
comparable across machines.  Exit status: 0 pass, 1 regression or
malformed input.
"""

import json
import os
import sys

TOLERANCE = 2.0


def load(path):
    with open(path) as f:
        return json.load(f)


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 1
    candidate_path = argv[1]
    baseline_path = argv[2] if len(argv) == 3 else os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_sweep.json")
    try:
        candidate = load(candidate_path)
        baseline = load(baseline_path)
    except (OSError, ValueError) as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 1

    for side, data in (("candidate", candidate), ("baseline", baseline)):
        if data.get("schema") != baseline.get("schema") \
                or "speedup" not in data:
            print("error: {} {} is not a recognised benchmark JSON"
                  .format(side, data.get("schema")), file=sys.stderr)
            return 1

    floor = baseline["speedup"] / TOLERANCE
    print("baseline : {:.2f}x (cold {:.3f}s / warm {:.3f}s)".format(
        baseline["speedup"], baseline["cold_s"], baseline["warm_s"]))
    print("candidate: {:.2f}x (cold {:.3f}s / warm {:.3f}s)".format(
        candidate["speedup"], candidate["cold_s"], candidate["warm_s"]))
    print("floor    : {:.2f}x (baseline / {})".format(floor, TOLERANCE))
    if candidate["speedup"] < floor:
        print("REGRESSION: candidate speedup {:.2f}x is below {:.2f}x"
              .format(candidate["speedup"], floor), file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
