#!/usr/bin/env python
"""Compare a measured benchmark JSON against the committed baseline.

Usage::

    python scripts/check_bench_regression.py CANDIDATE [BASELINE]

``CANDIDATE`` is the JSON a benchmark wrote
(``REPRO_BENCH_SWEEP_JSON=path`` for the artifact-cache benchmark,
``REPRO_BENCH_PARBATCH_JSON=path`` for the parallel-batch one,
``REPRO_BENCH_COSIM_JSON=path`` for the compiled closed-loop co-sim
benchmark, ``REPRO_BENCH_LEAKAGE_JSON=path`` for the vectorized
state-leakage trace one); ``BASELINE`` defaults to the committed
``BENCH_sweep.json``.

The current schema is ``repro-bench-sweep-v2``: one file carries named
measurement sections under ``"measurements"`` (``artifact_cache``,
``parallel_batch``, ``serve``, ``cosim``, ``leakage``, ...), each
gated on one figure of merit
-- ``speedup`` for the timing benchmarks, ``dedupe_ratio`` for the
serve load benchmark (cross-client cache fan-in; wall-clock would be
meaningless on shared CI cores, the hit rate is deterministic).  The
baseline decides which key gates a section; the candidate must carry
the same key.  A candidate may carry a *subset* of the baseline's
sections -- each CI benchmark step checks only the section it measured
-- but a section the baseline does not know, a missing gate figure, or
any schema string other than v2 (or the retired v1, still accepted when
*both* sides are v1) fails loudly: silent schema drift is how a gate
stops gating.

The gate itself is deliberately generous -- CI runners are noisy and
share cores -- so only a change that costs more than **2x** of the
baseline figure fails:

    candidate.<gate> >= baseline.<gate> / 2          (per section)

Absolute wall-clocks are reported but never gated on; they are not
comparable across machines.  Exit status: 0 pass, 1 regression or
malformed input.
"""

import json
import os
import sys

TOLERANCE = 2.0
SCHEMA_V1 = "repro-bench-sweep-v1"
SCHEMA_V2 = "repro-bench-sweep-v2"
#: Figures of merit a section may gate on, in precedence order; the
#: first one the *baseline* carries is the gate for that section.
GATE_KEYS = ("speedup", "dedupe_ratio")


def gate_key(section):
    """The figure-of-merit key gating ``section``, or ``None``."""
    for key in GATE_KEYS:
        if isinstance(section.get(key), (int, float)):
            return key
    return None


def load(path):
    with open(path) as f:
        return json.load(f)


def fail(message):
    print("error: {}".format(message), file=sys.stderr)
    return 1


def sections(data, side):
    """``{name: section}`` from a v1 or v2 payload, or ``None`` + noise.

    v1 files are one anonymous measurement; they present as a single
    ``"artifact_cache"`` section so an old candidate can still be read
    against an old baseline.
    """
    schema = data.get("schema")
    if schema == SCHEMA_V2:
        measurements = data.get("measurements")
        if not isinstance(measurements, dict) or not measurements:
            print("error: {} has no measurements".format(side),
                  file=sys.stderr)
            return None
        for name, section in measurements.items():
            if not isinstance(section, dict) \
                    or gate_key(section) is None:
                print("error: {} measurement {!r} has no numeric "
                      "gate figure (one of {})".format(
                          side, name, ", ".join(GATE_KEYS)),
                      file=sys.stderr)
                return None
        return dict(measurements)
    if schema == SCHEMA_V1:
        if not isinstance(data.get("speedup"), (int, float)):
            print("error: {} (v1) has no numeric speedup".format(side),
                  file=sys.stderr)
            return None
        return {"artifact_cache": data}
    print("error: {} schema {!r} is not recognised (expected {!r})"
          .format(side, schema, SCHEMA_V2), file=sys.stderr)
    return None


def describe(name, section, key):
    times = ", ".join(
        "{} {:.3f}s".format(k, section[k])
        for k in sorted(section)
        if k.endswith("_s") and isinstance(section[k], (int, float)))
    figure = "{:.2f}x".format(section[key]) if key == "speedup" \
        else "{} {:.3f}".format(key, section[key])
    return "{}: {}{}".format(
        name, figure, " ({})".format(times) if times else "")


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 1
    candidate_path = argv[1]
    baseline_path = argv[2] if len(argv) == 3 else os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_sweep.json")
    try:
        candidate = load(candidate_path)
        baseline = load(baseline_path)
    except (OSError, ValueError) as exc:
        return fail(exc)

    if candidate.get("schema") != baseline.get("schema"):
        return fail(
            "schema drift: candidate {!r} vs baseline {!r} -- "
            "regenerate BENCH_sweep.json alongside the benchmark "
            "change".format(candidate.get("schema"),
                            baseline.get("schema")))
    measured = sections(candidate, "candidate")
    reference = sections(baseline, "baseline")
    if measured is None or reference is None:
        return 1

    unknown = sorted(set(measured) - set(reference))
    if unknown:
        return fail(
            "candidate measures {} absent from the baseline -- "
            "regenerate BENCH_sweep.json alongside the benchmark "
            "change".format(", ".join(unknown)))

    status = 0
    for name in sorted(measured):
        key = gate_key(reference[name])
        if not isinstance(measured[name].get(key), (int, float)):
            return fail(
                "candidate section {!r} lacks the baseline's gate "
                "figure {!r}".format(name, key))
        floor = reference[name][key] / TOLERANCE
        print("baseline  {}".format(describe(name, reference[name],
                                             key)))
        print("candidate {}".format(describe(name, measured[name],
                                             key)))
        print("floor     {}: {:.3f} {} (baseline / {})".format(
            name, floor, key, TOLERANCE))
        if measured[name][key] < floor:
            print("REGRESSION: {} {} {:.3f} is below {:.3f}"
                  .format(name, key, measured[name][key], floor),
                  file=sys.stderr)
            status = 1
    skipped = sorted(set(reference) - set(measured))
    if skipped:
        print("not measured here: {}".format(", ".join(skipped)))
    if status == 0:
        print("OK")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
