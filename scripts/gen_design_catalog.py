#!/usr/bin/env python
"""Render ``docs/designs.md`` from the live design database.

Usage::

    PYTHONPATH=src python scripts/gen_design_catalog.py            # rewrite
    PYTHONPATH=src python scripts/gen_design_catalog.py --check    # CI gate

The catalog is generated, committed, and gated: CI runs ``--check``,
which re-renders the page in memory and fails (exit 1, with a diff
summary) when the committed file no longer matches the registered
families -- so adding a family, a parameter or a catalog entry without
regenerating the page breaks the build instead of silently shipping a
stale catalog.

For every registered family the page carries the declared parameter
space (name / type / range / default), size statistics for the
representative instantiations declared at registration, and which
power-gating techniques pass ``check()`` on the family's default
instantiation.
"""

import argparse
import difflib
import io
import os
import sys

HEADER = """\
# Design catalog

<!-- GENERATED FILE - do not edit by hand.
     Regenerate with: PYTHONPATH=src python scripts/gen_design_catalog.py
     CI gates on staleness via --check. -->

Every design the database can elaborate, generated from the registered
:mod:`repro.circuits.generators` families.  Address an instantiation
with a spec string (``repro designs elaborate "multiplier(n=8)"``) or a
``DesignKey`` (``session.design(DesignKey("multiplier", n=8))``); legacy
names (``mult16``, ``m0lite``, ``counter16``, ``lfsr16``) are aliases
onto these families.
"""


def render():
    """The full markdown text of the catalog page."""
    from repro.circuits import generators
    from repro.netlist.core import Design
    from repro.netlist.stats import module_stats
    from repro.techniques import available_techniques, technique
    from repro.tech import build_scl90

    library = build_scl90()
    out = io.StringIO()
    out.write(HEADER)

    for name in generators.available_families():
        fam = generators.family(name)
        out.write("\n## `{}`\n\n".format(name))
        if fam.doc:
            out.write("{}\n".format(fam.doc))
        if fam.paper:
            out.write("*{}*\n".format(fam.paper))

        if fam.params:
            out.write("\n| parameter | type | range | default |\n")
            out.write("|---|---|---|---|\n")
            for p in fam.params:
                out.write("| `{}` | {} | {} | {} |\n".format(
                    p.name, p.type.__name__, p.range_text(),
                    "required" if p.default is None
                    else "`{!r}`".format(p.default)))
        else:
            out.write("\nNo parameters.\n")

        out.write("\n| instantiation | cells | comb | flops | nets |\n")
        out.write("|---|---|---|---|---|\n")
        for key in fam.catalog_keys():
            stats = module_stats(generators.elaborate(key, library))
            out.write("| `{}` | {} | {} | {} | {} |\n".format(
                key, stats.cells, stats.comb_gates, stats.seq_cells,
                stats.nets))

        default_design = Design(
            generators.elaborate(fam.key(), library, fresh=True), library)
        passing = [t for t in available_techniques()
                   if technique(t).check(default_design).ok]
        out.write("\nTechniques passing `check()` on `{}`: {}\n".format(
            fam.key(), ", ".join("`{}`".format(t) for t in passing)
            if passing else "none"))

    return out.getvalue()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when docs/designs.md is stale "
                        "instead of rewriting it")
    parser.add_argument("--out", default=None,
                        help="output path (default: docs/designs.md "
                        "next to this script's repo root)")
    args = parser.parse_args(argv)

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    sys.path.insert(0, os.path.join(root, "src"))
    path = args.out or os.path.join(root, "docs", "designs.md")

    text = render()
    if args.check:
        committed = open(path).read() if os.path.exists(path) else ""
        if committed == text:
            print("docs/designs.md is up to date")
            return 0
        diff = difflib.unified_diff(
            committed.splitlines(), text.splitlines(),
            "docs/designs.md (committed)", "docs/designs.md (generated)",
            lineterm="")
        sys.stdout.write("\n".join(list(diff)[:60]) + "\n")
        print("docs/designs.md is stale: regenerate with "
              "PYTHONPATH=src python scripts/gen_design_catalog.py")
        return 1

    with open(path, "w") as f:
        f.write(text)
    print("wrote {}".format(path))
    return 0


if __name__ == "__main__":
    sys.exit(main())
