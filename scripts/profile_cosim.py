#!/usr/bin/env python
"""cProfile the compiled closed-loop co-simulation hot path.

Runs the same workload as ``benchmarks/test_cosim_speedup.py`` -- the
M0-lite core executing CRC-32 to HALT through the
:class:`~repro.sim.compiled.ClosedLoopStepper` -- under :mod:`cProfile`
and writes two artifacts:

* a binary ``.prof`` dump (``--prof``), loadable with ``snakeviz`` or
  ``python -m pstats`` for interactive digging;
* a plain-text report (``--report``) with the top functions by
  cumulative and by self time, so the usual question ("what got slow?")
  is answerable straight from the CI artifact listing.

The schedule lowering runs *before* profiling starts: the profile
covers the steady-state stepping loop, which is what the co-sim
benchmark gates on, not the one-off compile.

Usage::

    PYTHONPATH=src python scripts/profile_cosim.py \\
        --prof cosim.prof --report cosim-profile.txt
"""

import argparse
import cProfile
import io
import os
import pstats
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

TOP_N = 30


def build_cpu(crc_rounds, group_size):
    from repro.circuits import registry
    from repro.isa.programs import crc32_program, dhrystone_memory
    from repro.isa.trace import GateLevelCpu
    from repro.tech.scl90 import build_scl90

    module = registry.build("m0lite", build_scl90())
    # Warm the compiled schedule (and its row programs) outside the
    # profile, then build the CPU that will actually run under it.
    warm = GateLevelCpu(module, crc32_program(crc_rounds),
                        dhrystone_memory(), group_size=group_size,
                        engine="compiled")
    assert warm.engine == "compiled"
    return GateLevelCpu(module, crc32_program(crc_rounds),
                        dhrystone_memory(), group_size=group_size,
                        engine="compiled")


def report_text(stats, cycles):
    out = io.StringIO()
    out.write("compiled closed-loop co-sim profile "
              "({} cycles to HALT)\n\n".format(cycles))
    for sort, title in (("cumulative", "top {} by cumulative time"),
                        ("tottime", "top {} by self time")):
        out.write("== {}\n".format(title.format(TOP_N)))
        ps = pstats.Stats(stats, stream=out)
        ps.strip_dirs().sort_stats(sort).print_stats(TOP_N)
        out.write("\n")
    return out.getvalue()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="cProfile the compiled closed-loop co-sim")
    parser.add_argument("--prof", default="cosim.prof",
                        help="binary cProfile dump path")
    parser.add_argument("--report", default="cosim-profile.txt",
                        help="plain-text pstats report path")
    parser.add_argument("--crc-rounds", type=int, default=2,
                        help="CRC-32 workload rounds (default 2)")
    parser.add_argument("--group-size", type=int, default=10,
                        help="activity-trace group size (default 10)")
    args = parser.parse_args(argv)

    cpu = build_cpu(args.crc_rounds, args.group_size)
    profiler = cProfile.Profile()
    profiler.enable()
    cpu.run()
    profiler.disable()

    profiler.dump_stats(args.prof)
    text = report_text(profiler, cpu.cycles)
    with open(args.report, "w") as f:
        f.write(text)
    print(text.splitlines()[0])
    print("wrote {} and {}".format(args.prof, args.report))
    return 0


if __name__ == "__main__":
    sys.exit(main())
