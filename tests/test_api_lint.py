"""Repo-wide lint: no in-tree caller uses the deprecated kernel names.

The unified Kernel API (``repro.runner.kernel``) replaced
``ScpgPowerModel.power_axis`` / ``power_points``,
``SubvtModel.points_axis`` and the ``batch_fn=`` keyword; the technique
plugin framework (``repro.techniques``) replaced ``apply_scpg`` and
``run_scpg_flow``.  The shims stay for external callers, but every
caller *inside this repository* must be on the new spelling --
otherwise the deprecation period never ends.  Only the modules that
implement, re-export or test the shims may mention the old names.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: Deprecated spelling -> regex that catches a live use of it.  The
#: leading ``.`` / word boundary keeps the blessed ``_``-prefixed
#: internals (``model._power_axis``) from matching.
DEPRECATED = {
    "ScpgPowerModel.power_axis": re.compile(r"\.power_axis\("),
    "ScpgPowerModel.power_points": re.compile(r"\.power_points\("),
    "SubvtModel.points_axis": re.compile(r"\.points_axis\("),
    "batch_fn= keyword": re.compile(r"\bbatch_fn\s*="),
    # The un-prefixed SCPG entry points: both a call and any import
    # (``from x import apply_scpg`` has no ``(`` to anchor on).
    "apply_scpg entry point": re.compile(
        r"(\bimport\s+[^\n]*\bapply_scpg\b|(?<!_)\bapply_scpg\s*\()"),
    "run_scpg_flow entry point": re.compile(
        r"(\bimport\s+[^\n]*\brun_scpg_flow\b|(?<!_)\brun_scpg_flow\s*\()"),
}

#: The only files allowed to spell the old names: the shim
#: implementations and the tests that pin their behaviour.
ALLOWED = {
    "src/repro/scpg/power_model.py",
    "src/repro/subvt/energy.py",
    "src/repro/runner/core.py",
    "src/repro/runner/kernel.py",
    "src/repro/scpg/transform.py",     # apply_scpg shim lives here
    "src/repro/scpg/__init__.py",      # re-exports the shim
    "src/repro/flows/scpg_flow.py",    # run_scpg_flow shim lives here
    "src/repro/flows/__init__.py",     # re-exports the shim
    "src/repro/__init__.py",           # top-level re-export
    "tests/runner/test_deprecations.py",
    "tests/techniques/test_deprecations.py",
    "tests/test_api_lint.py",
}

SCAN_DIRS = ("src", "tests", "benchmarks", "scripts")


def iter_sources():
    for top in SCAN_DIRS:
        root = REPO / top
        if root.is_dir():
            yield from sorted(root.rglob("*.py"))


class TestNoDeprecatedCallers:
    def test_scan_finds_the_sources(self):
        files = list(iter_sources())
        assert len(files) > 50  # the scan really walked the tree

    @pytest.mark.parametrize("name", sorted(DEPRECATED))
    def test_no_in_repo_use(self, name):
        pattern = DEPRECATED[name]
        offenders = []
        for path in iter_sources():
            rel = path.relative_to(REPO).as_posix()
            if rel in ALLOWED:
                continue
            for lineno, line in enumerate(
                    path.read_text().splitlines(), 1):
                if pattern.search(line):
                    offenders.append("{}:{}: {}".format(
                        rel, lineno, line.strip()))
        assert not offenders, (
            "{} is deprecated; use the Kernel API "
            "(repro.runner.kernel):\n{}".format(
                name, "\n".join(offenders)))

    def test_allowlist_entries_exist(self):
        """A deleted shim file must leave the allowlist too."""
        for rel in ALLOWED:
            assert (REPO / rel).is_file(), rel


#: The pre-database circuit constructors.  Product code goes through the
#: design database (``repro.circuits.registry`` / ``generators``) so
#: elaborations stay keyed, validated and memoised; only the circuits
#: package itself (the implementations and the family adapters) may call
#: the builders directly.  Tests are exempt -- unit-testing a builder is
#: legitimate.
LEGACY_BUILDERS = ("build_mult16", "build_m0lite", "build_counter",
                   "build_lfsr")
LEGACY_PATTERN = re.compile(
    r"(\bimport\s+[^\n]*\b(?:{0})\b|\b(?:{0})\s*\()".format(
        "|".join(LEGACY_BUILDERS)))
LEGACY_SCAN_DIRS = ("src", "benchmarks", "scripts")
LEGACY_ALLOWED_PREFIX = "src/repro/circuits/"


class TestBuildersOnlyInsideDatabase:
    def test_no_direct_builder_use(self):
        offenders = []
        for top in LEGACY_SCAN_DIRS:
            root = REPO / top
            if not root.is_dir():
                continue
            for path in sorted(root.rglob("*.py")):
                rel = path.relative_to(REPO).as_posix()
                if rel.startswith(LEGACY_ALLOWED_PREFIX):
                    continue
                for lineno, line in enumerate(
                        path.read_text().splitlines(), 1):
                    if LEGACY_PATTERN.search(line):
                        offenders.append("{}:{}: {}".format(
                            rel, lineno, line.strip()))
        assert not offenders, (
            "legacy circuit builders must be reached through the design "
            "database (registry.build / generators.elaborate):\n"
            + "\n".join(offenders))


class TestGeneratorsDocstrings:
    """Every public symbol of the database module documents itself."""

    def _public_symbols(self):
        import inspect

        import repro.circuits.generators as mod

        for name, obj in sorted(vars(mod).items()):
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != mod.__name__:
                continue
            yield name, obj
            if inspect.isclass(obj):
                for attr, member in sorted(vars(obj).items()):
                    if attr.startswith("_"):
                        continue
                    # Docstrings attach to callables and properties;
                    # plain class-level data attributes carry theirs in
                    # the class docstring.
                    if not (callable(member)
                            or isinstance(member, (property, classmethod,
                                                   staticmethod))):
                        continue
                    yield "{}.{}".format(name, attr), member

    def test_the_scan_sees_the_api(self):
        names = [name for name, _ in self._public_symbols()]
        for expected in ("DesignKey", "GeneratorFamily", "Param",
                         "register_family", "elaborate",
                         "expand_family"):
            assert expected in names

    def test_every_public_symbol_has_a_docstring(self):
        undocumented = []
        for name, obj in self._public_symbols():
            doc = getattr(obj, "__doc__", None)
            if isinstance(obj, property):
                doc = obj.fget.__doc__
            elif isinstance(obj, (classmethod, staticmethod)):
                doc = obj.__func__.__doc__
            if not (doc or "").strip():
                undocumented.append(name)
        assert not undocumented, (
            "public symbols of repro.circuits.generators without "
            "docstrings: {}".format(", ".join(undocumented)))
