"""Journal/trace replay: parsing, aggregation, anomaly detection."""

import json

import pytest

from repro.obs.report import (
    Anomaly,
    GridRecord,
    JournalReport,
    load_events,
    percentile,
    render_report,
)


def _grid_events(label="sweep", elapsed=(), cache=None, cached=0,
                 finished=True, extra=()):
    """A minimal run_start .. run_finish event window."""
    events = [{"t": 0.0, "event": "run_start", "label": label,
               "points": len(elapsed) + cached, "cached": cached,
               "pending": len(elapsed), "workers": 1, "cache": cache}]
    for i, t in enumerate(elapsed):
        events.append({"t": 0.0, "event": "point_finished", "index": i,
                       "status": "ok", "attempts": 0, "timeouts": 0,
                       "elapsed": t})
    events.extend(extra)
    if finished:
        events.append({"t": 0.0, "event": "run_finish", "label": label,
                       "stats": {"stages": {"evaluate": sum(elapsed)}}})
    return events


class TestLoadEvents:
    def test_path_file_and_list_sources(self, tmp_path):
        events = [{"event": "run_start"}, {"event": "run_finish"}]
        path = tmp_path / "run.jsonl"
        path.write_text("".join(json.dumps(e) + "\n" for e in events))
        assert load_events(str(path)) == events
        with open(path) as f:
            assert load_events(f) == events
        assert load_events(events) == events

    def test_torn_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"event": "run_start"}\n\n{"eve\n')
        assert len(load_events(str(path))) == 1


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 0.95) == 96
        assert percentile(values, 1.0) == 100
        assert percentile([5.0], 0.5) == 5.0
        assert percentile([], 0.5) is None


class TestParsing:
    def test_grid_window_aggregation(self):
        report = JournalReport(_grid_events(elapsed=(0.1, 0.2, 0.3)))
        (grid,) = report.grids
        assert grid.label == "sweep"
        assert grid.evaluated == 3
        assert grid.total_s == pytest.approx(0.6)
        assert grid.ok == 3
        assert grid.finished

    def test_infeasible_and_retries_counted(self):
        extra = [{"event": "point_finished", "index": 9,
                  "status": "infeasible", "attempts": 2, "timeouts": 1,
                  "elapsed": 0.05}]
        report = JournalReport(_grid_events(elapsed=(0.1,), extra=extra))
        (grid,) = report.grids
        assert grid.infeasible == 1
        assert grid.retries == 2
        assert grid.timeouts == 1

    def test_multiple_runs_fold_by_label(self):
        events = _grid_events("a", (0.1,)) + _grid_events("b", (0.2,)) \
            + _grid_events("a", (0.3,))
        report = JournalReport(events)
        folded = report.by_label()
        assert list(folded) == ["a", "b"]
        assert len(folded["a"]) == 2

    def test_unfinished_run_is_kept_and_flagged(self):
        report = JournalReport(_grid_events(elapsed=(0.1,),
                                            finished=False))
        (grid,) = report.grids
        assert not grid.finished
        kinds = [a.kind for a in report.anomalies()]
        assert "aborted" in kinds

    def test_artifact_events_outside_and_inside_runs(self):
        events = [{"event": "artifact_miss", "fingerprint": "ab"},
                  {"event": "artifact_built", "fingerprint": "ab",
                   "design": "mult16", "elapsed": 1.5}]
        events += _grid_events(elapsed=(0.1,), extra=[
            {"event": "artifact_hit", "fingerprint": "ab",
             "source": "memory"}])
        report = JournalReport(events)
        assert report.artifact_hits == 1
        assert report.artifact_misses == 1
        assert report.artifact_builds == [("mult16", 1.5)]

    def test_unknown_events_ignored(self):
        events = _grid_events(elapsed=(0.1,))
        events.insert(1, {"event": "totally_new_event", "x": 1})
        report = JournalReport(events)
        assert report.grids[0].evaluated == 1


class TestStageSeconds:
    def test_falls_back_to_journalled_stats(self):
        report = JournalReport(_grid_events(elapsed=(0.25, 0.25)))
        assert report.stage_seconds() == {("(all)", "evaluate"): 0.5}

    def test_spans_join_stages_to_grid_labels(self):
        events = [
            {"event": "span", "name": "grid", "id": 1, "parent": None,
             "start": 0.0, "elapsed": 1.0, "label": "sweep:mult16"},
            {"event": "span", "name": "stage", "id": 2, "parent": 1,
             "start": 0.0, "elapsed": 0.4, "stage": "cache"},
            {"event": "span", "name": "stage", "id": 3, "parent": 1,
             "start": 0.4, "elapsed": 0.6, "stage": "evaluate"},
        ]
        totals = JournalReport(events).stage_seconds()
        assert totals[("sweep:mult16", "cache")] == pytest.approx(0.4)
        assert totals[("sweep:mult16", "evaluate")] \
            == pytest.approx(0.6)


class TestAnomalies:
    def test_straggler_flagged_over_k_times_p95(self):
        elapsed = [0.01] * 99 + [0.5]
        report = JournalReport(_grid_events(elapsed=elapsed))
        stragglers = [a for a in report.anomalies()
                      if a.kind == "straggler"]
        assert len(stragglers) == 1
        assert "point 99" in stragglers[0].message

    def test_straggler_needs_enough_points(self):
        assert GridRecord(elapsed=[0.001, 1.0],
                          indices=[0, 1]).stragglers() == []

    def test_straggler_floor_suppresses_microsecond_noise(self):
        elapsed = [1e-6] * 99 + [5e-5]   # 50x p95 but under the floor
        report = JournalReport(_grid_events(elapsed=elapsed))
        assert [a for a in report.anomalies()
                if a.kind == "straggler"] == []

    def test_retry_storm(self):
        extra = [{"event": "point_finished", "index": i, "status": "ok",
                  "attempts": 1, "timeouts": 0, "elapsed": 0.01}
                 for i in range(5)]
        report = JournalReport(_grid_events(elapsed=(), extra=extra))
        kinds = [a.kind for a in report.anomalies()]
        assert "retry-storm" in kinds

    def test_cold_cache_only_when_cache_was_on(self):
        cold = JournalReport(_grid_events(elapsed=(0.1, 0.1),
                                          cache=True))
        assert "cold-cache" in [a.kind for a in cold.anomalies()]
        # cache off, or an old journal without the field: not flagged
        for cache in (False, None):
            report = JournalReport(_grid_events(elapsed=(0.1, 0.1),
                                                cache=cache))
            assert "cold-cache" not in [a.kind
                                        for a in report.anomalies()]
        warm = JournalReport(_grid_events(elapsed=(0.1,), cache=True,
                                          cached=1))
        assert "cold-cache" not in [a.kind for a in warm.anomalies()]

    def test_pool_crash_and_hard_failure(self):
        extra = [
            {"event": "pool_crashed", "workers": 4, "completed": 1,
             "remaining": 3},
            {"event": "requeue_serial", "points": 3},
            {"event": "point_failed", "index": 7, "attempts": 1,
             "timeouts": 0, "error": "ValueError('boom')"},
        ]
        report = JournalReport(_grid_events(elapsed=(0.1,), extra=extra))
        kinds = [a.kind for a in report.anomalies()]
        assert "pool-crash" in kinds
        assert "hard-failure" in kinds
        crash = [a for a in report.anomalies()
                 if a.kind == "pool-crash"][0]
        assert "3 points requeued" in crash.message

    def test_anomaly_str(self):
        assert str(Anomaly("straggler", "slow")) == "[straggler] slow"


class TestRender:
    def test_report_sections(self):
        events = _grid_events("sweep:mult16", elapsed=(0.01,) * 99
                              + (0.5,), cache=True)
        text = render_report(events)
        assert "journal report: 1 grid run(s), 100 points" in text
        assert "per-grid breakdown" in text
        assert "sweep:mult16" in text
        assert "stage timings" in text
        assert "result cache" in text
        assert "[straggler]" in text
        assert "[cold-cache]" in text
        assert text.endswith("\n")

    def test_empty_journal_renders(self):
        text = render_report([])
        assert "0 grid run(s)" in text
        assert "anomalies: none detected" in text

    def test_straggler_k_is_tunable(self):
        elapsed = [0.01] * 99 + [0.05]   # 5x p95
        assert "[straggler]" not in render_report(
            _grid_events(elapsed=elapsed), straggler_k=10.0)
        assert "[straggler]" in render_report(
            _grid_events(elapsed=elapsed), straggler_k=4.0)
