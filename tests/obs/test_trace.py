"""Tracer/span semantics: nesting, timing, sinks, the no-op path."""

import json
import threading

from repro.obs.trace import (
    NULL_TRACER,
    JournalSink,
    JsonlSink,
    MemorySink,
    Tracer,
)
from repro.runner import RunJournal, read_journal


class TestSpans:
    def test_span_emitted_on_exit_with_elapsed(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("work", label="x"):
            pass
        (line,) = sink.lines
        assert line["event"] == "span"
        assert line["name"] == "work"
        assert line["label"] == "x"
        assert line["elapsed"] >= 0.0
        assert line["start"] >= 0.0
        assert "t" in line
        assert tracer.spans == 1

    def test_nesting_assigns_parent_ids(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with tracer.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        assert outer.parent_id is None
        # children are emitted before their parent
        assert [l["name"] for l in sink.lines] \
            == ["inner", "sibling", "outer"]
        by_name = {l["name"]: l for l in sink.lines}
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]

    def test_span_ids_are_unique(self):
        tracer = Tracer(MemorySink())
        ids = set()
        for _ in range(100):
            with tracer.span("s") as span:
                ids.add(span.span_id)
        assert len(ids) == 100

    def test_monotonic_containment(self):
        """A child's [start, start+elapsed] lies inside its parent's."""
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = sink.lines
        assert outer["start"] <= inner["start"]
        assert inner["start"] + inner["elapsed"] \
            <= outer["start"] + outer["elapsed"] + 1e-9

    def test_set_attaches_attrs_until_finish(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("s") as span:
            span.set(status="ok", attempts=2)
        span.set(ignored=True)           # after exit: silent no-op
        (line,) = sink.lines
        assert line["status"] == "ok"
        assert line["attempts"] == 2
        assert "ignored" not in line

    def test_finish_is_idempotent(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        span = tracer.span("s")
        span.finish()
        first = span.elapsed
        span.finish()
        assert span.elapsed == first
        assert len(sink.lines) == 1

    def test_exception_still_emits_the_span(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert len(sink.lines) == 1

    def test_record_emits_pretimed_span_under_current_parent(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("grid") as grid:
            tracer.record("point", 0.5, index=3)
        point, _ = sink.lines
        assert point["name"] == "point"
        assert point["parent"] == grid.span_id
        assert point["elapsed"] == 0.5
        assert point["index"] == 3
        # dated `elapsed` seconds before emission: the tracer is only
        # microseconds old, so the span starts before its own epoch
        assert point["start"] < 0

    def test_threads_nest_independently(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        seen = {}

        def work(name):
            with tracer.span(name) as span:
                seen[name] = span.parent_id

        with tracer.span("main"):
            t = threading.Thread(target=work, args=("other",))
            t.start()
            t.join()
            work("child")
        assert seen["other"] is None      # not under "main"
        assert seen["child"] is not None


class TestNullTracer:
    def test_null_tracer_produces_nothing(self):
        with NULL_TRACER.span("x", a=1) as span:
            span.set(b=2)
        assert NULL_TRACER.record("y", 1.0) is span
        assert NULL_TRACER.spans == 0
        assert not NULL_TRACER.enabled
        NULL_TRACER.close()

    def test_null_span_is_shared(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestSinks:
    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(JsonlSink(path)) as tracer:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        lines = [json.loads(l) for l in open(path)]
        assert [l["name"] for l in lines] == ["inner", "outer"]

    def test_jsonl_sink_appends(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for _ in range(2):
            with Tracer(JsonlSink(path)) as tracer:
                with tracer.span("s"):
                    pass
        assert len(open(path).read().splitlines()) == 2

    def test_journal_sink_interleaves_with_events(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        tracer = Tracer(JournalSink(journal))
        journal.record("run_start", label="x")
        with tracer.span("grid", label="x"):
            pass
        journal.record("run_finish", label="x")
        journal.close()
        events = read_journal(journal.path)
        assert [e["event"] for e in events] \
            == ["run_start", "span", "run_finish"]
        span = events[1]
        assert span["name"] == "grid"
        assert "id" in span and "elapsed" in span
        # the journal supplies its own t; the sink must not smuggle one in
        assert events[0]["t"] <= span["t"] <= events[2]["t"]

    def test_multiple_sinks_all_receive(self):
        a, b = MemorySink(), MemorySink()
        tracer = Tracer([a, b])
        with tracer.span("s"):
            pass
        assert len(a) == len(b) == 1

    def test_close_closes_sinks(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        tracer = Tracer(sink)
        with tracer.span("s"):
            pass
        tracer.close()
        assert sink._file is None
        tracer.close()               # idempotent
