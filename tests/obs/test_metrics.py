"""MetricsRegistry: series identity, histograms, exposition, the
RunStats bridge (every stats key must be subsumed)."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.runner import ResultCache, RunStats, evaluate_grid


class TestSeries:
    def test_same_name_and_labels_return_one_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g", stage="x") is reg.gauge("g", stage="x")
        assert reg.counter("a") is not reg.counter("a", stage="x")
        assert len(reg) == 3

    def test_counter_and_gauge_arithmetic(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.to_value() == 3.5
        g = Gauge("g")
        g.set(7)
        g.inc(-2)
        assert g.to_value() == 5


class TestHistogram:
    def test_cumulative_bucket_semantics(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.counts == [1, 3, 4]      # <= 1, <= 2, <= 4
        assert h.count == 5
        assert h.sum == pytest.approx(106.5)
        assert h.min == 0.5
        assert h.max == 100.0

    def test_boundary_lands_in_its_bucket(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(1.0)                    # le="1" must include 1.0
        assert h.counts == [1, 1]

    def test_quantile_upper_bound(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.5, 0.5, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 4.0
        h.observe(50.0)                   # past the last bound
        assert h.quantile(1.0) == 50.0
        assert Histogram("e").quantile(0.5) is None

    def test_prometheus_samples(self):
        h = Histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        samples = {(name, labels.get("le")): value
                   for name, labels, value in h.samples()}
        assert samples[("lat_bucket", "0.1")] == 1
        assert samples[("lat_bucket", "1")] == 1
        assert samples[("lat_bucket", "+Inf")] == 2
        assert samples[("lat_sum", None)] == pytest.approx(5.05)
        assert samples[("lat_count", None)] == 2

    def test_default_buckets_cover_sweep_latencies(self):
        assert DEFAULT_BUCKETS[0] <= 1e-5
        assert DEFAULT_BUCKETS[-1] >= 10.0


class TestExposition:
    def test_render_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_points_total", "points requested").inc(3)
        reg.gauge("repro_workers").set(4)
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        text = reg.render()
        assert "# HELP repro_points_total points requested" in text
        assert "# TYPE repro_points_total counter" in text
        assert "repro_points_total 3" in text
        assert "# TYPE repro_workers gauge" in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text
        assert text.endswith("\n")

    def test_labels_render_sorted(self):
        reg = MetricsRegistry()
        reg.counter("c", stage="z", design="a").inc()
        assert 'c{design="a",stage="z"} 1' in reg.render()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""

    def test_to_dict_keys_by_name_and_labels(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.counter("c", stage="x").inc(1)
        reg.histogram("h").observe(0.5)
        data = reg.to_dict()
        assert data["c"] == 2
        assert data['c{stage="x"}'] == 1
        assert data["h"]["count"] == 1
        assert data["h"]["p95"] is not None


class TestStatsBridge:
    def _stats(self):
        stats = RunStats(points=10, evaluated=6, cache_hits=4,
                         cache_misses=6, infeasible=1, retries=2,
                         timeouts=1, crashes=1, artifact_hits=3,
                         artifact_misses=1, workers=4,
                         stages={"cache": 0.25, "evaluate": 1.75})
        return stats

    def test_every_stats_key_is_subsumed(self):
        """The registry's contract: RunStats.to_dict() carries no number
        the metrics dump doesn't."""
        from repro.obs.metrics import _STATS_COUNTERS

        metric_for = {key: name for key, name, _ in _STATS_COUNTERS}
        metric_for["hit_rate"] = "repro_cache_hit_ratio"
        metric_for["workers"] = "repro_workers"
        stats = self._stats()
        data = MetricsRegistry().fill_from_stats(stats).to_dict()
        for key, value in stats.to_dict().items():
            if key == "stages":
                for stage, seconds in value.items():
                    assert data[
                        'repro_stage_seconds_total{{stage="{}"}}'.format(
                            stage)] == seconds
            else:
                assert key in metric_for, \
                    "new RunStats key {!r} has no metric".format(key)
                assert data[metric_for[key]] == value

    def test_snapshot_replaces_not_accumulates(self):
        reg = MetricsRegistry()
        stats = self._stats()
        reg.fill_from_stats(stats)
        reg.fill_from_stats(stats)     # twice: values must not double
        assert reg.counter("repro_points_total").to_value() == 10

    def test_ratios(self):
        reg = MetricsRegistry().fill_from_stats(self._stats())
        assert reg.gauge("repro_cache_hit_ratio").value \
            == pytest.approx(0.4)
        assert reg.gauge("repro_artifact_hit_ratio").value \
            == pytest.approx(0.75)

    def test_zero_denominators(self):
        reg = MetricsRegistry().fill_from_stats(RunStats())
        assert reg.gauge("repro_cache_hit_ratio").value == 0.0
        assert reg.gauge("repro_artifact_hit_ratio").value == 0.0

    def test_duck_typed_plain_dict(self):
        reg = MetricsRegistry().fill_from_stats(
            {"points": 5, "hit_rate": 0.5})
        assert reg.counter("repro_points_total").to_value() == 5

    def test_cache_puts_counter(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.writeback(cache.key_for("ns", 1), 42)
        reg = MetricsRegistry().fill_from_stats(RunStats(), cache=cache)
        assert reg.counter(
            "repro_cache_store_puts_total").to_value() == cache.puts


class TestRunnerIntegration:
    def test_evaluate_grid_fills_histograms(self):
        reg = MetricsRegistry()
        stats = RunStats()
        evaluate_grid(lambda p: p * p, [1, 2, 3], stats=stats,
                      metrics=reg)
        hist = reg.histogram("repro_point_seconds")
        assert hist.count == 3
        assert hist.sum > 0.0
        reg.fill_from_stats(stats)
        assert reg.counter("repro_points_total").to_value() == 3
