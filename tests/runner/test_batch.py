"""The serial batch-kernel path of :func:`evaluate_grid`.

A ``kernel`` evaluates every cache-missed point in one call instead of
dispatching ``fn`` per point.  The contract under test: identical
results, identical cache behaviour, per-point journal events preserved,
and the kernel only ever used on the serial path.
"""

import functools

import pytest

from repro.errors import RunnerError
from repro.runner import ResultCache, RunJournal, RunStats, evaluate_grid
from repro.runner import read_journal


def _square(point):
    return point * point


def _square_batch(points):
    return [p * p for p in points]


def _ctx_scale(ctx, point):
    return ctx * point


def _ctx_scale_batch(ctx, points):
    return [ctx * p for p in points]


def _evens_only(point):
    from repro.errors import ScpgError

    if point % 2:
        raise ScpgError("odd")
    return point


def _evens_only_batch(points):
    # The kernel maps on_error exceptions to None itself.
    return [None if p % 2 else p for p in points]


class TestBatchPath:
    def test_results_match_serial(self):
        points = list(range(10))
        assert evaluate_grid(_square, points, kernel=_square_batch) \
            == evaluate_grid(_square, points)

    def test_context_forwarded(self):
        # Kernels close over their own context (functools.partial here);
        # the grid context still reaches ``fn`` for the per-point path.
        got = evaluate_grid(_ctx_scale, [1, 2, 3], context=10,
                            kernel=functools.partial(_ctx_scale_batch, 10))
        assert got == [10, 20, 30]

    def test_infeasible_nones_counted(self):
        from repro.errors import ScpgError

        stats = RunStats()
        got = evaluate_grid(_evens_only, list(range(6)),
                            on_error=(ScpgError,), stats=stats,
                            kernel=_evens_only_batch)
        assert got == [0, None, 2, None, 4, None]
        assert stats.infeasible == 3
        assert stats.evaluated == 6

    def test_length_mismatch_raises(self):
        with pytest.raises(RunnerError):
            evaluate_grid(_square, [1, 2, 3],
                          kernel=lambda pts: [1])

    def test_journal_keeps_per_point_events(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        evaluate_grid(_square, [1, 2, 3], journal=str(path),
                      label="batch-test", kernel=_square_batch)
        events = list(read_journal(path))
        names = [e["event"] for e in events]
        assert names.count("point_finished") == 3
        assert "batch_started" in names and "batch_finished" in names
        finish = [e for e in events if e["event"] == "batch_finished"]
        assert finish[0]["ok"] == 3 and finish[0]["infeasible"] == 0

    def test_cache_warm_rerun_evaluates_nothing(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        points = list(range(8))
        cold = RunStats()
        evaluate_grid(_square, points, cache=cache, cache_key="sq",
                      stats=cold, kernel=_square_batch)
        assert cold.evaluated == 8
        warm = RunStats()
        got = evaluate_grid(_square, points, cache=cache, cache_key="sq",
                            stats=warm, kernel=_square_batch)
        assert got == [p * p for p in points]
        assert warm.evaluated == 0
        assert warm.cache_hits == 8

    def test_partial_cache_batches_only_the_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        evaluate_grid(_square, [0, 1, 2, 3], cache=cache, cache_key="sq",
                      kernel=_square_batch)
        seen = []

        def spy(points):
            seen.extend(points)
            return _square_batch(points)

        got = evaluate_grid(_square, [2, 3, 4, 5], cache=cache,
                            cache_key="sq", kernel=spy)
        assert got == [4, 9, 16, 25]
        assert seen == [4, 5]  # 2 and 3 came from the cache

    def test_infeasible_marker_cached(self, tmp_path):
        from repro.errors import ScpgError

        cache = ResultCache(tmp_path / "cache")
        evaluate_grid(_evens_only, [1, 2], cache=cache, cache_key="ev",
                      on_error=(ScpgError,), kernel=_evens_only_batch)
        warm = RunStats()
        got = evaluate_grid(_evens_only, [1, 2], cache=cache,
                            cache_key="ev", on_error=(ScpgError,),
                            stats=warm, kernel=_evens_only_batch)
        assert got == [None, 2]
        assert warm.evaluated == 0
        assert warm.infeasible == 1


class TestKernelGuards:
    def test_sweep_guard_rejects_instance_override(self, lib):
        from repro.analysis.sweep import _batch_kernel
        from repro.session import Session

        s = Session(library=lib, cache=False)
        try:
            model = s.design("counter16").power_model()
            assert _batch_kernel(model) is not None
            model.power = type(model).power.__get__(model)
            assert _batch_kernel(model) is None
        finally:
            s.close()

    def test_sweep_guard_rejects_subclass(self, lib):
        from repro.analysis.sweep import _batch_kernel
        from repro.scpg.power_model import ScpgPowerModel
        from repro.session import Session

        class Patched(ScpgPowerModel):
            pass

        s = Session(library=lib, cache=False)
        try:
            model = s.design("counter16").power_model()
            patched = Patched(**{
                k: getattr(model, k) for k in (
                    "e_cycle", "leak_comb", "leak_alwayson",
                    "leak_header_off", "rail", "header_gate_cap",
                    "timing", "vdd", "e_iso_cycle")})
            assert _batch_kernel(patched) is None
        finally:
            s.close()

    def test_subvt_guard(self, lib):
        from repro.session import Session
        from repro.subvt.energy import _batch_kernel

        s = Session(library=lib, cache=False)
        try:
            model = s.design("counter16").subvt_model()
            assert _batch_kernel(model) is not None
            model.point = type(model).point.__get__(model)
            assert _batch_kernel(model) is None
        finally:
            s.close()


class TestKernelParity:
    """The shipped kernels against their point-at-a-time references."""

    def test_power_sweep_parity(self, lib):
        from repro.analysis.sweep import sweep
        from repro.scpg.power_model import Mode
        from repro.session import Session

        s1 = Session(library=lib, cache=False)
        s2 = Session(library=lib, cache=False)
        try:
            model = s1.design("counter16").power_model()
            freqs = [10 ** (4 + 0.2 * k) for k in range(20)]
            batch = sweep(model, freqs)
            pointwise = s2.design("counter16").power_model()
            pointwise.power = type(pointwise).power.__get__(pointwise)
            ref = sweep(pointwise, freqs)
            for mode in (Mode.NO_PG, Mode.SCPG, Mode.SCPG_MAX):
                assert batch.results[mode] == ref.results[mode]
        finally:
            s1.close()
            s2.close()

    def test_subvt_sweep_parity(self, lib):
        from repro.session import Session
        from repro.subvt.energy import energy_sweep

        s1 = Session(library=lib, cache=False)
        s2 = Session(library=lib, cache=False)
        try:
            model = s1.design("counter16").subvt_model()
            batch = energy_sweep(model, steps=24)
            pointwise = s2.design("counter16").subvt_model()
            pointwise.point = type(pointwise).point.__get__(pointwise)
            assert batch == energy_sweep(pointwise, steps=24)
        finally:
            s1.close()
            s2.close()
