"""Per-circuit artifact bundles: exact results, store semantics, keys.

The artifact layer's contract is *bit-identical* evaluation -- every
``assert`` here uses ``==`` on floats, never ``pytest.approx``.  A table
that drifts by one ULP from the module it shadows breaks the result
cache's key-sharing between the artifact and netlist-walking paths.
"""

import os
import subprocess
import sys

import pytest

from repro.power.leakage import leakage_power
from repro.power.probabilistic import vectorless_switching
from repro.runner import (
    ARTIFACT_SCHEMA,
    ArtifactStore,
    CircuitArtifacts,
    ResultCache,
    RunJournal,
    RunStats,
    read_journal,
    stable_hash,
)
from repro.runner.artifacts import (
    DomainPartition,
    LeakageTable,
    ScpgModelTable,
    SwitchedCapTable,
    TimingTable,
)
from repro.session import Session
from repro.sta.analysis import TimingAnalysis

VDDS = (None, 0.9, 0.6, 0.45, 0.3, 0.22)


@pytest.fixture(scope="module")
def session(lib):
    s = Session(library=lib, cache=False)
    yield s
    s.close()


@pytest.fixture(scope="module")
def counter(session):
    return session.design("counter16")


# -- table-level bit-identicality ---------------------------------------------

class TestTimingTable:
    def test_matches_analysis_at_every_vdd(self, toy_design, lib):
        table = TimingTable.compile(toy_design.top, lib)
        for vdd in VDDS:
            ref = TimingAnalysis(toy_design.top, lib).run(vdd=vdd) \
                if vdd is not None \
                else TimingAnalysis(toy_design.top, lib).run()
            got = table.evaluate(lib, vdd=vdd)
            assert got.eval_delay == ref.eval_delay
            assert got.setup == ref.setup
            assert got.hold == ref.hold
            assert got.min_path_delay == ref.min_path_delay
            assert got.vdd == ref.vdd
            assert str(got.critical_path) == str(ref.critical_path)

    def test_matches_on_generated_design(self, counter, lib):
        table = TimingTable.compile(counter.design.top, lib)
        for vdd in (0.6, 0.35):
            ref = TimingAnalysis(counter.design.top, lib).run(vdd=vdd)
            got = table.evaluate(lib, vdd=vdd)
            assert got.min_period == ref.min_period
            assert str(got.critical_path) == str(ref.critical_path)

    def test_pickle_roundtrip(self, toy_design, lib):
        import pickle

        table = pickle.loads(pickle.dumps(
            TimingTable.compile(toy_design.top, lib)))
        ref = TimingAnalysis(toy_design.top, lib).run(vdd=0.5)
        assert table.evaluate(lib, vdd=0.5).eval_delay == ref.eval_delay


class TestLeakageTable:
    def test_matches_leakage_power(self, counter, lib):
        table = LeakageTable.compile(counter.design.top)
        for vdd in VDDS:
            ref = leakage_power(counter.design.top, lib, vdd=vdd)
            got = table.evaluate(lib, vdd=vdd)
            assert got.total == ref.total
            assert got.by_kind == ref.by_kind
            assert got.by_cell == ref.by_cell
            assert got.combinational == ref.combinational
            assert got.always_on == ref.always_on
            assert got.headers == ref.headers

    def test_axis_matches_scalar_evaluations(self, counter, lib):
        """One vectorized pass over the whole VDD axis returns the same
        reports as point-at-a-time evaluate calls."""
        table = LeakageTable.compile(counter.design.top)
        reports = table.evaluate_axis(lib, list(VDDS))
        assert len(reports) == len(VDDS)
        for vdd, got in zip(VDDS, reports):
            ref = table.evaluate(lib, vdd=vdd)
            assert got.vdd == ref.vdd
            assert got.total == ref.total
            assert got.by_kind == ref.by_kind
            assert got.by_cell == ref.by_cell

    def test_axis_temp_and_empty(self, counter, lib):
        table = LeakageTable.compile(counter.design.top)
        hot = table.evaluate_axis(lib, [0.6], temp_c=85.0)[0]
        assert hot.total == table.evaluate(lib, vdd=0.6,
                                           temp_c=85.0).total
        assert table.evaluate_axis(lib, []) == []
        empty = LeakageTable()  # ScpgModelTable default-constructs one
        report = empty.evaluate(lib, vdd=0.5)
        assert report.total == 0.0 and report.by_kind == {}

    def test_kernel_registered(self, counter, lib):
        """The vdd axis batches through the kernel registry."""
        from repro.errors import RunnerError
        from repro.runner import compile_kernel, kernel_for

        table = LeakageTable.compile(counter.design.top)
        kernel = kernel_for(table)
        assert kernel is not None and kernel.name == "leakage-axis"
        compiled = compile_kernel(table, library=lib)
        points = [None, 0.6, 0.3]
        for vdd, got in zip(points, compiled(points)):
            ref = table.evaluate(lib, vdd=vdd)
            assert (got.vdd, got.total) == (ref.vdd, ref.total)
            assert got.by_cell == ref.by_cell
        with pytest.raises(RunnerError, match="library"):
            compile_kernel(table)([0.6])

    def test_pickle_roundtrip(self, counter, lib):
        import pickle

        table = pickle.loads(pickle.dumps(
            LeakageTable.compile(counter.design.top)))
        ref = leakage_power(counter.design.top, lib, vdd=0.5)
        assert table.evaluate(lib, vdd=0.5).total == ref.total


class TestSwitchedCapTable:
    def test_matches_vectorless_switching(self, counter, lib):
        table = SwitchedCapTable.compile(counter.design.top, lib)
        for vdd in VDDS:
            if vdd is None:
                ref = vectorless_switching(counter.design.top, lib)
                got = table.evaluate(lib)
            else:
                ref = vectorless_switching(counter.design.top, lib, vdd)
                got = table.evaluate(lib, vdd=vdd)
            assert got[0] == ref[0]
            assert got[1] == ref[1]


class TestScpgModelTable:
    def test_model_fingerprint_and_numbers_match(self, counter, lib):
        from repro.scpg.power_model import Mode, ScpgPowerModel

        scpg = counter.scpg()
        e_cycle, _ = counter.switching()
        ref = ScpgPowerModel.from_scpg_design(scpg, e_cycle)
        got = ScpgModelTable.compile(scpg).build_model(lib, e_cycle)
        # Identical fingerprints => identical result-cache keys, so
        # artifact-path sweeps share cached points with legacy sweeps.
        assert stable_hash("m", got) == stable_hash("m", ref)
        for freq in (1e4, 1e6, 1e7):
            for mode in Mode:
                a, b = got.power(freq, mode), ref.power(freq, mode)
                if a is None or b is None:
                    assert a is None and b is None
                else:
                    assert a.total == b.total
                    assert a.energy_per_op == b.energy_per_op

    def test_partition_snapshot(self, counter):
        scpg = counter.scpg()
        part = DomainPartition.compile(scpg)
        assert part.header_count == scpg.headers.count
        assert part.area_overhead_pct == scpg.area_overhead_pct
        assert len(part.isolation_cells) == len(scpg.iso_instances)


# -- the store ----------------------------------------------------------------

def _bundle(fp="fp-1"):
    return CircuitArtifacts(fingerprint=fp, design_name="toy")


class TestArtifactStore:
    def test_memo_hit_counts(self, tmp_path):
        stats = RunStats()
        store = ArtifactStore(stats=stats)
        calls = []

        def build():
            calls.append(1)
            return _bundle()

        a = store.get("fp-1", build)
        b = store.get("fp-1", build)
        assert a is b
        assert calls == [1]
        assert stats.artifact_misses == 1
        assert stats.artifact_hits == 1

    def test_disk_reuse_across_stores(self, tmp_path):
        cache = ResultCache(tmp_path / "art")
        ArtifactStore(cache=cache).get("fp-1", _bundle)
        # A fresh store (fresh process, same directory) must not rebuild.
        stats = RunStats()
        fresh = ArtifactStore(cache=ResultCache(tmp_path / "art"),
                              stats=stats)

        def explode():
            raise AssertionError("rebuilt despite disk entry")

        bundle = fresh.get("fp-1", explode)
        assert bundle.fingerprint == "fp-1"
        assert stats.artifact_hits == 1 and stats.artifact_misses == 0

    def test_corrupt_disk_entry_degrades_to_rebuild(self, tmp_path):
        cache = ResultCache(tmp_path / "art")
        store = ArtifactStore(cache=cache)
        cache.put(store.key_for("fp-1"), {"not": "a bundle"})
        assert store.get("fp-1", _bundle).fingerprint == "fp-1"
        # Wrong fingerprint inside an otherwise valid bundle: also rebuilt.
        cache.put(store.key_for("fp-2"), _bundle("other"))
        assert ArtifactStore(cache=cache).get(
            "fp-2", lambda: _bundle("fp-2")).fingerprint == "fp-2"

    def test_journal_events(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = RunJournal(path)
        store = ArtifactStore(cache=ResultCache(tmp_path / "art"),
                              journal=journal)
        store.get("fp-1", _bundle)
        store.get("fp-1", _bundle)
        journal.close()
        events = [e["event"] for e in read_journal(path)]
        assert events == ["artifact_miss", "artifact_built",
                          "artifact_hit"]

    def test_no_cache_is_memo_only(self):
        store = ArtifactStore()
        assert store.key_for("fp-1") is None
        store.get("fp-1", _bundle)
        assert ArtifactStore().get("fp-1", _bundle) is not None


# -- fingerprint invalidation -------------------------------------------------

class TestInvalidation:
    def test_circuit_change_changes_the_key(self, session, lib):
        fp_counter = session.design("counter16").fingerprint
        fp_lfsr = session.design("lfsr16").fingerprint
        assert fp_counter != fp_lfsr
        assert stable_hash(ARTIFACT_SCHEMA, fp_counter) \
            != stable_hash(ARTIFACT_SCHEMA, fp_lfsr)

    def test_netlist_edit_changes_the_key(self, toy_design, lib):
        from repro.runner import module_fingerprint

        before = stable_hash("design-v1",
                             module_fingerprint(toy_design.top), lib)
        inv = toy_design.top  # add one buffer on the output cone
        q = next(n for n in inv.nets() if n.name == "q")
        net = inv.add_net("extra")
        inv.add_instance("gx", "INV_X1", {"A": q, "Y": net}, library=lib)
        after = stable_hash("design-v1",
                            module_fingerprint(toy_design.top), lib)
        assert before != after

    def test_library_change_changes_the_key(self, lib):
        from repro.tech.scl90 import Scl90Tuning, build_scl90

        retuned = build_scl90(Scl90Tuning(wire_cap_per_fanout=3e-15))
        s1 = Session(library=lib, cache=False)
        s2 = Session(library=retuned, cache=False)
        try:
            assert s1.design("counter16").fingerprint \
                != s2.design("counter16").fingerprint
        finally:
            s1.close()
            s2.close()


# -- session integration ------------------------------------------------------

class TestSessionArtifacts:
    def test_results_identical_with_and_without(self, lib):
        on = Session(library=lib, cache=False)
        off = Session(library=lib, cache=False, artifacts=False)
        try:
            h_on, h_off = on.design("counter16"), off.design("counter16")
            for vdd in (None, 0.5):
                a, b = h_on.sta(vdd=vdd), h_off.sta(vdd=vdd)
                assert a.eval_delay == b.eval_delay
                assert a.setup == b.setup
                assert str(a.critical_path) == str(b.critical_path)
                assert h_on.switching(vdd=vdd) == h_off.switching(vdd=vdd)
                la, lb = h_on.leakage(vdd=vdd), h_off.leakage(vdd=vdd)
                assert la.total == lb.total and la.by_cell == lb.by_cell
            assert stable_hash("m", h_on.power_model()) \
                == stable_hash("m", h_off.power_model())
            assert stable_hash("s", h_on.subvt_model()) \
                == stable_hash("s", h_off.subvt_model())
            assert on.stats.artifact_misses == 1
            assert off.stats.artifact_misses == 0
        finally:
            on.close()
            off.close()

    def test_artifact_dir_reused_by_second_session(self, lib, tmp_path):
        art = str(tmp_path / "artifacts")
        cold = Session(library=lib, cache=False, artifacts=art)
        cold.design("counter16").sta()
        cold.close()
        warm = Session(library=lib, cache=False, artifacts=art)
        try:
            warm.design("counter16").sta()
            assert warm.stats.artifact_hits == 1
            assert warm.stats.artifact_misses == 0
        finally:
            warm.close()

    def test_handle_memoises_one_bundle(self, lib):
        s = Session(library=lib, cache=False)
        try:
            h = s.design("counter16")
            h.sta()
            h.leakage()
            h.switching()
            h.power_model()
            # One build, then the handle serves its memoised bundle --
            # the store is only consulted once.
            assert s.stats.artifact_misses == 1
            assert s.stats.artifact_hits == 0
        finally:
            s.close()

    def test_artifacts_off_has_no_store(self, lib):
        s = Session(library=lib, cache=False, artifacts=False)
        try:
            assert s.artifacts is None
            assert s.design("counter16").artifacts() is None
        finally:
            s.close()

    def test_cross_process_reuse(self, lib, tmp_path):
        """A bundle built in another *process* is reused from disk."""
        art = str(tmp_path / "artifacts")
        script = (
            "from repro.session import Session\n"
            "s = Session(cache=False, artifacts={!r})\n"
            "s.design('counter16').sta()\n"
            "assert s.stats.artifact_misses == 1\n"
            "s.close()\n".format(art)
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        subprocess.run([sys.executable, "-c", script], check=True,
                       env=env)
        s = Session(library=lib, cache=False, artifacts=art)
        try:
            s.design("counter16").sta()
            assert s.stats.artifact_hits == 1
            assert s.stats.artifact_misses == 0
        finally:
            s.close()
