"""Fault tolerance: retries, timeouts, worker crashes, thread safety."""

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.errors import PointTimeoutError, RunnerError
from repro.runner import (
    ResultCache,
    Runner,
    RunStats,
    evaluate_grid,
    read_journal,
    stable_hash,
)
from repro.runner import core as runner_core

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(not HAVE_FORK,
                                reason="needs fork start method")


def _square(point):
    return point * point


class _Transient:
    """Fails the first ``failures`` calls per point, then succeeds.

    State lives on disk so the counter survives process boundaries
    (fork workers append to the same file).
    """

    def __init__(self, root, failures=2):
        self.root = str(root)
        self.failures = failures

    def __call__(self, point):
        path = os.path.join(self.root, "attempts-{}".format(point))
        seen = 0
        if os.path.exists(path):
            with open(path) as f:
                seen = len(f.read())
        with open(path, "a") as f:
            f.write("x")
        if seen < self.failures:
            raise OSError("transient failure {}".format(seen))
        return point * point


class TestRetries:
    def test_transient_failures_are_retried(self, tmp_path):
        stats = RunStats()
        fn = _Transient(tmp_path, failures=2)
        assert evaluate_grid(fn, [5], retry_on=(OSError,), retries=3,
                             backoff=0.001, stats=stats) == [25]
        assert stats.retries == 2
        assert stats.infeasible == 0

    @needs_fork
    def test_transient_failures_are_retried_parallel(self, tmp_path):
        stats = RunStats()
        fn = _Transient(tmp_path, failures=1)
        assert evaluate_grid(fn, [2, 3], workers=2, retry_on=(OSError,),
                             retries=2, backoff=0.001, stats=stats) \
            == [4, 9]
        assert stats.retries == 2

    def test_exhausted_retries_propagate(self, tmp_path):
        fn = _Transient(tmp_path, failures=99)
        with pytest.raises(OSError):
            evaluate_grid(fn, [1], retry_on=(OSError,), retries=1,
                          backoff=0.001)

    def test_exhausted_retries_soften_via_on_error(self, tmp_path):
        stats = RunStats()
        fn = _Transient(tmp_path, failures=99)
        assert evaluate_grid(fn, [1], retry_on=(OSError,), retries=1,
                             backoff=0.001, on_error=(OSError,),
                             stats=stats) == [None]
        assert stats.retries == 1
        assert stats.infeasible == 1

    def test_hard_failure_still_counts_retries(self, tmp_path):
        # The abort must not erase what the run paid: retry counters and
        # the journal see the failure before the exception propagates.
        stats = RunStats()
        journal = tmp_path / "journal.jsonl"
        fn = _Transient(tmp_path, failures=99)
        with pytest.raises(OSError):
            evaluate_grid(fn, [1], retry_on=(OSError,), retries=2,
                          backoff=0.001, stats=stats, journal=journal)
        assert stats.retries == 2
        events = [e["event"] for e in read_journal(journal)]
        assert "point_failed" in events


class TestTimeouts:
    def _sleepy(self, point):
        if point == 1:
            time.sleep(10)
        return point

    def test_timeout_propagates(self):
        stats = RunStats()
        start = time.perf_counter()
        with pytest.raises(PointTimeoutError):
            evaluate_grid(self._sleepy, [0, 1], timeout=0.1, retries=0,
                          stats=stats)
        assert time.perf_counter() - start < 5
        assert stats.timeouts == 1

    def test_timeout_softens_via_on_error(self):
        stats = RunStats()
        assert evaluate_grid(self._sleepy, [0, 1, 2], timeout=0.1,
                             retries=1, backoff=0.001,
                             on_error=(PointTimeoutError,),
                             stats=stats) == [0, None, 2]
        assert stats.infeasible == 1
        assert stats.timeouts == 2      # initial attempt + one retry

    @needs_fork
    def test_timeout_in_workers(self):
        stats = RunStats()
        assert evaluate_grid(self._sleepy, [0, 1, 2], workers=2,
                             timeout=0.1, retries=0,
                             on_error=(PointTimeoutError,),
                             stats=stats) == [0, None, 2]
        assert stats.timeouts == 1


@needs_fork
class TestWorkerCrash:
    """The acceptance scenario: SIGKILL a pool worker mid-grid."""

    POINTS = list(range(8))

    @staticmethod
    def _victim(point):
        # Die hard -- but only inside a pool worker, so the serial
        # requeue (which runs in the parent) computes the real value.
        if point == 3 and multiprocessing.parent_process() is not None:
            os.kill(os.getpid(), signal.SIGKILL)
        return point * 7

    def test_sigkill_neither_hangs_nor_loses_data(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = stable_hash("crash-test")
        journal = tmp_path / "journal.jsonl"
        stats = RunStats()

        start = time.perf_counter()
        crashed = evaluate_grid(self._victim, self.POINTS, workers=2,
                                cache=cache, cache_key=key, stats=stats,
                                journal=journal)
        elapsed = time.perf_counter() - start

        serial = evaluate_grid(self._victim, self.POINTS)
        assert crashed == serial == [p * 7 for p in self.POINTS]
        assert elapsed < 60, "crash recovery must not hang"
        assert stats.crashes == 1

        # Incremental writeback: every point -- salvaged or requeued --
        # is on disk, so a warm rerun evaluates nothing.
        warm = RunStats()
        assert evaluate_grid(self._victim, self.POINTS, cache=cache,
                             cache_key=key, stats=warm) == serial
        assert warm.evaluated == 0
        assert warm.cache_hits == len(self.POINTS)

        # The journal tells the story: crash, requeue, completion.
        events = [e["event"] for e in read_journal(journal)]
        assert "pool_crashed" in events
        assert "requeue_serial" in events
        assert events[-1] == "run_finish"
        finished = [e for e in read_journal(journal)
                    if e["event"] == "point_finished"]
        assert sorted(e["index"] for e in finished) == self.POINTS

    def test_crash_through_runner_policy(self, tmp_path):
        runner = Runner(workers=2, cache=tmp_path / "cache",
                        journal=tmp_path / "journal.jsonl")
        try:
            out = runner.run(self._victim, self.POINTS,
                             cache_key=stable_hash("crash-runner"))
        finally:
            runner.close()
        assert out == [p * 7 for p in self.POINTS]
        assert runner.stats.crashes == 1


class TestThreadSafety:
    @needs_fork
    def test_concurrent_parallel_calls_get_a_clean_error(self):
        # A second thread entering the fork path while the slot is held
        # must fail loudly, not race on the module global.
        assert runner_core._FORK_LOCK.acquire(blocking=False)
        try:
            with pytest.raises(RunnerError, match="another thread"):
                evaluate_grid(_square, [1, 2, 3, 4], workers=2)
        finally:
            runner_core._FORK_LOCK.release()

    @needs_fork
    def test_lock_released_after_normal_run(self):
        evaluate_grid(_square, [1, 2, 3, 4], workers=2)
        assert runner_core._FORK_LOCK.acquire(blocking=False)
        runner_core._FORK_LOCK.release()
        assert runner_core._FORK_STATE is None

    def test_serial_paths_may_run_concurrently(self):
        errors = []

        def work():
            try:
                assert evaluate_grid(_square, [1, 2, 3]) == [1, 4, 9]
            except Exception as exc:   # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestIncrementalWriteback:
    def test_abort_keeps_paid_work(self, tmp_path):
        # A hard error at point 3 aborts the grid, but points evaluated
        # before it were already flushed to the cache.
        cache = ResultCache(tmp_path)
        key = stable_hash("abort-test")

        def fn(point):
            if point == 3:
                raise RuntimeError("boom")
            return point + 1

        with pytest.raises(RuntimeError):
            evaluate_grid(fn, [0, 1, 2, 3, 4], cache=cache, cache_key=key)
        assert cache.puts == 3

        stats = RunStats()
        with pytest.raises(RuntimeError):
            evaluate_grid(fn, [0, 1, 2, 3, 4], cache=cache, cache_key=key,
                          stats=stats)
        assert stats.cache_hits == 3
        assert stats.evaluated == 0     # aborts on the first pending point
