"""SqliteStore: interface conformance, ledger agreement with
ResultCache, multi-process writers, WAL crash recovery."""

import multiprocessing
import os
import pickle
import shutil
import sqlite3
import threading

import pytest

from repro.errors import RunnerError
from repro.runner import ResultCache, SqliteStore, open_store

#: The fork start method matches the runner's own worker model and keeps
#: the spawned writers cheap.
_mp = multiprocessing.get_context("fork")


@pytest.fixture()
def store(tmp_path):
    s = SqliteStore(tmp_path / "store.sqlite")
    yield s
    s.close()


def _corrupt_row(path, key, junk=b"not a pickle"):
    """Plant junk bytes under ``key`` from outside the store (the
    simulated torn write of a crashed process)."""
    conn = sqlite3.connect(str(path))
    conn.execute("INSERT INTO entries(key, value, created) "
                 "VALUES(?, ?, 0) ON CONFLICT(key) DO UPDATE "
                 "SET value=excluded.value", (key, junk))
    conn.commit()
    conn.close()


class TestInterfaceConformance:
    """SqliteStore honours the exact ResultCache contract."""

    def test_roundtrip(self, store):
        key = store.key_for("ns", "point")
        hit, value = store.lookup(key)
        assert not hit and value is None
        store.put(key, {"power": 1.5})
        hit, value = store.lookup(key)
        assert hit and value == {"power": 1.5}
        assert store.get(key) == {"power": 1.5}
        assert key in store
        assert len(store) == 1

    def test_none_is_a_real_value(self, store):
        key = store.key_for("ns", "point")
        store.put(key, None)
        assert store.lookup(key) == (True, None)

    def test_counters(self, store):
        key = store.key_for("k")
        store.lookup(key)
        store.put(key, 1)
        store.lookup(key)
        assert (store.hits, store.misses, store.puts) == (1, 1, 1)
        assert (store.absent, store.corrupt) == (1, 0)

    def test_put_overwrites(self, store):
        key = store.key_for("k")
        store.put(key, 1)
        store.put(key, 2)
        assert store.get(key) == 2
        assert len(store) == 1

    def test_invalidate_and_clear(self, store):
        keys = [store.key_for("k", i) for i in range(5)]
        for i, key in enumerate(keys):
            store.put(key, i)
        assert store.invalidate(keys[0]) is True
        assert store.invalidate(keys[0]) is False
        assert len(store) == 4
        assert store.clear() == 4
        assert len(store) == 0

    def test_reclassify_hit_as_miss(self, store):
        key = store.key_for("k")
        store.put(key, 1)
        store.lookup(key)
        store.reclassify_hit_as_miss()
        assert (store.hits, store.misses) == (0, 1)

    def test_writeback_is_a_counted_put(self, store):
        key = store.key_for("k")
        assert store.writeback(key, 7) is True
        assert store.get(key) == 7
        assert store.puts == 1

    def test_writeback_swallows_unpicklable_values(self, store):
        assert store.writeback(store.key_for("k"), lambda: 1) is False
        assert store.key_for("k") not in store

    def test_salt_partitions_keys(self, tmp_path):
        a = SqliteStore(tmp_path / "s.sqlite", salt="v1")
        b = SqliteStore(tmp_path / "s.sqlite", salt="v2")
        assert a.key_for("k") != b.key_for("k")
        a.close(), b.close()

    def test_same_keys_as_directory_store(self, tmp_path):
        # Identical salt => identical content-addressed keys, so the
        # two backends are drop-in replacements key-wise.
        disk = ResultCache(tmp_path / "dir")
        sql = SqliteStore(tmp_path / "s.sqlite")
        assert disk.key_for("a", 1, 2.5) == sql.key_for("a", 1, 2.5)
        sql.close()

    def test_foreign_schema_fails_loudly(self, tmp_path):
        path = tmp_path / "s.sqlite"
        SqliteStore(path).close()
        conn = sqlite3.connect(str(path))
        conn.execute("UPDATE meta SET value='someone-elses-v9' "
                     "WHERE name='schema'")
        conn.commit()
        conn.close()
        with pytest.raises(RunnerError, match="someone-elses-v9"):
            SqliteStore(path)


class TestLedgerAgreement:
    """Both backends run one scripted sequence and land on identical
    (hits, misses, absent, corrupt, puts) ledgers."""

    def _script(self, cache, corrupt_entry):
        k1, k2, k3 = (cache.key_for("k", i) for i in range(3))
        cache.lookup(k1)                  # absent miss
        cache.put(k1, "v1")
        cache.lookup(k1)                  # hit
        cache.lookup(k2)                  # absent miss
        cache.put(k2, "v2")
        corrupt_entry(cache, k2)          # torn write from outside
        cache.lookup(k2)                  # corrupt miss (+ cleanup)
        cache.lookup(k2)                  # absent miss (cleaned up)
        cache.put(k2, "v2")               # repair
        cache.lookup(k2)                  # hit
        cache.lookup(k3)                  # absent miss
        return (cache.hits, cache.misses, cache.absent, cache.corrupt,
                cache.puts)

    def test_identical_ledgers(self, tmp_path):
        disk = ResultCache(tmp_path / "dir")
        sql = SqliteStore(tmp_path / "s.sqlite")

        def corrupt_disk(cache, key):
            with open(cache._path(key), "wb") as f:
                f.write(b"not a pickle")

        def corrupt_sql(cache, key):
            _corrupt_row(cache.path, key)

        disk_ledger = self._script(disk, corrupt_disk)
        sql_ledger = self._script(sql, corrupt_sql)
        assert disk_ledger == sql_ledger
        assert disk_ledger == (2, 5, 4, 1, 3)
        # The invariant both docstrings promise:
        for cache in (disk, sql):
            assert cache.misses == cache.absent + cache.corrupt
        sql.close()


class TestCorruptEntries:
    def test_corrupt_blob_is_a_counted_miss_and_cleaned(self, store):
        key = store.key_for("k")
        store.put(key, 1)
        _corrupt_row(store.path, key)
        assert store.lookup(key) == (False, None)
        assert (store.corrupt, store.absent) == (1, 0)
        assert key not in store          # cleaned up
        assert store.lookup(key) == (False, None)
        assert (store.corrupt, store.absent) == (1, 1)
        store.put(key, 2)
        assert store.get(key) == 2

    def test_cleanup_preserves_a_concurrent_repair(self, store,
                                                   monkeypatch):
        # A writer repairs the row between this reader's SELECT and its
        # DELETE; compare-before-delete (WHERE value=<torn bytes>) must
        # leave the repair alive.
        key = store.key_for("k")
        _corrupt_row(store.path, key, b"torn bytes")
        good = {"power": 2.5}
        real_loads = pickle.loads

        def racing_loads(data, **kw):
            if data == b"torn bytes":
                _corrupt_row(store.path, key,
                             pickle.dumps(good))  # the repair lands
                raise pickle.UnpicklingError("torn")
            return real_loads(data, **kw)

        monkeypatch.setattr("repro.runner.sqlite_store.pickle.loads",
                            racing_loads)
        assert store.lookup(key) == (False, None)
        assert store.corrupt == 1
        monkeypatch.undo()
        assert store.lookup(key) == (True, good)


class TestThreadsAndProcesses:
    def test_parallel_threads_share_one_store(self, store):
        # Each thread gets its own connection (threading.local) but all
        # land in one database.
        errors = []

        def worker(tag):
            try:
                for i in range(25):
                    key = store.key_for(tag, i)
                    store.put(key, (tag, i))
                    assert store.get(key) == (tag, i)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in "abcd"]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(store) == 100

    def test_parallel_processes_share_one_file(self, tmp_path):
        path = tmp_path / "shared.sqlite"
        SqliteStore(path).close()   # create schema before the fork

        def worker(tag, path, failures):
            try:
                mine = SqliteStore(path, timeout=60.0)
                for i in range(25):
                    mine.put(mine.key_for(tag, i), {"tag": tag, "i": i})
                mine.close()
            except Exception as exc:
                failures.put("{}: {}".format(tag, exc))

        failures = _mp.Queue()
        procs = [_mp.Process(target=worker, args=(t, str(path), failures))
                 for t in "abcd"]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
        assert all(p.exitcode == 0 for p in procs)
        assert failures.empty(), failures.get()
        check = SqliteStore(path)
        assert len(check) == 100
        for tag in "abcd":
            for i in range(25):
                assert check.get(check.key_for(tag, i)) \
                    == {"tag": tag, "i": i}
        check.close()

    def test_two_store_objects_dedupe_each_other(self, tmp_path):
        # The serve scenario in miniature: tenant B's lookups hit what
        # tenant A computed, through independent store objects.
        path = tmp_path / "shared.sqlite"
        a = SqliteStore(path)
        b = SqliteStore(path)
        key = a.key_for("point")
        a.put(key, 42)
        assert b.lookup(key) == (True, 42)
        assert (b.hits, b.misses) == (1, 0)
        a.close(), b.close()


class TestCrashRecovery:
    def test_committed_entries_survive_a_wal_snapshot(self, tmp_path):
        # Copy the live db + WAL + shm mid-stream -- the on-disk state
        # an abrupt kill leaves behind (no clean close, nothing
        # checkpointed) -- and open the copy fresh: every committed put
        # must be there.
        live_dir = tmp_path / "live"
        dead_dir = tmp_path / "dead"
        os.makedirs(live_dir), os.makedirs(dead_dir)
        live = SqliteStore(live_dir / "s.sqlite")
        keys = [live.key_for("k", i) for i in range(20)]
        for i, key in enumerate(keys):
            live.put(key, {"i": i})
        # WAL mode really is on and carrying the writes.
        assert live._conn().execute(
            "PRAGMA journal_mode").fetchone()[0] == "wal"
        for suffix in ("", "-wal", "-shm"):
            src = str(live_dir / "s.sqlite") + suffix
            if os.path.exists(src):
                shutil.copy(src, str(dead_dir / "s.sqlite") + suffix)
        revived = SqliteStore(dead_dir / "s.sqlite")
        for i, key in enumerate(keys):
            assert revived.get(key) == {"i": i}
        assert len(revived) == 20
        revived.close()
        live.close()


class TestOpenStore:
    def test_existing_store_passes_through(self, store):
        assert open_store(store) is store

    def test_resultcache_passes_through(self, tmp_path):
        cache = ResultCache(tmp_path / "dir")
        assert open_store(cache) is cache

    def test_path_opens_sqlite(self, tmp_path):
        s = open_store(str(tmp_path / "new.sqlite"))
        assert isinstance(s, SqliteStore)
        assert os.path.exists(s.path)
        s.close()


class TestSessionIntegration:
    def test_session_store_dedupes_across_sessions(self, tmp_path):
        from repro.session import Session

        path = str(tmp_path / "shared.sqlite")
        first = Session(store=path)
        sweep1 = first.design("counter16").sweep([1e4, 1e5])
        assert first.stats.cache_misses > 0
        assert first.stats.cache_hits == 0
        first.close()

        second = Session(store=path)
        sweep2 = second.design("counter16").sweep([1e4, 1e5])
        assert second.stats.cache_misses == 0
        assert second.stats.cache_hits > 0
        second.close()
        for mode in sweep1.results:
            for a, b in zip(sweep1.results[mode], sweep2.results[mode]):
                assert a == b

    def test_store_and_cache_are_exclusive(self, tmp_path):
        from repro.session import Session

        with pytest.raises(ValueError, match="not both"):
            Session(store=str(tmp_path / "s.sqlite"),
                    cache=str(tmp_path / "c"))
