"""RunStats.stage() self-time attribution when stages nest.

Regression: the old implementation charged each stage its full
wall-clock, so an inner stage's time was counted twice -- once in its
own bucket and again in the enclosing one -- and the buckets summed to
more than the run actually took.
"""

import time

import pytest

from repro.runner import RunStats


def _busy(seconds):
    end = time.perf_counter() + seconds
    while time.perf_counter() < end:
        pass


class TestNestedStages:
    def test_inner_time_not_double_counted(self):
        stats = RunStats()
        with stats.stage("outer"):
            _busy(0.02)
            with stats.stage("inner"):
                _busy(0.04)
        assert stats.stages["inner"] == pytest.approx(0.04, abs=0.02)
        # the bug: outer used to be ~0.06 (its own 0.02 + inner's 0.04)
        assert stats.stages["outer"] == pytest.approx(0.02, abs=0.02)
        assert stats.stages["outer"] < 0.04

    def test_buckets_sum_to_outer_wall_clock(self):
        stats = RunStats()
        start = time.perf_counter()
        with stats.stage("a"):
            _busy(0.01)
            with stats.stage("b"):
                _busy(0.01)
                with stats.stage("c"):
                    _busy(0.01)
            with stats.stage("b"):
                _busy(0.01)
        wall = time.perf_counter() - start
        assert sum(stats.stages.values()) == pytest.approx(wall,
                                                           rel=0.05)

    def test_stage_nested_under_itself(self):
        """Reentrant: a recursive analysis may re-enter its own stage."""
        stats = RunStats()
        with stats.stage("work"):
            _busy(0.01)
            with stats.stage("work"):
                _busy(0.01)
        # both levels' self time lands in the one bucket, once each
        assert stats.stages["work"] == pytest.approx(0.02, abs=0.015)

    def test_sequential_stages_accumulate(self):
        stats = RunStats()
        for _ in range(3):
            with stats.stage("s"):
                _busy(0.005)
        assert stats.stages["s"] == pytest.approx(0.015, abs=0.01)

    def test_exception_still_attributes_self_time(self):
        stats = RunStats()
        with pytest.raises(ValueError):
            with stats.stage("outer"):
                with stats.stage("inner"):
                    raise ValueError("boom")
        assert set(stats.stages) == {"outer", "inner"}
        assert not stats._active              # bookkeeping unwound

    def test_merge_and_to_dict_ignore_bookkeeping(self):
        stats = RunStats()
        with stats.stage("s"):
            pass
        data = stats.to_dict()
        assert "_active" not in data
        other = RunStats()
        other.merge(stats)
        assert other.stages["s"] == stats.stages["s"]
        assert RunStats() == RunStats(_active=[1.0])   # excluded from ==
