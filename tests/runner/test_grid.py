"""Grid evaluation: ordering, parallelism, caching, soft errors."""

import multiprocessing

import pytest

from repro.analysis.sweep import power_cache_key, sweep
from repro.errors import RunnerError, ScpgError
from repro.runner import (
    CachedEvaluator,
    ResultCache,
    Runner,
    RunStats,
    evaluate_grid,
    resolve_workers,
    stable_hash,
)
from repro.scpg.power_model import Mode

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(not HAVE_FORK,
                                reason="needs fork start method")


def _square(point):
    return point * point


def _flaky(point):
    if point % 3 == 0:
        raise ValueError("infeasible")
    return -point


class TestEvaluateGrid:
    def test_serial_in_point_order(self):
        assert evaluate_grid(_square, [3, 1, 2]) == [9, 1, 4]

    @needs_fork
    def test_parallel_in_point_order(self):
        points = list(range(40))
        assert evaluate_grid(_square, points, workers=4) \
            == [p * p for p in points]

    def test_context_passed_first(self):
        def fn(context, point):
            return context + point

        assert evaluate_grid(fn, [1, 2], context=10) == [11, 12]

    @needs_fork
    def test_context_inherited_by_workers(self):
        # Unpicklable context (a closure) still reaches fork workers.
        offset = 100

        def fn(context, point):
            return context() + point

        assert evaluate_grid(fn, [1, 2, 3], workers=2,
                             context=lambda: offset) == [101, 102, 103]

    def test_soft_errors_become_none(self):
        assert evaluate_grid(_flaky, [1, 2, 3, 4], on_error=(ValueError,)) \
            == [-1, -2, None, -4]

    @needs_fork
    def test_soft_errors_become_none_parallel(self):
        assert evaluate_grid(_flaky, [1, 2, 3, 4], workers=2,
                             on_error=(ValueError,)) == [-1, -2, None, -4]

    def test_hard_errors_propagate(self):
        with pytest.raises(ValueError):
            evaluate_grid(_flaky, [3])

    def test_stats(self):
        stats = RunStats()
        evaluate_grid(_flaky, [1, 2, 3], on_error=(ValueError,),
                      stats=stats)
        assert stats.points == 3
        assert stats.evaluated == 3
        assert stats.infeasible == 1
        assert stats.cache_hits == stats.cache_misses == 0

    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1
        with pytest.raises(RunnerError):
            resolve_workers(-1)


class TestGridCaching:
    def test_cold_then_warm(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_hash("test-grid", 1)
        cold, warm = RunStats(), RunStats()
        first = evaluate_grid(_square, [1, 2, 3], cache=cache,
                              cache_key=key, stats=cold)
        second = evaluate_grid(_square, [1, 2, 3], cache=cache,
                               cache_key=key, stats=warm)
        assert first == second == [1, 4, 9]
        assert cold.cache_misses == 3 and cold.evaluated == 3
        assert warm.cache_hits == 3 and warm.evaluated == 0

    def test_infeasible_points_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_hash("test-grid", 2)
        evaluate_grid(_flaky, [2, 3], cache=cache, cache_key=key,
                      on_error=(ValueError,))
        stats = RunStats()
        calls = []

        def spy(point):
            calls.append(point)
            return _flaky(point)

        assert evaluate_grid(spy, [2, 3], cache=cache, cache_key=key,
                             on_error=(ValueError,), stats=stats) \
            == [-2, None]
        assert calls == []
        assert stats.cache_hits == 2
        assert stats.infeasible == 1

    def test_cache_key_partitions_entries(self, tmp_path):
        # A changed evaluation context (new key) must miss; re-running
        # under the old key must still hit.
        cache = ResultCache(tmp_path)
        old, new = stable_hash("ctx", "v1"), stable_hash("ctx", "v2")
        evaluate_grid(_square, [5], cache=cache, cache_key=old)
        stats = RunStats()
        evaluate_grid(_square, [5], cache=cache, cache_key=new,
                      stats=stats)
        assert stats.cache_misses == 1
        stats = RunStats()
        evaluate_grid(_square, [5], cache=cache, cache_key=old,
                      stats=stats)
        assert stats.cache_hits == 1

    def test_no_cache_without_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        evaluate_grid(_square, [1, 2], cache=cache, cache_key=None)
        assert len(cache) == 0


class TestCachedEvaluatorCounters:
    def test_infeasible_marker_counts_as_miss_on_both_ledgers(
            self, tmp_path):
        # Regression: a persisted infeasible marker used to count as a
        # ResultCache hit *and* a stats cache miss, so hit_rate and the
        # cache's own counters disagreed.
        cache = ResultCache(tmp_path)
        key = stable_hash("marker-drift")
        evaluate_grid(_flaky, [3], cache=cache, cache_key=key,
                      on_error=(ValueError,))       # persists the marker
        hits0, misses0 = cache.hits, cache.misses

        stats = RunStats()
        evaluator = CachedEvaluator(lambda p: 42, cache=cache,
                                    cache_key=key, stats=stats)
        assert evaluator(3) == 42
        assert stats.cache_hits == 0
        assert stats.cache_misses == 1
        assert cache.hits == hits0                  # marker was not a hit
        assert cache.misses == misses0 + 1
        assert stats.hit_rate == 0.0

    def test_real_hits_still_agree(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_hash("marker-drift-2")
        evaluate_grid(_square, [4], cache=cache, cache_key=key)
        hits0 = cache.hits

        stats = RunStats()
        evaluator = CachedEvaluator(_square, cache=cache, cache_key=key,
                                    stats=stats)
        assert evaluator(4) == 16
        assert evaluator.calls == 0
        assert stats.cache_hits == 1 and stats.cache_misses == 0
        assert cache.hits == hits0 + 1


class TestRunner:
    def test_path_coerced_to_cache(self, tmp_path):
        runner = Runner(cache=str(tmp_path))
        assert isinstance(runner.cache, ResultCache)

    def test_stats_accumulate_across_runs(self):
        runner = Runner()
        runner.run(_square, [1, 2])
        runner.run(_square, [3])
        assert runner.stats.points == 3
        assert runner.stats.evaluated == 3


class TestSweepThroughRunner:
    FREQS = [0.01e6, 0.1e6, 1e6, 2e6, 5e6, 8e6, 10e6, 14.3e6]

    @needs_fork
    def test_parallel_equals_serial_mult16(self, mult_study):
        serial = sweep(mult_study.model, self.FREQS)
        parallel = sweep(mult_study.model, self.FREQS,
                         runner=Runner(workers=4))
        assert parallel == serial   # dataclasses: exact equality

    def test_design_edit_invalidates(self, mult_study, tmp_path):
        # The cache key covers the model's content: perturbing any model
        # parameter must change the key, so stale entries are unreachable.
        cache = ResultCache(tmp_path)
        runner = Runner(cache=cache)
        sweep(mult_study.model, [1e6], runner=runner)
        misses = cache.misses

        import copy

        edited = copy.copy(mult_study.model)
        edited.e_cycle = mult_study.model.e_cycle * 1.01
        assert power_cache_key(edited) != power_cache_key(mult_study.model)
        sweep(edited, [1e6], runner=runner)
        assert cache.misses > misses

        # An unrelated execution parameter (worker count) keeps the key:
        # rerunning warm out of the same cache, serial or parallel.
        stats = RunStats()
        again = Runner(workers=2 if HAVE_FORK else None, cache=cache,
                       stats=stats)
        rerun = sweep(mult_study.model, [1e6], runner=again)
        assert stats.evaluated == 0
        assert stats.cache_hits == stats.points
        assert rerun == sweep(mult_study.model, [1e6])
