"""The reusable warm :class:`WorkerPool` and the spawn fallback.

The pool's contract: workers survive across grids (``generation`` stays
1, worker pids repeat), a crash is recovered by :meth:`restart` without
losing the grid, a closed pool degrades to an ephemeral per-grid pool,
and -- the platform regression this file pins -- every parallel path
still produces identical results when ``fork`` is unavailable and the
runner must fall back to ``spawn`` (or, with unpicklable state, all the
way to serial).
"""

import functools
import multiprocessing
import os
import signal

import pytest

from repro.errors import RunnerError
from repro.runner import RunStats, WorkerPool, evaluate_grid, read_journal
from repro.runner import core as runner_core


def _square(point):
    return point * point


def _square_batch(points):
    return [p * p for p in points]


def _pid_batch(points):
    return [os.getpid() for _ in points]


def _ctx_call(ctx, point):
    return ctx(point)


def _ctx_call_batch(ctx, points):
    return [ctx(p) for p in points]


KILL_POINT = 7


def _killer_batch(points):
    # Only ever kill inside a pool worker; the serial-batch requeue runs
    # this same kernel in the parent, which must survive.
    if KILL_POINT in points \
            and multiprocessing.parent_process() is not None:
        os.kill(os.getpid(), signal.SIGKILL)
    return [p * p for p in points]


def _events(path):
    return [e["event"] for e in read_journal(path)]


class TestWarmPool:
    def test_workers_survive_across_grids(self):
        with WorkerPool(workers=2) as pool:
            first = set(evaluate_grid(_square, list(range(16)),
                                      workers=2, pool=pool,
                                      chunk_size=2,
                                      kernel=_pid_batch))
            second = set(evaluate_grid(_square, list(range(16)),
                                       workers=2, pool=pool,
                                       chunk_size=2,
                                       kernel=_pid_batch))
            assert pool.generation == 1
            assert pool.alive
            # Same process set served both grids -- had the pool
            # re-forked per grid, up to four distinct pids would show.
            assert len(first | second) <= 2
            assert os.getpid() not in first

    def test_results_match_serial(self):
        points = list(range(40))
        with WorkerPool(workers=2) as pool:
            got = evaluate_grid(_square, points, workers=2, pool=pool,
                                kernel=_square_batch)
        assert got == evaluate_grid(_square, points)

    def test_journal_marks_warm_dispatch(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with WorkerPool(workers=2) as pool:
            evaluate_grid(_square, list(range(8)), workers=2, pool=pool,
                          journal=str(path), kernel=_square_batch)
        planned = [e for e in read_journal(path)
                   if e["event"] == "chunks_planned"][0]
        assert planned["warm"] is True

    def test_crash_recovered_and_pool_restartable(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        stats = RunStats()
        with WorkerPool(workers=2) as pool:
            got = evaluate_grid(_square, list(range(16)), workers=2,
                                pool=pool, chunk_size=4, stats=stats,
                                journal=str(path),
                                kernel=_killer_batch)
            # The serial-batch requeue re-ran the lost chunks in the
            # parent, so the grid still completed bit-identically.
            assert got == [p * p for p in range(16)]
            assert stats.crashes == 1
            names = _events(path)
            assert "pool_crashed" in names
            assert "requeue_serial" in names
            # The pool shed its broken executor and serves the next
            # grid on a fresh one.
            assert not pool.alive
            again = evaluate_grid(_square, list(range(16)), workers=2,
                                  pool=pool, kernel=_square_batch)
            assert again == [p * p for p in range(16)]
            assert pool.generation == 2

    def test_closed_pool_degrades_to_ephemeral(self):
        pool = WorkerPool(workers=2)
        pool.close()
        got = evaluate_grid(_square, list(range(12)), workers=2,
                            pool=pool, kernel=_square_batch)
        assert got == [p * p for p in range(12)]
        assert not pool.alive

    def test_unpicklable_state_skips_the_warm_pool(self):
        # A lambda context cannot ride the blob; the grid falls back to
        # an ephemeral fork pool (state inherited, never pickled) and
        # the warm pool is left untouched.
        with WorkerPool(workers=2) as pool:
            ctx = lambda p: 3 * p  # noqa: E731 -- deliberately unpicklable
            got = evaluate_grid(_ctx_call, list(range(12)), workers=2,
                                context=ctx, pool=pool,
                                kernel=functools.partial(
                                    _ctx_call_batch, ctx))
            assert got == [3 * p for p in range(12)]
            assert not pool.alive

    def test_closed_pool_refuses_an_executor(self):
        pool = WorkerPool(workers=2)
        pool.close()
        with pytest.raises(RunnerError):
            pool.executor()
        pool.close()    # idempotent


class TestSpawnFallback:
    """Platform regression: every path must survive ``spawn``."""

    @pytest.fixture(autouse=True)
    def force_spawn(self, monkeypatch):
        monkeypatch.setattr(runner_core, "_start_method",
                            lambda: "spawn")

    def test_per_point_parallel_under_spawn(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        got = evaluate_grid(_square, list(range(12)), workers=2,
                            journal=str(path))
        assert got == [p * p for p in range(12)]
        finish = [e for e in read_journal(path)
                  if e["event"] == "pool_finished"][0]
        assert finish["method"] == "spawn"

    def test_chunked_under_spawn(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        got = evaluate_grid(_square, list(range(12)), workers=2,
                            chunk_size=3, journal=str(path),
                            kernel=_square_batch)
        assert got == [p * p for p in range(12)]
        finish = [e for e in read_journal(path)
                  if e["event"] == "pool_finished"][0]
        assert finish["method"] == "spawn"
        assert finish["chunks"] == 4

    def test_unpicklable_state_degrades_to_serial(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        got = evaluate_grid(_ctx_call, list(range(8)), workers=2,
                            context=lambda p: 3 * p, journal=str(path))
        assert got == [3 * p for p in range(8)]
        names = _events(path)
        assert "point_submitted" not in names
        assert "point_started" in names

    def test_unpicklable_state_degrades_to_serial_batch(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        ctx = lambda p: 3 * p  # noqa: E731 -- deliberately unpicklable
        got = evaluate_grid(_ctx_call, list(range(8)), workers=2,
                            context=ctx, journal=str(path),
                            kernel=functools.partial(_ctx_call_batch, ctx))
        assert got == [3 * p for p in range(8)]
        names = _events(path)
        assert "chunk_submitted" not in names
        assert "batch_started" in names

    def test_warm_spawn_pool_ships_the_blob(self):
        with WorkerPool(workers=2, method="spawn") as pool:
            pids = set(evaluate_grid(_square, list(range(8)), workers=2,
                                     pool=pool, chunk_size=2,
                                     kernel=_pid_batch))
            assert os.getpid() not in pids
            again = set(evaluate_grid(_square, list(range(8)),
                                      workers=2, pool=pool,
                                      chunk_size=2,
                                      kernel=_pid_batch))
            assert pool.generation == 1
            assert len(pids | again) <= 2


class TestSessionPoolWiring:
    def test_parallel_session_owns_a_shared_pool(self):
        from repro.session import Session

        session = Session(workers=2, cache=False)
        try:
            assert isinstance(session.pool, WorkerPool)
            assert session.runner.pool is session.pool
        finally:
            session.close()
        assert session.pool.closed

    def test_serial_session_has_no_pool(self):
        from repro.session import Session

        session = Session(cache=False)
        try:
            assert session.pool is None
        finally:
            session.close()

    def test_fresh_policy_has_no_pool(self):
        from repro.session import Session

        session = Session(workers=2, cache=False, pool="fresh")
        try:
            assert session.pool is None
        finally:
            session.close()

    def test_caller_pool_is_not_owned(self):
        from repro.session import Session

        with WorkerPool(workers=2) as pool:
            session = Session(workers=2, cache=False, pool=pool)
            try:
                assert session.pool is pool
            finally:
                session.close()
            assert not pool.closed    # caller owns it

    def test_bad_pool_policy_rejected(self):
        from repro.session import Session

        with pytest.raises(ValueError):
            Session(workers=2, cache=False, pool="bogus")
