"""Content fingerprints: the identity layer under the result cache."""

import enum
from dataclasses import dataclass

import pytest

from repro.circuits.registry import build
from repro.errors import RunnerError
from repro.runner import (
    can_fingerprint,
    fingerprint,
    module_fingerprint,
    stable_hash,
)
from repro.scpg.power_model import Mode


@dataclass
class _Point:
    freq: float
    mode: Mode


class TestFingerprint:
    def test_deterministic(self):
        value = (1.5, "x", Mode.SCPG, {"b": 2, "a": 1})
        assert fingerprint(value) == fingerprint(value)

    def test_dict_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_distinguishes_values(self):
        assert fingerprint(0.1) != fingerprint(0.2)
        assert fingerprint(Mode.SCPG) != fingerprint(Mode.NO_PG)
        assert fingerprint([1, 2]) != fingerprint([2, 1])

    def test_float_exactness(self):
        # float.hex canonicalisation: nearby but unequal floats differ.
        assert fingerprint(1e6) != fingerprint(1e6 + 1e-6)

    def test_dataclass_by_fields(self):
        assert fingerprint(_Point(1e6, Mode.SCPG)) \
            == fingerprint(_Point(1e6, Mode.SCPG))
        assert fingerprint(_Point(1e6, Mode.SCPG)) \
            != fingerprint(_Point(1e6, Mode.SCPG_MAX))

    def test_fingerprint_hook(self):
        class Model:
            def __init__(self, tag):
                self.tag = tag
                self.junk = object()   # not canonicalisable

            def __fingerprint__(self):
                return ("model-v1", self.tag)

        assert fingerprint(Model("a")) == fingerprint(Model("a"))
        assert fingerprint(Model("a")) != fingerprint(Model("b"))
        assert can_fingerprint(Model("a"))

    def test_unfingerprintable_raises(self):
        with pytest.raises(RunnerError):
            fingerprint(object())
        assert not can_fingerprint(object())
        assert not can_fingerprint(lambda x: x)

    def test_stable_hash_mixes_parts(self):
        assert stable_hash("ns", 1) == stable_hash("ns", 1)
        assert stable_hash("ns", 1) != stable_hash("ns", 2)
        assert stable_hash("ns", 1) != stable_hash("other", 1)


class TestModuleFingerprint:
    def test_stable_across_rebuilds(self, lib):
        a = build("counter16", lib)
        b = build("counter16", lib)
        assert module_fingerprint(a) == module_fingerprint(b)

    def test_parameter_changes_fingerprint(self, lib):
        assert module_fingerprint(build("counter16", lib)) \
            != module_fingerprint(build("counter16", lib, width=8))

    def test_edit_changes_fingerprint(self, toy_design):
        before = module_fingerprint(toy_design.top)
        inst = next(iter(toy_design.top.cell_instances()))
        net = toy_design.top.add_net("extra")
        toy_design.top.add_instance(
            "spy", "INV_X1", {"A": inst.connections["Y"], "Y": net},
            library=toy_design.library)
        assert module_fingerprint(toy_design.top) != before

    def test_enum_identity_not_by_value(self):
        class A(enum.Enum):
            X = 1

        class B(enum.Enum):
            X = 1

        assert fingerprint(A.X) != fingerprint(B.X)
