"""Deprecation shims kept by the unified Kernel API redesign.

Every pre-redesign spelling -- ``ScpgPowerModel.power_axis`` /
``power_points``, ``SubvtModel.points_axis``, and ``batch_fn=`` on both
:func:`evaluate_grid` and :meth:`Runner.run` -- must keep returning the
exact same values while emitting a single :class:`DeprecationWarning`
pointing at the replacement.  See ``docs/api.md`` ("Kernel protocol").
"""

import warnings

import pytest

from repro.errors import RunnerError
from repro.runner import Runner, compile_kernel, evaluate_grid
from repro.scpg.power_model import Mode
from repro.subvt.energy import SubvtModel


def _square(point):
    return point * point


def _square_batch(points):
    return [p * p for p in points]


def _ctx_scale(ctx, point):
    return ctx * point


def _ctx_scale_batch(ctx, points):
    return [ctx * p for p in points]


def _assert_one_deprecation(record, needle):
    assert len(record) == 1
    assert needle in str(record[0].message)


class TestPowerModelShims:
    def test_power_axis_warns_and_matches(self, mult_study):
        model = mult_study.model
        freqs = [1e4, 1e5, 1e6]
        with pytest.warns(DeprecationWarning) as record:
            old = model.power_axis(freqs, Mode.SCPG)
        _assert_one_deprecation(record, "power_axis")
        assert [b.total for b in old] \
            == [b.total for b in model._power_axis(freqs, Mode.SCPG)]

    def test_power_points_warns_and_matches(self, mult_study):
        model = mult_study.model
        points = [(1e5, Mode.NO_PG), (1e6, Mode.SCPG)]
        with pytest.warns(DeprecationWarning) as record:
            old = model.power_points(points)
        _assert_one_deprecation(record, "power_points")
        assert [b.total for b in old] \
            == [b.total for b in model._power_points(points)]

    def test_kernel_replacement_identical(self, mult_study):
        model = mult_study.model
        points = [(1e5, Mode.SCPG), (2e6, Mode.SCPG_MAX)]
        kernel = compile_kernel(model)
        assert kernel is not None and kernel.name == "scpg-power"
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            new = kernel(points)  # the blessed path never warns
        assert [b.total for b in new] \
            == [b.total for b in model._power_points(points)]


class TestSubvtShims:
    def test_points_axis_warns_and_matches(self, lib):
        model = SubvtModel(lib, 1e-12, 1e-6, 1e-8)
        vdds = [0.3, 0.45, 0.6]
        with pytest.warns(DeprecationWarning) as record:
            old = model.points_axis(vdds)
        _assert_one_deprecation(record, "points_axis")
        assert [p.energy for p in old] \
            == [p.energy for p in model._points_axis(vdds)]

    def test_kernel_replacement_identical(self, lib):
        model = SubvtModel(lib, 1e-12, 1e-6, 1e-8)
        kernel = compile_kernel(model)
        assert kernel is not None and kernel.name == "subvt-energy"
        vdds = [0.25, 0.5]
        assert [p.energy for p in kernel(vdds)] \
            == [p.energy for p in model._points_axis(vdds)]


class TestRunnerBatchFnShims:
    def test_evaluate_grid_batch_fn_warns_and_matches(self):
        points = list(range(8))
        with pytest.warns(DeprecationWarning) as record:
            old = evaluate_grid(_square, points, batch_fn=_square_batch)
        _assert_one_deprecation(record, "kernel=")
        assert old == evaluate_grid(_square, points,
                                    kernel=_square_batch)

    def test_evaluate_grid_rejects_both_spellings(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(RunnerError, match="not both"):
                evaluate_grid(_square, [1], kernel=_square_batch,
                              batch_fn=_square_batch)

    def test_runner_run_batch_fn_warns_once_and_matches(self):
        runner = Runner()
        with pytest.warns(DeprecationWarning) as record:
            old = runner.run(_ctx_scale, [1, 2, 3], context=10,
                             batch_fn=_ctx_scale_batch)
        # Runner.run converts to a kernel before delegating, so the
        # user sees exactly one warning, not one per layer.
        deprecations = [w for w in record
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert old == [10, 20, 30]

    def test_runner_run_legacy_context_arity(self):
        """batch_fn=(context, points) call shape is preserved."""
        runner = Runner()
        with pytest.warns(DeprecationWarning):
            ctx = runner.run(_ctx_scale, [4, 5], context=3,
                             batch_fn=_ctx_scale_batch)
        with pytest.warns(DeprecationWarning):
            bare = runner.run(_square, [4, 5], batch_fn=_square_batch)
        assert ctx == [12, 15]
        assert bare == [16, 25]
