"""Property-based tests for fingerprint canonicalisation and cache keys.

The fingerprint is the one thing the result cache cannot get wrong: two
equal values must always map to one key, any perturbation must move the
key, and the mapping must be identical across processes (``hash()`` is
salted per process; fingerprints must not be).  Hypothesis explores the
input space; a subprocess with a different ``PYTHONHASHSEED`` checks the
cross-process contract on real samples.
"""

import enum
import subprocess
import sys
from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import ResultCache, fingerprint, stable_hash
from repro.runner.fingerprint import _canon


class Colour(enum.Enum):
    RED = 1
    BLUE = 2


@dataclass
class Op:
    freq: float
    mode: Colour
    tag: str = ""


# -- strategies over everything _canon accepts ------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),     # NaN != NaN: equality is meaningless
    st.text(max_size=20),
    st.binary(max_size=20),
    st.sampled_from(Colour),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
        st.frozensets(st.integers(), max_size=4),
        st.builds(Op, freq=st.floats(allow_nan=False),
                  mode=st.sampled_from(Colour), tag=st.text(max_size=8)),
    ),
    max_leaves=12,
)


class TestCanonicalisation:
    @given(values)
    def test_deterministic(self, value):
        assert fingerprint(value) == fingerprint(value)

    @given(values)
    def test_equal_after_round_trip_rebuild(self, value):
        """A structurally rebuilt copy fingerprints identically."""
        def rebuild(obj):
            if isinstance(obj, tuple):
                return tuple(rebuild(x) for x in obj)
            if isinstance(obj, list):
                return [rebuild(x) for x in obj]
            if isinstance(obj, dict):
                # reversed insertion order: canonical form must not care
                return {k: rebuild(v)
                        for k, v in reversed(list(obj.items()))}
            if isinstance(obj, frozenset):
                return frozenset(rebuild(x) for x in obj)
            if isinstance(obj, Op):
                return Op(freq=obj.freq, mode=obj.mode, tag=obj.tag)
            return obj
        assert fingerprint(rebuild(value)) == fingerprint(value)

    @given(st.dictionaries(st.text(max_size=8), st.integers(),
                           min_size=2, max_size=6))
    def test_dict_order_irrelevant(self, d):
        shuffled = dict(sorted(d.items(), reverse=True))
        assert fingerprint(shuffled) == fingerprint(d)

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float_int_with_same_value_differ(self, x):
        """1.0 and 1 are different cache keys (different arithmetic)."""
        if x == int(x) and abs(x) < 2 ** 53:
            assert fingerprint(x) != fingerprint(int(x))

    @given(st.booleans())
    def test_bool_int_differ(self, b):
        assert fingerprint(b) != fingerprint(int(b))

    @given(values, values)
    def test_distinct_values_distinct_keys(self, a, b):
        """Contrapositive of key stability: different canonical forms
        never collide on the full digest (SHA-256 collisions would)."""
        if _canon(a) != _canon(b):
            assert fingerprint(a) != fingerprint(b)
        else:
            assert fingerprint(a) == fingerprint(b)

    @given(st.lists(st.integers(), min_size=1, max_size=6),
           st.integers(0, 5), st.integers())
    def test_perturbation_moves_the_key(self, xs, pos, delta):
        if delta == 0:
            return
        mutated = list(xs)
        mutated[pos % len(xs)] += delta
        assert fingerprint(mutated) != fingerprint(xs)

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_nextafter_perturbation_moves_the_key(self, x):
        import math

        bumped = math.nextafter(x, float("inf"))
        if bumped != x:
            assert fingerprint(bumped) != fingerprint(x)

    @given(st.tuples(st.integers(), st.text(max_size=5)),
           st.tuples(st.integers(), st.text(max_size=5)))
    def test_stable_hash_parts_not_concatenated(self, a, b):
        """("ab","c") and ("a","bc") must not collide: parts are framed,
        not joined."""
        if (str(a[0]) + a[1]) == (str(b[0]) + b[1]) and a != b:
            assert stable_hash(*a) != stable_hash(*b)


#: Samples whose fingerprints must agree between interpreters.  The
#: expression is evaluated both here and in the subprocess, so the two
#: sides canonicalise literally the same values.
_CORPUS = (
    "[None, True, False, 0, 1, -1, 2 ** 64, 0.0, -0.0, 1.5, "
    "float('inf'), '', 'freq', b'\\x00\\xff', Colour.RED, "
    "{'b': 2, 'a': 1}, {'a': 1, 'b': 2}, [1, [2, [3]]], "
    "(1.0, Colour.BLUE), frozenset({3, 1, 2}), {True: 't', 1.5: 'f'}, "
    "Op(freq=1e6, mode=Colour.RED, tag='x')]"
)


class TestCrossProcessStability:
    def test_corpus_matches_under_different_hash_seeds(self):
        """Fingerprints computed in a fresh interpreter with a different
        ``PYTHONHASHSEED`` (differently salted ``hash()``, different
        dict/set iteration characteristics) must match ours."""
        import os

        ours = [fingerprint(v) for v in eval(_CORPUS)]
        src = os.path.dirname(repro_path())
        tests = os.path.dirname(os.path.dirname(os.path.abspath(
            __file__)))
        code = (
            "import sys\n"
            "sys.path.insert(0, {src!r})\n"
            "sys.path.insert(0, {tests!r})\n"
            "from repro.runner import fingerprint\n"
            "from runner.test_fingerprint_properties import Colour, Op, "
            "_CORPUS\n"
            "print('\\n'.join(fingerprint(v) for v in eval(_CORPUS)))\n"
        ).format(src=src, tests=tests)
        for seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env.pop("PYTHONPATH", None)
            out = subprocess.run(
                [sys.executable, "-c", code], capture_output=True,
                text=True, env=env, check=True)
            assert out.stdout.split() == ours


def repro_path():
    import repro

    return repro.__path__[0]


class TestCacheKeyProperties:
    @given(st.text(min_size=1, max_size=10),
           st.lists(st.floats(allow_nan=False), max_size=4))
    def test_key_for_is_a_function_of_content(self, tmp_path_factory, ns, point):
        tmp = tmp_path_factory.mktemp("cache")
        a = ResultCache(tmp / "a")
        b = ResultCache(tmp / "b")
        assert a.key_for(ns, point) == b.key_for(ns, point)

    @given(st.lists(st.floats(allow_nan=False), min_size=1, max_size=4),
           st.floats(allow_nan=False))
    def test_key_perturbation(self, tmp_path_factory, point, delta):
        cache = ResultCache(tmp_path_factory.mktemp("cache"))
        mutated = list(point)
        mutated[0] = mutated[0] + delta
        if mutated != point:
            assert cache.key_for("ns", mutated) \
                != cache.key_for("ns", point)

    @given(values)
    @settings(max_examples=25)
    def test_put_lookup_round_trip(self, tmp_path_factory, value):
        cache = ResultCache(tmp_path_factory.mktemp("cache"))
        key = cache.key_for("prop", value)
        found, _ = cache.lookup(key)
        assert not found
        cache.writeback(key, {"value": repr(value)})
        found, stored = cache.lookup(key)
        assert found
        assert stored == {"value": repr(value)}
        # a second cache over the same directory sees the entry
        reread = ResultCache(cache.root)
        found, stored = reread.lookup(reread.key_for("prop", value))
        assert found
