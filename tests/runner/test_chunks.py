"""The chunked parallel batch path of :func:`evaluate_grid`.

With ``workers > 1`` *and* a ``kernel``, pending points are sharded
into contiguous chunks and the kernel runs inside the pool workers.  The
contract under test: results identical to the serial paths, adaptive
chunk sizing, bounded in-flight submission, bisect-and-retry isolation
of poison points without losing their siblings, per-point cache
writeback and journal events preserved, and chunk-level observability
(journal events, spans, metrics).
"""

import functools

import pytest

from repro.errors import ScpgError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import MemorySink, Tracer
from repro.runner import ResultCache, RunStats, evaluate_grid, read_journal
from repro.runner import core as runner_core
from repro.runner.core import (
    CHUNK_CAP,
    CHUNK_FLOOR,
    MAX_INFLIGHT_PER_WORKER,
    _chunk_points,
)


def _square(point):
    return point * point


def _square_batch(points):
    return [p * p for p in points]


def _ctx_scale(ctx, point):
    return ctx * point


def _ctx_scale_batch(ctx, points):
    return [ctx * p for p in points]


POISON = 13


def _poison_point(point):
    if point == POISON:
        raise RuntimeError("poison {}".format(point))
    return point * point


def _poison_batch(points):
    return [_poison_point(p) for p in points]


def _soft_poison_point(point):
    if point == POISON:
        raise ScpgError("infeasible {}".format(point))
    return point * point


def _soft_poison_batch(points):
    return [_soft_poison_point(p) for p in points]


def _events(path):
    return [e["event"] for e in read_journal(path)]


class TestChunkSizing:
    def test_explicit_chunk_size_wins(self):
        assert _chunk_points(1000, 2, 7) == 7
        assert _chunk_points(10, 8, 1) == 1

    def test_adaptive_targets_four_chunks_per_worker(self):
        # ceil(195 / (4 * 2)) = 25 points per chunk
        assert _chunk_points(195, 2, None) == 25

    def test_floor_keeps_ipc_amortised_on_tiny_grids(self):
        assert _chunk_points(10, 4, None) == CHUNK_FLOOR

    def test_cap_bounds_work_lost_to_a_dead_worker(self):
        assert _chunk_points(10 ** 6, 2, None) == CHUNK_CAP


class TestChunkedPath:
    def test_results_match_serial(self):
        points = list(range(40))
        assert evaluate_grid(_square, points, workers=2,
                             kernel=_square_batch) \
            == evaluate_grid(_square, points)

    def test_context_forwarded(self):
        # The kernel carries its own context (a picklable partial); the
        # grid context still reaches ``fn`` on the per-point paths.
        got = evaluate_grid(_ctx_scale, list(range(12)), workers=2,
                            context=10,
                            kernel=functools.partial(_ctx_scale_batch, 10))
        assert got == [10 * p for p in range(12)]

    def test_journal_records_chunk_lifecycle(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        evaluate_grid(_square, list(range(10)), workers=2,
                      chunk_size=2, journal=str(path), label="chunky",
                      kernel=_square_batch)
        events = read_journal(path)
        names = [e["event"] for e in events]
        planned = [e for e in events if e["event"] == "chunks_planned"]
        assert planned[0]["chunks"] == 5
        assert planned[0]["chunk_size"] == 2
        assert names.count("chunk_submitted") == 5
        assert names.count("chunk_finished") == 5
        assert names.count("point_finished") == 10
        finish = [e for e in events if e["event"] == "pool_finished"]
        assert finish[0]["chunks"] == 5

    def test_submitted_chunks_are_contiguous_index_ranges(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        evaluate_grid(_square, list(range(20)), workers=2,
                      chunk_size=4, journal=str(path),
                      kernel=_square_batch)
        submits = [e for e in read_journal(path)
                   if e["event"] == "chunk_submitted"]
        spans = sorted((e["first"], e["last"]) for e in submits)
        assert spans == [(0, 3), (4, 7), (8, 11), (12, 15), (16, 19)]

    def test_bounded_submission(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        evaluate_grid(_square, list(range(48)), workers=2,
                      chunk_size=1, journal=str(path),
                      kernel=_square_batch)
        finish = [e for e in read_journal(path)
                  if e["event"] == "pool_finished"][0]
        limit = MAX_INFLIGHT_PER_WORKER * 2
        assert finish["inflight_limit"] == limit
        # 48 one-point chunks >> limit: the first fill loop must stop
        # exactly at the bound.
        assert finish["inflight_peak"] == limit

    def test_cache_writeback_is_per_point(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        points = list(range(16))
        cold = RunStats()
        evaluate_grid(_square, points, workers=2, cache=cache,
                      cache_key="sq", stats=cold, kernel=_square_batch)
        assert cold.evaluated == 16
        assert cache.puts == 16
        warm = RunStats()
        got = evaluate_grid(_square, points, workers=2, cache=cache,
                            cache_key="sq", stats=warm,
                            kernel=_square_batch)
        assert got == [p * p for p in points]
        assert warm.evaluated == 0
        assert warm.cache_hits == 16

    def test_partial_cache_chunks_only_the_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        evaluate_grid(_square, list(range(8)), cache=cache,
                      cache_key="sq", kernel=_square_batch)
        path = tmp_path / "journal.jsonl"
        got = evaluate_grid(_square, list(range(12)), workers=2,
                            cache=cache, cache_key="sq",
                            journal=str(path), kernel=_square_batch)
        assert got == [p * p for p in range(12)]
        planned = [e for e in read_journal(path)
                   if e["event"] == "chunks_planned"][0]
        assert planned["points"] == 4    # 0..7 came from the cache

    def test_infeasible_nones_counted(self):
        stats = RunStats()
        got = evaluate_grid(
            _soft_poison_point, list(range(20)), workers=2,
            on_error=(ScpgError,), stats=stats, chunk_size=20,
            kernel=lambda pts: [None if p == POISON else p * p
                                  for p in pts])
        assert got[POISON] is None
        assert got[0] == 0 and got[19] == 361
        assert stats.infeasible == 1


class TestBisectAndRetry:
    def test_hard_poison_isolated_siblings_kept(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        path = tmp_path / "journal.jsonl"
        with pytest.raises(RuntimeError, match="poison 13"):
            evaluate_grid(_poison_point, list(range(32)), workers=2,
                          cache=cache, cache_key="pz", retries=0,
                          journal=str(path), kernel=_poison_batch)
        # Every sibling of the poison point was flushed before the raise.
        assert cache.puts == 31
        events = read_journal(path)
        names = [e["event"] for e in events]
        assert "chunk_bisected" in names
        failed = [e for e in events if e["event"] == "chunk_failed"]
        assert failed[0]["index"] == POISON
        hard = [e for e in events if e["event"] == "point_failed"]
        assert hard[0]["index"] == POISON

    def test_bisection_halves_trace_back_to_the_parent_chunk(
            self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with pytest.raises(RuntimeError):
            evaluate_grid(_poison_point, list(range(32)), workers=2,
                          retries=0, chunk_size=32, journal=str(path),
                          kernel=_poison_batch)
        events = read_journal(path)
        bisected = {e["chunk"]: e["into"] for e in events
                    if e["event"] == "chunk_bisected"}
        # 32 -> 16 -> 8 -> 4 -> 2 -> 1: five levels to isolate.
        assert len(bisected) == 5
        children = {c for into in bisected.values() for c in into}
        # Every bisected chunk except the original came from a split.
        roots = set(bisected) - children
        assert roots == {1}

    def test_soft_poison_degrades_to_infeasible(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        stats = RunStats()
        got = evaluate_grid(_soft_poison_point, list(range(32)),
                            workers=2, on_error=(ScpgError,), retries=0,
                            stats=stats, journal=str(path),
                            kernel=_soft_poison_batch)
        assert got[POISON] is None
        assert [got[p] for p in range(32) if p != POISON] \
            == [p * p for p in range(32) if p != POISON]
        assert stats.infeasible == 1
        names = _events(path)
        assert "chunk_failed" in names
        assert "requeue_serial" in names

    def test_poison_retried_under_the_per_point_policy(self, tmp_path):
        # The kernel has no retry policy; the isolated point re-runs in
        # the parent where retry_on applies, so a transient poison heals.
        marker = tmp_path / "tries"

        def flaky(point):
            if point == POISON and not marker.exists():
                marker.write_text("1")
                raise OSError("transient")
            return point * point

        def poison_kernel(points):
            if POISON in points:
                raise OSError("kernel cannot take {}".format(POISON))
            return [p * p for p in points]

        path = tmp_path / "journal.jsonl"
        got = evaluate_grid(flaky, list(range(32)), workers=2,
                            retry_on=(OSError,), retries=2, backoff=0,
                            chunk_size=8, journal=str(path),
                            kernel=poison_kernel)
        assert got == [p * p for p in range(32)]
        names = _events(path)
        assert "chunk_failed" in names
        assert "point_retried" in names


class TestChunkObservability:
    def test_chunk_spans_parent_the_point_spans(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        evaluate_grid(_square, list(range(12)), workers=2, chunk_size=4,
                      tracer=tracer, kernel=_square_batch)
        chunk_ids = {line["id"] for line in sink
                     if line["name"] == "chunk"}
        assert len(chunk_ids) == 3
        points = [line for line in sink if line["name"] == "point"]
        assert len(points) == 12
        assert {line["parent"] for line in points} <= chunk_ids

    def test_metrics_observe_chunks(self):
        registry = MetricsRegistry()
        evaluate_grid(_square, list(range(12)), workers=2, chunk_size=4,
                      metrics=registry, kernel=_square_batch)
        assert registry.histogram("repro_chunk_seconds").count == 3
        assert registry.gauge("repro_chunk_size").value == 4

    def test_serial_runs_create_no_chunk_series(self):
        registry = MetricsRegistry()
        evaluate_grid(_square, list(range(12)), metrics=registry,
                      kernel=_square_batch)
        names = {metric.name for metric in registry}
        assert "repro_chunk_seconds" not in names
        assert "repro_chunk_size" not in names

    def test_report_surfaces_chunks_and_bisects(self, tmp_path):
        from repro.obs.report import JournalReport

        path = tmp_path / "journal.jsonl"
        with pytest.raises(RuntimeError):
            evaluate_grid(_poison_point, list(range(32)), workers=2,
                          retries=0, chunk_size=8, journal=str(path),
                          label="poisoned", kernel=_poison_batch)
        report = JournalReport(read_journal(path))
        grid = report.grids[0]
        assert grid.chunks == 4
        assert grid.bisects >= 1
        assert grid.poisoned == 1
        kinds = {a.kind for a in report.anomalies()}
        assert "chunk-bisect" in kinds
        assert "chunk" in report.render()


class TestPerPointBoundedSubmission:
    def test_inflight_never_exceeds_k_times_workers(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        evaluate_grid(_square, list(range(48)), workers=2,
                      journal=str(path))
        finish = [e for e in read_journal(path)
                  if e["event"] == "pool_finished"][0]
        limit = MAX_INFLIGHT_PER_WORKER * 2
        assert finish["inflight_limit"] == limit
        assert finish["inflight_peak"] == limit
        assert finish["points"] == 48

    def test_fork_state_cleared_after_chunked_run(self):
        evaluate_grid(_square, list(range(12)), workers=2, chunk_size=4,
                      kernel=_square_batch)
        assert runner_core._FORK_STATE is None
        assert not runner_core._FORK_LOCK.locked()
