"""The JSONL run journal: schema, durability, runner integration."""

import json

import pytest

from repro.runner import (
    NULL_JOURNAL,
    RunJournal,
    RunStats,
    evaluate_grid,
    read_journal,
)


def _square(point):
    return point * point


class TestRunJournal:
    def test_events_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record("run_start", label="unit", points=2)
            journal.record("point_finished", index=0, status="ok")
        events = read_journal(path)
        assert [e["event"] for e in events] \
            == ["run_start", "point_finished"]
        assert events[0]["label"] == "unit"
        assert all("t" in e for e in events)
        assert events[0]["t"] <= events[1]["t"]

    def test_append_only(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.record("run_start")
        with RunJournal(path) as journal:
            journal.record("run_start")
        assert len(read_journal(path)) == 2

    def test_close_is_idempotent_and_reopens(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.record("run_start")
        journal.close()
        journal.close()
        journal.record("run_finish")     # recording reopens
        journal.close()
        assert len(read_journal(journal.path)) == 2

    def test_unserialisable_fields_fall_back_to_repr(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.record("point_failed", error=ValueError("boom"))
        journal.close()
        (event,) = read_journal(journal.path)
        assert "boom" in event["error"]

    def test_read_skips_torn_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with open(path, "w") as f:
            f.write(json.dumps({"event": "run_start"}) + "\n")
            f.write('{"event": "point_fin')   # crash mid-write
        assert [e["event"] for e in read_journal(path)] == ["run_start"]

    def test_null_journal_is_inert(self):
        NULL_JOURNAL.record("run_start", anything=1)
        NULL_JOURNAL.close()
        assert NULL_JOURNAL.events == 0


class TestGridJournalling:
    def test_serial_grid_writes_the_full_story(self, tmp_path):
        path = tmp_path / "run.jsonl"
        evaluate_grid(_square, [1, 2, 3], journal=path, label="unit")
        events = read_journal(path)
        names = [e["event"] for e in events]
        assert names[0] == "run_start"
        assert names[-1] == "run_finish"
        assert names.count("point_started") == 3
        assert names.count("point_finished") == 3
        start = events[0]
        assert start["points"] == 3 and start["label"] == "unit"
        finish = events[-1]
        assert finish["stats"]["evaluated"] == 3

    def test_infeasible_points_are_labelled(self, tmp_path):
        path = tmp_path / "run.jsonl"

        def flaky(point):
            if point == 2:
                raise ValueError("infeasible")
            return point

        evaluate_grid(flaky, [1, 2], on_error=(ValueError,), journal=path)
        statuses = {e["index"]: e["status"] for e in read_journal(path)
                    if e["event"] == "point_finished"}
        assert statuses == {0: "ok", 1: "infeasible"}

    def test_cached_points_never_reach_the_journal(self, tmp_path):
        from repro.runner import ResultCache, stable_hash

        cache = ResultCache(tmp_path / "cache")
        key = stable_hash("journal-cache")
        evaluate_grid(_square, [1, 2], cache=cache, cache_key=key)
        path = tmp_path / "warm.jsonl"
        evaluate_grid(_square, [1, 2], cache=cache, cache_key=key,
                      journal=path)
        events = read_journal(path)
        assert [e["event"] for e in events] == ["run_start", "run_finish"]
        assert events[0]["cached"] == 2 and events[0]["pending"] == 0

    def test_shared_journal_spans_runs(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        stats = RunStats()
        evaluate_grid(_square, [1], journal=journal, stats=stats,
                      label="first")
        evaluate_grid(_square, [2], journal=journal, stats=stats,
                      label="second")
        journal.close()
        labels = [e["label"] for e in read_journal(journal.path)
                  if e["event"] == "run_start"]
        assert labels == ["first", "second"]
