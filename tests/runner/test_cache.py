"""The on-disk result cache: storage, invalidation, env plumbing."""

import pytest

from repro.runner import CACHE_ENV, ResultCache, default_cache


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestResultCache:
    def test_roundtrip(self, cache):
        key = cache.key_for("ns", "point")
        hit, value = cache.lookup(key)
        assert not hit and value is None
        cache.put(key, {"power": 1.5})
        hit, value = cache.lookup(key)
        assert hit and value == {"power": 1.5}
        assert cache.get(key) == {"power": 1.5}
        assert key in cache
        assert len(cache) == 1

    def test_none_is_a_real_value(self, cache):
        key = cache.key_for("ns", "point")
        cache.put(key, None)
        hit, value = cache.lookup(key)
        assert hit and value is None

    def test_counters(self, cache):
        key = cache.key_for("k")
        cache.lookup(key)
        cache.put(key, 1)
        cache.lookup(key)
        assert cache.misses == 1
        assert cache.hits == 1
        assert cache.puts == 1

    def test_invalidate(self, cache):
        key = cache.key_for("k")
        cache.put(key, 1)
        cache.invalidate(key)
        assert key not in cache
        cache.invalidate(key)   # idempotent

    def test_clear(self, cache):
        for i in range(5):
            cache.put(cache.key_for("k", i), i)
        assert len(cache) == 5
        cache.clear()
        assert len(cache) == 0

    # pickle.load raises UnpicklingError for the first payload and
    # ValueError for the second -- both must degrade to a miss.
    @pytest.mark.parametrize("junk", [b"not a pickle", b"garbage\n"])
    def test_corrupt_entry_is_a_miss(self, cache, junk):
        key = cache.key_for("k")
        cache.put(key, 1)
        with open(cache._path(key), "wb") as f:
            f.write(junk)
        hit, value = cache.lookup(key)
        assert not hit and value is None
        cache.put(key, 2)
        assert cache.get(key) == 2

    def test_salt_partitions_keys(self, tmp_path):
        a = ResultCache(tmp_path, salt="v1")
        b = ResultCache(tmp_path, salt="v2")
        assert a.key_for("k") != b.key_for("k")

    def test_key_depends_on_all_parts(self, cache):
        assert cache.key_for("a", "b") != cache.key_for("a", "c")
        assert cache.key_for("a", "b") != cache.key_for("ab")


class TestDefaultCache:
    def test_unset_means_no_cache(self):
        assert default_cache(env={}) is None

    @pytest.mark.parametrize("value", ["", "0", "off", "none", "OFF"])
    def test_disabling_values(self, value):
        assert default_cache(env={CACHE_ENV: value}) is None

    def test_directory(self, tmp_path):
        cache = default_cache(env={CACHE_ENV: str(tmp_path / "rc")})
        assert isinstance(cache, ResultCache)
        key = cache.key_for("k")
        cache.put(key, 42)
        assert cache.get(key) == 42
