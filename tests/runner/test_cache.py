"""The on-disk result cache: storage, invalidation, env plumbing."""

import pickle
import threading

import pytest

from repro.runner import CACHE_ENV, ResultCache, default_cache


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestResultCache:
    def test_roundtrip(self, cache):
        key = cache.key_for("ns", "point")
        hit, value = cache.lookup(key)
        assert not hit and value is None
        cache.put(key, {"power": 1.5})
        hit, value = cache.lookup(key)
        assert hit and value == {"power": 1.5}
        assert cache.get(key) == {"power": 1.5}
        assert key in cache
        assert len(cache) == 1

    def test_none_is_a_real_value(self, cache):
        key = cache.key_for("ns", "point")
        cache.put(key, None)
        hit, value = cache.lookup(key)
        assert hit and value is None

    def test_counters(self, cache):
        key = cache.key_for("k")
        cache.lookup(key)
        cache.put(key, 1)
        cache.lookup(key)
        assert cache.misses == 1
        assert cache.hits == 1
        assert cache.puts == 1

    def test_invalidate(self, cache):
        key = cache.key_for("k")
        cache.put(key, 1)
        cache.invalidate(key)
        assert key not in cache
        cache.invalidate(key)   # idempotent

    def test_clear(self, cache):
        for i in range(5):
            cache.put(cache.key_for("k", i), i)
        assert len(cache) == 5
        cache.clear()
        assert len(cache) == 0

    # pickle.load raises UnpicklingError for the first payload and
    # ValueError for the second -- both must degrade to a miss.
    @pytest.mark.parametrize("junk", [b"not a pickle", b"garbage\n"])
    def test_corrupt_entry_is_a_miss(self, cache, junk):
        key = cache.key_for("k")
        cache.put(key, 1)
        with open(cache._path(key), "wb") as f:
            f.write(junk)
        hit, value = cache.lookup(key)
        assert not hit and value is None
        cache.put(key, 2)
        assert cache.get(key) == 2

    def test_cold_miss_issues_no_unlink(self, cache, monkeypatch):
        # The common absent-entry case must not pay a pointless unlink
        # syscall per miss (regression: it used to take the corrupt path).
        drops = []
        real_drop = cache._drop
        monkeypatch.setattr(
            cache, "_drop", lambda key: (drops.append(key), real_drop(key))[1])
        hit, value = cache.lookup(cache.key_for("never-written"))
        assert not hit and value is None
        assert drops == []

    def test_corrupt_entry_dropped_exactly_once(self, cache, monkeypatch):
        key = cache.key_for("k")
        cache.put(key, 1)
        with open(cache._path(key), "wb") as f:
            f.write(b"truncated garbag")
        drops = []
        real_drop = cache._drop
        monkeypatch.setattr(
            cache, "_drop", lambda k: (drops.append(k), real_drop(k))[1])
        assert cache.lookup(key) == (False, None)   # corrupt -> dropped
        assert cache.lookup(key) == (False, None)   # absent -> cheap miss
        assert drops == [key]
        assert cache.misses == 2

    def test_misses_split_into_absent_and_corrupt(self, cache):
        key = cache.key_for("k")
        cache.lookup(key)                       # absent
        cache.put(key, 1)
        with open(cache._path(key), "wb") as f:
            f.write(b"garbage")
        cache.lookup(key)                       # corrupt
        cache.lookup(key)                       # absent again (cleaned)
        assert cache.absent == 2
        assert cache.corrupt == 1
        assert cache.misses == cache.absent + cache.corrupt

    def test_hits_do_not_touch_the_miss_split(self, cache):
        key = cache.key_for("k")
        cache.put(key, 1)
        cache.lookup(key)
        assert (cache.absent, cache.corrupt, cache.misses) == (0, 0, 0)

    def test_torn_write_cleanup_preserves_concurrent_repair(
            self, cache, monkeypatch):
        # Regression: a reader that finds torn bytes used to unlink the
        # entry unconditionally.  If a healthy writer replaced the torn
        # bytes between the reader's open() and its cleanup, that unlink
        # threw away the repair -- a paid result vanished and the next
        # reader recomputed it.  Cleanup must compare before deleting.
        key = cache.key_for("k")
        cache.put(key, {"power": 1.0})
        with open(cache._path(key), "rb") as f:
            good = f.read()
        torn = good[: len(good) // 2]
        with open(cache._path(key), "wb") as f:
            f.write(torn)
        real_loads = pickle.loads

        def racing_loads(data, **kw):
            if data == torn:
                # The writer's complete entry lands between this
                # reader's read and its cleanup.
                with open(cache._path(key), "wb") as f:
                    f.write(good)
                raise pickle.UnpicklingError("truncated")
            return real_loads(data, **kw)

        monkeypatch.setattr("repro.runner.cache.pickle.loads",
                            racing_loads)
        assert cache.lookup(key) == (False, None)
        assert (cache.corrupt, cache.absent) == (1, 0)
        monkeypatch.undo()
        # Pre-fix this was a miss: the unconditional unlink had deleted
        # the writer's repair.
        assert cache.lookup(key) == (True, {"power": 1.0})

    def test_stale_corrupt_bytes_still_get_cleaned(self, cache):
        # The compare-before-delete must not regress the cleanup itself:
        # with no concurrent writer, the torn entry is removed and the
        # next miss takes the cheap absent path.
        key = cache.key_for("k")
        cache.put(key, 1)
        with open(cache._path(key), "wb") as f:
            f.write(b"torn")
        cache.lookup(key)
        assert key not in cache

    def test_writeback_swallows_unpicklable_values(self, cache):
        # pickle raises AttributeError for local objects; "best effort,
        # never fails the run" covers that too.
        assert cache.writeback(cache.key_for("k"), lambda: 1) is False
        assert cache.key_for("k") not in cache

    def test_reclassify_hit_as_miss(self, cache):
        key = cache.key_for("k")
        cache.put(key, 1)
        cache.lookup(key)
        cache.reclassify_hit_as_miss()
        assert cache.hits == 0
        assert cache.misses == 1

    def test_writeback_is_a_counted_put(self, cache):
        key = cache.key_for("k")
        assert cache.writeback(key, 7) is True
        assert cache.get(key) == 7
        assert cache.puts == 1

    def test_writeback_swallows_io_errors(self, cache, monkeypatch):
        def refuse(path, *a, **kw):
            raise OSError("disk full")

        monkeypatch.setattr("os.makedirs", refuse)
        assert cache.writeback(cache.key_for("k"), 7) is False

    def test_salt_partitions_keys(self, tmp_path):
        a = ResultCache(tmp_path, salt="v1")
        b = ResultCache(tmp_path, salt="v2")
        assert a.key_for("k") != b.key_for("k")

    def test_key_depends_on_all_parts(self, cache):
        assert cache.key_for("a", "b") != cache.key_for("a", "c")
        assert cache.key_for("a", "b") != cache.key_for("ab")


class TestConcurrency:
    def test_parallel_puts_to_one_key_stay_atomic(self, cache):
        # Writers race on one key with large, distinct payloads; every
        # concurrent read must observe one *complete* payload, never a
        # torn mix, and the survivor must be a whole value too.
        key = cache.key_for("contested")
        payloads = {tag: tag * 200_000 for tag in ("a", "b", "c", "d")}
        torn = []
        stop = threading.Event()

        def writer(tag):
            for _ in range(20):
                cache.put(key, payloads[tag])

        def reader():
            while not stop.is_set():
                hit, value = cache.lookup(key)
                if hit and value not in payloads.values():
                    torn.append(value)

        readers = [threading.Thread(target=reader) for _ in range(2)]
        writers = [threading.Thread(target=writer, args=(t,))
                   for t in payloads]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert torn == []
        assert cache.get(key) in payloads.values()
        assert len(cache) == 1

    def test_corrupt_entry_degrades_to_a_miss_exactly_once_per_writer(
            self, cache):
        # Concurrent lookups of one corrupt entry: every reader sees a
        # miss, the entry is gone afterwards, and a subsequent put
        # repairs it for everyone.
        key = cache.key_for("corrupt")
        cache.put(key, 1)
        with open(cache._path(key), "wb") as f:
            f.write(b"garbage")
        hits = []

        def prober():
            hit, _ = cache.lookup(key)
            hits.append(hit)

        threads = [threading.Thread(target=prober) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hits == [False] * 8
        assert key not in cache
        cache.put(key, 2)
        assert cache.get(key) == 2


class TestDefaultCache:
    def test_unset_means_no_cache(self):
        assert default_cache(env={}) is None

    @pytest.mark.parametrize("value", ["", "0", "off", "none", "OFF"])
    def test_disabling_values(self, value):
        assert default_cache(env={CACHE_ENV: value}) is None

    def test_directory(self, tmp_path):
        cache = default_cache(env={CACHE_ENV: str(tmp_path / "rc")})
        assert isinstance(cache, ResultCache)
        key = cache.key_for("k")
        cache.put(key, 42)
        assert cache.get(key) == 42
