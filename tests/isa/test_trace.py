"""Gate-level CPU wrapper and co-simulation plumbing."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.trace import GateLevelCpu, cosimulate


class TestGateLevelCpu:
    def test_reset_state(self, m0_module):
        gate = GateLevelCpu(m0_module, assemble("halt"))
        assert not gate.halted
        assert gate.register(0) == 0

    def test_run_to_halt(self, m0_module):
        gate = GateLevelCpu(m0_module, assemble("movi r1, #9\nhalt"))
        cycles = gate.run()
        assert gate.halted
        assert cycles >= 4  # pipeline fill + two instructions
        assert gate.register(1) == 9

    def test_registers_list(self, m0_module):
        gate = GateLevelCpu(m0_module, assemble("""
            movi r14, #3
            movi r15, #4
            halt
        """))
        gate.run()
        regs = gate.registers()
        assert regs[14] == 3 and regs[15] == 4

    def test_memory_writes_committed(self, m0_module):
        gate = GateLevelCpu(m0_module, assemble("""
            movi r1, #32
            movi r2, #7
            str  r2, [r1, #0]
            halt
        """))
        gate.run()
        assert gate.memory[32] == 7

    def test_max_cycles_guard(self, m0_module):
        from repro.errors import SimulationError

        gate = GateLevelCpu(m0_module, assemble("""
        spin:
            b spin
        """))
        with pytest.raises(SimulationError, match="halt"):
            gate.run(max_cycles=50)

    def test_activity_trace_produced(self, m0_module):
        gate = GateLevelCpu(m0_module, assemble("""
            movi r1, #25
        loop:
            addi r1, #-1
            bne  loop
            halt
        """), group_size=10)
        gate.run()
        trace = gate.activity_trace()
        assert len(trace.groups) >= 5
        assert all(g.switching_probability > 0 for g in trace.groups)


class TestCosimulate:
    def test_result_fields(self, m0_module):
        result = cosimulate(m0_module, assemble("""
            movi r1, #2
            movi r2, #3
            mul  r1, r2
            halt
        """))
        assert result.ok
        assert result.registers_match and result.memory_match
        assert result.instructions == 4
        assert result.cycles >= result.instructions
        assert result.cpi == pytest.approx(
            result.cycles / result.instructions)
        assert result.trace is not None

    def test_detects_divergence_via_memory(self, m0_module):
        """Same program, different initial memory on the two sides would
        diverge -- emulate by checking a store-dependent result."""
        result = cosimulate(
            m0_module,
            assemble("""
                movi r1, #16
                ldr  r2, [r1, #0]
                addi r2, #1
                str  r2, [r1, #0]
                halt
            """),
            memory={16: 41},
        )
        assert result.ok
