"""Gate-level CPU wrapper and co-simulation plumbing."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.isa.assembler import assemble
from repro.isa.trace import GateLevelCpu, cosimulate

COUNTDOWN = """
    movi r1, #20
    movi r2, #32
loop:
    str  r1, [r2, #0]
    ldr  r3, [r2, #0]
    addi r1, #-1
    bne  loop
    halt
"""


class TestGateLevelCpu:
    def test_reset_state(self, m0_module):
        gate = GateLevelCpu(m0_module, assemble("halt"))
        assert not gate.halted
        assert gate.register(0) == 0

    def test_run_to_halt(self, m0_module):
        gate = GateLevelCpu(m0_module, assemble("movi r1, #9\nhalt"))
        cycles = gate.run()
        assert gate.halted
        assert cycles >= 4  # pipeline fill + two instructions
        assert gate.register(1) == 9

    def test_registers_list(self, m0_module):
        gate = GateLevelCpu(m0_module, assemble("""
            movi r14, #3
            movi r15, #4
            halt
        """))
        gate.run()
        regs = gate.registers()
        assert regs[14] == 3 and regs[15] == 4

    def test_memory_writes_committed(self, m0_module):
        gate = GateLevelCpu(m0_module, assemble("""
            movi r1, #32
            movi r2, #7
            str  r2, [r1, #0]
            halt
        """))
        gate.run()
        assert gate.memory[32] == 7

    def test_max_cycles_guard(self, m0_module):
        from repro.errors import SimulationError

        gate = GateLevelCpu(m0_module, assemble("""
        spin:
            b spin
        """))
        with pytest.raises(SimulationError, match="halt"):
            gate.run(max_cycles=50)

    def test_activity_trace_produced(self, m0_module):
        gate = GateLevelCpu(m0_module, assemble("""
            movi r1, #25
        loop:
            addi r1, #-1
            bne  loop
            halt
        """), group_size=10)
        gate.run()
        trace = gate.activity_trace()
        assert len(trace.groups) >= 5
        assert all(g.switching_probability > 0 for g in trace.groups)


class TestEngines:
    """The compiled closed-loop engine against the event engine."""

    def test_auto_picks_compiled_for_m0lite(self, m0_module):
        gate = GateLevelCpu(m0_module, assemble("halt"))
        assert gate.engine == "compiled"

    def test_bad_engine_rejected(self, m0_module):
        with pytest.raises(ValueError, match="engine"):
            GateLevelCpu(m0_module, assemble("halt"), engine="bogus")

    def test_compiled_raises_on_ineligible_module(self, mult_module):
        """A multiplier has no M0-lite memory interface."""
        with pytest.raises(SimulationError, match="unavailable"):
            GateLevelCpu(mult_module, assemble("halt"), engine="compiled")

    def test_auto_falls_back_when_ineligible(self, m0_module,
                                             monkeypatch):
        """``auto`` degrades to the event engine (same results) when
        the compiled stepper cannot host the module."""
        monkeypatch.setattr(
            GateLevelCpu, "_compiled_ready",
            staticmethod(lambda schedule: (False, "forced by test")))
        gate = GateLevelCpu(m0_module, assemble("movi r1, #3\nhalt"))
        assert gate.engine == "event"
        gate.run()
        assert gate.register(1) == 3

    def test_scpg_core_engines_bit_identical(self, m0_study):
        """The SCPG-transformed core (isolation clamps, header logic in
        the netlist) runs the compiled engine with identical results --
        the memory feed lands after the falling edge on both paths."""
        core = m0_study.scpg.flat.top
        program = assemble(COUNTDOWN)
        ev = GateLevelCpu(core, program, engine="event")
        cp = GateLevelCpu(core, program, engine="auto")
        ev.run()
        cp.run()
        assert ev.cycles == cp.cycles
        assert ev.registers() == cp.registers()
        assert ev.memory == cp.memory
        assert ev.toggle_snapshot() == cp.toggle_snapshot()

    def test_engines_bit_identical(self, m0_module):
        program = assemble(COUNTDOWN)
        ev = GateLevelCpu(m0_module, program, engine="event")
        cp = GateLevelCpu(m0_module, program, engine="compiled")
        ev.run()
        cp.run()
        assert ev.cycles == cp.cycles
        assert ev.registers() == cp.registers()
        assert ev.memory == cp.memory
        assert ev.toggle_snapshot() == cp.toggle_snapshot()
        te, tc = ev.activity_trace(), cp.activity_trace()
        assert len(te.groups) == len(tc.groups)
        for a, b in zip(te.groups, tc.groups):
            assert (a.index, a.cycles, a.total_toggles, a.nets,
                    a.toggles) == \
                   (b.index, b.cycles, b.total_toggles, b.nets, b.toggles)

    def test_state_traces_bit_identical(self, m0_module):
        program = assemble(COUNTDOWN)
        ev = GateLevelCpu(m0_module, program, engine="event",
                          record_states=True)
        cp = GateLevelCpu(m0_module, program, engine="compiled",
                          record_states=True)
        for _ in range(30):
            ev.step()
            cp.step()
        assert ev.state_net_names == cp.state_net_names
        assert np.array_equal(ev.state_trace(), cp.state_trace())

    def test_state_trace_requires_opt_in(self, m0_module):
        gate = GateLevelCpu(m0_module, assemble("halt"))
        with pytest.raises(SimulationError, match="record_states"):
            gate.state_trace()

    def test_event_key_tuples_precomputed(self, m0_module):
        """The event feed path formats its 48 input-net names once."""
        gate = GateLevelCpu(m0_module, assemble("halt"), engine="event")
        assert gate._idata_keys[0] == "idata_0"
        assert gate._idata_keys is gate._idata_keys  # stable tuple
        assert len(gate._idata_keys) == 16
        assert len(gate._drdata_keys) == 32
        assert gate._drdata_keys[31] == "drdata_31"

    def test_cosimulate_engine_passthrough(self, m0_module):
        program = assemble("movi r1, #5\nhalt")
        rs = {e: cosimulate(m0_module, program, engine=e)
              for e in ("event", "compiled", "auto")}
        assert all(r.ok for r in rs.values())
        assert len({r.cycles for r in rs.values()}) == 1


class TestCosimulate:
    def test_result_fields(self, m0_module):
        result = cosimulate(m0_module, assemble("""
            movi r1, #2
            movi r2, #3
            mul  r1, r2
            halt
        """))
        assert result.ok
        assert result.registers_match and result.memory_match
        assert result.instructions == 4
        assert result.cycles >= result.instructions
        assert result.cpi == pytest.approx(
            result.cycles / result.instructions)
        assert result.trace is not None

    def test_detects_divergence_via_memory(self, m0_module):
        """Same program, different initial memory on the two sides would
        diverge -- emulate by checking a store-dependent result."""
        result = cosimulate(
            m0_module,
            assemble("""
                movi r1, #16
                ldr  r2, [r1, #0]
                addi r2, #1
                str  r2, [r1, #0]
                halt
            """),
            memory={16: 41},
        )
        assert result.ok
