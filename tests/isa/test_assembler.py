"""The two-pass assembler."""

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.encoding import Funct, Op, decode


class TestBasics:
    def test_simple_program(self):
        words = assemble("""
            movi r1, #10
            addi r1, #-1
            halt
        """)
        assert len(words) == 3
        assert decode(words[0]).op is Op.MOVI
        assert decode(words[1]).imm == -1
        assert decode(words[2]).op is Op.SYS

    def test_comments_and_blank_lines(self):
        words = assemble("""
            ; full line comment
            movi r1, #1   // trailing
            // another

            halt          ; done
        """)
        assert len(words) == 2

    def test_all_alu_mnemonics(self):
        source = "\n".join(
            "{} r1, r2".format(f.name.lower()) for f in Funct)
        words = assemble(source)
        assert len(words) == len(Funct)
        for word, funct in zip(words, Funct):
            assert decode(word).funct is funct

    def test_memory_operands(self):
        words = assemble("""
            ldr r1, [r2, #4]
            ldr r1, [r2]
            str r3, [r4, #60]
        """)
        i0, i1, i2 = (decode(w) for w in words)
        assert (i0.rd, i0.rs, i0.imm) == (1, 2, 4)
        assert i1.imm == 0
        assert (i2.op, i2.imm) == (Op.STR, 60)

    def test_dot_word(self):
        words = assemble(".word 0xBEEF")
        assert words == [0xBEEF]

    def test_hex_immediates(self):
        words = assemble("movi r1, #0x7F")
        assert decode(words[0]).imm == 0x7F


class TestLabels:
    def test_backward_branch(self):
        words = assemble("""
        loop:
            addi r1, #-1
            bne  loop
        """)
        assert decode(words[1]).imm == -2  # back over bne+addi

    def test_forward_branch(self):
        words = assemble("""
            b    end
            nop
            nop
        end:
            halt
        """)
        assert decode(words[0]).imm == 2

    def test_label_on_own_line(self):
        words = assemble("""
        start:
            b start
        """)
        assert decode(words[0]).imm == -1

    def test_numeric_offsets(self):
        words = assemble("b #5\nb -3")
        assert decode(words[0]).imm == 5
        assert decode(words[1]).imm == -3

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble("x:\nnop\nx:\nnop")

    def test_unknown_label(self):
        with pytest.raises(AssemblyError, match="unknown label"):
            assemble("b nowhere")


class TestErrors:
    @pytest.mark.parametrize("bad,msg", [
        ("movi r16, #1", "bad register"),
        ("movi rx, #1", "bad register"),
        ("movi r1, #zzz", "bad immediate"),
        ("frobnicate r1, r2", "unknown mnemonic"),
        ("ldr r1, [bad]", "bad memory operand"),
        ("movi r1", "missing operand"),
        (".word 70000", "word out of range"),
    ])
    def test_messages(self, bad, msg):
        with pytest.raises(AssemblyError, match=msg):
            assemble(bad)

    def test_line_numbers_reported(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble("nop\nnop\nbogus r1\n")
