"""The instruction-set simulator (golden model)."""

import pytest

from repro.errors import IsaError
from repro.isa.assembler import assemble
from repro.isa.cpu import M0LiteCpu

MASK = 0xFFFFFFFF


def _run(source, memory=None, max_steps=100_000):
    cpu = M0LiteCpu(assemble(source), memory)
    cpu.run(max_steps=max_steps)
    return cpu


class TestArithmetic:
    def test_movi_addi(self):
        cpu = _run("movi r1, #100\naddi r1, #-30\nhalt")
        assert cpu.state.regs[1] == 70

    def test_addi_wraps_32bit(self):
        cpu = _run("movi r1, #0\naddi r1, #-1\nhalt")
        assert cpu.state.regs[1] == MASK

    def test_alu_suite(self):
        cpu = _run("""
            movi r1, #12
            movi r2, #10
            mov  r3, r1
            mul  r3, r2     ; 120
            movi r4, #3
            lsl  r3, r4     ; 960
            movi r5, #0xF0
            and  r3, r5     ; 960 & 0xF0 = 0xC0
            halt
        """)
        assert cpu.state.regs[3] == (((12 * 10) << 3) & 0xF0)

    def test_mvn(self):
        cpu = _run("movi r1, #0\nmvn r2, r1\nhalt")
        assert cpu.state.regs[2] == MASK

    def test_asr_sign_extends(self):
        cpu = _run("""
            movi r1, #0
            addi r1, #-8     ; r1 = -8
            movi r2, #2
            asr  r1, r2      ; -2
            halt
        """)
        assert cpu.state.regs[1] == (-2) & MASK


class TestFlags:
    def test_cmp_sets_without_writeback(self):
        cpu = _run("movi r1, #5\nmovi r2, #5\ncmp r1, r2\nhalt")
        assert cpu.state.flags["z"] is True
        assert cpu.state.regs[1] == 5

    def test_carry_semantics(self):
        cpu = _run("movi r1, #9\nmovi r2, #3\ncmp r1, r2\nhalt")
        assert cpu.state.flags["c"] is True  # no borrow
        cpu = _run("movi r1, #3\nmovi r2, #9\ncmp r1, r2\nhalt")
        assert cpu.state.flags["c"] is False

    def test_movi_sets_nz_only(self):
        cpu = _run("""
            movi r1, #1
            movi r2, #1
            cmp  r1, r2      ; Z=1 C=1
            movi r3, #5      ; NZ updated (Z=0), C preserved
            halt
        """)
        assert cpu.state.flags["z"] is False
        assert cpu.state.flags["c"] is True

    def test_overflow(self):
        cpu = _run("""
            movi r1, #127
            movi r2, #24
            lsl  r1, r2      ; 127 << 24 = 0x7F000000
            mov  r3, r1
            add  r3, r1      ; 0xFE000000: pos+pos -> neg = overflow
            halt
        """)
        assert cpu.state.flags["v"] is True


class TestMemory:
    def test_load_store(self):
        cpu = _run("""
            movi r1, #64
            movi r2, #42
            str  r2, [r1, #4]
            ldr  r3, [r1, #4]
            halt
        """)
        assert cpu.state.regs[3] == 42
        assert cpu.memory[68] == 42

    def test_uninitialised_reads_zero(self):
        cpu = _run("movi r1, #0\nldr r2, [r1, #0]\nhalt")
        assert cpu.state.regs[2] == 0

    def test_initial_memory(self):
        cpu = _run("movi r1, #8\nldr r2, [r1, #0]\nhalt",
                   memory={8: 0xCAFE})
        assert cpu.state.regs[2] == 0xCAFE

    def test_unaligned_rejected(self):
        with pytest.raises(IsaError):
            _run("movi r1, #2\nldr r2, [r1, #0]\nhalt")


class TestControlFlow:
    def test_loop_sum(self):
        cpu = _run("""
            movi r1, #10
            movi r2, #0
        loop:
            add  r2, r1
            addi r1, #-1
            bne  loop
            halt
        """)
        assert cpu.state.regs[2] == sum(range(1, 11))

    def test_unconditional_branch_skips(self):
        cpu = _run("""
            movi r1, #1
            b    end
            movi r1, #2
        end:
            halt
        """)
        assert cpu.state.regs[1] == 1

    def test_fetch_past_end_is_nop_until_limit(self):
        cpu = M0LiteCpu(assemble("movi r1, #1"))  # no halt
        with pytest.raises(IsaError, match="did not halt"):
            cpu.run(max_steps=100)

    def test_writeback_log(self):
        cpu = _run("movi r1, #5\nmovi r2, #6\nhalt")
        assert cpu.writeback_log[:2] == [(1, 5), (2, 6)]

    def test_state_copy_independent(self):
        cpu = _run("movi r1, #5\nhalt")
        snap = cpu.state.copy()
        cpu.state.regs[1] = 99
        assert snap.regs[1] == 5

    def test_step_after_halt_is_none(self):
        cpu = _run("halt")
        assert cpu.step() is None
