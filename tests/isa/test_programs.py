"""Dhrystone-lite workload."""

import pytest

from repro.isa.cpu import M0LiteCpu
from repro.isa.programs import (
    DHRYSTONE_ITERATIONS,
    dhrystone_memory,
    dhrystone_program,
)
from repro.isa.programs.dhrystone import DST_BASE, RESULT_BASE, SRC_BASE


class TestDhrystone:
    def test_assembles(self):
        words = dhrystone_program()
        assert 40 < len(words) < 200
        assert all(0 <= w <= 0xFFFF for w in words)

    def test_runs_to_halt_on_iss(self):
        cpu = M0LiteCpu(dhrystone_program(5), dhrystone_memory())
        retired = cpu.run()
        assert cpu.state.halted
        assert retired > 5 * 30  # a few dozen instructions per iteration

    def test_copies_source_buffer(self):
        cpu = M0LiteCpu(dhrystone_program(2), dhrystone_memory())
        cpu.run()
        src = dhrystone_memory()
        for i in range(8):
            assert cpu.memory[DST_BASE + 4 * i] == src[SRC_BASE + 4 * i]

    def test_results_stored(self):
        cpu = M0LiteCpu(dhrystone_program(3), dhrystone_memory())
        cpu.run()
        assert RESULT_BASE in cpu.memory       # checksum
        assert RESULT_BASE + 4 in cpu.memory   # final seed
        assert cpu.memory[RESULT_BASE] != 0

    def test_deterministic(self):
        runs = []
        for _ in range(2):
            cpu = M0LiteCpu(dhrystone_program(4), dhrystone_memory())
            cpu.run()
            runs.append((cpu.memory[RESULT_BASE], cpu.retired))
        assert runs[0] == runs[1]

    def test_iteration_scaling(self):
        short = M0LiteCpu(dhrystone_program(2), dhrystone_memory())
        long = M0LiteCpu(dhrystone_program(8), dhrystone_memory())
        short.run()
        long.run()
        assert long.retired > 3 * short.retired

    def test_default_matches_paper_vector_count(self):
        """The default run must land near the paper's 3700 vectors
        (gate-level cycles); the ISS count times typical CPI bounds it."""
        cpu = M0LiteCpu(dhrystone_program(DHRYSTONE_ITERATIONS),
                        dhrystone_memory())
        cpu.run()
        # Gate-level CPI is ~1.2; the cycle-count check lives in the
        # integration suite.  Here: instruction count in a sane band.
        assert 2500 <= cpu.retired <= 3600
