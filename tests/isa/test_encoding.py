"""M0-lite instruction encodings."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import IsaError
from repro.isa.encoding import (
    Cond,
    Funct,
    HALT_WORD,
    Instruction,
    NOP_WORD,
    Op,
    decode,
    encode,
    evaluate_cond,
)


class TestEncodeDecode:
    @pytest.mark.parametrize("instr", [
        Instruction(Op.MOVI, rd=3, imm=255),
        Instruction(Op.MOVI, rd=15, imm=0),
        Instruction(Op.ADDI, rd=7, imm=-128),
        Instruction(Op.ADDI, rd=0, imm=127),
        Instruction(Op.ALU, funct=Funct.MUL, rd=4, rs=11),
        Instruction(Op.ALU, funct=Funct.CMP, rd=1, rs=2),
        Instruction(Op.LDR, rd=5, rs=6, imm=60),
        Instruction(Op.STR, rd=9, rs=10, imm=0),
        Instruction(Op.B, imm=-2048),
        Instruction(Op.B, imm=2047),
        Instruction(Op.BCOND, cond=Cond.GEU, imm=-1),
        Instruction(Op.SYS, imm=0),
        Instruction(Op.SYS, imm=1),
    ])
    def test_roundtrip(self, instr):
        word = encode(instr)
        assert 0 <= word <= 0xFFFF
        back = decode(word)
        assert back.op == instr.op
        assert back.rd == instr.rd or instr.op in (Op.B, Op.BCOND, Op.SYS)
        assert back.imm == instr.imm

    def test_nop_halt_words(self):
        assert encode(Instruction(Op.SYS, imm=0)) == NOP_WORD
        assert encode(Instruction(Op.SYS, imm=1)) == HALT_WORD
        assert decode(NOP_WORD).imm == 0
        assert decode(HALT_WORD).imm == 1

    @pytest.mark.parametrize("instr", [
        Instruction(Op.MOVI, rd=1, imm=256),
        Instruction(Op.ADDI, rd=1, imm=128),
        Instruction(Op.LDR, rd=1, rs=2, imm=64),
        Instruction(Op.STR, rd=1, rs=2, imm=6),   # unaligned
        Instruction(Op.B, imm=2048),
        Instruction(Op.BCOND, cond=Cond.EQ, imm=-129),
    ])
    def test_out_of_range(self, instr):
        with pytest.raises(IsaError):
            encode(instr)

    def test_decode_rejects_bad_funct(self):
        word = (2 << 12) | (0xF << 8)
        with pytest.raises(IsaError):
            decode(word)

    def test_decode_rejects_bad_word(self):
        with pytest.raises(IsaError):
            decode(0x10000)

    @given(st.integers(0, 0xFFFF))
    def test_decode_total_or_error(self, word):
        """decode either returns a re-encodable instruction or raises."""
        try:
            instr = decode(word)
        except IsaError:
            return
        word2 = encode(instr)
        assert decode(word2) == instr

    def test_str_rendering(self):
        assert str(decode(encode(Instruction(Op.MOVI, rd=2, imm=7)))) \
            == "movi r2, #7"
        assert "ldr" in str(Instruction(Op.LDR, rd=1, rs=2, imm=3))
        assert str(Instruction(Op.SYS, imm=1)) == "halt"


class TestConditions:
    @pytest.mark.parametrize("cond,flags,expected", [
        (Cond.EQ, dict(n=0, z=1, c=0, v=0), True),
        (Cond.EQ, dict(n=0, z=0, c=0, v=0), False),
        (Cond.NE, dict(n=0, z=0, c=0, v=0), True),
        (Cond.LT, dict(n=1, z=0, c=0, v=0), True),
        (Cond.LT, dict(n=1, z=0, c=0, v=1), False),
        (Cond.GE, dict(n=1, z=0, c=0, v=1), True),
        (Cond.LTU, dict(n=0, z=0, c=0, v=0), True),
        (Cond.GEU, dict(n=0, z=0, c=1, v=0), True),
        (Cond.MI, dict(n=1, z=0, c=0, v=0), True),
        (Cond.PL, dict(n=0, z=0, c=0, v=0), True),
    ])
    def test_evaluate(self, cond, flags, expected):
        flags = {k: bool(v) for k, v in flags.items()}
        assert evaluate_cond(cond, flags) == expected
