"""CRC-32 and FIR workloads: references, ISS runs, gate-level equivalence."""

import pytest

from repro.isa.cpu import M0LiteCpu
from repro.isa.programs import (
    CRC_RESULT,
    FIR_RESULT,
    crc32_program,
    crc32_reference,
    dhrystone_memory,
    fir_program,
    fir_reference,
)
from repro.isa.programs.dhrystone import SRC_BASE
from repro.isa.trace import cosimulate


class TestCrc32:
    def test_matches_reference(self):
        mem = dhrystone_memory()
        cpu = M0LiteCpu(crc32_program(8), mem)
        cpu.run()
        data = [mem[SRC_BASE + 4 * i] for i in range(8)]
        assert cpu.memory[CRC_RESULT] == crc32_reference(data)

    def test_matches_zlib(self):
        """The bit-serial loop implements the standard reflected CRC-32."""
        import zlib

        data = [0x11223344, 0xDEADBEEF]
        raw = b"".join(w.to_bytes(4, "little") for w in data)
        assert crc32_reference(data) == zlib.crc32(raw)

    def test_control_heavy_profile(self):
        """Mostly branches/shifts: very few multiplies."""
        from repro.isa.encoding import Funct, Op, decode

        words = crc32_program(8)
        decoded = [decode(w) for w in words]
        muls = sum(1 for i in decoded
                   if i.op is Op.ALU and i.funct is Funct.MUL)
        branches = sum(1 for i in decoded if i.op in (Op.B, Op.BCOND))
        assert muls == 0
        assert branches >= 3

    def test_gate_level_equivalence(self, m0_module):
        result = cosimulate(m0_module, crc32_program(2),
                            dhrystone_memory(), max_cycles=10_000)
        assert result.ok, result.mismatches[:3]


class TestFir:
    def test_matches_reference(self):
        cpu = M0LiteCpu(fir_program(12))
        cpu.run()
        assert cpu.memory[FIR_RESULT] == fir_reference(12)

    def test_datapath_heavy_profile(self):
        from repro.isa.encoding import Funct, Op, decode

        decoded = [decode(w) for w in fir_program()]
        muls = sum(1 for i in decoded
                   if i.op is Op.ALU and i.funct is Funct.MUL)
        assert muls >= 5  # sample generator + four taps

    def test_gate_level_equivalence(self, m0_module):
        result = cosimulate(m0_module, fir_program(4), max_cycles=10_000)
        assert result.ok, result.mismatches[:3]

    def test_scales_with_samples(self):
        short = M0LiteCpu(fir_program(4))
        long = M0LiteCpu(fir_program(16))
        short.run()
        long.run()
        assert long.retired > 3 * short.retired
