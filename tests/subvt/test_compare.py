"""Section IV: SCPG vs sub-threshold."""

import pytest

from repro.scpg.power_model import Mode
from repro.subvt.compare import compare_with_scpg
from repro.subvt.energy import minimum_energy_point


class TestComparison:
    def test_default_budget_is_mep_power(self, mult_study):
        result = compare_with_scpg(mult_study.subvt, mult_study.model)
        mep = minimum_energy_point(mult_study.subvt)
        assert result.budget == pytest.approx(mep.power)

    def test_subthreshold_wins_energy(self, mult_study):
        """The paper: sub-threshold offers better energy efficiency than
        SCPG (it is minimum-energy by construction); ~5x for the
        multiplier."""
        result = compare_with_scpg(mult_study.subvt, mult_study.model)
        assert result.energy_ratio > 1.5
        assert result.energy_ratio < 20

    def test_performance_gap_exists(self, mult_study):
        result = compare_with_scpg(mult_study.subvt, mult_study.model)
        assert result.performance_ratio > 1.0

    def test_gap_narrows_with_bigger_budget(self, mult_study):
        """Paper: 'if the power budget is increased, the difference
        between the two approaches narrows' (5x -> 2.9x at 40 uW)."""
        tight = compare_with_scpg(mult_study.subvt, mult_study.model)
        loose = compare_with_scpg(mult_study.subvt, mult_study.model,
                                  budget=tight.budget * 2.0)
        assert loose.energy_ratio < tight.energy_ratio

    def test_m0_comparison(self, m0_study):
        """Paper: ~4.8x energy and ~5x performance gap for the M0."""
        result = compare_with_scpg(m0_study.subvt, m0_study.model)
        assert result.energy_ratio > 1.2
        assert result.performance_ratio > 1.0

    def test_scpg_max_shrinks_gap_vs_scpg50(self, mult_study):
        base = compare_with_scpg(mult_study.subvt, mult_study.model,
                                 mode=Mode.SCPG)
        better = compare_with_scpg(mult_study.subvt, mult_study.model,
                                   mode=Mode.SCPG_MAX)
        assert better.energy_ratio <= base.energy_ratio

    def test_str(self, mult_study):
        text = str(compare_with_scpg(mult_study.subvt, mult_study.model))
        assert "budget" in text and "sub-vt" in text
