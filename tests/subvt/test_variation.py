"""Process/temperature variation analysis (§IV stability claim)."""

import pytest

from repro.subvt.variation import (
    Corner,
    DEFAULT_VTH_SIGMA,
    STANDARD_CORNERS,
    corner_library,
    corner_study,
    monte_carlo,
)


class TestCornerLibrary:
    def test_vth_shift_applied(self, lib):
        corner = Corner("slow", +0.05)
        clib = corner_library(lib, corner)
        assert clib.devices["svt"].vth == pytest.approx(
            lib.devices["svt"].vth + 0.05)
        # Cells are shared, not copied.
        assert clib.cell("INV_X1") is lib.cell("INV_X1")

    def test_slow_corner_scales_correctly(self, lib):
        slow = corner_library(lib, Corner("slow", +0.05))
        assert slow.delay_scale(0.6) > 1.1     # slower
        assert slow.leakage_scale(0.6) < 0.5   # much less leaky

    def test_fast_corner_scales_correctly(self, lib):
        fast = corner_library(lib, Corner("fast", -0.05))
        assert fast.delay_scale(0.6) < 0.95
        assert fast.leakage_scale(0.6) > 2.0

    def test_nominal_corner_is_identity(self, lib):
        tt = corner_library(lib, Corner("tt", 0.0))
        assert tt.delay_scale(0.6) == pytest.approx(1.0)
        assert tt.leakage_scale(0.6) == pytest.approx(1.0)


class TestCornerStudy:
    @pytest.fixture(scope="class")
    def study(self, mult_study):
        return corner_study(mult_study)

    def test_all_corners_evaluated(self, study):
        assert len(study.results) == len(STANDARD_CORNERS)

    def test_subvt_performance_swings_more(self, study):
        """§IV: sub-threshold is the less stable technique."""
        assert study.subvt_performance_spread > \
            study.scpg_performance_spread
        assert study.stability_ratio > 1.0

    def test_mep_wanders(self, study):
        """The minimum-energy point is 'skewed significantly' by
        variation -- tens of mV for +-30 mV of Vth."""
        assert study.mep_displacement > 0.01

    def test_hot_slow_corner_is_slowest_subvt(self, study):
        by_name = {r.corner.name: r for r in study.results}
        assert by_name["ss_hot"].subvt_fmax == min(
            r.subvt_fmax for r in study.results)

    def test_fast_corner_is_leakiest_scpg(self, study):
        by_name = {r.corner.name: r for r in study.results}
        assert by_name["ff_hot"].scpg_power == max(
            r.scpg_power for r in study.results)


class TestMonteCarlo:
    def test_statistics(self, mult_study):
        _study, stats = monte_carlo(mult_study, samples=50)
        # Performance sensitivity: sub-vt at least ~1.5x more variable.
        assert stats["subvt_fmax_rel_std"] > \
            1.5 * stats["scpg_fmax_rel_std"]
        assert stats["mep_vdd_std"] > 0.0
        for value in stats.values():
            assert value >= 0.0

    def test_reproducible(self, mult_study):
        _s1, stats1 = monte_carlo(mult_study, samples=25, seed=1)
        _s2, stats2 = monte_carlo(mult_study, samples=25, seed=1)
        assert stats1 == stats2

    def test_sigma_scales_spread(self, mult_study):
        _s, tight = monte_carlo(mult_study, sigma_vth=0.005, samples=40)
        _s, wide = monte_carlo(mult_study, sigma_vth=0.04, samples=40)
        assert wide["subvt_fmax_rel_std"] > \
            3 * tight["subvt_fmax_rel_std"]

    def test_default_sigma_reasonable(self):
        assert 0.005 < DEFAULT_VTH_SIGMA < 0.05
