"""Sub-threshold energy model (Figs 9/10)."""

import pytest

from repro.errors import PowerError
from repro.subvt.energy import (
    SubvtModel,
    energy_sweep,
    minimum_energy_point,
)


@pytest.fixture(scope="module")
def mult_subvt(mult_study):
    return mult_study.subvt


class TestEnergyPoints:
    def test_point_composition(self, mult_subvt):
        p = mult_subvt.point(0.6)
        assert p.energy == pytest.approx(p.e_dynamic + p.e_leakage)
        assert p.power == pytest.approx(
            p.e_dynamic * p.fmax_hz + p.e_leakage * p.fmax_hz, rel=1e-6)

    def test_nominal_point_consistent_with_sta(self, mult_study):
        p = mult_study.subvt.point(0.6)
        assert p.fmax_hz == pytest.approx(mult_study.sta.fmax, rel=1e-6)
        assert p.e_dynamic == pytest.approx(mult_study.e_cycle, rel=1e-6)

    def test_dynamic_falls_with_vdd(self, mult_subvt):
        assert mult_subvt.point(0.3).e_dynamic < \
            mult_subvt.point(0.6).e_dynamic

    def test_leakage_energy_rises_at_low_vdd(self, mult_subvt):
        """Below the minimum-energy point, the slow clock makes leakage
        energy per operation grow."""
        assert mult_subvt.point(0.2).e_leakage > \
            mult_subvt.point(0.35).e_leakage


class TestSweep:
    def test_u_shape(self, mult_subvt):
        points = energy_sweep(mult_subvt, 0.15, 0.9, steps=40)
        energies = [p.energy for p in points]
        min_idx = energies.index(min(energies))
        assert 0 < min_idx < len(energies) - 1  # interior minimum
        # Decreasing before, increasing after (allowing small noise).
        assert energies[0] > energies[min_idx]
        assert energies[-1] > energies[min_idx]

    def test_bad_range_rejected(self, mult_subvt):
        with pytest.raises(PowerError):
            energy_sweep(mult_subvt, 0.5, 0.4)
        with pytest.raises(PowerError):
            energy_sweep(mult_subvt, 0.2, 0.5, steps=1)

    def test_model_validates_period(self, lib):
        with pytest.raises(PowerError):
            SubvtModel(lib, 1e-12, 1e-6, 0.0)


class TestMinimumEnergyPoint:
    def test_matches_dense_sweep(self, mult_subvt):
        mep = minimum_energy_point(mult_subvt)
        dense = min(energy_sweep(mult_subvt, 0.15, 0.9, steps=300),
                    key=lambda p: p.energy)
        assert mep.energy == pytest.approx(dense.energy, rel=1e-3)
        assert mep.vdd == pytest.approx(dense.vdd, abs=0.02)

    def test_multiplier_point_in_paper_region(self, mult_subvt):
        """Paper: 310 mV / 1.7 pJ.  Our model: same region (DESIGN.md
        documents the expected deviation)."""
        mep = minimum_energy_point(mult_subvt)
        assert 0.25 <= mep.vdd <= 0.50
        assert 0.5e-12 <= mep.energy <= 4e-12

    def test_m0_point_at_higher_voltage_and_energy(self, mult_study,
                                                   m0_study):
        """Paper Fig. 10 vs Fig. 9: the denser M0 pushes the minimum
        energy point to a higher supply and more energy."""
        mult_mep = minimum_energy_point(mult_study.subvt)
        m0_mep = minimum_energy_point(m0_study.subvt)
        assert m0_mep.vdd > mult_mep.vdd
        assert m0_mep.energy > 3 * mult_mep.energy

    def test_mep_is_near_dynamic_leakage_balance(self, mult_subvt):
        """At the minimum, dynamic and leakage energy are comparable."""
        mep = minimum_energy_point(mult_subvt)
        ratio = mep.e_dynamic / mep.e_leakage
        assert 0.2 < ratio < 5.0
