"""Individual flow steps: synthesis, floorplan, CTS, routing."""

import pytest

from repro.circuits.builder import new_module
from repro.errors import FlowError
from repro.flows.cts import synthesize_clock_tree
from repro.flows.floorplan import plan_design
from repro.flows.route import estimate_routing
from repro.flows.synthesis import synthesize
from repro.netlist.stats import module_stats
from repro.netlist.validate import validate_module
from repro.sim.event import Simulator


def _high_fanout_module(lib, fanout=60):
    module, b = new_module("hf", lib)
    a = module.add_input("a")
    src = b.inv(a)
    for i in range(fanout):
        b.inv(src, y=module.add_output("y{}".format(i)))
    return module


class TestSynthesize:
    def test_fanout_repair(self, lib):
        module = _high_fanout_module(lib)
        report = synthesize(module, lib)
        assert report.metrics["buffers_added"] >= 2
        assert validate_module(module).ok
        # No data net above the limit afterwards.
        from repro.flows.synthesis import MAX_FANOUT, _is_clock_net

        for net in module.nets():
            loads = [l for l in net.loads if isinstance(l, tuple)]
            if not _is_clock_net(net):
                assert len(loads) <= MAX_FANOUT

    def test_function_preserved(self, lib):
        module = _high_fanout_module(lib, fanout=30)
        synthesize(module, lib)
        sim = Simulator(module)
        sim.set_input("a", 0)
        assert sim.value("y0") == 0  # double inversion
        sim.set_input("a", 1)
        assert sim.value("y17") == 1

    def test_clock_nets_left_alone(self, lib):
        module, b = new_module("clky", lib)
        clk = module.add_input("clk")
        d = module.add_input("d")
        for i in range(40):
            b.dff(d, clk, name="ff{}".format(i))
        synthesize(module, lib)
        # Clock still drives all 40 flops directly (CTS's job, not ours).
        assert len(module.net("clk").loads) == 40


class TestFloorplan:
    def test_basic_plan(self, mult_module, lib):
        plan, report = plan_design(mult_module, lib)
        assert plan.die_area > module_stats(mult_module).area
        assert plan.utilization == pytest.approx(0.7)

    def test_centred_vs_corner_congestion(self, mult_module, lib):
        from repro.circuits.multiplier import build_mult16

        comb = build_mult16(lib, registered=False)
        centre, _ = plan_design(mult_module, lib, comb_module=comb,
                                boundary_nets=100, centred=True)
        corner, _ = plan_design(mult_module, lib, comb_module=comb,
                                boundary_nets=100, centred=False)
        assert corner.congestion == pytest.approx(2 * centre.congestion)

    def test_congestion_warning(self, mult_module, lib):
        from repro.circuits.multiplier import build_mult16

        comb = build_mult16(lib, registered=False)
        plan, report = plan_design(mult_module, lib, comb_module=comb,
                                   boundary_nets=100000, centred=False)
        assert plan.messages  # warned


class TestCts:
    def test_tree_limits_fanout(self, lib, fresh_mult):
        from repro.flows.cts import MAX_CLOCK_FANOUT

        cts, _report = synthesize_clock_tree(fresh_mult, lib)
        assert cts.sinks == 64
        assert cts.buffers >= 4
        clk = fresh_mult.net("clk")
        assert len(clk.loads) <= MAX_CLOCK_FANOUT
        assert validate_module(fresh_mult).ok

    def test_small_design_needs_no_tree(self, toy_design, lib):
        cts, _ = synthesize_clock_tree(toy_design.top, lib)
        assert cts.buffers == 0

    def test_missing_clock_rejected(self, lib):
        from repro.circuits.multiplier import build_mult16

        comb = build_mult16(lib, registered=False)
        with pytest.raises(FlowError):
            synthesize_clock_tree(comb, lib)

    def test_flops_still_clocked(self, lib, fresh_mult):
        import random

        from repro.sim.testbench import (
            ClockedTestbench, bus_values, read_bus)

        synthesize_clock_tree(fresh_mult, lib)
        tb = ClockedTestbench(fresh_mult)
        tb.reset_flops()
        tb.cycle({**bus_values("a", 16, 111), **bus_values("b", 16, 222)})
        tb.cycle({})
        assert read_bus(tb.sim, "p", 32) == 111 * 222


class TestRouting:
    def test_estimate(self, mult_module, lib):
        estimate, report = estimate_routing(mult_module, lib)
        assert estimate.total_wirelength > 0
        assert estimate.connections > estimate.nets
        assert estimate.avg_fanout > 1.0
