"""Logic optimisation pass, certified by equivalence checking."""

import pytest

from repro.circuits.builder import new_module
from repro.flows.optimize import optimize
from repro.netlist.equivalence import check_equivalence
from repro.netlist.stats import module_stats
from repro.netlist.validate import validate_module


def _with_redundancy(lib):
    """y = a & b, computed with gratuitous inverters/buffers/constants."""
    module, b = new_module("messy", lib)
    a = module.add_input("a")
    c = module.add_input("b")
    y = module.add_output("y")
    a1 = b.inv(b.inv(a))               # double inverter
    c1 = b.buf(b.buf(c))               # buffer chain
    anded = b.and2(a1, c1)
    masked = b.or2(anded, module.const(0))   # OR with 0 = identity
    b.buf(masked, y=y)
    b.and2(a, module.const(0))         # dead gate (const-0 out, no loads)
    return module


class TestOptimize:
    def test_cleans_redundancy(self, lib):
        module = _with_redundancy(lib)
        before = module_stats(module).cells
        stats, report = optimize(module)
        after = module_stats(module).cells
        assert stats.total > 0
        assert after < before
        assert validate_module(module).ok

    def test_preserves_function(self, lib):
        golden = _with_redundancy(lib)
        revised = _with_redundancy(lib)
        optimize(revised)
        assert check_equivalence(golden, revised)

    def test_constant_folding(self, lib):
        module, b = new_module("cf", lib)
        a = module.add_input("a")
        y = module.add_output("y")
        dead_and = b.and2(a, module.const(0))   # always 0
        b.cell("OR2_X1", A=a, B=dead_and, Y=y)  # reduces to BUF-ish OR
        stats, _ = optimize(module)
        assert stats.constants_folded >= 1
        # OR(a, 0) folds too? OR with const 0 is not determined -> stays.
        assert check_equivalence(
            module, _or_with_zero_reference(lib))

    def test_multiplier_untouched_function(self, lib):
        """The generated multiplier has little redundancy; whatever the
        pass removes must not change the function."""
        from repro.circuits.multiplier import build_mult16

        golden = build_mult16(lib, width=6, registered=False)
        revised = build_mult16(lib, width=6, registered=False)
        optimize(revised)
        report = check_equivalence(golden, revised, vectors=80)
        assert report.equivalent, str(report)

    def test_sequential_cells_untouched(self, lib, fresh_mult):
        before = module_stats(fresh_mult).seq_cells
        optimize(fresh_mult)
        assert module_stats(fresh_mult).seq_cells == before

    def test_idempotent(self, lib):
        module = _with_redundancy(lib)
        optimize(module)
        stats2, _ = optimize(module)
        assert stats2.total == 0

    def test_port_drivers_protected(self, lib):
        module, b = new_module("pp", lib)
        a = module.add_input("a")
        y = module.add_output("y")
        b.buf(a, y=y)  # buffer straight onto a port: must survive
        stats, _ = optimize(module)
        assert validate_module(module).ok
        assert module.net("y").is_driven


def _or_with_zero_reference(lib):
    module, b = new_module("ref", lib)
    a = module.add_input("a")
    y = module.add_output("y")
    b.cell("OR2_X1", A=a, B=module.const(0), Y=y)
    return module
