"""Implementation flows (Fig. 5)."""

import pytest

from repro.flows.traditional import run_traditional_flow
from repro.netlist.core import Design
from repro.netlist.stats import module_stats
from repro.netlist.validate import validate_module


class TestTraditionalFlow:
    def test_runs_and_reports(self, lib, fresh_mult):
        result = run_traditional_flow(Design(fresh_mult, lib))
        names = [s.name for s in result.steps]
        assert names == ["synthesize", "design-planning",
                         "clock-tree-synthesis", "routing"]
        assert result.metrics["area"] > 0
        assert result.metrics["fmax_hz"] > 1e6
        assert validate_module(result.flat.top).ok

    def test_cts_inserted_buffers(self, lib, fresh_mult):
        before = module_stats(fresh_mult).clock_cells
        result = run_traditional_flow(Design(fresh_mult, lib))
        after = module_stats(result.flat.top).clock_cells
        assert before == 0
        assert after >= 4  # 64 flops at fanout 16

    def test_functionality_preserved(self, lib, fresh_mult):
        import random

        from repro.sim.testbench import (
            ClockedTestbench, bus_values, read_bus)

        result = run_traditional_flow(Design(fresh_mult, lib))
        tb = ClockedTestbench(result.flat.top)
        tb.reset_flops()
        rng = random.Random(1)
        prev = None
        for _ in range(15):
            a, b = rng.getrandbits(16), rng.getrandbits(16)
            tb.cycle({**bus_values("a", 16, a), **bus_values("b", 16, b)})
            p = read_bus(tb.sim, "p", 32)
            if prev is not None:
                assert p == prev[0] * prev[1]
            prev = (a, b)

    def test_summary_renders(self, lib, fresh_mult):
        result = run_traditional_flow(Design(fresh_mult, lib))
        text = result.summary()
        assert "clock-tree-synthesis" in text
        assert result.step("routing") is not None
        assert result.step("nonexistent") is None


class TestScpgFlow:
    def test_full_flow(self, mult_study):
        flow = mult_study.flow
        assert flow.baseline is not None
        step_names = [s.name for s in flow.steps]
        assert "scpg-split-and-isolate" in step_names
        assert "clock-tree-synthesis" in step_names
        assert validate_module(flow.scpg.flat.top).ok

    def test_area_overhead_reported(self, mult_study, m0_study):
        """Overheads in the paper's few-percent class (3.9% / 6.6%)."""
        assert 1.0 < mult_study.flow.area_overhead_pct < 9.0
        assert 1.0 < m0_study.flow.area_overhead_pct < 9.0

    def test_scpg_flat_includes_clock_tree(self, mult_study):
        stats = module_stats(mult_study.scpg.flat.top)
        assert stats.clock_cells >= 4
        assert stats.header_cells > 0
        assert stats.isolation_cells > 0

    def test_congestion_metric_prefers_centred(self, lib):
        from repro.circuits.multiplier import build_mult16
        from repro.techniques import technique

        centred = technique("scpg").implement(
            lambda: Design(build_mult16(lib), lib), lib, centred=True)
        corner = technique("scpg").implement(
            lambda: Design(build_mult16(lib), lib), lib, centred=False)
        c_plan = centred.flow.metrics["floorplan"]
        k_plan = corner.flow.metrics["floorplan"]
        # Corner placement halves the shared perimeter: more congestion.
        assert k_plan.congestion > c_plan.congestion
