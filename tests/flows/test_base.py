"""Flow bookkeeping objects."""

from repro.flows.base import FlowResult, StepReport


class TestStepReport:
    def test_log_and_render(self):
        step = StepReport("synthesize")
        step.log("hello")
        step.metrics["cells"] = 42
        text = str(step)
        assert "[synthesize]" in text
        assert "hello" in text
        assert "cells = 42" in text


class TestFlowResult:
    def test_step_lookup_and_summary(self):
        result = FlowResult("flow:x", design=None, flat=None)
        result.steps.append(StepReport("a"))
        result.steps.append(StepReport("b"))
        result.metrics["area"] = 1.5
        assert result.step("a") is result.steps[0]
        assert result.step("missing") is None
        text = result.summary()
        assert "flow flow:x" in text
        assert "area = 1.5" in text
