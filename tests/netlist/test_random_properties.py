"""Property-based netlist invariants over randomly generated circuits.

A generator builds random gate DAGs (optionally with registers); the
properties assert that every netlist-rewriting path in the library is
behaviour-preserving:

* structural-Verilog round-trips;
* comb/seq split + flatten;
* the logic-optimisation pass;
* the fan-out repair pass.

Equivalence is certified by :func:`repro.netlist.equivalence
.check_equivalence` (exhaustive for the small input counts used here).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.flows.optimize import optimize
from repro.flows.synthesis import synthesize
from repro.netlist.core import Design, Module
from repro.netlist.equivalence import check_equivalence
from repro.netlist.stats import module_stats
from repro.netlist.transform import split_combinational
from repro.netlist.validate import validate_module
from repro.netlist.verilog import dumps_verilog, parse_verilog

_GATES = [
    ("INV_X1", ["A"]),
    ("BUF_X1", ["A"]),
    ("NAND2_X1", ["A", "B"]),
    ("NOR2_X1", ["A", "B"]),
    ("AND2_X1", ["A", "B"]),
    ("OR2_X1", ["A", "B"]),
    ("XOR2_X1", ["A", "B"]),
    ("AOI21_X1", ["A", "B", "C"]),
    ("MUX2_X1", ["A", "B", "S"]),
]


def build_random_circuit(lib, seed, n_inputs=5, n_gates=25,
                         clocked=False):
    """A random DAG of gates; deterministic in ``seed``."""
    rng = random.Random(seed)
    module = Module("rand{}".format(seed))
    nets = []
    clk = module.add_input("clk") if clocked else None
    for i in range(n_inputs):
        nets.append(module.add_input("i{}".format(i)))
    if rng.random() < 0.3:
        nets.append(module.const(rng.getrandbits(1)))
    for g in range(n_gates):
        cell_name, pins = rng.choice(_GATES)
        out = module.add_net("g{}".format(g))
        conns = {"Y": out}
        for pin in pins:
            conns[pin] = rng.choice(nets)
        module.add_instance("u{}".format(g), cell_name, conns,
                            library=lib)
        if clocked and rng.random() < 0.2:
            q = module.add_net("q{}".format(g))
            module.add_instance(
                "ff{}".format(g), "DFF_X1",
                {"D": out, "CK": clk, "Q": q}, library=lib)
            nets.append(q)
        nets.append(out)
    # Expose a handful of recent nets as outputs.
    for k, net in enumerate(nets[-4:]):
        if net.is_const:
            continue
        out_port = module.add_output("o{}".format(k))
        module.add_instance(
            "ob{}".format(k), "BUF_X1", {"A": net, "Y": out_port},
            library=lib)
    return module


COMMON = dict(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])


class TestGeneratorSanity:
    def test_valid_and_deterministic(self, lib):
        a = build_random_circuit(lib, 7)
        b = build_random_circuit(lib, 7)
        assert validate_module(a).ok
        assert module_stats(a).by_cell == module_stats(b).by_cell


class TestRoundTripProperty:
    @settings(**COMMON)
    @given(st.integers(0, 10_000))
    def test_verilog_roundtrip_preserves_function(self, lib, seed):
        golden = build_random_circuit(lib, seed)
        text = dumps_verilog(golden)
        revised = parse_verilog(text, lib).top
        assert check_equivalence(golden, revised), seed

    @settings(**COMMON)
    @given(st.integers(0, 10_000))
    def test_split_flatten_preserves_function(self, lib, seed):
        golden = build_random_circuit(lib, seed, clocked=True)
        split = split_combinational(Design(
            build_random_circuit(lib, seed, clocked=True), lib))
        flat = split.design.flatten()
        # Flattened instance names change; compare behaviour only.
        report = check_equivalence(golden, flat.top, vectors=24,
                                   clock="clk")
        assert report.equivalent, (seed, str(report))


class TestRewriteProperties:
    @settings(**COMMON)
    @given(st.integers(0, 10_000))
    def test_optimizer_preserves_function(self, lib, seed):
        golden = build_random_circuit(lib, seed)
        revised = build_random_circuit(lib, seed)
        optimize(revised)
        assert validate_module(revised).ok
        assert check_equivalence(golden, revised), seed

    @settings(**COMMON)
    @given(st.integers(0, 10_000))
    def test_fanout_repair_preserves_function(self, lib, seed):
        golden = build_random_circuit(lib, seed)
        revised = build_random_circuit(lib, seed)
        synthesize(revised, lib, max_fanout=3)  # force lots of buffering
        assert check_equivalence(golden, revised), seed
