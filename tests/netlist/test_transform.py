"""Comb/seq split (SCPG flow step 1) and buffer insertion."""

import random

import pytest

from repro.errors import NetlistError
from repro.netlist.core import Design
from repro.netlist.stats import module_stats
from repro.netlist.transform import insert_buffer, split_combinational
from repro.netlist.validate import validate_module
from repro.sim.testbench import ClockedTestbench, bus_values, read_bus
from repro.tech.library import CellKind


class TestSplit:
    def test_toy_partition(self, toy_design):
        split = split_combinational(toy_design)
        comb_kinds = {i.cell.kind for i in split.comb.cell_instances()}
        assert CellKind.SEQUENTIAL not in comb_kinds
        top_kinds = {i.cell.kind for i in split.top.cell_instances()}
        assert top_kinds == {CellKind.SEQUENTIAL}

    def test_boundary_sets(self, toy_design):
        split = split_combinational(toy_design)
        assert set(split.boundary_inputs) == {"a", "b", "q"}
        assert set(split.boundary_outputs) == {"n1", "y"}

    def test_ports_preserved(self, toy_design):
        split = split_combinational(toy_design)
        assert [p.name for p in split.top.ports] == \
            [p.name for p in toy_design.top.ports]

    def test_flatten_is_valid(self, toy_design):
        split = split_combinational(toy_design)
        flat = split.design.flatten()
        assert validate_module(flat.top).ok

    def test_cell_population_preserved(self, mult_module, lib):
        design = Design(mult_module, lib)
        split = split_combinational(design)
        flat = split.design.flatten()
        assert module_stats(flat.top).by_cell == \
            module_stats(mult_module).by_cell

    def test_split_multiplier_still_multiplies(self, mult_module, lib):
        design = Design(mult_module, lib)
        split = split_combinational(design)
        flat = split.design.flatten()
        tb = ClockedTestbench(flat.top)
        tb.reset_flops()
        rng = random.Random(5)
        prev = None
        for _ in range(20):
            a, b = rng.getrandbits(16), rng.getrandbits(16)
            tb.cycle({**bus_values("a", 16, a), **bus_values("b", 16, b)})
            p = read_bus(tb.sim, "p", 32)
            if prev is not None:
                assert p == (prev[0] * prev[1]) & 0xFFFFFFFF
            prev = (a, b)

    def test_requires_flat_input(self, toy_design):
        split = split_combinational(toy_design)
        with pytest.raises(NetlistError, match="flat"):
            split_combinational(split.design)

    def test_ties_move_to_comb_domain(self, lib, toy_design):
        top = toy_design.top
        tie_net = top.add_net("hi")
        top.add_instance("tie", "TIEHI_X1", {"Y": tie_net}, library=lib)
        top.add_instance("g3", "AND2_X1",
                         {"A": tie_net, "B": top.net("q"),
                          "Y": top.add_net("w")}, library=lib)
        split = split_combinational(toy_design)
        assert any(i.cell.kind is CellKind.TIE
                   for i in split.comb.cell_instances())


class TestInsertBuffer:
    def test_moves_instance_loads(self, toy_design, lib):
        top = toy_design.top
        n1 = top.net("n1")
        new = insert_buffer(top, n1, lib.cell("BUF_X2"))
        ff = top.instance("ff")
        assert ff.connections["D"] is new
        buf = top.instance("buf_n1")
        assert buf.connections["A"] is n1
        assert validate_module(top).ok

    def test_rejects_const(self, toy_design, lib):
        with pytest.raises(NetlistError):
            insert_buffer(toy_design.top, toy_design.top.const(1),
                          lib.cell("BUF_X1"))

    def test_rejects_undriven(self, lib, toy_design):
        ghost = toy_design.top.add_net("ghost")
        with pytest.raises(NetlistError):
            insert_buffer(toy_design.top, ghost, lib.cell("BUF_X1"))
