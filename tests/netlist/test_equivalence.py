"""Simulation-based equivalence checking."""

import pytest

from repro.circuits.builder import new_module
from repro.errors import NetlistError
from repro.netlist.equivalence import check_equivalence


def _xor_direct(lib):
    module, b = new_module("x1", lib)
    a = module.add_input("a")
    c = module.add_input("b")
    y = module.add_output("y")
    b.cell("XOR2_X1", A=a, B=c, Y=y)
    return module


def _xor_from_nands(lib):
    """XOR built from four NANDs: structurally different, same function."""
    module, b = new_module("x2", lib)
    a = module.add_input("a")
    c = module.add_input("b")
    y = module.add_output("y")
    n1 = b.nand2(a, c)
    n2 = b.nand2(a, n1)
    n3 = b.nand2(c, n1)
    b.cell("NAND2_X1", A=n2, B=n3, Y=y)
    return module


def _and_gate(lib):
    module, b = new_module("x3", lib)
    a = module.add_input("a")
    c = module.add_input("b")
    y = module.add_output("y")
    b.cell("AND2_X1", A=a, B=c, Y=y)
    return module


class TestCombinational:
    def test_equivalent_structures(self, lib):
        report = check_equivalence(_xor_direct(lib), _xor_from_nands(lib))
        assert report.equivalent
        assert report.mode == "exhaustive"
        assert report.vectors == 4

    def test_detects_difference(self, lib):
        report = check_equivalence(_xor_direct(lib), _and_gate(lib))
        assert not report.equivalent
        assert report.mismatches
        assert "y" in report.mismatches[0]

    def test_port_mismatch_rejected(self, lib):
        module, b = new_module("x4", lib)
        a = module.add_input("a")
        y = module.add_output("y")
        b.inv(a, y=y)
        with pytest.raises(NetlistError):
            check_equivalence(_xor_direct(lib), module)

    def test_random_mode_for_wide_inputs(self, lib, mult_module):
        from repro.circuits.multiplier import build_mult16

        comb_a = build_mult16(lib, registered=False)
        comb_b = build_mult16(lib, registered=False, name="mult16b")
        comb_b.name = comb_a.name  # names don't matter, ports do
        report = check_equivalence(comb_a, comb_b, vectors=40)
        assert report.equivalent
        assert report.mode == "random"

    def test_report_str(self, lib):
        text = str(check_equivalence(_xor_direct(lib), _and_gate(lib)))
        assert "DIFFERENT" in text


class TestSequential:
    def test_clocked_equivalence(self, lib):
        from repro.circuits.counters import build_counter

        a = build_counter(lib, width=5)
        b = build_counter(lib, width=5)
        report = check_equivalence(a, b, vectors=40, clock="clk")
        assert report.equivalent

    def test_clocked_difference_found(self, lib):
        from repro.circuits.counters import build_counter, build_lfsr

        # Same port shapes only if widths chosen right; counter vs lfsr
        # share clk + q bus at width 16.
        a = build_counter(lib, width=16)
        b = build_lfsr(lib, width=16)
        b.name = a.name
        report = check_equivalence(a, b, vectors=10, clock="clk")
        assert not report.equivalent
