"""Gate-count / area / leakage roll-ups."""

import pytest

from repro.netlist.stats import module_stats


class TestModuleStats:
    def test_toy(self, toy_design):
        stats = module_stats(toy_design.top)
        assert stats.cells == 3
        assert stats.comb_gates == 2
        assert stats.seq_cells == 1
        assert stats.by_cell == {"NAND2_X1": 1, "DFF_X1": 1, "INV_X1": 1}
        assert stats.area > 0
        assert stats.leakage_nominal > 0

    def test_multiplier_matches_paper_scale(self, mult_module):
        stats = module_stats(mult_module)
        # Paper: 556 combinational gates, 64 operand/product registers.
        assert 400 <= stats.comb_gates <= 700
        assert stats.seq_cells == 64

    def test_m0_matches_paper_scale(self, m0_module):
        stats = module_stats(m0_module)
        # Paper: 6747 combinational gates.
        assert 4500 <= stats.comb_gates <= 8500
        assert stats.seq_cells > 500  # regfile alone is 512

    def test_hierarchy_rolls_up(self, toy_design, lib):
        from repro.netlist.transform import split_combinational

        flat_stats = module_stats(toy_design.top)
        split = split_combinational(toy_design)
        hier_stats = module_stats(split.top)
        assert hier_stats.by_cell == flat_stats.by_cell
        assert hier_stats.area == pytest.approx(flat_stats.area)

    def test_str(self, toy_design):
        text = str(module_stats(toy_design.top))
        assert "3 cells" in text
