"""Topological traversal, levelization, cones."""

import pytest

from repro.errors import NetlistError
from repro.netlist.core import Design, Module
from repro.netlist.traverse import (
    combinational_instances,
    driver_instance,
    fanout_instances,
    header_instances,
    levelize,
    sequential_instances,
    topological_instances,
    transitive_fanin,
)


def _chain(lib, depth=5):
    """a -> INV -> INV -> ... -> y."""
    m = Module("chain")
    net = m.add_input("a")
    for i in range(depth):
        nxt = m.add_output("y") if i == depth - 1 else m.add_net()
        m.add_instance("inv{}".format(i), "INV_X1", {"A": net, "Y": nxt},
                       library=lib)
        net = nxt
    return m


class TestClassification:
    def test_toy(self, toy_design):
        top = toy_design.top
        assert {i.name for i in combinational_instances(top)} == {"g1", "g2"}
        assert {i.name for i in sequential_instances(top)} == {"ff"}
        assert header_instances(top) == []

    def test_hierarchical_rejected(self, toy_design, lib):
        from repro.netlist.transform import split_combinational

        split = split_combinational(toy_design)
        with pytest.raises(NetlistError):
            topological_instances(split.top)


class TestTopologicalOrder:
    def test_chain_in_order(self, lib):
        m = _chain(lib, 6)
        order = [i.name for i in topological_instances(m)]
        assert order == ["inv{}".format(i) for i in range(6)]

    def test_flops_break_cycles(self, lib):
        """A feedback loop through a register must not be a comb loop."""
        m = Module("fb")
        clk = m.add_input("clk")
        q = m.add_net("q")
        d = m.add_net("d")
        m.add_instance("inv", "INV_X1", {"A": q, "Y": d}, library=lib)
        m.add_instance("ff", "DFF_X1", {"D": d, "CK": clk, "Q": q},
                       library=lib)
        assert len(topological_instances(m)) == 1

    def test_combinational_loop_detected(self, lib):
        m = Module("loop")
        a = m.add_net("a")
        b = m.add_net("b")
        m.add_instance("i1", "INV_X1", {"A": a, "Y": b}, library=lib)
        m.add_instance("i2", "INV_X1", {"A": b, "Y": a}, library=lib)
        with pytest.raises(NetlistError, match="loop"):
            topological_instances(m)

    def test_multiplier_orders_all(self, mult_module):
        order = topological_instances(mult_module)
        assert len(order) == len(combinational_instances(mult_module))


class TestLevelize:
    def test_chain_levels(self, lib):
        m = _chain(lib, 4)
        levels = levelize(m)
        assert [levels["inv{}".format(i)] for i in range(4)] == [0, 1, 2, 3]

    def test_multiplier_depth_reasonable(self, mult_module):
        levels = levelize(mult_module)
        depth = max(levels.values())
        # 16x16 array: tens of levels, not hundreds, not single digits.
        assert 20 <= depth <= 60


class TestConesAndNeighbours:
    def test_driver_and_fanout(self, toy_design):
        top = toy_design.top
        n1 = top.net("n1")
        assert driver_instance(n1).name == "g1"
        assert {i.name for i in fanout_instances(n1)} == {"ff"}
        assert driver_instance(top.net("a")) is None  # port driven

    def test_transitive_fanin_stops_at_flops(self, toy_design):
        top = toy_design.top
        cone = transitive_fanin(top, [top.net("y")])
        assert {i.name for i in cone} == {"g2"}  # stops at ff

    def test_transitive_fanin_whole_cone(self, toy_design):
        top = toy_design.top
        cone = transitive_fanin(top, [top.net("n1")])
        assert {i.name for i in cone} == {"g1"}
