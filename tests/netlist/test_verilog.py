"""Structural Verilog writer/parser."""

import pytest

from repro.errors import VerilogSyntaxError
from repro.netlist.core import Design, Module
from repro.netlist.verilog import (
    dumps_verilog,
    parse_verilog,
    read_verilog,
    write_verilog,
)
from repro.netlist.stats import module_stats
from repro.netlist.validate import validate_module


class TestWriter:
    def test_toy_output_shape(self, toy_design):
        text = dumps_verilog(toy_design)
        assert "module toy (clk, a, b, y);" in text
        assert "NAND2_X1 g1 (.A(a), .B(b), .Y(n1));" in text
        assert text.strip().endswith("endmodule")

    def test_escaped_identifiers(self, lib):
        m = Module("esc")
        a = m.add_input("a")
        y = m.add_net("weird/name")
        m.add_instance("g/1", "INV_X1", {"A": a, "Y": y}, library=lib)
        text = dumps_verilog(m)
        assert "\\weird/name " in text
        assert "\\g/1 " in text

    def test_constants_emitted(self, lib):
        m = Module("c")
        y = m.add_output("y")
        m.add_instance("g", "OR2_X1", {"A": m.const(1), "B": m.const(0),
                                       "Y": y}, library=lib)
        text = dumps_verilog(m)
        assert "1'b1" in text and "1'b0" in text

    def test_hierarchy_leaves_first(self, toy_design):
        from repro.netlist.transform import split_combinational

        split = split_combinational(toy_design)
        text = dumps_verilog(split.design)
        assert text.index("module toy_comb") < text.index("module toy (")


class TestRoundTrip:
    def test_toy(self, toy_design, lib):
        text = dumps_verilog(toy_design)
        d2 = parse_verilog(text, lib)
        assert validate_module(d2.top).ok
        s1 = module_stats(toy_design.top)
        s2 = module_stats(d2.top)
        assert s1.by_cell == s2.by_cell

    def test_multiplier(self, mult_module, lib):
        text = dumps_verilog(mult_module)
        d2 = parse_verilog(text, lib)
        assert module_stats(d2.top).by_cell == \
            module_stats(mult_module).by_cell
        # And it still multiplies.
        from repro.sim.testbench import (
            ClockedTestbench, bus_values, read_bus)

        tb = ClockedTestbench(d2.top)
        tb.reset_flops()
        tb.cycle({**bus_values("a", 16, 1234), **bus_values("b", 16, 567)})
        tb.cycle({})
        assert read_bus(tb.sim, "p", 32) == 1234 * 567

    def test_hierarchical(self, toy_design, lib):
        from repro.netlist.transform import split_combinational

        split = split_combinational(toy_design)
        text = dumps_verilog(split.design)
        d2 = parse_verilog(text, lib)
        assert set(d2.modules) == {"toy", "toy_comb"}
        flat = d2.flatten()
        assert validate_module(flat.top).ok

    def test_file_roundtrip(self, toy_design, lib, tmp_path):
        path = tmp_path / "toy.v"
        write_verilog(toy_design, path)
        d2 = read_verilog(path, lib)
        assert d2.top.name == "toy"


class TestParser:
    def test_assign_becomes_buffer(self, lib):
        text = """
        module m (a, y);
          input a; output y;
          assign y = a;
        endmodule
        """
        d = parse_verilog(text, lib)
        insts = d.top.instances()
        assert len(insts) == 1
        assert insts[0].cell.name == "BUF_X1"

    def test_implicit_wires(self, lib):
        text = """
        module m (a, y);
          input a; output y;
          INV_X1 g1 (.A(a), .Y(t));
          INV_X1 g2 (.A(t), .Y(y));
        endmodule
        """
        d = parse_verilog(text, lib)
        assert d.top.has_net("t")

    def test_top_selection(self, lib):
        text = """
        module first (a); input a; endmodule
        module second (b); input b; endmodule
        """
        assert parse_verilog(text, lib).top.name == "second"
        assert parse_verilog(text, lib, top="first").top.name == "first"

    def test_comments(self, lib):
        text = """
        // header comment
        module m (a, y); /* inline */ input a; output y;
          INV_X1 g (.A(a), .Y(y)); // trailing
        endmodule
        """
        assert parse_verilog(text, lib).top.name == "m"

    @pytest.mark.parametrize("bad,msg", [
        ("module m (a); endmodule", "direction"),
        ("module m (a); input a;", "endmodule"),
        ("module m (a); input a; FOO g (.A(a)); endmodule", "unknown cell"),
        ("module m (a); input a; wire w; garbage", "expected"),
        ("", "no modules"),
    ])
    def test_errors(self, lib, bad, msg):
        with pytest.raises(VerilogSyntaxError, match=msg):
            parse_verilog(bad, lib)

    def test_unknown_top_rejected(self, lib):
        with pytest.raises(VerilogSyntaxError):
            parse_verilog("module m (a); input a; endmodule", lib,
                          top="nope")
