"""Netlist lint."""

import pytest

from repro.errors import NetlistError
from repro.netlist.core import Module
from repro.netlist.validate import validate_module


class TestValidate:
    def test_clean_design(self, toy_design):
        report = validate_module(toy_design.top)
        assert report.ok
        assert report.errors == []
        report.raise_if_errors()  # no-op

    def test_floating_input_is_error(self, lib):
        m = Module("m")
        a = m.add_input("a")
        y = m.add_net("y")
        m.add_instance("g", "NAND2_X1", {"A": a, "Y": y}, library=lib)
        report = validate_module(m)
        assert not report.ok
        assert any("input pin B" in e for e in report.errors)
        with pytest.raises(NetlistError):
            report.raise_if_errors()

    def test_undriven_loaded_net_is_error(self, lib):
        m = Module("m")
        ghost = m.add_net("ghost")
        y = m.add_net("y")
        m.add_instance("g", "INV_X1", {"A": ghost, "Y": y}, library=lib)
        report = validate_module(m)
        assert any("no driver" in e for e in report.errors)

    def test_dangling_net_is_warning(self, lib):
        m = Module("m")
        a = m.add_input("a")
        m.add_instance("g", "INV_X1", {"A": a, "Y": m.add_net("dang")},
                       library=lib)
        report = validate_module(m)
        assert report.ok
        assert any("dangling" in w for w in report.warnings)

    def test_undriven_output_port_is_warning(self):
        m = Module("m")
        m.add_output("y")
        report = validate_module(m)
        assert any("undriven" in w for w in report.warnings)

    def test_comb_loop_reported(self, lib):
        m = Module("m")
        a = m.add_net("a")
        b = m.add_net("b")
        m.add_instance("i1", "INV_X1", {"A": a, "Y": b}, library=lib)
        m.add_instance("i2", "INV_X1", {"A": b, "Y": a}, library=lib)
        report = validate_module(m)
        assert any("loop" in e for e in report.errors)

    def test_loop_check_can_be_skipped(self, lib):
        m = Module("m")
        a = m.add_net("a")
        b = m.add_net("b")
        m.add_instance("i1", "INV_X1", {"A": a, "Y": b}, library=lib)
        m.add_instance("i2", "INV_X1", {"A": b, "Y": a}, library=lib)
        report = validate_module(m, check_loops=False)
        assert report.ok

    def test_hierarchical_flagged(self, toy_design):
        from repro.netlist.transform import split_combinational

        split = split_combinational(toy_design)
        report = validate_module(split.top)
        assert any("hierarchical" in e for e in report.errors)

    def test_str_rendering(self, toy_design):
        text = str(validate_module(toy_design.top))
        assert "validation of toy: ok" in text

    def test_generated_designs_clean(self, mult_module, m0_module):
        assert validate_module(mult_module).ok
        assert validate_module(m0_module).ok
