"""Netlist object model: modules, nets, ports, instances, hierarchy."""

import pytest

from repro.errors import NetlistError
from repro.netlist.core import Design, Module, PortDirection


class TestNetsAndPorts:
    def test_input_port_drives_its_net(self, lib):
        m = Module("m")
        net = m.add_input("a")
        assert net.is_driven
        assert m.port("a").direction is PortDirection.INPUT

    def test_output_port_loads_its_net(self, lib):
        m = Module("m")
        net = m.add_output("y")
        assert not net.is_driven
        assert net.fanout() == 1  # the port itself

    def test_duplicate_port_rejected(self):
        m = Module("m")
        m.add_input("a")
        with pytest.raises(NetlistError):
            m.add_port("a", PortDirection.OUTPUT)

    def test_duplicate_net_rejected(self):
        m = Module("m")
        m.add_net("n")
        with pytest.raises(NetlistError):
            m.add_net("n")

    def test_auto_net_names_unique(self):
        m = Module("m")
        names = {m.add_net().name for _ in range(50)}
        assert len(names) == 50

    def test_const_nets_shared(self):
        m = Module("m")
        assert m.const(0) is m.const(0)
        assert m.const(1) is not m.const(0)
        assert m.const(1).const_value == 1
        assert m.const(0).is_driven

    def test_const_range(self):
        m = Module("m")
        with pytest.raises(NetlistError):
            m.const(2)

    def test_unknown_lookups_raise(self):
        m = Module("m")
        with pytest.raises(NetlistError):
            m.net("ghost")
        with pytest.raises(NetlistError):
            m.port("ghost")
        with pytest.raises(NetlistError):
            m.instance("ghost")


class TestInstances:
    def test_connectivity_bookkeeping(self, lib):
        m = Module("m")
        a, b = m.add_input("a"), m.add_input("b")
        y = m.add_net("y")
        inst = m.add_instance("g", "NAND2_X1", {"A": a, "B": b, "Y": y},
                              library=lib)
        assert y.driver == (inst, "Y")
        assert (inst, "A") in a.loads
        assert inst.net("A") is a
        assert inst.net("Z") is None
        assert inst.ref_name == "NAND2_X1"

    def test_multiple_drivers_rejected(self, lib):
        m = Module("m")
        a = m.add_input("a")
        y = m.add_net("y")
        m.add_instance("g1", "INV_X1", {"A": a, "Y": y}, library=lib)
        with pytest.raises(NetlistError):
            m.add_instance("g2", "INV_X1", {"A": a, "Y": y}, library=lib)

    def test_driving_const_rejected(self, lib):
        m = Module("m")
        a = m.add_input("a")
        with pytest.raises(NetlistError):
            m.add_instance("g", "INV_X1", {"A": a, "Y": m.const(0)},
                           library=lib)

    def test_duplicate_instance_rejected(self, lib):
        m = Module("m")
        a = m.add_input("a")
        m.add_instance("g", "INV_X1", {"A": a, "Y": m.add_net()},
                       library=lib)
        with pytest.raises(NetlistError):
            m.add_instance("g", "INV_X1", {"A": a, "Y": m.add_net()},
                           library=lib)

    def test_cell_name_requires_library(self):
        m = Module("m")
        with pytest.raises(NetlistError):
            m.add_instance("g", "INV_X1", {})

    def test_foreign_net_rejected(self, lib):
        m1, m2 = Module("m1"), Module("m2")
        a = m1.add_input("a")
        with pytest.raises(NetlistError):
            m2.add_instance("g", "INV_X1", {"A": a, "Y": m2.add_net()},
                            library=lib)

    def test_remove_instance_detaches(self, lib):
        m = Module("m")
        a = m.add_input("a")
        y = m.add_net("y")
        inst = m.add_instance("g", "INV_X1", {"A": a, "Y": y}, library=lib)
        m.remove_instance("g")
        assert y.driver is None
        assert (inst, "A") not in a.loads
        assert not any(i.name == "g" for i in m.instances())


class TestHierarchyAndFlatten:
    def _hier(self, lib):
        child = Module("child")
        ca = child.add_input("a")
        cy = child.add_output("y")
        child.add_instance("inv", "INV_X1", {"A": ca, "Y": cy}, library=lib)

        top = Module("top")
        a = top.add_input("a")
        y = top.add_output("y")
        mid = top.add_net("mid")
        top.add_instance("u0", child, {"a": a, "y": mid})
        top.add_instance("u1", child, {"a": mid, "y": y})
        return Design(top, lib)

    def test_design_registers_modules(self, lib):
        d = self._hier(lib)
        assert set(d.modules) == {"top", "child"}

    def test_flatten_structure(self, lib):
        flat = self._hier(lib).flatten()
        names = sorted(i.name for i in flat.top.instances())
        assert names == ["u0/inv", "u1/inv"]
        assert all(i.is_cell for i in flat.top.instances())

    def test_flatten_preserves_function(self, lib):
        from repro.sim.event import Simulator

        flat = self._hier(lib).flatten()
        sim = Simulator(flat.top)
        sim.set_input("a", 1)
        assert sim.value("y") == 1  # double inversion
        sim.set_input("a", 0)
        assert sim.value("y") == 0

    def test_flatten_maps_constants(self, lib):
        child = Module("c")
        cy = child.add_output("y")
        child.add_instance("g", "OR2_X1",
                           {"A": child.const(1), "B": child.const(0),
                            "Y": cy}, library=lib)
        top = Module("t")
        y = top.add_output("y")
        top.add_instance("u", child, {"y": y})
        flat = Design(top, lib).flatten()
        g = flat.top.instance("u/g")
        assert g.net("A").const_value == 1
        assert g.net("B").const_value == 0

    def test_two_modules_same_name_rejected(self, lib):
        m1 = Module("dup")
        m2 = Module("dup")
        top = Module("top")
        top.add_instance("u0", m1, {})
        top.add_instance("u1", m2, {})
        with pytest.raises(NetlistError):
            Design(top, lib)
