"""The synthetic 90nm library."""

import pytest

from repro.tech.library import CellKind
from repro.tech.scl90 import (
    HEADER_SIZES,
    SCL90_VDD_NOM,
    Scl90Tuning,
    build_scl90,
)


class TestInventory:
    ESSENTIAL = [
        "INV_X1", "BUF_X1", "NAND2_X1", "NOR2_X1", "AND2_X1", "OR2_X1",
        "XOR2_X1", "XNOR2_X1", "MUX2_X1", "AOI21_X1", "OAI21_X1",
        "HA_X1", "FA_X1", "DFF_X1", "DFFR_X1", "DFFE_X1",
        "ISO_AND_X1", "ISO_OR_X1", "TIEHI_X1", "TIELO_X1",
        "CLKBUF_X4",
    ]

    def test_essential_cells_present(self, lib):
        for name in self.ESSENTIAL:
            assert lib.has_cell(name), name

    def test_header_sizes(self, lib):
        for size in HEADER_SIZES:
            cell = lib.cell("HEADER_X{}".format(size))
            assert cell.kind is CellKind.HEADER
            assert cell.header_ron > 0
            assert cell.header_width == pytest.approx(25.0 * size)

    def test_header_ron_scales_inversely(self, lib):
        r1 = lib.cell("HEADER_X1").header_ron
        r4 = lib.cell("HEADER_X4").header_ron
        assert r1 / r4 == pytest.approx(4.0, rel=1e-6)

    def test_nominal_voltage(self, lib):
        assert lib.vdd_nom == SCL90_VDD_NOM == 0.6


class TestCellCharacteristics:
    def test_drive_strengths_scale(self, lib):
        x1, x2, x4 = (lib.cell("INV_X{}".format(s)) for s in (1, 2, 4))
        assert x1.drive_resistance > x2.drive_resistance \
            > x4.drive_resistance
        assert x1.area < x2.area < x4.area
        assert x1.leakage < x2.leakage

    def test_leakage_states_cover_all_inputs(self, lib):
        nand = lib.cell("NAND2_X1")
        assert len(nand.leakage_states) == 4
        fa = lib.cell("FA_X1")
        assert len(fa.leakage_states) == 8

    def test_stack_effect_direction(self, lib):
        """All-low inputs leak less than all-high (stacking)."""
        nand = lib.cell("NAND2_X1")
        low = nand.leakage_for_state({"A": 0, "B": 0})
        high = nand.leakage_for_state({"A": 1, "B": 1})
        assert low < nand.leakage < high

    def test_fa_functions(self, lib):
        fa = lib.cell("FA_X1")
        for a in (0, 1):
            for b in (0, 1):
                for ci in (0, 1):
                    total = a + b + ci
                    vals = {"A": a, "B": b, "CI": ci}
                    assert fa.pin("S").expr.eval(vals) == total % 2
                    assert fa.pin("CO").expr.eval(vals) == total // 2

    def test_dff_has_timing(self, lib):
        dff = lib.cell("DFF_X1")
        assert dff.setup > 0
        assert dff.hold > 0
        assert dff.intrinsic_delay > 0  # clock-to-Q
        assert dff.setup > dff.hold

    def test_iso_cell_functions(self, lib):
        iso_and = lib.cell("ISO_AND_X1")
        assert iso_and.pin("Y").expr.eval({"A": 1, "ISO": 1}) == 0  # clamped
        assert iso_and.pin("Y").expr.eval({"A": 1, "ISO": 0}) == 1
        iso_or = lib.cell("ISO_OR_X1")
        assert iso_or.pin("Y").expr.eval({"A": 0, "ISO": 1}) == 1

    def test_tie_cells(self, lib):
        assert lib.cell("TIEHI_X1").pin("Y").expr.eval({}) == 1
        assert lib.cell("TIELO_X1").pin("Y").expr.eval({}) == 0


class TestTuning:
    def test_custom_tuning_applies(self):
        default = Scl90Tuning()
        tuned = build_scl90(
            Scl90Tuning(leak_per_t=2 * default.leak_per_t))
        ref = build_scl90()
        assert tuned.cell("INV_X1").leakage == pytest.approx(
            2 * ref.cell("INV_X1").leakage)

    def test_header_leakage_is_hvt_derived(self, lib):
        """Residual header leakage comes from the hvt device model."""
        hdr = lib.cell("HEADER_X1")
        model = lib.device_model("hvt")
        expected = model.total_leakage(0.6, hdr.header_width) * 0.6
        assert hdr.leakage == pytest.approx(expected)

    def test_headers_leak_much_less_than_logic_under_them(self, lib):
        """The gated residual must be far below gated-logic leakage for
        SCPG to make sense at all."""
        hdr = lib.cell("HEADER_X2")
        nand = lib.cell("NAND2_X1")
        # One X2 header serves dozens of gates: compare per-gate scales.
        assert hdr.leakage < 50 * nand.leakage
