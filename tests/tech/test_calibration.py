"""Calibration anchors: the shipped scl90 constants must keep reproducing
the paper's derived quantities within the documented tolerances.

These tests are the guard-rail for DESIGN.md section 5: they measure the
generated designs against the Table I/II decomposition.  Tolerances are
deliberately generous -- the claim is shape, not HSpice-equality.
"""

import pytest

from repro.power.leakage import leakage_power
from repro.sta.analysis import TimingAnalysis
from repro.tech.calibration import (
    CORTEX_M0_ANCHORS,
    MULTIPLIER_ANCHORS,
    TABLE_I_ROWS,
    TABLE_II_ROWS,
    relative_error,
)


class TestAnchorData:
    def test_table_shapes(self):
        assert len(TABLE_I_ROWS) == 8
        assert len(TABLE_II_ROWS) == 6
        assert MULTIPLIER_ANCHORS.rows == TABLE_I_ROWS
        assert CORTEX_M0_ANCHORS.rows == TABLE_II_ROWS

    def test_rows_monotone_in_frequency(self):
        for rows in (TABLE_I_ROWS, TABLE_II_ROWS):
            freqs = [r.freq_hz for r in rows]
            assert freqs == sorted(freqs)
            powers = [r.power_nopg for r in rows]
            assert powers == sorted(powers)

    def test_derived_leakage_split(self):
        a = MULTIPLIER_ANCHORS
        assert a.leakage_comb == pytest.approx(
            a.leakage_total - a.leakage_alwayson)
        assert 0 < a.leakage_alwayson < a.leakage_comb

    def test_relative_error_helper(self):
        assert relative_error(11, 10) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0
        assert relative_error(1, 0) == float("inf")


class TestMultiplierCalibration:
    def test_total_leakage(self, lib, mult_module):
        report = leakage_power(mult_module, lib)
        assert relative_error(
            report.total, MULTIPLIER_ANCHORS.leakage_total) < 0.25

    def test_combinational_share(self, lib, mult_module):
        report = leakage_power(mult_module, lib)
        assert relative_error(
            report.combinational, MULTIPLIER_ANCHORS.leakage_comb) < 0.25

    def test_gate_count_comparable(self, lib, mult_module):
        from repro.netlist.stats import module_stats

        stats = module_stats(mult_module)
        assert relative_error(
            stats.comb_gates, MULTIPLIER_ANCHORS.comb_gates) < 0.25

    def test_fmax_at_50pct_duty_near_table_top(self, lib, mult_module):
        sta = TimingAnalysis(mult_module, lib).run()
        fmax_scpg = 1.0 / (2 * sta.min_period)
        # Table I's top row (14.3 MHz) must be feasible, and Fmax must not
        # be wildly above it.
        assert fmax_scpg >= MULTIPLIER_ANCHORS.fmax_hz
        assert fmax_scpg < 2.5 * MULTIPLIER_ANCHORS.fmax_hz


class TestCortexM0Calibration:
    def test_total_leakage(self, lib, m0_module):
        report = leakage_power(m0_module, lib)
        assert relative_error(
            report.total, CORTEX_M0_ANCHORS.leakage_total) < 0.35

    def test_combinational_share(self, lib, m0_module):
        report = leakage_power(m0_module, lib)
        assert relative_error(
            report.combinational, CORTEX_M0_ANCHORS.leakage_comb) < 0.35

    def test_gate_count_comparable(self, lib, m0_module):
        from repro.netlist.stats import module_stats

        stats = module_stats(m0_module)
        assert relative_error(
            stats.comb_gates, CORTEX_M0_ANCHORS.comb_gates) < 0.30

    def test_m0_leaks_more_than_multiplier(self, lib, m0_module,
                                           mult_module):
        assert leakage_power(m0_module, lib).total > \
            5 * leakage_power(mult_module, lib).total

    def test_table_ii_top_row_feasible(self, lib, m0_module):
        sta = TimingAnalysis(m0_module, lib).run()
        fmax_scpg = 1.0 / (2 * sta.min_period)
        assert fmax_scpg >= CORTEX_M0_ANCHORS.fmax_hz
