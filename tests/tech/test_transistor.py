"""Device model physics sanity."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.tech.scl90 import HVT, SVT
from repro.tech.transistor import DeviceModel, DeviceParams, thermal_voltage


@pytest.fixture(scope="module")
def svt():
    return DeviceModel(SVT)


@pytest.fixture(scope="module")
def hvt():
    return DeviceModel(HVT)


class TestThermalVoltage:
    def test_room_temperature(self):
        assert thermal_voltage(25.0) == pytest.approx(0.0257, rel=1e-2)

    def test_increases_with_temperature(self):
        assert thermal_voltage(125.0) > thermal_voltage(25.0)


class TestCurrents:
    def test_on_current_positive_and_monotonic(self, svt):
        prev = 0.0
        for vdd in (0.2, 0.3, 0.4, 0.6, 0.9, 1.2):
            i = svt.on_current(vdd)
            assert i > prev
            prev = i

    def test_on_current_scales_with_width(self, svt):
        assert svt.on_current(0.6, 10.0) == pytest.approx(
            10 * svt.on_current(0.6, 1.0))

    def test_zero_supply(self, svt):
        assert svt.on_current(0.0) == 0.0
        assert svt.subthreshold_leakage(0.0) == 0.0
        assert svt.gate_leakage(0.0) == 0.0

    def test_subthreshold_slope(self, svt):
        """Leakage grows ~exponentially: one decade per n*vT*ln(10) of Vth."""
        import math

        delta = SVT.n * thermal_voltage(25.0) * math.log(10.0)
        p_low = SVT.scaled(vth=SVT.vth - delta)
        low = DeviceModel(p_low).subthreshold_leakage(0.6)
        high = DeviceModel(SVT).subthreshold_leakage(0.6)
        assert low / high == pytest.approx(10.0, rel=0.25)

    def test_dibl_raises_leakage_with_vdd(self, svt):
        assert svt.subthreshold_leakage(0.9) > svt.subthreshold_leakage(0.6)

    def test_hvt_leaks_less_and_drives_less(self, svt, hvt):
        assert hvt.subthreshold_leakage(0.6) < svt.subthreshold_leakage(0.6)
        assert hvt.on_current(0.6) < svt.on_current(0.6)

    def test_on_off_ratio_healthy(self, svt):
        ratio = svt.on_current(0.6) / svt.subthreshold_leakage(0.6)
        assert ratio > 1e3

    def test_gate_leakage_exponential_in_vdd(self, svt):
        g1 = svt.gate_leakage(0.6)
        g2 = svt.gate_leakage(0.8)
        assert g2 > g1 > 0
        assert g2 / g1 == pytest.approx(math.exp(SVT.gate_leak_exp * 0.2),
                                        rel=1e-6)

    def test_total_leakage_is_sum(self, svt):
        assert svt.total_leakage(0.6) == pytest.approx(
            svt.subthreshold_leakage(0.6) + svt.gate_leakage(0.6))


class TestTemperature:
    def test_leakage_rises_with_temperature(self, svt):
        hot = svt.at_temperature(85.0)
        assert hot.subthreshold_leakage(0.6) > svt.subthreshold_leakage(0.6)

    def test_drive_falls_with_temperature(self, svt):
        hot = svt.at_temperature(85.0)
        assert hot.on_current(0.9) < svt.on_current(0.9)


class TestScaling:
    def test_delay_scale_identity(self, svt):
        assert svt.delay_scale(0.6, 0.6) == pytest.approx(1.0)

    def test_delay_explodes_at_low_vdd(self, svt):
        assert svt.delay_scale(0.31, 0.6) > 3.0
        assert svt.delay_scale(0.20, 0.6) > svt.delay_scale(0.31, 0.6)

    def test_leakage_scale_identity(self, svt):
        assert svt.leakage_scale(0.6, 0.6) == pytest.approx(1.0)

    def test_on_resistance(self, svt):
        r = svt.on_resistance(0.6, 50.0)
        assert r == pytest.approx(0.6 / svt.on_current(0.6, 50.0))
        assert svt.on_resistance(0.0) == math.inf

    @given(st.floats(min_value=0.15, max_value=1.2))
    def test_delay_scale_monotone_decreasing(self, svt, vdd):
        # Higher supply is never slower.
        assert svt.delay_scale(vdd, 0.6) >= svt.delay_scale(
            min(vdd + 0.05, 1.25), 0.6) * 0.999


class TestParams:
    def test_scaled_copy(self):
        p = SVT.scaled(vth=0.4)
        assert p.vth == 0.4
        assert p.i_spec == SVT.i_spec
        assert SVT.vth != 0.4  # frozen original untouched
