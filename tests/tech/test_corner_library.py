"""Library corner views (with_devices / ref_devices)."""

import pytest

from repro.tech.scl90 import build_scl90


class TestWithDevices:
    def test_reference_anchoring(self, lib):
        """Scaling in a corner library references the original devices,
        so a global Vth shift does not cancel out."""
        shifted = {
            name: params.scaled(vth=params.vth + 0.05)
            for name, params in lib.devices.items()
        }
        corner = lib.with_devices(shifted)
        assert corner.leakage_scale(lib.vdd_nom) < 0.5
        assert corner.delay_scale(lib.vdd_nom) > 1.0
        # The original is untouched.
        assert lib.leakage_scale(lib.vdd_nom) == pytest.approx(1.0)

    def test_cells_shared_not_copied(self, lib):
        corner = lib.with_devices(dict(lib.devices))
        assert corner.cell("FA_X1") is lib.cell("FA_X1")
        assert len(corner) == len(lib)

    def test_identity_corner(self, lib):
        corner = lib.with_devices(dict(lib.devices))
        assert corner.delay_scale(0.45) == pytest.approx(
            lib.delay_scale(0.45))

    def test_chained_corners_keep_original_reference(self, lib):
        shift = lambda devs, dv: {
            n: p.scaled(vth=p.vth + dv) for n, p in devs.items()
        }
        once = lib.with_devices(shift(lib.devices, 0.03))
        twice = once.with_devices(shift(once.devices, 0.03))
        direct = lib.with_devices(shift(lib.devices, 0.06))
        assert twice.leakage_scale(0.6) == pytest.approx(
            direct.leakage_scale(0.6))
