"""Liberty-lite reader/writer."""

import pytest

from repro.errors import LibertySyntaxError
from repro.tech.liberty import (
    dumps_liberty,
    loads_liberty,
    read_liberty,
    write_liberty,
)
from repro.tech.library import CellKind


class TestRoundTrip:
    def test_full_library(self, lib):
        text = dumps_liberty(lib)
        lib2 = loads_liberty(text)
        assert lib2.name == lib.name
        assert lib2.vdd_nom == lib.vdd_nom
        assert len(lib2) == len(lib)
        assert set(lib2.devices) == set(lib.devices)

    def test_cell_fields_preserved(self, lib):
        lib2 = loads_liberty(dumps_liberty(lib))
        for name in ("NAND2_X1", "DFF_X1", "HEADER_X2", "ISO_AND_X1",
                     "TIEHI_X1"):
            a, b = lib.cell(name), lib2.cell(name)
            assert a.kind == b.kind
            assert a.area == pytest.approx(b.area)
            assert a.leakage == pytest.approx(b.leakage)
            assert a.intrinsic_delay == pytest.approx(b.intrinsic_delay)
            assert a.setup == pytest.approx(b.setup)
            assert a.header_ron == pytest.approx(b.header_ron)
            assert len(a.leakage_states) == len(b.leakage_states)
            assert [p.name for p in a.pins] == [p.name for p in b.pins]

    def test_functions_preserved(self, lib):
        lib2 = loads_liberty(dumps_liberty(lib))
        fa = lib2.cell("FA_X1")
        assert fa.pin("S").expr.eval({"A": 1, "B": 1, "CI": 1}) == 1
        assert fa.pin("CO").expr.eval({"A": 1, "B": 0, "CI": 0}) == 0

    def test_clock_flag_preserved(self, lib):
        lib2 = loads_liberty(dumps_liberty(lib))
        assert lib2.cell("DFF_X1").clock_pin.name == "CK"

    def test_device_scaling_preserved(self, lib):
        lib2 = loads_liberty(dumps_liberty(lib))
        assert lib2.delay_scale(0.31) == pytest.approx(lib.delay_scale(0.31))
        assert lib2.leakage_scale(0.4) == pytest.approx(
            lib.leakage_scale(0.4))

    def test_file_roundtrip(self, lib, tmp_path):
        path = tmp_path / "scl90.lib"
        write_liberty(lib, path)
        lib2 = read_liberty(path)
        assert len(lib2) == len(lib)


class TestParser:
    def test_minimal_library(self):
        text = """
        library (mini) {
          nom_voltage : 0.6;
          device (svt) { vth : 0.26; n : 1.35; i_spec : 1e-05; }
          device (hvt) { vth : 0.38; n : 1.4; i_spec : 5e-06; }
          cell (INV) {
            area : 2.0;
            cell_kind : comb;
            pin (A) { direction : input; capacitance : 1e-15; }
            pin (Y) { direction : output; function : "!A"; }
          }
        }
        """
        lib = loads_liberty(text)
        assert lib.cell("INV").kind is CellKind.COMBINATIONAL
        assert lib.cell("INV").pin("Y").expr.eval({"A": 1}) == 0

    def test_comments_ignored(self):
        text = """
        // line comment
        library (c) { /* block
        comment */ nom_voltage : 0.6;
          device (svt) { vth : 0.3; n : 1.3; i_spec : 1e-05; }
          device (hvt) { vth : 0.4; n : 1.4; i_spec : 5e-06; }
        }
        """
        assert loads_liberty(text).vdd_nom == 0.6

    def test_unknown_attributes_ignored(self):
        text = """
        library (c) {
          nom_voltage : 0.6;
          some_vendor_thing : 42;
          device (svt) { vth : 0.3; n : 1.3; i_spec : 1e-05; }
          device (hvt) { vth : 0.4; n : 1.4; i_spec : 5e-06; }
          cell (TIE) {
            cell_kind : tie;
            weird_attr : "hello world";
            pin (Y) { direction : output; function : "1"; }
          }
        }
        """
        lib = loads_liberty(text)
        assert lib.cell("TIE").kind is CellKind.TIE

    @pytest.mark.parametrize("bad", [
        "cell (X) { }",                       # no library wrapper
        "library (x) { cell (A) ",            # unterminated
        "library (x) { foo bar; }",           # not attr or group
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(LibertySyntaxError):
            loads_liberty(bad)
