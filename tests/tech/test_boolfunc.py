"""Boolean expression parser/evaluator."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LibraryError
from repro.tech.boolfunc import BoolExpr


class TestParsing:
    def test_inputs_collected_sorted(self):
        e = BoolExpr("(B & A) | C")
        assert e.inputs == ("A", "B", "C")

    def test_constants(self):
        assert BoolExpr("1").eval({}) == 1
        assert BoolExpr("0").eval({}) == 0

    def test_alternative_operators(self):
        assert BoolExpr("A * B").eval({"A": 1, "B": 1}) == 1
        assert BoolExpr("A + B").eval({"A": 0, "B": 1}) == 1

    @pytest.mark.parametrize("bad", [
        "A &", "& A", "(A", "A)", "A @ B", "", "A ! B",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(LibraryError):
            BoolExpr(bad)

    def test_equality_and_hash(self):
        assert BoolExpr("A & B") == BoolExpr("A & B")
        assert BoolExpr("A & B") != BoolExpr("A | B")
        assert len({BoolExpr("A"), BoolExpr("A")}) == 1


class TestEvaluation:
    @pytest.mark.parametrize("expr,vals,expected", [
        ("!A", {"A": 0}, 1),
        ("!A", {"A": 1}, 0),
        ("A & B", {"A": 1, "B": 1}, 1),
        ("A & B", {"A": 1, "B": 0}, 0),
        ("A | B", {"A": 0, "B": 0}, 0),
        ("A ^ B", {"A": 1, "B": 0}, 1),
        ("A ^ B", {"A": 1, "B": 1}, 0),
        ("!((A & B) | C)", {"A": 1, "B": 1, "C": 0}, 0),
        ("(A & !S) | (B & S)", {"A": 0, "B": 1, "S": 1}, 1),
        ("A ^ B ^ CI", {"A": 1, "B": 1, "CI": 1}, 1),
    ])
    def test_cases(self, expr, vals, expected):
        assert BoolExpr(expr).eval(vals) == expected

    def test_unknown_propagates(self):
        assert BoolExpr("A & B").eval({"A": 1, "B": None}) is None
        assert BoolExpr("!A").eval({"A": None}) is None
        assert BoolExpr("A ^ B").eval({"A": 1, "B": None}) is None

    def test_controlling_values_beat_unknown(self):
        assert BoolExpr("A & B").eval({"A": 0, "B": None}) == 0
        assert BoolExpr("A | B").eval({"A": 1, "B": None}) == 1

    def test_missing_variable_is_unknown(self):
        assert BoolExpr("A & B").eval({"A": 1}) is None

    def test_truth_table_size(self):
        rows = list(BoolExpr("A ^ B ^ CI").truth_table())
        assert len(rows) == 8
        # Parity function: output equals popcount parity.
        for assignment, out in rows:
            assert out == (sum(assignment.values()) % 2)


@st.composite
def _expr_and_python(draw, depth=0):
    """Random expression tree with an equivalent python lambda source."""
    choices = ["var", "const", "not", "and", "or", "xor"]
    if depth > 3:
        choices = ["var", "const"]
    kind = draw(st.sampled_from(choices))
    if kind == "var":
        name = draw(st.sampled_from(["A", "B", "C"]))
        return name, "v['{}']".format(name)
    if kind == "const":
        bit = draw(st.integers(0, 1))
        return str(bit), str(bit)
    if kind == "not":
        sub, py = draw(_expr_and_python(depth + 1))
        return "!({})".format(sub), "(1-({}))".format(py)
    a, pa = draw(_expr_and_python(depth + 1))
    b, pb = draw(_expr_and_python(depth + 1))
    op = {"and": ("&", "&"), "or": ("|", "|"), "xor": ("^", "^")}[kind]
    return "({}) {} ({})".format(a, op[0], b), \
        "(({}) {} ({}))".format(pa, op[1], pb)


class TestPropertyBased:
    @given(_expr_and_python(),
           st.integers(0, 1), st.integers(0, 1), st.integers(0, 1))
    def test_matches_python_semantics(self, pair, a, b, c):
        text, py = pair
        v = {"A": a, "B": b, "C": c}
        expected = eval(py, {"v": v}) & 1
        assert BoolExpr(text).eval(v) == expected
