"""Cell/library object model."""

import pytest

from repro.errors import LibraryError
from repro.tech.library import (
    Cell,
    CellKind,
    LeakageState,
    Library,
    Pin,
    PinDirection,
)
from repro.tech.scl90 import HVT, SVT


def _make_cell(name="G", kind=CellKind.COMBINATIONAL):
    return Cell(
        name=name,
        kind=kind,
        area=2.0,
        pins=[
            Pin("A", PinDirection.INPUT, capacitance=1e-15),
            Pin("Y", PinDirection.OUTPUT, function="!A"),
        ],
        leakage=1e-9,
        leakage_states=[
            LeakageState(power=2e-9, when="A"),
            LeakageState(power=0.5e-9, when="!A"),
        ],
        intrinsic_delay=1e-10,
        drive_resistance=1e4,
        c_internal=2e-15,
    )


class TestCell:
    def test_pin_lookup(self):
        cell = _make_cell()
        assert cell.pin("A").direction is PinDirection.INPUT
        assert cell.has_pin("Y")
        assert not cell.has_pin("Z")
        with pytest.raises(LibraryError):
            cell.pin("Z")

    def test_duplicate_pins_rejected(self):
        with pytest.raises(LibraryError):
            Cell("BAD", CellKind.COMBINATIONAL, 1.0, pins=[
                Pin("A", PinDirection.INPUT),
                Pin("A", PinDirection.OUTPUT),
            ])

    def test_inputs_outputs(self):
        cell = _make_cell()
        assert [p.name for p in cell.inputs] == ["A"]
        assert [p.name for p in cell.outputs] == ["Y"]

    def test_output_expr_parsed(self):
        cell = _make_cell()
        assert cell.pin("Y").expr.eval({"A": 0}) == 1

    def test_delay_linear_in_load(self):
        cell = _make_cell()
        d0 = cell.delay(0.0)
        d1 = cell.delay(5e-15)
        assert d0 == pytest.approx(1e-10)
        assert d1 == pytest.approx(1e-10 + 1e4 * 5e-15)

    def test_delay_scaling(self):
        cell = _make_cell()
        assert cell.delay(1e-15, scale=2.0) == pytest.approx(
            2 * cell.delay(1e-15))

    def test_switching_energy(self):
        cell = _make_cell()
        e = cell.switching_energy(3e-15, 0.6)
        assert e == pytest.approx(0.5 * 5e-15 * 0.36)

    def test_state_dependent_leakage(self):
        cell = _make_cell()
        assert cell.leakage_for_state({"A": 1}) == pytest.approx(2e-9)
        assert cell.leakage_for_state({"A": 0}) == pytest.approx(0.5e-9)
        # Unknown state falls back to the average.
        assert cell.leakage_for_state({"A": None}) == pytest.approx(1e-9)

    def test_leakage_for_state_memoised(self, monkeypatch):
        """The state scan runs once per distinct pin-value tuple; a
        repeat hit never re-evaluates the match expressions."""
        cell = _make_cell()
        calls = []
        orig = LeakageState.matches

        def counting(self, values):
            calls.append(values)
            return orig(self, values)

        monkeypatch.setattr(LeakageState, "matches", counting)
        first = cell.leakage_for_state({"A": 0})
        scans = len(calls)
        assert scans > 0
        # Same tuple again: answer served from the memo, zero scans.
        assert cell.leakage_for_state({"A": 0}) == first
        assert len(calls) == scans
        # Missing pin and explicit None share a key (the expression
        # evaluator's values.get handling makes them equivalent).
        cell.leakage_for_state({"A": None})
        after_none = len(calls)
        cell.leakage_for_state({})
        assert len(calls) == after_none

    def test_memo_is_per_cell(self):
        a, b = _make_cell(), _make_cell()
        assert a.leakage_for_state({"A": 1}) == pytest.approx(2e-9)
        assert a._state_memo and not b._state_memo

    def test_kind_queries(self):
        comb = _make_cell()
        assert comb.is_combinational and not comb.is_sequential
        ff = Cell("FF", CellKind.SEQUENTIAL, 5.0, pins=[
            Pin("D", PinDirection.INPUT),
            Pin("CK", PinDirection.INPUT, is_clock=True),
            Pin("Q", PinDirection.OUTPUT),
        ])
        assert ff.is_sequential and not ff.is_combinational
        assert ff.clock_pin.name == "CK"
        assert comb.clock_pin is None


class TestLibrary:
    def _lib(self):
        return Library("testlib", 0.6, {"svt": SVT, "hvt": HVT},
                       wire_cap_per_fanout=1e-15)

    def test_requires_device_flavours(self):
        with pytest.raises(LibraryError):
            Library("bad", 0.6, {"svt": SVT})

    def test_add_and_lookup(self):
        lib = self._lib()
        cell = lib.add_cell(_make_cell())
        assert lib.cell("G") is cell
        assert "G" in lib
        assert len(lib) == 1
        with pytest.raises(LibraryError):
            lib.cell("NOPE")

    def test_duplicate_cell_rejected(self):
        lib = self._lib()
        lib.add_cell(_make_cell())
        with pytest.raises(LibraryError):
            lib.add_cell(_make_cell())

    def test_cells_of_kind(self):
        lib = self._lib()
        lib.add_cell(_make_cell("G1"))
        lib.add_cell(_make_cell("G2", kind=CellKind.BUFFER))
        assert [c.name for c in lib.cells_of_kind(CellKind.BUFFER)] == ["G2"]

    def test_device_model_unknown_flavour(self):
        lib = self._lib()
        with pytest.raises(LibraryError):
            lib.device_model("ulp")

    def test_scaling_identities(self):
        lib = self._lib()
        assert lib.delay_scale(0.6) == pytest.approx(1.0)
        assert lib.leakage_scale(0.6) == pytest.approx(1.0)
        assert lib.energy_scale(0.6) == pytest.approx(1.0)

    def test_scaling_directions(self):
        lib = self._lib()
        assert lib.delay_scale(0.4) > 1.0
        assert lib.leakage_scale(0.4) < 1.0
        assert lib.energy_scale(0.3) == pytest.approx((0.3 / 0.6) ** 2)
