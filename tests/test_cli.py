"""The command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "library scl90" in out
        assert "HEADER_X2" in out
        assert "device svt" in out


class TestLiberty:
    def test_dump_and_reload(self, tmp_path, capsys):
        path = tmp_path / "lib.lib"
        assert main(["liberty", "--out", str(path)]) == 0
        assert main(["--liberty", str(path), "info"]) == 0
        assert "38 cells" in capsys.readouterr().out


class TestNetlist:
    def test_builtin_to_file(self, tmp_path):
        path = tmp_path / "c.v"
        assert main(["netlist", "counter16", "--out", str(path)]) == 0
        assert "module counter16" in path.read_text()

    def test_verilog_file_as_design(self, tmp_path, capsys):
        path = tmp_path / "c.v"
        main(["netlist", "lfsr16", "--out", str(path)])
        assert main(["sta", str(path)]) == 0
        assert "Fmax" in capsys.readouterr().out

    def test_unknown_file(self, capsys):
        assert main(["netlist", "nonexistent.v"]) == 1
        assert "error" in capsys.readouterr().err


class TestDesigns:
    def test_list(self, capsys):
        assert main(["designs", "list"]) == 0
        out = capsys.readouterr().out
        assert "multiplier" in out
        assert "mult16" in out

    def test_show_family(self, capsys):
        assert main(["designs", "show", "multiplier"]) == 0
        out = capsys.readouterr().out
        assert "param" in out
        assert "1 .. 128" in out
        assert "multiplier(n=16, registered=True)" in out

    def test_elaborate_spec(self, tmp_path, capsys):
        path = tmp_path / "m.v"
        assert main(["designs", "elaborate", "multiplier(n=4)",
                     "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "mult4" in out
        assert "module mult4" in path.read_text()

    def test_sweep_family(self, tmp_path, capsys):
        json_path = tmp_path / "sweep.json"
        assert main(["designs", "sweep", "multiplier",
                     "--param", "n=4,8", "--freqs", "100kHz,1MHz",
                     "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "multiplier(n=4, registered=True)" in out
        assert "saving" in out
        import json

        results = json.loads(json_path.read_text())
        assert len(results) == 2
        assert len(results[0]["rows"]) == 2

    def test_target_required(self, capsys):
        assert main(["designs", "show"]) == 1
        assert "needs a target" in capsys.readouterr().err

    def test_unknown_family(self, capsys):
        assert main(["designs", "show", "nonesuch"]) == 1
        assert "nonesuch" in capsys.readouterr().err

    def test_bad_param_value(self, capsys):
        assert main(["designs", "sweep", "multiplier",
                     "--param", "n=0"]) == 1
        assert "multiplier.n" in capsys.readouterr().err


class TestScpg:
    def test_transform_outputs(self, tmp_path, capsys):
        upf = tmp_path / "out.upf"
        vlog = tmp_path / "out.v"
        code = main(["scpg", "mult16", "--upf", str(upf),
                     "--verilog", str(vlog)])
        assert code == 0
        out = capsys.readouterr().out
        assert "HEADER_X2" in out
        assert "area overhead" in out
        assert "create_power_switch" in upf.read_text()
        assert "mult16_comb" in vlog.read_text()

    def test_forced_header_size(self, capsys):
        assert main(["scpg", "counter16", "--header-size", "1"]) == 0
        assert "HEADER_X1" in capsys.readouterr().out

    def test_missing_clock_is_error(self, tmp_path, capsys):
        # An unclocked design: write one by hand.
        src = tmp_path / "comb.v"
        src.write_text(
            "module comb (a, y);\n  input a; output y;\n"
            "  INV_X1 g (.A(a), .Y(y));\nendmodule\n")
        assert main(["scpg", str(src)]) == 1
        assert "clock" in capsys.readouterr().err


class TestReports:
    def test_sta_report(self, capsys):
        assert main(["sta", "counter16"]) == 0
        out = capsys.readouterr().out
        assert "Critical path" in out
        assert "Fmax (SCPG, 50% duty)" in out

    def test_sta_at_voltage(self, capsys):
        main(["sta", "counter16"])
        nominal = capsys.readouterr().out
        main(["sta", "counter16", "--vdd", "0.4"])
        low = capsys.readouterr().out
        assert nominal != low

    def test_power_report(self, capsys):
        assert main(["power", "counter16", "--freq", "5MHz"]) == 0
        out = capsys.readouterr().out
        assert "Leakage by cell group" in out
        assert "Total average power" in out


class TestTable:
    def test_table1_fast(self, capsys, mult_study):
        # mult_study warms the same memoised study the CLI uses.
        assert main(["table", "1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "14.30" in out

    def test_table_to_file(self, tmp_path, mult_study):
        path = tmp_path / "t1.txt"
        assert main(["table", "1", "--fast", "--out", str(path)]) == 0
        assert "Saving" in path.read_text()


class TestSubvtCommand:
    def test_subvt_sweep(self, capsys):
        assert main(["subvt", "counter16"]) == 0
        out = capsys.readouterr().out
        assert "minimum-energy point" in out
        assert "Fmax" in out


class TestObservabilityFlags:
    def test_stats_json_written(self, tmp_path, capsys):
        import json

        path = tmp_path / "stats.json"
        assert main(["--stats-json", str(path), "subvt",
                     "counter16"]) == 0
        capsys.readouterr()
        stats = json.loads(path.read_text())
        assert stats["points"] > 0
        assert stats["crashes"] == 0
        assert "stages" in stats

    def test_journal_written(self, tmp_path, capsys):
        from repro.runner import read_journal

        path = tmp_path / "run.jsonl"
        assert main(["--journal", str(path), "subvt", "counter16"]) == 0
        capsys.readouterr()
        events = [e["event"] for e in read_journal(path)]
        assert "run_start" in events
        assert "point_finished" in events

    def test_flags_leave_stdout_untouched(self, tmp_path, capsys):
        assert main(["subvt", "counter16"]) == 0
        plain = capsys.readouterr().out
        assert main(["--journal", str(tmp_path / "j.jsonl"),
                     "--stats-json", str(tmp_path / "s.json"),
                     "subvt", "counter16"]) == 0
        assert capsys.readouterr().out == plain
        assert main(["--no-artifact-cache", "subvt", "counter16"]) == 0
        assert capsys.readouterr().out == plain

    def test_artifact_cache_keeps_reports_identical(self, capsys):
        for command in (["sta", "counter16"],
                        ["power", "counter16", "--freq", "1MHz"]):
            assert main(command) == 0
            cached = capsys.readouterr().out
            assert main(["--no-artifact-cache"] + command) == 0
            assert capsys.readouterr().out == cached

    def test_trace_written(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.jsonl"
        assert main(["--trace", str(path), "subvt", "counter16"]) == 0
        capsys.readouterr()
        spans = [json.loads(l) for l in path.read_text().splitlines()]
        names = {s["name"] for s in spans}
        assert {"grid", "stage"} <= names
        assert "batch" in names or "point" in names
        assert all(s["event"] == "span" for s in spans)

    def test_metrics_written(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        assert main(["--metrics", str(path), "subvt", "counter16"]) == 0
        capsys.readouterr()
        text = path.read_text()
        assert "# TYPE repro_points_total counter" in text
        assert "repro_point_seconds_count" in text

    def test_trace_and_metrics_leave_stdout_untouched(self, tmp_path,
                                                      capsys):
        assert main(["subvt", "counter16"]) == 0
        plain = capsys.readouterr().out
        assert main(["--trace", str(tmp_path / "t.jsonl"),
                     "--metrics", str(tmp_path / "m.prom"),
                     "subvt", "counter16"]) == 0
        assert capsys.readouterr().out == plain


class TestReportCommand:
    def test_report_over_real_sweep_journal(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        assert main(["--no-cache", "--journal", str(journal),
                     "subvt", "counter16"]) == 0
        capsys.readouterr()
        assert main(["report", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "journal report:" in out
        assert "per-grid breakdown" in out
        assert "stage timings" in out
        assert "result cache" in out

    def test_report_straggler_k_and_out(self, tmp_path, capsys):
        import json

        events = [{"t": 0.0, "event": "run_start", "label": "g",
                   "points": 100, "cached": 0, "pending": 100,
                   "workers": 1, "cache": False}]
        events += [{"t": 0.0, "event": "point_finished", "index": i,
                    "status": "ok", "attempts": 0, "timeouts": 0,
                    "elapsed": 0.5 if i == 99 else 0.01}
                   for i in range(100)]
        events.append({"t": 0.0, "event": "run_finish", "label": "g",
                       "stats": {}})
        journal = tmp_path / "synthetic.jsonl"
        journal.write_text(
            "".join(json.dumps(e) + "\n" for e in events))
        out_path = tmp_path / "report.txt"
        assert main(["report", str(journal), "--straggler-k", "3",
                     "--out", str(out_path)]) == 0
        capsys.readouterr()
        assert "[straggler]" in out_path.read_text()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_table_number(self):
        with pytest.raises(SystemExit):
            main(["table", "3"])
