"""The design database: keys, parameter spaces, memoised elaboration."""

import pytest
from hypothesis import given, strategies as st

from repro.circuits import generators
from repro.circuits.generators import DesignKey, GeneratorError, \
    canonical_key, elaborate, expand_family, family, looks_like_key
from repro.errors import RegistryError, ReproError
from repro.runner.fingerprint import module_fingerprint

FAMILIES = ["adder", "counter", "fir", "lfsr", "m0lite", "multiplier",
            "pipeline", "regfile_alu"]

#: Per family: one out-of-range value and one wrong-typed value for a
#: declared parameter (m0lite has no parameters; covered separately).
BAD_PARAMS = {
    "adder": ({"width": 1}, {"width": "wide"}),
    "counter": ({"width": 0}, {"width": 8.5}),
    "fir": ({"taps": 0}, {"taps": None}),
    "lfsr": ({"width": 5}, {"width": "16"}),
    "multiplier": ({"n": 0}, {"n": True}),
    "pipeline": ({"depth": 33}, {"depth": 4.0}),
    "regfile_alu": ({"nregs": 3}, {"nregs": "8"}),
}


class TestDesignKey:
    def test_equality_and_hash(self):
        a = DesignKey("multiplier", n=16, registered=True)
        b = DesignKey("multiplier", registered=True, n=16)
        assert a == b
        assert hash(a) == hash(b)
        assert a != DesignKey("multiplier", n=8, registered=True)
        assert a != DesignKey("adder", n=16, registered=True)

    def test_immutable(self):
        key = DesignKey("multiplier", n=16)
        with pytest.raises(AttributeError):
            key.n = 8

    def test_str_round_trips_through_parse(self):
        key = DesignKey("adder", width=32, kind="select",
                        registered=True)
        assert DesignKey.parse(str(key)) == key

    def test_parse_value_types(self):
        key = DesignKey.parse(
            "fam(i=3, f=1.5, t=true, s=ripple, q='x y')")
        params = key.params
        assert params == {"i": 3, "f": 1.5, "t": True, "s": "ripple",
                          "q": "x y"}

    def test_parse_rejects_malformed(self):
        for text in ("", "a b", "fam(", "fam(x)", "fam(x=1", "1fam"):
            with pytest.raises(GeneratorError):
                DesignKey.parse(text)

    def test_looks_like_key(self):
        assert looks_like_key("multiplier(n=8)")
        assert looks_like_key("plainword")
        assert not looks_like_key("some/path.v")
        assert not looks_like_key("fam(x=)")

    def test_with_params(self):
        key = DesignKey("multiplier", n=16, registered=True)
        assert key.with_params(n=8) \
            == DesignKey("multiplier", n=8, registered=True)

    def test_generator_error_is_repro_error(self):
        assert issubclass(GeneratorError, RegistryError)
        assert issubclass(GeneratorError, ReproError)


class TestParameterSpaces:
    def test_builtin_families_present(self):
        assert generators.available_families() == FAMILIES

    @pytest.mark.parametrize("name", sorted(BAD_PARAMS))
    def test_out_of_range_rejected(self, name):
        out_of_range, _ = BAD_PARAMS[name]
        with pytest.raises(GeneratorError) as err:
            family(name).key(**out_of_range)
        # The error names family.param so the offender is findable.
        pname = next(iter(out_of_range))
        assert "{}.{}".format(name, pname) in str(err.value)

    @pytest.mark.parametrize("name", sorted(BAD_PARAMS))
    def test_wrong_type_rejected(self, name):
        _, wrong_type = BAD_PARAMS[name]
        with pytest.raises(GeneratorError):
            family(name).key(**wrong_type)

    @pytest.mark.parametrize("name", FAMILIES)
    def test_unknown_parameter_rejected(self, name):
        with pytest.raises(GeneratorError) as err:
            family(name).key(bogus_param=1)
        assert "bogus_param" in str(err.value)

    def test_unknown_family_lists_available(self):
        with pytest.raises(GeneratorError) as err:
            family("nonesuch")
        message = str(err.value)
        assert "nonesuch" in message
        assert "multiplier" in message

    def test_bool_is_not_int(self):
        with pytest.raises(GeneratorError):
            family("multiplier").key(n=True)

    def test_choices_enforced(self):
        with pytest.raises(GeneratorError) as err:
            family("adder").key(kind="sklansky")
        assert "ripple" in str(err.value)

    def test_canonical_key_fills_defaults(self):
        key = canonical_key(DesignKey("multiplier", n=8))
        assert key.params == {"n": 8, "registered": True}
        assert canonical_key("multiplier(n=8)") == key


class TestElaboration:
    def test_memoised_per_library(self, lib):
        key = DesignKey("counter", width=12)
        assert elaborate(key, lib) is elaborate(key, lib)

    def test_fresh_escape_hatch(self, lib):
        key = DesignKey("counter", width=12)
        assert elaborate(key, lib, fresh=True) \
            is not elaborate(key, lib, fresh=True)

    def test_non_canonical_key_shares_memo(self, lib):
        explicit = DesignKey("multiplier", n=16, registered=True)
        defaulted = DesignKey("multiplier", n=16)
        assert elaborate(explicit, lib) is elaborate(defaulted, lib)

    def test_expand_family_orders_axes(self):
        keys = expand_family("pipeline", depth=[2, 4], width=[8, 16])
        assert [(k.params["depth"], k.params["width"]) for k in keys] \
            == [(2, 8), (2, 16), (4, 8), (4, 16)]

    def test_expand_family_scalar_axis(self):
        keys = expand_family("multiplier", n=8)
        assert len(keys) == 1
        assert keys[0].params["n"] == 8

    def test_expand_family_unknown_axis(self):
        with pytest.raises(GeneratorError):
            expand_family("multiplier", nn=[4, 8])

    @pytest.mark.parametrize("name", FAMILIES)
    def test_every_family_elaborates(self, name, lib):
        module = elaborate(family(name).key(), lib)
        assert module.name
        assert list(module.cell_instances())

    @given(n=st.integers(min_value=2, max_value=10),
           registered=st.booleans())
    def test_same_key_fingerprint_identical(self, n, registered, lib):
        # Two *fresh* elaborations of one key are structurally identical
        # down to the content fingerprint (no hidden global state).
        key = DesignKey("multiplier", n=n, registered=registered)
        first = elaborate(key, lib, fresh=True)
        second = elaborate(key, lib, fresh=True)
        assert first is not second
        assert module_fingerprint(first) == module_fingerprint(second)


class TestRegistration:
    def test_duplicate_family_names_both_sites(self):
        @generators.register_family("probe_family")
        def build_probe(library):
            """Probe family (never elaborated)."""
            raise AssertionError("never built")

        try:
            with pytest.raises(RegistryError) as err:
                @generators.register_family("probe_family")
                def build_probe_again(library):
                    """Clashing probe family."""
                    raise AssertionError("never built")
            assert str(err.value).count("test_generators.py:") == 2
        finally:
            generators.unregister_family("probe_family")
        assert not generators.has_family("probe_family")
