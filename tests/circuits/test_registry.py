"""The design registry: names -> builders, plus Verilog-path fallback."""

import pytest

from repro.circuits import registry
from repro.errors import RegistryError
from repro.netlist.core import Design

BUILTINS = ["counter16", "lfsr16", "m0lite", "mult16"]


class TestRegistry:
    def test_builtins_registered(self):
        assert registry.available_designs() == BUILTINS
        for name in BUILTINS:
            assert registry.is_registered(name)

    def test_build_default_params(self, lib):
        top = registry.build("counter16", lib)
        assert top.name == "counter16"

    def test_build_param_override(self, lib):
        wide = registry.build("counter16", lib, width=24)
        narrow = registry.build("counter16", lib, width=8)
        assert len(list(wide.cell_instances())) \
            > len(list(narrow.cell_instances()))

    def test_entry_metadata(self):
        e = registry.entry("mult16")
        assert e.name == "mult16"
        # Legacy names are database aliases: defaults carry the family
        # spelling (``n``), and the entry knows its canonical key.
        assert e.defaults == {"n": 16}
        assert str(e.key) == "multiplier(n=16, registered=True)"
        assert e.doc

    def test_alias_matches_family_key(self, lib):
        from repro.circuits.generators import DesignKey
        from repro.runner.fingerprint import module_fingerprint

        via_alias = registry.resolve("mult16", lib)
        via_key = registry.resolve(DesignKey("multiplier", n=16), lib)
        assert module_fingerprint(via_alias.top) \
            == module_fingerprint(via_key.top)

    def test_alias_legacy_keyword_still_works(self, lib):
        # Historical API: registry.build("mult16", lib, width=8).
        top = registry.build("mult16", lib, width=8)
        assert top.name == "mult8"

    def test_unknown_name_lists_available(self, lib):
        with pytest.raises(RegistryError) as err:
            registry.resolve("mult32", lib)
        message = str(err.value)
        assert "mult32" in message
        for name in BUILTINS:
            assert name in message

    def test_entry_unknown_name(self):
        with pytest.raises(RegistryError):
            registry.entry("nope")

    def test_resolve_registered(self, lib):
        design = registry.resolve("mult16", lib)
        assert isinstance(design, Design)
        assert design.top.name == "mult16"

    def test_resolve_verilog_path(self, lib, tmp_path, toy_design):
        from repro.netlist.verilog import dumps_verilog

        path = tmp_path / "toy.v"
        path.write_text(dumps_verilog(toy_design))
        design = registry.resolve(str(path), lib)
        assert design.top.name == toy_design.top.name

    def test_resolve_missing_file(self, lib):
        with pytest.raises(FileNotFoundError):
            registry.resolve("missing/file.v", lib)

    def test_params_rejected_for_paths(self, lib):
        with pytest.raises(RegistryError):
            registry.resolve("some/file.v", lib, width=8)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(RegistryError):
            registry.register_design("mult16")(lambda library: None)

    def test_duplicate_registration_names_both_sites(self):
        def first(library):
            raise AssertionError("never built")

        def second(library):
            raise AssertionError("never built")

        registry.register_design("dup_probe")(first)
        try:
            with pytest.raises(RegistryError) as err:
                registry.register_design("dup_probe")(second)
            message = str(err.value)
            assert "dup_probe" in message
            # Both the original and the clashing registration sites are
            # named so the developer can find the offender.
            assert message.count("test_registry.py:") == 2
        finally:
            registry.unregister_design("dup_probe")

    def test_identical_reregistration_is_noop(self):
        def probe(library):
            raise AssertionError("never built")

        registry.register_design("noop_probe")(probe)
        try:
            registry.register_design("noop_probe")(probe)
            assert registry.is_registered("noop_probe")
        finally:
            registry.unregister_design("noop_probe")

    def test_cli_shim_still_resolves(self, lib):
        from repro.cli import _resolve_design

        design = _resolve_design("counter16", lib)
        assert design.top.name == "counter16"
