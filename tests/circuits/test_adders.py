"""Adder generators, verified against Python integers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.adders import (
    carry_select_adder,
    ripple_adder,
    ripple_incrementer,
    subtractor,
)
from repro.circuits.builder import new_module
from repro.errors import NetlistError
from repro.sim.event import Simulator
from repro.sim.testbench import read_bus


def _build_adder(lib, kind, width=8, **kwargs):
    module, b = new_module("dut", lib)
    xs = b.input_bus("x", width)
    ys = b.input_bus("y", width)
    out = b.output_bus("s", width)
    cout = module.add_output("co")
    builders = {
        "ripple": ripple_adder,
        "select": carry_select_adder,
        "sub": subtractor,
    }
    sums, carry = builders[kind](b, xs, ys, **kwargs)
    for s, o in zip(sums, out):
        b.buf(s, y=o)
    b.buf(carry, y=cout)
    return module


def _drive(sim, name, width, value):
    sim.set_inputs(
        {"{}_{}".format(name, i): (value >> i) & 1 for i in range(width)})


class TestRippleAdder:
    @pytest.mark.parametrize("x,y", [
        (0, 0), (1, 1), (255, 1), (200, 100), (127, 128), (255, 255)])
    def test_cases(self, lib, x, y):
        sim = Simulator(_build_adder(lib, "ripple"))
        _drive(sim, "x", 8, x)
        _drive(sim, "y", 8, y)
        total = x + y
        assert read_bus(sim, "s", 8) == total & 0xFF
        assert sim.value("co") == total >> 8

    def test_width_mismatch(self, lib):
        module, b = new_module("bad", lib)
        xs = b.input_bus("x", 4)
        ys = b.input_bus("y", 5)
        with pytest.raises(NetlistError):
            ripple_adder(b, xs, ys)

    def test_decomposed_variant_matches(self, lib):
        sim = Simulator(_build_adder(lib, "ripple", use_compound=False))
        _drive(sim, "x", 8, 173)
        _drive(sim, "y", 8, 99)
        assert read_bus(sim, "s", 8) == (173 + 99) & 0xFF

    def test_decomposed_has_no_fa_cells(self, lib):
        from repro.netlist.stats import module_stats

        module = _build_adder(lib, "ripple", use_compound=False)
        assert module_stats(module).by_cell.get("FA_X1", 0) == 0


class TestCarrySelect:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_matches_python(self, lib, x, y):
        sim = Simulator(_build_adder(lib, "select", width=16, block=4))
        _drive(sim, "x", 16, x)
        _drive(sim, "y", 16, y)
        total = x + y
        assert read_bus(sim, "s", 16) == total & 0xFFFF
        assert sim.value("co") == total >> 16

    def test_shallower_than_ripple(self, lib):
        from repro.netlist.traverse import levelize

        rip = _build_adder(lib, "ripple", width=32)
        sel = _build_adder(lib, "select", width=32, block=8)
        assert max(levelize(sel).values()) < max(levelize(rip).values())


class TestSubtractor:
    @pytest.mark.parametrize("x,y", [(5, 3), (3, 5), (0, 0), (255, 255),
                                     (0, 1), (200, 200)])
    def test_difference_and_borrow(self, lib, x, y):
        sim = Simulator(_build_adder(lib, "sub"))
        _drive(sim, "x", 8, x)
        _drive(sim, "y", 8, y)
        assert read_bus(sim, "s", 8) == (x - y) & 0xFF
        # carry-out = 1 means no borrow (x >= y unsigned)
        assert sim.value("co") == (1 if x >= y else 0)


class TestIncrementer:
    @pytest.mark.parametrize("value,step_bit", [
        (0, 0), (7, 0), (255, 0), (0, 1), (6, 1), (254, 1)])
    def test_increment(self, lib, value, step_bit):
        module, b = new_module("inc", lib)
        xs = b.input_bus("x", 8)
        out = b.output_bus("s", 8)
        sums, _carry = ripple_incrementer(b, xs, step_bit=step_bit)
        for s, o in zip(sums, out):
            b.buf(s, y=o)
        sim = Simulator(module)
        _drive(sim, "x", 8, value)
        assert read_bus(sim, "s", 8) == (value + (1 << step_bit)) & 0xFF
