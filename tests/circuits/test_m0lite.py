"""The M0-lite core: structure and targeted instruction behaviours.

Full randomised ISS-vs-netlist equivalence lives in
``tests/integration/test_cosim_random.py``; these tests pin down specific
architectural corners.
"""

import pytest

from repro.circuits.m0lite import M0LITE_PORTS
from repro.isa.assembler import assemble
from repro.isa.trace import GateLevelCpu, cosimulate
from repro.netlist.stats import module_stats
from repro.netlist.validate import validate_module


class TestStructure:
    def test_valid(self, m0_module):
        assert validate_module(m0_module).ok

    def test_ports_match_contract(self, m0_module):
        for name, width in M0LITE_PORTS.items():
            if width == 0:
                assert m0_module.has_port(name), name
            else:
                assert m0_module.has_port("{}_0".format(name))
                assert m0_module.has_port("{}_{}".format(name, width - 1))

    def test_scale(self, m0_module):
        stats = module_stats(m0_module)
        assert stats.comb_gates > 4500
        assert stats.seq_cells >= 512 + 32  # regfile + PC at least


def _run(core, source, memory=None, max_cycles=20_000):
    result = cosimulate(core, assemble(source), memory,
                        max_cycles=max_cycles)
    assert result.ok, result.mismatches
    return result


class TestInstructions:
    def test_movi_and_addi(self, m0_module):
        _run(m0_module, """
            movi r1, #200
            addi r1, #-73
            halt
        """)

    def test_all_alu_ops(self, m0_module):
        _run(m0_module, """
            movi r1, #170
            movi r2, #5
            mov  r3, r1
            add  r3, r2
            sub  r3, r2
            and  r3, r1
            orr  r3, r2
            eor  r3, r1
            lsl  r3, r2
            lsr  r3, r2
            asr  r3, r2
            mul  r3, r1
            mvn  r4, r3
            cmp  r3, r4
            halt
        """)

    def test_memory_roundtrip(self, m0_module):
        result = _run(m0_module, """
            movi r1, #64
            movi r2, #123
            str  r2, [r1, #0]
            str  r2, [r1, #4]
            ldr  r3, [r1, #4]
            add  r3, r2
            str  r3, [r1, #8]
            halt
        """)
        assert result.instructions == 8

    def test_backward_branch_loop(self, m0_module):
        result = _run(m0_module, """
            movi r1, #5
            movi r2, #0
        loop:
            add  r2, r1
            addi r1, #-1
            bne  loop
            halt
        """)
        # 5 loop iterations; taken branches cost 2 flush bubbles each.
        assert result.cycles > result.instructions

    def test_halt_stops_pipeline(self, m0_module):
        core = m0_module
        prog = assemble("""
            movi r1, #1
            halt
            movi r1, #99
        """)
        gate = GateLevelCpu(core, prog)
        gate.run()
        assert gate.register(1) == 1  # shadow instruction never retires

    def test_branch_shadow_squashed(self, m0_module):
        _run(m0_module, """
            movi r1, #0
            b    over
            movi r1, #66     ; must be flushed
            movi r1, #77     ; must be flushed
        over:
            addi r1, #1
            halt
        """)

    def test_flags_survive_intervening_loads(self, m0_module):
        """Loads/stores must not disturb flags set by an earlier CMP."""
        _run(m0_module, """
            movi r1, #32
            movi r2, #9
            movi r3, #9
            cmp  r2, r3       ; Z=1
            str  r2, [r1, #0]
            ldr  r4, [r1, #0]
            beq  good
            movi r5, #1
            b    done
        good:
            movi r5, #2
        done:
            halt
        """)

    def test_unsigned_vs_signed_compare(self, m0_module):
        _run(m0_module, """
            movi r1, #0
            addi r1, #-1      ; r1 = 0xFFFFFFFF (-1 signed, max unsigned)
            movi r2, #1
            movi r6, #0
            movi r7, #0
            cmp  r1, r2
            blt  signed_less
            b    check_unsigned
        signed_less:
            movi r6, #1
        check_unsigned:
            cmp  r1, r2
            bgeu unsigned_ge
            b    finish
        unsigned_ge:
            movi r7, #1
        finish:
            halt
        """)

    def test_cpi_reasonable(self, m0_module):
        result = _run(m0_module, """
            movi r1, #50
        loop:
            addi r1, #-1
            bne  loop
            halt
        """)
        assert 1.0 < result.cpi < 3.0
