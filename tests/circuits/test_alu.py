"""The M0-lite ALU, against Python reference semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.alu import ALU_OPS, build_alu, lower_half_multiplier
from repro.circuits.builder import new_module
from repro.sim.event import Simulator
from repro.sim.testbench import bus_values, read_bus

MASK = 0xFFFFFFFF


def _signed(v):
    return v - (1 << 32) if v & 0x80000000 else v


def _reference(op, a, b):
    sh = b & 31
    return {
        "add": (a + b) & MASK,
        "sub": (a - b) & MASK,
        "and": a & b,
        "or": a | b,
        "xor": a ^ b,
        "lsr": a >> sh,
        "lsl": (a << sh) & MASK,
        "asr": (_signed(a) >> sh) & MASK,
        "mul": (a * b) & MASK,
        "mvn": (~b) & MASK,
    }[op]


@pytest.fixture(scope="module")
def alu_sim(lib):
    return Simulator(build_alu(lib))


def _apply(sim, op, a, b):
    line = {"lsl": "shift", "lsr": "shift", "asr": "shift"}.get(op, op)
    sim.set_inputs({
        **bus_values("a", 32, a),
        **bus_values("b", 32, b),
        **bus_values("shamt", 5, b & 31),
        **{"op_" + o: (1 if o == line else 0) for o in ALU_OPS},
        "shift_left": 1 if op == "lsl" else 0,
        "shift_arith": 1 if op == "asr" else 0,
    })


ALL_OPS = ["add", "sub", "and", "or", "xor", "lsl", "lsr", "asr", "mul",
           "mvn"]


class TestOperations:
    @pytest.mark.parametrize("op", ALL_OPS)
    @pytest.mark.parametrize("a,b", [
        (0, 0), (1, 1), (MASK, 1), (0x80000000, 0x80000000),
        (0xDEADBEEF, 0x12345678), (5, 31),
    ])
    def test_corner_cases(self, alu_sim, op, a, b):
        _apply(alu_sim, op, a, b)
        assert read_bus(alu_sim, "y", 32) == _reference(op, a, b), (op, a, b)

    @settings(max_examples=50, deadline=None)
    @given(st.sampled_from(ALL_OPS),
           st.integers(0, MASK), st.integers(0, MASK))
    def test_random(self, alu_sim, op, a, b):
        _apply(alu_sim, op, a, b)
        assert read_bus(alu_sim, "y", 32) == _reference(op, a, b)


class TestFlags:
    def test_zero_flag(self, alu_sim):
        _apply(alu_sim, "sub", 77, 77)
        assert alu_sim.value("fz") == 1
        assert alu_sim.value("fn") == 0

    def test_negative_flag(self, alu_sim):
        _apply(alu_sim, "sub", 3, 5)
        assert alu_sim.value("fn") == 1
        assert alu_sim.value("fz") == 0

    def test_carry_is_not_borrow(self, alu_sim):
        _apply(alu_sim, "sub", 9, 3)
        assert alu_sim.value("fc") == 1   # no borrow
        _apply(alu_sim, "sub", 3, 9)
        assert alu_sim.value("fc") == 0   # borrow

    def test_add_carry_out(self, alu_sim):
        _apply(alu_sim, "add", MASK, 1)
        assert alu_sim.value("fc") == 1
        assert alu_sim.value("fz") == 1

    def test_signed_overflow(self, alu_sim):
        _apply(alu_sim, "add", 0x7FFFFFFF, 1)      # max_int + 1
        assert alu_sim.value("fv") == 1
        _apply(alu_sim, "sub", 0x80000000, 1)      # min_int - 1
        assert alu_sim.value("fv") == 1
        _apply(alu_sim, "add", 5, 6)
        assert alu_sim.value("fv") == 0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, MASK), st.integers(0, MASK))
    def test_sub_flags_match_arm_semantics(self, alu_sim, a, b):
        _apply(alu_sim, "sub", a, b)
        res = (a - b) & MASK
        assert alu_sim.value("fz") == (1 if res == 0 else 0)
        assert alu_sim.value("fn") == (res >> 31)
        assert alu_sim.value("fc") == (1 if a >= b else 0)


class TestLowerHalfMultiplier:
    @pytest.mark.parametrize("width", [4, 8])
    def test_exhaustive_small(self, lib, width):
        module, b = new_module("lmul", lib)
        xs = b.input_bus("x", width)
        ys = b.input_bus("y", width)
        out = b.output_bus("p", width)
        prod = lower_half_multiplier(b, xs, ys)
        for s, o in zip(prod, out):
            b.buf(s, y=o)
        sim = Simulator(module)
        step = 1 if width <= 4 else 23
        for x in range(0, 1 << width, step):
            for y in range(0, 1 << width, step):
                sim.set_inputs({
                    **bus_values("x", width, x),
                    **bus_values("y", width, y),
                })
                assert read_bus(sim, "p", width) == \
                    (x * y) & ((1 << width) - 1)
