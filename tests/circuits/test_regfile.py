"""Register file: writes, reads, enables."""

import random

import pytest

from repro.circuits.regfile import build_register_file
from repro.errors import NetlistError
from repro.sim.testbench import ClockedTestbench, bus_values, read_bus


@pytest.fixture()
def rf_tb(lib):
    tb = ClockedTestbench(build_register_file(lib, nregs=8, width=16))
    tb.reset_flops()
    return tb


def _write(tb, addr, value, we=1):
    tb.cycle({
        "we": we,
        **bus_values("waddr", 3, addr),
        **bus_values("wdata", 16, value),
        **bus_values("ra", 3, 0),
        **bus_values("rb", 3, 0),
    })


def _read(tb, port, addr):
    tb.apply(bus_values("ra" if port == "a" else "rb", 3, addr))
    return read_bus(tb.sim, "qa" if port == "a" else "qb", 16)


class TestRegisterFile:
    def test_write_then_read_both_ports(self, rf_tb):
        _write(rf_tb, 3, 0xBEEF)
        assert _read(rf_tb, "a", 3) == 0xBEEF
        assert _read(rf_tb, "b", 3) == 0xBEEF

    def test_write_enable_gates(self, rf_tb):
        _write(rf_tb, 2, 0x1234)
        _write(rf_tb, 2, 0x5678, we=0)
        assert _read(rf_tb, "a", 2) == 0x1234

    def test_write_targets_only_one_register(self, rf_tb):
        for r in range(8):
            _write(rf_tb, r, 0x100 + r)
        _write(rf_tb, 4, 0xAAAA)
        for r in range(8):
            expected = 0xAAAA if r == 4 else 0x100 + r
            assert _read(rf_tb, "a", r) == expected

    def test_random_program_of_writes(self, rf_tb):
        rng = random.Random(9)
        shadow = [0] * 8
        for _ in range(80):
            addr = rng.randrange(8)
            value = rng.getrandbits(16)
            _write(rf_tb, addr, value)
            shadow[addr] = value
        for r in range(8):
            assert _read(rf_tb, "b", r) == shadow[r]

    def test_dual_port_independent_addresses(self, rf_tb):
        _write(rf_tb, 1, 111)
        _write(rf_tb, 5, 555)
        rf_tb.apply({
            **bus_values("ra", 3, 1),
            **bus_values("rb", 3, 5),
        })
        assert read_bus(rf_tb.sim, "qa", 16) == 111
        assert read_bus(rf_tb.sim, "qb", 16) == 555

    def test_bad_nregs_rejected(self, lib):
        from repro.circuits.builder import new_module
        from repro.circuits.regfile import add_register_file

        module, b = new_module("bad", lib)
        clk = module.add_input("clk")
        we = module.add_input("we")
        waddr = b.input_bus("waddr", 2)
        wdata = b.input_bus("wdata", 4)
        ra = b.input_bus("ra", 2)
        with pytest.raises(NetlistError):
            add_register_file(b, clk, waddr, wdata, we, ra, nregs=5)
