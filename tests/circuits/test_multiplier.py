"""The 16-bit array multiplier (case study 1)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.multiplier import build_mult16
from repro.netlist.stats import module_stats
from repro.netlist.validate import validate_module
from repro.sim.event import Simulator
from repro.sim.testbench import ClockedTestbench, bus_values, read_bus


class TestStructure:
    def test_valid(self, mult_module):
        assert validate_module(mult_module).ok

    def test_ports(self, mult_module):
        names = {p.name for p in mult_module.ports}
        assert "clk" in names
        assert "a_0" in names and "a_15" in names
        assert "p_0" in names and "p_31" in names

    def test_register_counts(self, mult_module):
        stats = module_stats(mult_module)
        assert stats.seq_cells == 64  # 2x16 operand + 32 product

    def test_mostly_arithmetic_cells(self, mult_module):
        stats = module_stats(mult_module)
        assert stats.by_cell["AND2_X1"] == 256  # partial products
        assert stats.by_cell["FA_X1"] > 150


class TestRegisteredBehaviour:
    def test_two_cycle_latency(self, lib):
        m = build_mult16(lib)
        tb = ClockedTestbench(m)
        tb.reset_flops()
        tb.cycle({**bus_values("a", 16, 7), **bus_values("b", 16, 9)})
        # One more edge moves the product through the output register.
        tb.cycle({**bus_values("a", 16, 0), **bus_values("b", 16, 0)})
        assert read_bus(tb.sim, "p", 32) == 63

    def test_pipeline_stream(self, lib):
        m = build_mult16(lib)
        tb = ClockedTestbench(m)
        tb.reset_flops()
        rng = random.Random(42)
        prev = None
        for _ in range(60):
            a, b = rng.getrandbits(16), rng.getrandbits(16)
            tb.cycle({**bus_values("a", 16, a), **bus_values("b", 16, b)})
            p = read_bus(tb.sim, "p", 32)
            if prev is not None:
                assert p == prev[0] * prev[1]
            prev = (a, b)


class TestCombinationalCore:
    @pytest.fixture(scope="class")
    def sim(self, lib):
        return Simulator(build_mult16(lib, registered=False))

    @pytest.mark.parametrize("a,b", [
        (0, 0), (1, 1), (0xFFFF, 0xFFFF), (0x8000, 2), (3, 0x5555),
        (65535, 1), (256, 256), (12345, 54321),
    ])
    def test_corner_products(self, sim, a, b):
        sim.set_inputs({**bus_values("a", 16, a), **bus_values("b", 16, b)})
        assert read_bus(sim, "p", 32) == a * b

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_matches_python(self, sim, a, b):
        sim.set_inputs({**bus_values("a", 16, a), **bus_values("b", 16, b)})
        assert read_bus(sim, "p", 32) == a * b


class TestParametricWidths:
    @pytest.mark.parametrize("width", [2, 3, 4, 8])
    def test_exhaustive_small_widths(self, lib, width):
        m = build_mult16(lib, width=width, registered=False)
        sim = Simulator(m)
        step = 1 if width <= 4 else 37
        for a in range(0, 1 << width, step):
            for b in range(0, 1 << width, step):
                sim.set_inputs({
                    **bus_values("a", width, a),
                    **bus_values("b", width, b),
                })
                assert read_bus(sim, "p", 2 * width) == a * b, (a, b)

    def test_width_one(self, lib):
        m = build_mult16(lib, width=1, registered=False)
        sim = Simulator(m)
        for a in (0, 1):
            for b in (0, 1):
                sim.set_inputs({"a_0": a, "b_0": b})
                assert read_bus(sim, "p", 2) == a * b
