"""Barrel shifter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.shifter import build_barrel_shifter
from repro.sim.event import Simulator
from repro.sim.testbench import bus_values, read_bus

MASK = 0xFFFFFFFF


def _signed(v):
    return v - (1 << 32) if v & 0x80000000 else v


@pytest.fixture(scope="module")
def shifter(lib):
    return Simulator(build_barrel_shifter(lib))


def _apply(sim, value, amount, left=0, arith=0):
    sim.set_inputs({
        **bus_values("d", 32, value),
        **bus_values("amt", 5, amount),
        "left": left,
        "arith": arith,
    })
    return read_bus(sim, "y", 32)


class TestShifts:
    @pytest.mark.parametrize("amount", [0, 1, 5, 16, 31])
    def test_lsr(self, shifter, amount):
        assert _apply(shifter, 0xDEADBEEF, amount) == 0xDEADBEEF >> amount

    @pytest.mark.parametrize("amount", [0, 1, 5, 16, 31])
    def test_lsl(self, shifter, amount):
        assert _apply(shifter, 0xDEADBEEF, amount, left=1) == \
            (0xDEADBEEF << amount) & MASK

    @pytest.mark.parametrize("amount", [0, 1, 8, 31])
    def test_asr_negative(self, shifter, amount):
        value = 0x80000001
        assert _apply(shifter, value, amount, arith=1) == \
            (_signed(value) >> amount) & MASK

    def test_asr_positive_is_lsr(self, shifter):
        assert _apply(shifter, 0x40000000, 4, arith=1) == 0x04000000

    def test_left_ignores_arith(self, shifter):
        """LSL with arith set must not sign-fill."""
        assert _apply(shifter, 0x80000001, 1, left=1, arith=1) == \
            0x00000002

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, MASK), st.integers(0, 31),
           st.booleans(), st.booleans())
    def test_random(self, shifter, value, amount, left, arith):
        got = _apply(shifter, value, amount, int(left), int(arith))
        if left:
            expected = (value << amount) & MASK
        elif arith:
            expected = (_signed(value) >> amount) & MASK
        else:
            expected = value >> amount
        assert got == expected


class TestOtherWidths:
    def test_width_8(self, lib):
        sim = Simulator(build_barrel_shifter(lib, width=8))
        sim.set_inputs({
            **bus_values("d", 8, 0b10110001),
            **bus_values("amt", 3, 3),
            "left": 0, "arith": 0,
        })
        assert read_bus(sim, "y", 8) == 0b10110001 >> 3
