"""Counter and LFSR generators."""

import pytest

from repro.circuits.counters import build_counter, build_lfsr
from repro.sim.testbench import ClockedTestbench, read_bus


class TestCounter:
    def test_counts_up(self, lib):
        tb = ClockedTestbench(build_counter(lib, width=6))
        tb.reset_flops()
        for expected in range(1, 20):
            tb.cycle()
            assert read_bus(tb.sim, "q", 6) == expected % 64

    def test_wraps(self, lib):
        tb = ClockedTestbench(build_counter(lib, width=3))
        tb.reset_flops()
        for _ in range(8):
            tb.cycle()
        assert read_bus(tb.sim, "q", 3) == 0


class TestLfsr:
    def test_escapes_zero_state(self, lib):
        tb = ClockedTestbench(build_lfsr(lib, width=8))
        tb.reset_flops()
        tb.cycle()
        assert read_bus(tb.sim, "q", 8) != 0

    def test_period_is_maximal(self, lib):
        """XNOR-form LFSR visits 2^n - 1 states (all-ones is the lockup)."""
        width = 8
        tb = ClockedTestbench(build_lfsr(lib, width=width))
        tb.reset_flops()
        seen = set()
        for _ in range(2 ** width):
            tb.cycle()
            seen.add(read_bus(tb.sim, "q", width))
        assert len(seen) == 2 ** width - 1

    def test_unsupported_width(self, lib):
        with pytest.raises(ValueError):
            build_lfsr(lib, width=7)
