"""The Session facade: registry round-trips and handle-level analyses."""

import pytest

from repro import Session
from repro.errors import RegistryError
from repro.runner import ResultCache
from repro.scpg.power_model import Mode, PowerBreakdown


@pytest.fixture(scope="module")
def session(lib):
    return Session(library=lib, cache=False)


class TestSession:
    def test_designs_match_registry(self, session):
        from repro.circuits.registry import available_designs

        assert session.designs() == available_designs()

    def test_default_library_lazy(self):
        s = Session(cache=False)
        assert s._library is None
        assert s.library.name == "scl90"

    def test_explicit_library_used(self, session, lib):
        assert session.library is lib

    def test_unknown_design(self, session):
        with pytest.raises(RegistryError):
            session.design("mult32").design

    def test_handle_memoises_design(self, session):
        handle = session.design("counter16")
        assert handle.design is handle.design

    def test_families_match_database(self, session):
        from repro.circuits.generators import available_families

        assert session.families() == available_families()

    def test_design_accepts_design_key(self, session):
        from repro.circuits.generators import DesignKey

        handle = session.design(DesignKey("multiplier", n=8))
        assert handle.name == "multiplier(n=8)"
        assert handle.design.top.name == "mult8"

    def test_design_accepts_spec_string(self, session):
        handle = session.design("pipeline(depth=2, width=4)")
        assert handle.design.top.name == "pipe2x4"

    def test_alias_and_key_fingerprints_identical(self, session):
        from repro.circuits.generators import DesignKey

        assert session.design("mult16").fingerprint \
            == session.design(DesignKey("multiplier", n=16)).fingerprint

    def test_expand_family_yields_handles(self, session):
        handles = session.expand_family("multiplier", n=[4, 8])
        assert [h.name for h in handles] \
            == ["multiplier(n=4, registered=True)",
                "multiplier(n=8, registered=True)"]
        assert handles[0].design.top.name == "mult4"

    def test_expand_family_validates_axis(self, session):
        from repro.errors import RegistryError

        with pytest.raises(RegistryError):
            session.expand_family("multiplier", n=[0])

    def test_param_round_trip(self, session):
        handle = session.design("counter16", width=8)
        assert handle.params == {"width": 8}
        assert len(list(handle.design.top.cell_instances())) \
            < len(list(session.design("counter16").design.top
                       .cell_instances()))

    def test_fingerprint_tracks_params(self, session):
        assert session.design("counter16").fingerprint \
            == session.design("counter16").fingerprint
        assert session.design("counter16").fingerprint \
            != session.design("counter16", width=8).fingerprint

    def test_netlist_is_verilog(self, session):
        text = session.design("counter16").netlist()
        assert text.startswith("module counter16")

    def test_cache_settings(self, tmp_path, lib):
        assert Session(library=lib, cache=False).runner.cache is None
        explicit = Session(library=lib, cache=str(tmp_path))
        assert isinstance(explicit.runner.cache, ResultCache)
        # "auto" consults REPRO_CACHE_DIR; either way it must construct.
        auto = Session(library=lib).runner.cache
        assert auto is None or isinstance(auto, ResultCache)

    def test_journal_and_policy_reach_the_runner(self, tmp_path, lib):
        from repro.runner import RunJournal, read_journal

        session = Session(library=lib,
                          journal=tmp_path / "session.jsonl",
                          retry_on=(OSError,), retries=5, backoff=0.01,
                          timeout=30.0)
        assert isinstance(session.journal, RunJournal)
        assert session.runner.retry_on == (OSError,)
        assert session.runner.retries == 5
        assert session.runner.timeout == 30.0

        session.design("counter16").sweep([1e5, 1e6])
        session.close()
        events = [e["event"] for e in read_journal(session.journal.path)]
        assert "run_start" in events
        assert session.stats.to_dict()["points"] > 0


class TestDesignHandleAnalyses:
    """One cheap design exercised end to end through the facade."""

    def test_power_model_and_sweep(self, session):
        handle = session.design("counter16")
        model = handle.power_model()
        breakdown = model.power(1e6, Mode.SCPG)
        assert isinstance(breakdown, PowerBreakdown)

        data = handle.sweep([0.1e6, 1e6])
        assert data.freqs == [0.1e6, 1e6]
        assert session.stats.points >= 6

    def test_table_rows(self, session):
        rows = session.design("counter16").table([0.1e6, 1e6])
        assert [r.freq_hz for r in rows] == [0.1e6, 1e6]
        assert rows[0].saving_scpgmax_pct > 0

    def test_subvt_minimum_energy(self, session):
        mep = session.design("counter16").minimum_energy_point()
        assert 0.15 < mep.vdd < 0.9

    def test_power_report(self, session):
        report = session.design("counter16").power_report(1e6)
        assert report.design == "counter16"
        assert report.total > 0

    def test_results_cached_across_handles(self, tmp_path, lib):
        cached = Session(library=lib, cache=str(tmp_path))
        cached.design("counter16").sweep([1e6])
        evaluated_cold = cached.stats.evaluated
        assert evaluated_cold > 0

        rerun = Session(library=lib, cache=str(tmp_path))
        rerun.design("counter16").sweep([1e6])
        assert rerun.stats.evaluated == 0
        assert rerun.stats.cache_hits == rerun.stats.points


class TestSessionObservability:
    def test_trace_true_collects_spans_in_memory(self, lib):
        session = Session(library=lib, cache=False, trace=True)
        session.design("counter16").sweep([1e6])
        lines = session.tracer.sinks[0].lines
        names = {l["name"] for l in lines}
        assert {"grid", "stage"} <= names
        # the whole grid went through the vectorised kernel here
        assert "batch" in names or "point" in names
        grid = [l for l in lines if l["name"] == "grid"][0]
        assert grid["label"] == "sweep:counter16"

    def test_trace_path_owned_and_closed(self, tmp_path, lib):
        import json

        path = tmp_path / "trace.jsonl"
        session = Session(library=lib, cache=False, trace=str(path))
        session.design("counter16").sweep([1e6])
        session.close()
        assert session.tracer.sinks[0]._file is None
        spans = [json.loads(l) for l in path.read_text().splitlines()]
        assert spans

    def test_caller_tracer_not_closed_by_session(self, lib):
        from repro.obs import MemorySink, Tracer

        tracer = Tracer(MemorySink())
        session = Session(library=lib, cache=False, trace=tracer)
        assert session.tracer is tracer
        session.close()                  # must not touch caller's sinks

    def test_default_is_the_null_tracer(self, session):
        from repro.obs import NULL_TRACER

        assert session.tracer is NULL_TRACER

    def test_metrics_snapshot_subsumes_stats(self, lib):
        session = Session(library=lib, cache=False, metrics=True)
        session.design("counter16").sweep([1e6])
        data = session.metrics().to_dict()
        assert data["repro_points_total"] == session.stats.points
        assert data["repro_point_seconds"]["count"] \
            == session.stats.evaluated

    def test_metrics_on_demand_without_registry(self, lib):
        session = Session(library=lib, cache=False)
        session.design("counter16").sweep([1e6])
        data = session.metrics().to_dict()
        assert data["repro_points_total"] == session.stats.points

    def test_artifact_build_traced(self, lib):
        session = Session(library=lib, cache=False, trace=True)
        session.design("counter16").power_model()
        names = [l["name"] for l in session.tracer.sinks[0].lines]
        assert "artifact_build" in names
