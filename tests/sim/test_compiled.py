"""Differential tests: the levelized SoA engine vs the event simulator.

The compiled engine's contract is *bit-identical* results, not close
ones: every toggle count, activity group, and final net value must equal
what the event-driven :class:`~repro.sim.event.Simulator` produces for
the same workload.  These tests assert exact equality on the paper's two
case-study circuits (mult16 random operands, M0-lite running every
program in ``repro.isa.programs``) and on hypothesis-generated random
DAG netlists, plus the eligibility / fallback / pickling edges of
:class:`~repro.sim.compiled.CompiledSchedule`.
"""

import pickle
import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import SimulationError
from repro.isa.programs import (
    crc32_program,
    dhrystone_memory,
    dhrystone_program,
    fir_program,
)
from repro.isa.trace import GateLevelCpu
from repro.netlist.core import Module
from repro.runner import compile_kernel, kernel_for
from repro.sim.compiled import (
    CompiledSchedule,
    GateSimKernel,
    compile_schedule,
    peek_schedule,
    schedule_for,
)
from repro.sim.event import Simulator
from repro.sim.logic import X
from repro.sim.testbench import bus_values

from ..netlist.test_random_properties import build_random_circuit


def assert_runs_identical(levelized, event):
    """Bit-for-bit equality of two :class:`CompiledRun` results."""
    assert levelized.cycles == event.cycles
    assert levelized.toggle_snapshot() == event.toggle_snapshot()
    assert levelized.final_values == event.final_values
    if event.trace is None:
        assert levelized.trace is None
        return
    lg, eg = levelized.trace.groups, event.trace.groups
    assert len(lg) == len(eg)
    for a, b in zip(lg, eg):
        assert (a.index, a.cycles, a.total_toggles, a.nets) \
            == (b.index, b.cycles, b.total_toggles, b.nets)
        assert a.toggles == b.toggles


def differential(module, vectors, group_size=10, reset=0):
    """Run ``vectors`` through both engines and assert exact equality."""
    schedule = schedule_for(module)
    ok, why = schedule.vector_ready()
    assert ok, why
    fast = schedule.run_vectors(vectors, group_size=group_size,
                                reset=reset)
    assert fast.engine == "levelized"
    slow = schedule._run_event(vectors, clock="clk", reset=reset,
                               group_size=group_size)
    assert_runs_identical(fast, slow)
    return fast


def mult_vectors(count, seed=2011):
    rng = random.Random(seed)
    return [{
        **bus_values("a", 16, rng.getrandbits(16)),
        **bus_values("b", 16, rng.getrandbits(16)),
    } for _ in range(count)]


class TestMult16Differential:
    def test_random_operands_bit_identical(self, mult_module):
        run = differential(mult_module, mult_vectors(40))
        assert run.total_toggles() > 0
        assert len(run.trace.groups) == 4

    def test_partial_vectors_carry_forward(self, mult_module):
        """Unspecified ports hold their previous value, as in apply()."""
        rng = random.Random(7)
        vectors = []
        for i in range(20):
            vec = {}
            if i % 3 != 2:
                vec.update(bus_values("a", 16, rng.getrandbits(16)))
            if i % 2 == 0:
                vec.update(bus_values("b", 16, rng.getrandbits(16)))
            vectors.append(vec)
        vectors[5] = None  # idle cycle
        differential(mult_module, vectors, group_size=6)

    def test_toggle_matrix_matches_counts(self, mult_module):
        run = schedule_for(mult_module).run_vectors(mult_vectors(15))
        soa = schedule_for(mult_module).soa
        per_net = run.toggle_matrix.sum(axis=0)
        assert run.toggle_matrix.shape == (15, soa.n_nets)
        for i, name in enumerate(soa.net_names):
            assert run.toggles[name] == int(per_net[i])

    def test_driving_clock_in_vector_rejected(self, mult_module):
        with pytest.raises(SimulationError, match="clock"):
            schedule_for(mult_module).run_vectors([{"clk": 1}])

    def test_unknown_port_rejected(self, mult_module):
        with pytest.raises(SimulationError, match="no input port"):
            schedule_for(mult_module).run_vectors([{"nope": 1}])


def capture_cpu_vectors(module, program, memory=None, max_cycles=200):
    """Per-cycle input vectors from a closed-loop GateLevelCpu run.

    The captured open-loop stimulus (every non-clock input, sampled just
    before each rising edge) replays the same workload on any engine.
    """
    cpu = GateLevelCpu(module, program, memory)
    ports = [p.name for p in module.input_ports() if p.name != "clk"]
    vectors = []
    while not cpu.halted and cpu.cycles < max_cycles:
        vectors.append({p: cpu.value(p) for p in ports})
        cpu.step()
    return vectors


class TestM0LitePrograms:
    """Every program in ``repro.isa.programs`` drives the differential."""

    @pytest.mark.parametrize("name,program,memory", [
        ("dhrystone", dhrystone_program(2), dhrystone_memory()),
        ("crc32", crc32_program(1), dhrystone_memory()),
        ("fir", fir_program(3), None),
    ], ids=["dhrystone", "crc32", "fir"])
    def test_activity_trace_bit_identical(self, m0_module, name,
                                          program, memory):
        vectors = capture_cpu_vectors(m0_module, program, memory)
        assert len(vectors) >= 20, name
        run = differential(m0_module, vectors)
        assert run.total_toggles() > 0
        assert run.trace.representative_groups()["max"].total_toggles > 0


COMMON = dict(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])


def random_vectors(module, seed, count=12):
    rng = random.Random(seed ^ 0xA5A5)
    ports = [p.name for p in module.input_ports() if p.name != "clk"]
    return [{p: rng.getrandbits(1) for p in ports} for _ in range(count)]


class TestRandomCircuits:
    @settings(**COMMON)
    @given(st.integers(0, 10_000))
    def test_clocked_dag_bit_identical(self, lib, seed):
        module = build_random_circuit(lib, seed, clocked=True)
        differential(module, random_vectors(module, seed), group_size=5)

    @settings(**COMMON)
    @given(st.integers(0, 10_000))
    def test_comb_evaluate_matches_event_sim(self, lib, seed):
        module = build_random_circuit(lib, seed, n_gates=15)
        schedule = schedule_for(module)
        soa = schedule.soa
        assert soa is not None and soa.n_seq == 0
        rng = random.Random(seed)
        points = np.asarray(
            [[rng.getrandbits(1) for _ in soa.input_ports]
             for _ in range(10)], dtype=np.int8)
        got = schedule.evaluate(points)
        sim = Simulator(module)
        names = list(soa.input_ports)
        for row, out in zip(points, got):
            sim.set_inputs(dict(zip(names, (int(v) for v in row))))
            expected = [sim.value(name) for name in soa.output_ports]
            assert list(out) == expected, seed


def build_latch(lib):
    """Cross-coupled NAND latch: combinational feedback, unlowerable."""
    m = Module("latch")
    m.add_input("clk")
    s = m.add_input("s")
    r = m.add_input("r")
    q = m.add_net("q")
    qb = m.add_net("qb")
    m.add_instance("n1", "NAND2_X1", {"A": s, "B": qb, "Y": q},
                   library=lib)
    m.add_instance("n2", "NAND2_X1", {"A": r, "B": q, "Y": qb},
                   library=lib)
    out = m.add_output("o")
    m.add_instance("ob", "BUF_X1", {"A": q, "Y": out}, library=lib)
    return m


def build_gated_clock(lib):
    """A flop clocked through logic: levelized replay cannot batch it."""
    m = Module("gated")
    clk = m.add_input("clk")
    en = m.add_input("en")
    d = m.add_input("d")
    gck = m.add_net("gck")
    m.add_instance("g", "AND2_X1", {"A": clk, "B": en, "Y": gck},
                   library=lib)
    q = m.add_output("q")
    m.add_instance("ff", "DFF_X1", {"D": d, "CK": gck, "Q": q},
                   library=lib)
    return m


class TestEligibilityAndFallback:
    def test_feedback_reports_reason(self, lib):
        schedule = compile_schedule(build_latch(lib))
        assert schedule.soa is None and schedule.why
        ok, why = schedule.vector_ready()
        assert not ok and why

    def test_feedback_falls_back_to_event(self, lib):
        module = build_latch(lib)
        run = compile_schedule(module).run_vectors(
            [{"s": 1, "r": 0}, {"s": 1, "r": 1}, {"s": 0, "r": 1}],
            group_size=2)
        assert run.engine == "event"
        assert run.value("o") == 1  # s is active-low: last vector sets
        assert run.trace is not None and run.trace.groups

    def test_gated_clock_reason_names_cone(self, lib):
        schedule = compile_schedule(build_gated_clock(lib))
        assert schedule.soa is not None  # lowers fine...
        ok, why = schedule.vector_ready()
        assert not ok and "clock cone" in why  # ...but cannot batch

    def test_gated_clock_event_run_matches_direct_testbench(self, lib):
        module = build_gated_clock(lib)
        vectors = [{"en": 1, "d": 1}, {"en": 0, "d": 0},
                   {"en": 1, "d": 0}]
        run = compile_schedule(module).run_vectors(vectors)
        assert run.engine == "event"
        from repro.sim.testbench import ClockedTestbench

        tb = ClockedTestbench(module)
        tb.reset_flops(0)
        tb.run(vectors)
        assert run.toggle_snapshot() == tb.sim.toggle_snapshot()
        assert run.value("q") == tb.sim.value("q") == 0

    def test_missing_clock_port(self, lib):
        module = build_random_circuit(lib, 3)  # combinational
        ok, why = schedule_for(module).vector_ready()
        assert not ok and "clk" in why

    def test_evaluate_rejects_sequential(self, mult_module):
        with pytest.raises(SimulationError, match="combinational-only"):
            schedule_for(mult_module).evaluate([[0]])

    def test_evaluate_rejects_wrong_width(self, lib):
        module = build_random_circuit(lib, 4)
        with pytest.raises(SimulationError, match="input columns"):
            schedule_for(module).evaluate(np.zeros((2, 99), dtype=np.int8))

    def test_evaluate_refused_without_schedule(self, lib):
        with pytest.raises(SimulationError, match="no levelized"):
            compile_schedule(build_latch(lib)).evaluate([[0, 0, 0]])


class TestMemoisationAndPickle:
    def test_schedule_for_memoises(self, mult_module):
        assert schedule_for(mult_module) is schedule_for(mult_module)
        assert peek_schedule(mult_module) is schedule_for(mult_module)

    def test_peek_never_compiles(self, lib):
        module = build_random_circuit(lib, 11)
        assert peek_schedule(module) is None

    def test_library_upgrade_recompiles_with_caps(self, lib):
        module = build_random_circuit(lib, 12)
        bare = schedule_for(module)
        assert bare.soa.net_cap is None
        priced = schedule_for(module, lib)
        assert priced.soa.net_cap is not None
        assert schedule_for(module, lib) is priced

    def test_pickle_drops_module_keeps_levelized_path(self, mult_module):
        schedule = schedule_for(mult_module)
        restored = pickle.loads(pickle.dumps(schedule))
        assert restored.module is None
        vectors = mult_vectors(8, seed=5)
        fast = restored.run_vectors(vectors)
        assert fast.engine == "levelized"
        assert_runs_identical(fast, schedule.run_vectors(vectors))

    def test_unpickled_fallback_needs_bind_module(self, lib):
        module = build_latch(lib)
        restored = pickle.loads(pickle.dumps(compile_schedule(module)))
        with pytest.raises(SimulationError, match="without its module"):
            restored.run_vectors([{"s": 1, "r": 1}])
        restored.bind_module(module)
        assert restored.run_vectors([{"s": 1, "r": 1}]).engine == "event"


class TestGateSimKernel:
    def test_registered_for_comb_modules(self, lib):
        module = build_random_circuit(lib, 21)
        kernel = kernel_for(module)
        assert kernel is not None and kernel.name == "gate-sim"

    def test_not_offered_for_sequential_modules(self, mult_module):
        assert kernel_for(mult_module) is None

    def test_compiled_kernel_matches_event_sim(self, lib):
        module = build_random_circuit(lib, 22)
        kernel = compile_kernel(module, lib)
        soa = kernel.context.soa
        rng = random.Random(22)
        points = np.asarray(
            [[rng.getrandbits(1) for _ in soa.input_ports]
             for _ in range(6)], dtype=np.int8)
        got = kernel(points)
        sim = Simulator(module)
        names = list(soa.input_ports)
        for row, out in zip(points, got):
            sim.set_inputs(dict(zip(names, (int(v) for v in row))))
            assert list(out) == [sim.value(n) for n in soa.output_ports]

    def test_compiled_kernel_pickles_without_module(self, lib):
        module = build_random_circuit(lib, 23)
        kernel = compile_kernel(module, lib)
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone.context.module is None
        points = np.zeros((3, len(kernel.context.soa.input_ports)),
                          dtype=np.int8)
        assert np.array_equal(clone(points), kernel(points))

    def test_compile_rejects_sequential(self, mult_module):
        with pytest.raises(SimulationError, match="flops"):
            GateSimKernel().compile(mult_module)

    def test_compile_rejects_feedback(self, lib):
        with pytest.raises(SimulationError, match="gate-sim kernel"):
            GateSimKernel().compile(build_latch(lib))


class TestXPropagation:
    def test_x_inputs_do_not_count_toggles(self, lib):
        """known -> X and X -> known transitions are not toggles, in both
        engines alike."""
        module = build_random_circuit(lib, 31, clocked=True)
        vectors = random_vectors(module, 31, count=6)
        vectors[2] = {name: X for name in vectors[2]}
        differential(module, vectors, group_size=3)
