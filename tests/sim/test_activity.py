"""Activity recording and the Fig. 7 vector-grouping pipeline."""

import random

import pytest

from repro.sim.activity import GroupRecorder, group_activity
from repro.sim.testbench import ClockedTestbench, bus_values


def _mult_vectors(rng, n, magnitude=0xFFFF):
    return [
        {**bus_values("a", 16, rng.getrandbits(16) & magnitude),
         **bus_values("b", 16, rng.getrandbits(16) & magnitude)}
        for _ in range(n)
    ]


class TestGrouping:
    def test_group_sizes(self, mult_module):
        rng = random.Random(1)
        trace = group_activity(mult_module, _mult_vectors(rng, 35),
                               group_size=10)
        assert [g.cycles for g in trace.groups] == [10, 10, 10, 5]
        assert [g.index for g in trace.groups] == [0, 1, 2, 3]

    def test_switching_probability_range(self, mult_module):
        rng = random.Random(2)
        trace = group_activity(mult_module, _mult_vectors(rng, 30))
        for g in trace.groups:
            assert 0.0 < g.switching_probability < 1.5

    def test_quiet_vs_busy_groups(self, mult_module):
        """Low-magnitude operands must produce visibly less switching."""
        rng = random.Random(3)
        vectors = _mult_vectors(rng, 10, magnitude=0x0003) \
            + _mult_vectors(rng, 10, magnitude=0xFFFF)
        trace = group_activity(mult_module, vectors, group_size=10)
        quiet, busy = trace.groups
        assert busy.switching_probability > 2 * quiet.switching_probability

    def test_representative_selection(self, mult_module):
        rng = random.Random(4)
        vectors = _mult_vectors(rng, 10, 0x0003) \
            + _mult_vectors(rng, 10, 0x00FF) \
            + _mult_vectors(rng, 10, 0xFFFF)
        trace = group_activity(mult_module, vectors, group_size=10)
        reps = trace.representative_groups()
        assert reps["max"].switching_probability >= \
            reps["avg"].switching_probability >= \
            reps["min"].switching_probability
        assert reps["max"].index == 2
        assert reps["min"].index == 0

    def test_empty_trace_rejected(self, mult_module):
        trace = group_activity(mult_module, [])
        with pytest.raises(ValueError):
            trace.representative_groups()

    def test_average_weighted_by_cycles(self, mult_module):
        rng = random.Random(5)
        trace = group_activity(mult_module, _mult_vectors(rng, 25))
        avg = trace.average_switching_probability()
        assert min(trace.series) <= avg <= max(trace.series)

    def test_toggle_deltas_per_group(self, mult_module):
        """Group toggle dicts are deltas, not cumulative counts."""
        rng = random.Random(6)
        trace = group_activity(mult_module, _mult_vectors(rng, 20))
        total = sum(g.total_toggles for g in trace.groups)
        tb = ClockedTestbench(mult_module)
        tb.reset_flops()
        rng = random.Random(6)
        for vec in _mult_vectors(rng, 20):
            tb.cycle(vec)
        assert total == tb.sim.total_toggles()


class TestRecorder:
    def test_flush_idempotent(self, mult_module):
        tb = ClockedTestbench(mult_module)
        tb.reset_flops()
        rec = GroupRecorder(tb.sim, group_size=10)
        tb.cycle(bus_values("a", 16, 5))
        rec.after_cycle()
        rec.flush()
        rec.flush()
        assert len(rec.trace.groups) == 1
