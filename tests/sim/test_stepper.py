"""Closed-loop reactive stepping (``ClosedLoopStepper`` / ``BusView``).

The stepper's contract is bit-identity with the event simulator driven
through the same protocol -- every comparison here is exact (``==`` on
values and toggle counts, ``np.array_equal`` on state rows), never
approximate.
"""

import random

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.compiled import ClosedLoopStepper, schedule_for
from repro.sim.event import Simulator
from repro.sim.logic import X
from repro.sim.testbench import bus_values

from .test_compiled import build_gated_clock


def event_state_row(sim, module):
    """The event simulator's settled values in ``module.nets()`` order."""
    snap = sim.state_snapshot()
    return np.asarray([snap[n.name] for n in module.nets()], dtype=np.int8)


def lockstep(module, input_frames, force=True):
    """Drive stepper and event sim through identical phases, comparing
    state and toggles after every phase."""
    stepper = schedule_for(module).stepper("clk")
    sim = Simulator(module)
    if force:
        stepper.force_flops(0)
        sim.force_flop_state(0)
    for frame in input_frames:
        stepper.apply(frame)
        sim.set_inputs(frame)
        assert np.array_equal(stepper.state_row(),
                              event_state_row(sim, module))
        stepper.posedge()
        sim.set_input("clk", 1)
        assert np.array_equal(stepper.state_row(),
                              event_state_row(sim, module))
        stepper.negedge()
        sim.set_input("clk", 0)
        assert np.array_equal(stepper.state_row(),
                              event_state_row(sim, module))
        assert stepper.toggle_snapshot() == sim.toggle_snapshot()
    return stepper, sim


class TestLockstepParity:
    def test_toy_design(self, toy_design):
        frames = [{"a": a, "b": b}
                  for a in (0, 1) for b in (0, 1)] + [{"a": 0, "b": 1}]
        lockstep(toy_design.top, frames)

    def test_mult16_random_operands(self, mult_module):
        rng = random.Random(2011)
        frames = [{**bus_values("a", 16, rng.getrandbits(16)),
                   **bus_values("b", 16, rng.getrandbits(16))}
                  for _ in range(8)]
        lockstep(mult_module, frames)

    def test_from_unknown_state(self, mult_module):
        """No flop forcing: X propagation matches phase by phase."""
        frames = [{**bus_values("a", 16, 3), **bus_values("b", 16, 5)}]
        lockstep(mult_module, frames, force=False)

    def test_partial_apply_and_skip(self, mult_module):
        """Re-applying unchanged values is a no-op (toggle counts and
        state untouched), like re-posting the same event."""
        stepper, sim = lockstep(
            mult_module,
            [{**bus_values("a", 16, 7), **bus_values("b", 16, 9)}])
        before = stepper.toggle_snapshot()
        stepper.apply(bus_values("a", 16, 7))  # unchanged
        assert stepper.toggle_snapshot() == before
        stepper.apply(bus_values("a", 16, 0xFFFF))
        sim.set_inputs(bus_values("a", 16, 0xFFFF))
        assert np.array_equal(stepper.state_row(),
                              event_state_row(sim, mult_module))
        assert stepper.toggle_snapshot() == sim.toggle_snapshot()


class TestCycleProtocol:
    def test_cycle_counts_and_matches_phases(self, toy_design):
        a = schedule_for(toy_design.top).stepper("clk")
        b = schedule_for(toy_design.top).stepper("clk")
        a.force_flops(0)
        b.force_flops(0)
        a.cycle({"a": 1, "b": 1})
        b.apply({"a": 1, "b": 1})
        b.posedge()
        b.negedge()
        assert a.cycles == 1
        assert np.array_equal(a.state_row(), b.state_row())
        assert a.toggle_snapshot() == b.toggle_snapshot()

    def test_clock_rejected_in_cycle_inputs(self, toy_design):
        stepper = schedule_for(toy_design.top).stepper("clk")
        with pytest.raises(SimulationError, match="posedge"):
            stepper.cycle({"clk": 1, "a": 0})

    def test_unknown_port_rejected(self, toy_design):
        stepper = schedule_for(toy_design.top).stepper("clk")
        with pytest.raises(SimulationError, match="no input port"):
            stepper.apply({"nope": 1})

    def test_record_toggles_off(self, toy_design):
        stepper = schedule_for(toy_design.top).stepper(
            "clk", record_toggles=False)
        stepper.force_flops(0)
        stepper.cycle({"a": 1, "b": 1})
        assert sum(stepper.toggle_snapshot().values()) == 0

    def test_reset_toggles(self, toy_design):
        stepper = schedule_for(toy_design.top).stepper("clk")
        stepper.force_flops(0)
        stepper.cycle({"a": 1, "b": 1})
        assert sum(stepper.toggle_snapshot().values()) > 0
        stepper.reset_toggles()
        assert sum(stepper.toggle_snapshot().values()) == 0


class TestAccessors:
    def test_value_and_flop_q(self, toy_design):
        stepper = schedule_for(toy_design.top).stepper("clk")
        sim = Simulator(toy_design.top)
        for s in (stepper,):
            s.force_flops(0)
        sim.force_flop_state(0)
        stepper.apply({"a": 1, "b": 1})
        sim.set_inputs({"a": 1, "b": 1})
        stepper.posedge()
        sim.set_input("clk", 1)
        assert stepper.flop_q("ff") == sim.flop_q("ff")
        for net in ("n1", "q", "y"):
            assert stepper.value(net) == sim.value(net)
        with pytest.raises(SimulationError, match="unknown flop"):
            stepper.flop_q("nope")

    def test_bus_views(self, mult_module):
        stepper = schedule_for(mult_module).stepper("clk")
        stepper.force_flops(0)
        a = stepper.input_bus("a", 16)
        p = stepper.output_bus("p", 32)
        a.drive(0x1234)
        assert a.read() == 0x1234
        stepper.apply(bus_values("b", 16, 3))
        stepper.posedge()
        stepper.negedge()
        stepper.posedge()
        stepper.negedge()
        sim = Simulator(mult_module)
        sim.force_flop_state(0)
        sim.set_inputs({**bus_values("a", 16, 0x1234),
                        **bus_values("b", 16, 3)})
        for _ in range(2):
            sim.set_input("clk", 1)
            sim.set_input("clk", 0)
        from repro.sim.testbench import read_bus

        assert p.read() == read_bus(sim, "p", 32)

    def test_bus_view_x_reads_none(self, mult_module):
        stepper = schedule_for(mult_module).stepper("clk")
        # Flops unforced: the product is X, like read_bus -> None.
        assert stepper.output_bus("p", 32).read() is None

    def test_readonly_bus_rejects_drive(self, mult_module):
        stepper = schedule_for(mult_module).stepper("clk")
        with pytest.raises(SimulationError, match="read-only"):
            stepper.output_bus("p", 32).drive(1)

    def test_missing_bus_bit_reported(self, mult_module):
        stepper = schedule_for(mult_module).stepper("clk")
        with pytest.raises(SimulationError, match="a_16"):
            stepper.input_bus("a", 17)


class TestEligibility:
    def test_gated_clock_rejected(self, lib):
        module = build_gated_clock(lib)
        schedule = schedule_for(module)
        with pytest.raises(SimulationError, match="cannot step"):
            schedule.stepper("clk")
        with pytest.raises(SimulationError):
            ClosedLoopStepper(schedule, "clk")

    def test_missing_clock_rejected(self, mult_module):
        with pytest.raises(SimulationError):
            schedule_for(mult_module).stepper("no_such_clock")
