"""SAIF-lite activity interchange."""

import random

import pytest

from repro.errors import SimulationError
from repro.power.dynamic import dynamic_power
from repro.sim.saif import (
    dumps_saif,
    parse_saif,
    probabilities_from_saif,
    read_saif,
    toggles_from_saif,
    write_saif,
)
from repro.sim.testbench import ClockedTestbench, bus_values


@pytest.fixture(scope="module")
def recorded(mult_module):
    tb = ClockedTestbench(mult_module)
    tb.reset_flops()
    rng = random.Random(4)
    ones = {name: 0 for name in tb.sim.toggle_snapshot()}
    for _ in range(30):
        tb.cycle({**bus_values("a", 16, rng.getrandbits(16)),
                  **bus_values("b", 16, rng.getrandbits(16))})
        for name, value in tb.sim.state_snapshot().items():
            if value == 1:
                ones[name] += 1
    probs = {name: count / tb.cycles for name, count in ones.items()}
    return tb, probs


class TestWriter:
    def test_structure(self, mult_module, recorded):
        tb, probs = recorded
        text = dumps_saif(mult_module, tb.cycles,
                          tb.sim.toggle_snapshot(), probs)
        assert text.startswith("(SAIFILE")
        assert "(DURATION 30)" in text
        assert "(INSTANCE mult16" in text
        assert "(TC " in text

    def test_t0_t1_sum_to_duration(self, mult_module, recorded):
        tb, probs = recorded
        text = dumps_saif(mult_module, tb.cycles,
                          tb.sim.toggle_snapshot(), probs)
        duration, nets = parse_saif(text)
        for name, (t0, t1, _tc) in nets.items():
            assert t0 + t1 == duration, name

    def test_bad_duration(self, mult_module):
        with pytest.raises(SimulationError):
            dumps_saif(mult_module, 0, {})


class TestRoundTrip:
    def test_through_file(self, mult_module, recorded, tmp_path):
        tb, probs = recorded
        path = tmp_path / "act.saif"
        write_saif(str(path), mult_module, tb.cycles,
                   tb.sim.toggle_snapshot(), probs)
        duration, nets = read_saif(str(path))
        assert duration == tb.cycles
        original = tb.sim.toggle_snapshot()
        recovered = toggles_from_saif(nets)
        for name, count in recovered.items():
            assert count == original.get(name, 0)

    def test_probabilities_recovered(self, mult_module, recorded):
        tb, probs = recorded
        text = dumps_saif(mult_module, tb.cycles,
                          tb.sim.toggle_snapshot(), probs)
        duration, nets = parse_saif(text)
        back = probabilities_from_saif(nets, duration)
        for name, p in list(probs.items())[:50]:
            assert back[name] == pytest.approx(p, abs=0.5 / duration + 1e-9)

    def test_power_from_saif_matches_direct(self, mult_module, lib,
                                            recorded):
        """The full loop: simulate -> SAIF -> power equals direct power."""
        tb, probs = recorded
        text = dumps_saif(mult_module, tb.cycles,
                          tb.sim.toggle_snapshot(), probs)
        duration, nets = parse_saif(text)
        via_saif = dynamic_power(mult_module, lib,
                                 toggles_from_saif(nets), duration)
        direct = dynamic_power(mult_module, lib,
                               tb.sim.toggle_snapshot(), tb.cycles)
        assert via_saif.energy_per_cycle == pytest.approx(
            direct.energy_per_cycle)


class TestParserErrors:
    def test_no_duration(self):
        with pytest.raises(SimulationError):
            parse_saif("(SAIFILE)")

    def test_no_nets(self):
        with pytest.raises(SimulationError):
            parse_saif("(SAIFILE (DURATION 5))")
