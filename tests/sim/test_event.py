"""Event-driven simulator semantics."""

import pytest

from repro.circuits.builder import new_module
from repro.errors import SimulationError
from repro.netlist.core import Module
from repro.sim.event import Simulator
from repro.sim.logic import X


class TestCombinational:
    def test_propagation(self, toy_design):
        sim = Simulator(toy_design.top)
        sim.set_inputs({"a": 1, "b": 1})
        assert sim.value("n1") == 0

    def test_x_initial_state(self, toy_design):
        sim = Simulator(toy_design.top)
        assert sim.value("q") == X

    def test_const_nets(self, lib):
        m = Module("m")
        y = m.add_output("y")
        m.add_instance("g", "OR2_X1",
                       {"A": m.const(0), "B": m.const(1), "Y": y},
                       library=lib)
        sim = Simulator(m)
        assert sim.value("y") == 1

    def test_unknown_input_name(self, toy_design):
        sim = Simulator(toy_design.top)
        with pytest.raises(SimulationError):
            sim.set_input("nope", 1)

    def test_hierarchical_rejected(self, toy_design):
        from repro.netlist.transform import split_combinational

        split = split_combinational(toy_design)
        with pytest.raises(SimulationError):
            Simulator(split.top)

    def test_oscillating_loop_detected(self, lib):
        # Enabled 3-stage ring oscillator: settles while en=0, oscillates
        # forever once enabled (values are all known, so no X damping).
        m = Module("osc")
        en = m.add_input("en")
        a = m.add_net("a")
        b = m.add_net("b")
        c = m.add_net("c")
        m.add_instance("n", "NAND2_X1", {"A": en, "B": c, "Y": a},
                       library=lib)
        m.add_instance("i1", "INV_X1", {"A": a, "Y": b}, library=lib)
        m.add_instance("i2", "INV_X1", {"A": b, "Y": c}, library=lib)
        sim = Simulator(m)
        sim.set_input("en", 0)
        with pytest.raises(SimulationError, match="settle"):
            sim.set_input("en", 1)


class TestSequential:
    def test_posedge_capture(self, toy_design):
        sim = Simulator(toy_design.top)
        sim.force_flop_state(0)
        sim.set_inputs({"a": 1, "b": 1, "clk": 0})
        sim.set_input("clk", 1)
        assert sim.value("q") == 0  # captured NAND(1,1)=0
        assert sim.value("y") == 1

    def test_negedge_does_not_capture(self, toy_design):
        sim = Simulator(toy_design.top)
        sim.force_flop_state(0)
        sim.set_inputs({"a": 0, "b": 0, "clk": 1})
        sim.set_input("clk", 0)
        assert sim.value("q") == 0  # unchanged

    def test_dffe_enable(self, lib):
        m = Module("m")
        clk = m.add_input("clk")
        en = m.add_input("en")
        d = m.add_input("d")
        q = m.add_output("q")
        m.add_instance("ff", "DFFE_X1",
                       {"D": d, "CK": clk, "EN": en, "Q": q}, library=lib)
        sim = Simulator(m)
        sim.force_flop_state(0)
        sim.set_inputs({"d": 1, "en": 0, "clk": 0})
        sim.set_input("clk", 1)
        assert sim.value("q") == 0     # enable off
        sim.set_inputs({"clk": 0, "en": 1})
        sim.set_input("clk", 1)
        assert sim.value("q") == 1     # enable on

    def test_dffr_async_reset(self, lib):
        m = Module("m")
        clk = m.add_input("clk")
        rn = m.add_input("rn")
        d = m.add_input("d")
        q = m.add_output("q")
        m.add_instance("ff", "DFFR_X1",
                       {"D": d, "CK": clk, "RN": rn, "Q": q}, library=lib)
        sim = Simulator(m)
        sim.set_inputs({"d": 1, "rn": 1, "clk": 0})
        sim.set_input("clk", 1)
        assert sim.value("q") == 1
        sim.set_input("rn", 0)          # async clear, no clock needed
        assert sim.value("q") == 0
        sim.set_input("rn", 1)
        assert sim.value("q") == 0      # stays until next edge

    def test_shift_register_no_race(self, lib):
        """Back-to-back flops must shift one position per edge."""
        m = Module("sr")
        clk = m.add_input("clk")
        d = m.add_input("d")
        q1 = m.add_net("q1")
        q2 = m.add_net("q2")
        m.add_instance("f1", "DFF_X1", {"D": d, "CK": clk, "Q": q1},
                       library=lib)
        m.add_instance("f2", "DFF_X1", {"D": q1, "CK": clk, "Q": q2},
                       library=lib)
        sim = Simulator(m)
        sim.force_flop_state(0)
        sim.set_inputs({"d": 1, "clk": 0})
        sim.set_input("clk", 1)
        assert (sim.value("q1"), sim.value("q2")) == (1, 0)
        sim.set_input("clk", 0)
        sim.set_input("clk", 1)
        assert (sim.value("q1"), sim.value("q2")) == (1, 1)

    def test_buffered_clock_tree_no_skew_race(self, lib):
        """Flops behind different clock buffers still act as one domain."""
        m = Module("tree")
        clk = m.add_input("clk")
        d = m.add_input("d")
        c1 = m.add_net("c1")
        c2 = m.add_net("c2")
        q1 = m.add_net("q1")
        q2 = m.add_net("q2")
        m.add_instance("b1", "CLKBUF_X4", {"A": clk, "Y": c1}, library=lib)
        m.add_instance("b2", "CLKBUF_X4", {"A": clk, "Y": c2}, library=lib)
        m.add_instance("f1", "DFF_X1", {"D": d, "CK": c1, "Q": q1},
                       library=lib)
        m.add_instance("f2", "DFF_X1", {"D": q1, "CK": c2, "Q": q2},
                       library=lib)
        sim = Simulator(m)
        sim.force_flop_state(0)
        sim.set_inputs({"d": 1, "clk": 0})
        sim.set_input("clk", 1)
        # f2 must capture the PRE-edge q1 (0), not the fresh 1.
        assert (sim.value("q1"), sim.value("q2")) == (1, 0)

    def test_pre_settle_sampling_with_clock_derived_data(self, lib):
        """A clamp driven by the clock must not corrupt same-edge capture
        (the SCPG isolation hold-time scenario)."""
        m = Module("clamp")
        clk = m.add_input("clk")
        d = m.add_input("d")
        clamped = m.add_net("clamped")
        q = m.add_output("q")
        m.add_instance("iso", "ISO_AND_X1",
                       {"A": d, "ISO": clk, "Y": clamped}, library=lib)
        m.add_instance("ff", "DFF_X1",
                       {"D": clamped, "CK": clk, "Q": q}, library=lib)
        sim = Simulator(m)
        sim.force_flop_state(0)
        sim.set_inputs({"d": 1, "clk": 0})
        assert sim.value("clamped") == 1
        sim.set_input("clk", 1)
        # Capture sees the pre-edge (unclamped) data...
        assert sim.value("q") == 1
        # ...while the clamp is now active.
        assert sim.value("clamped") == 0


class TestInstrumentation:
    def test_toggle_counting(self, toy_design):
        sim = Simulator(toy_design.top)
        sim.force_flop_state(0)
        sim.set_inputs({"a": 1, "b": 1, "clk": 0})
        sim.reset_toggles()
        sim.set_input("a", 0)   # n1: 0 -> 1
        sim.set_input("a", 1)   # n1: 1 -> 0
        assert sim.net_toggles("n1") == 2
        assert sim.total_toggles() >= 2

    def test_x_transitions_not_counted(self, toy_design):
        sim = Simulator(toy_design.top)
        # q is X; settling into a known value is not a toggle.
        sim.set_inputs({"a": 1, "b": 1, "clk": 0})
        assert sim.net_toggles("q") == 0

    def test_watcher_callbacks(self, toy_design):
        sim = Simulator(toy_design.top)
        events = []
        sim.add_watcher(lambda net, old, new: events.append(
            (net.name, old, new)))
        sim.set_inputs({"a": 1, "b": 1})
        assert ("a", X, 1) in events

    def test_flop_q_lookup(self, toy_design):
        sim = Simulator(toy_design.top)
        sim.force_flop_state(1)
        assert sim.flop_q("ff") == 1
        with pytest.raises(SimulationError):
            sim.flop_q("nope")

    def test_toggle_snapshot_keys_are_net_names(self, toy_design):
        sim = Simulator(toy_design.top)
        snap = sim.toggle_snapshot()
        assert "n1" in snap and "q" in snap
