"""Clocked testbench harness."""

import pytest

from repro.errors import SimulationError
from repro.sim.testbench import (
    ClockedTestbench,
    bus_values,
    drive_bus,
    read_bus,
)


class TestHelpers:
    def test_bus_values(self):
        assert bus_values("a", 4, 0b1010) == {
            "a_0": 0, "a_1": 1, "a_2": 0, "a_3": 1}

    def test_drive_and_read(self, mult_module):
        tb = ClockedTestbench(mult_module)
        tb.reset_flops()
        drive_bus(tb, "a", 16, 1234)
        drive_bus(tb.sim, "b", 16, 2)
        tb.cycle()
        tb.cycle()
        assert read_bus(tb.sim, "p", 32) == 2468

    def test_read_bus_returns_none_on_x(self, mult_module):
        tb = ClockedTestbench(mult_module)  # flops uninitialised
        assert read_bus(tb.sim, "p", 32) is None


class TestTestbench:
    def test_requires_clock_port(self, lib):
        from repro.circuits.multiplier import build_mult16

        comb = build_mult16(lib, registered=False)
        with pytest.raises(SimulationError):
            ClockedTestbench(comb)

    def test_cycle_counting(self, mult_module):
        tb = ClockedTestbench(mult_module)
        tb.reset_flops()
        tb.run([{}, {}, {}])
        assert tb.cycles == 3

    def test_apply_rejects_clock(self, mult_module):
        tb = ClockedTestbench(mult_module)
        with pytest.raises(SimulationError):
            tb.apply({"clk": 1})

    def test_toggles_per_cycle(self, mult_module):
        import random

        tb = ClockedTestbench(mult_module)
        tb.reset_flops()
        rng = random.Random(0)
        for _ in range(10):
            tb.cycle({**bus_values("a", 16, rng.getrandbits(16)),
                      **bus_values("b", 16, rng.getrandbits(16))})
        assert tb.toggles_per_cycle() > 100  # busy datapath

    def test_zero_cycles(self, mult_module):
        tb = ClockedTestbench(mult_module)
        assert tb.toggles_per_cycle() == 0.0
