"""VCD writer/parser."""

import io

import pytest

from repro.errors import SimulationError
from repro.sim.event import Simulator
from repro.sim.vcd import VcdWriter, dump_simulation, parse_vcd


class TestWriter:
    def test_header_and_changes(self, toy_design):
        out = io.StringIO()
        sim = Simulator(toy_design.top)
        writer = VcdWriter(out, ["a", "b", "n1"], module_name="toy")
        sim.add_watcher(writer.on_change)
        writer.set_time(0)
        sim.set_inputs({"a": 1, "b": 1})
        writer.set_time(10)
        sim.set_input("a", 0)
        writer.close()
        text = out.getvalue()
        assert "$timescale 1ns $end" in text
        assert "$scope module toy $end" in text
        assert "#0" in text and "#10" in text

    def test_time_must_be_monotonic(self, toy_design):
        writer = VcdWriter(io.StringIO(), ["a"])
        writer.set_time(5)
        with pytest.raises(SimulationError):
            writer.set_time(4)

    def test_unwatched_nets_skipped(self, toy_design):
        out = io.StringIO()
        sim = Simulator(toy_design.top)
        writer = VcdWriter(out, ["a"])  # only a
        sim.add_watcher(writer.on_change)
        sim.set_inputs({"a": 1, "b": 1})
        body = out.getvalue().split("$enddefinitions")[1]
        # exactly one change record for 'a' beyond the dumpvars block
        assert body.count("\n1") >= 1


class TestRoundTrip:
    def test_dump_and_parse(self, lib):
        from repro.circuits.counters import build_counter

        counter = build_counter(lib, width=4)
        text = dump_simulation(counter, [{} for _ in range(6)])
        changes, names = parse_vcd(text)
        assert "q_0" in names.values()
        # q_0 toggles every cycle once flops initialise.
        ident = [i for i, n in names.items() if n == "q_0"][0]
        q0_changes = [c for c in changes if c[1] == ident]
        assert len(q0_changes) >= 5

    def test_parse_times(self):
        text = """$var wire 1 ! a $end
$enddefinitions $end
#0
1!
#10
0!
"""
        changes, names = parse_vcd(text)
        assert changes == [(0, "!", 1), (10, "!", 0)]
        assert names == {"!": "a"}
