"""Compiled cell evaluation tables."""

import pytest

from repro.errors import SimulationError
from repro.sim.logic import X, compile_cell, from_ternary, to_ternary


class TestTernary:
    def test_normalisation(self):
        assert to_ternary(0) == 0
        assert to_ternary(True) == 1
        assert to_ternary(None) == X
        assert to_ternary(X) == X

    def test_bad_value(self):
        with pytest.raises(SimulationError):
            to_ternary(7)

    def test_from_ternary(self):
        assert from_ternary(X) is None
        assert from_ternary(1) == 1


class TestCompile:
    def test_nand_table(self, lib):
        compiled = compile_cell(lib.cell("NAND2_X1"))
        assert compiled.evaluate([1, 1])["Y"] == 0
        assert compiled.evaluate([0, 1])["Y"] == 1
        assert compiled.evaluate([0, X])["Y"] == 1   # controlling 0
        assert compiled.evaluate([1, X])["Y"] == X

    def test_fa_both_outputs(self, lib):
        compiled = compile_cell(lib.cell("FA_X1"))
        outs = compiled.evaluate([1, 1, 1])
        assert outs == {"S": 1, "CO": 1}
        outs = compiled.evaluate([1, 0, 0])
        assert outs["S"] == 1 and outs["CO"] == 0

    def test_mux_x_select_with_equal_inputs(self, lib):
        """MUX2 with A==B: our AND/OR form is X-pessimistic on select=X
        only when inputs differ."""
        compiled = compile_cell(lib.cell("MUX2_X1"))
        # A=1 B=1 S=X -> (A&!S)|(B&S): both terms X -> X | X = X
        # (pessimism documented; exact result depends on decomposition)
        assert compiled.evaluate([1, 1, X])["Y"] in (1, X)
        assert compiled.evaluate([0, 1, 1])["Y"] == 1

    def test_tie_cells(self, lib):
        assert compile_cell(lib.cell("TIEHI_X1")).evaluate([])["Y"] == 1
        assert compile_cell(lib.cell("TIELO_X1")).evaluate([])["Y"] == 0

    def test_cache_reuses_tables(self, lib):
        a = compile_cell(lib.cell("INV_X1"))
        b = compile_cell(lib.cell("INV_X1"))
        assert a is b

    def test_exhaustive_against_expr(self, lib):
        """Every compiled table entry matches direct BoolExpr evaluation."""
        for cell_name in ("NAND2_X1", "XOR2_X1", "AOI21_X1", "FA_X1",
                          "ISO_AND_X1", "MUX2_X1"):
            cell = lib.cell(cell_name)
            compiled = compile_cell(cell)
            names = compiled.input_names
            for idx in range(3 ** len(names)):
                vals = []
                rest = idx
                for _ in names:
                    vals.append(rest % 3)
                    rest //= 3
                outs = compiled.evaluate(vals)
                assignment = {
                    n: from_ternary(v) for n, v in zip(names, vals)
                }
                for out_pin in cell.outputs:
                    expected = out_pin.expr.eval(assignment)
                    expected = X if expected is None else expected
                    assert outs[out_pin.name] == expected, (cell_name, vals)
