"""The SCPG cycle power model (Tables I/II engine)."""

import pytest

from repro.errors import ScpgError
from repro.scpg.power_model import Mode, ScpgPowerModel


@pytest.fixture(scope="module")
def model(mult_study):
    return mult_study.model


class TestBreakdown:
    def test_total_is_sum_of_parts(self, model):
        b = model.power(1e6, Mode.SCPG)
        assert b.total == pytest.approx(
            b.p_dynamic + b.p_overhead + b.p_leak_alwayson
            + b.p_leak_comb + b.p_leak_header)

    def test_energy_per_op(self, model):
        b = model.power(2e6, Mode.NO_PG)
        assert b.energy_per_op == pytest.approx(b.total / 2e6)

    def test_saving_vs(self, model):
        nopg = model.power(1e6, Mode.NO_PG)
        scpg = model.power(1e6, Mode.SCPG)
        assert scpg.saving_vs(nopg) > 0
        assert nopg.saving_vs(nopg) == 0.0


class TestModeRelationships:
    @pytest.mark.parametrize("freq", [1e4, 1e5, 1e6, 2e6])
    def test_low_frequency_ordering(self, model, freq):
        """SCPG-Max < SCPG < No-PG in power at low frequency."""
        nopg = model.power(freq, Mode.NO_PG).total
        scpg = model.power(freq, Mode.SCPG).total
        scpg_max = model.power(freq, Mode.SCPG_MAX).total
        assert scpg_max < scpg < nopg

    def test_scpg50_saves_half_comb_leak_at_low_f(self, model):
        nopg = model.power(1e4, Mode.NO_PG)
        scpg = model.power(1e4, Mode.SCPG)
        saving = nopg.total - scpg.total
        assert saving == pytest.approx(model.leak_comb_base * 0.5,
                                       rel=0.15)

    def test_scpgmax_approaches_alwayson_floor(self, model):
        scpg_max = model.power(1e4, Mode.SCPG_MAX)
        assert scpg_max.total < model.leak_alwayson * 1.5

    def test_no_pg_power_linear_in_frequency(self, model):
        p1 = model.power(1e6, Mode.NO_PG).total
        p2 = model.power(2e6, Mode.NO_PG).total
        leak = model.leak_comb_base + model.leak_alwayson_base
        assert p2 - p1 == pytest.approx(model.e_cycle * 1e6, rel=1e-6)
        assert p1 == pytest.approx(leak + model.e_cycle * 1e6, rel=1e-6)

    def test_override_close_to_nopg(self, model):
        """Override mode pays only the small iso/controller taxes."""
        nopg = model.power(1e6, Mode.NO_PG).total
        override = model.power(1e6, Mode.OVERRIDE).total
        assert override >= nopg * 0.99
        assert override < nopg * 1.15

    def test_override_unlocks_peak_performance(self, model):
        """The paper's override use-case: the SCPG design can 'peak to
        maximum performance' -- frequencies where gating is infeasible."""
        f_peak = model.feasible_fmax(Mode.NO_PG)
        assert f_peak > model.feasible_fmax(Mode.SCPG)
        breakdown = model.power(f_peak, Mode.OVERRIDE)
        assert breakdown.total > 0
        with pytest.raises(ScpgError):
            model.power(f_peak, Mode.SCPG)


class TestFeasibilityLimits:
    def test_scpg_infeasible_beyond_fmax(self, model):
        fmax = model.feasible_fmax(Mode.SCPG)
        with pytest.raises(ScpgError):
            model.power(fmax * 1.1, Mode.SCPG)

    def test_nopg_fmax_higher_than_scpg50(self, model):
        assert model.feasible_fmax(Mode.NO_PG) > \
            model.feasible_fmax(Mode.SCPG)

    def test_table_row_marks_infeasible(self, model):
        row = model.table_row(model.feasible_fmax(Mode.NO_PG))
        assert row[Mode.NO_PG] is not None
        assert row[Mode.SCPG] is None

    def test_zero_frequency_rejected(self, model):
        with pytest.raises(ScpgError):
            model.power(0, Mode.NO_PG)


class TestVoltageScaling:
    def test_model_at_lower_vdd(self, mult_study):
        low = ScpgPowerModel.from_scpg_design(
            mult_study.scpg, mult_study.e_cycle, vdd=0.4)
        nom = mult_study.model
        assert low.e_cycle < nom.e_cycle
        assert low.leak_comb < nom.leak_comb
        assert low.timing.t_eval > nom.timing.t_eval
