"""Isolation insertion and the Fig. 3 controller."""

import pytest

from repro.errors import ScpgError
from repro.netlist.core import Module
from repro.netlist.transform import split_combinational
from repro.scpg.isolation import (
    add_rail_sense,
    build_isolation_controller,
    controller_delay,
    insert_isolation,
)
from repro.sim.event import Simulator


class TestRailSense:
    def test_adds_tiehi_port(self, toy_design, lib):
        split = split_combinational(toy_design)
        port = add_rail_sense(split.comb, lib)
        assert split.comb.has_port(port)
        tie = split.comb.instance("u_vddv_tie")
        assert tie.cell.name == "TIEHI_X1"

    def test_duplicate_rejected(self, toy_design, lib):
        split = split_combinational(toy_design)
        add_rail_sense(split.comb, lib)
        with pytest.raises(ScpgError):
            add_rail_sense(split.comb, lib)


class TestController:
    def test_fig3_logic(self, lib):
        """ISOLATE = clk OR !VDDV."""
        m = Module("ctl")
        clk = m.add_input("clk")
        vddv = m.add_input("vddv")
        iso = build_isolation_controller(m, lib, clk, vddv)
        out = m.add_output("iso_out")
        m.add_instance("obuf", "BUF_X1", {"A": iso, "Y": out}, library=lib)
        sim = Simulator(m)
        # Clock high -> isolate regardless of rail.
        sim.set_inputs({"clk": 1, "vddv": 1})
        assert sim.value("iso_out") == 1
        # Clock low but rail collapsed -> still isolating.
        sim.set_inputs({"clk": 0, "vddv": 0})
        assert sim.value("iso_out") == 1
        # Clock low and rail restored -> release.
        sim.set_input("vddv", 1)
        assert sim.value("iso_out") == 0

    def test_controller_delay_positive_and_scales(self, lib):
        nominal = controller_delay(lib)
        low_v = controller_delay(lib, vdd=0.4)
        assert 0 < nominal < 5e-9
        assert low_v > nominal


class TestInsertIsolation:
    def test_clamps_spliced_at_driver(self, toy_design, lib):
        top = toy_design.top
        iso_net = top.add_input("iso")
        inserted = insert_isolation(top, ["n1"], lib, iso_net)
        assert len(inserted) == 1
        # The flop's D pin now sees the isolation output.
        ff = top.instance("ff")
        assert ff.connections["D"].driver[0].cell.name == "ISO_AND_X1"
        # The raw net carries the original driver.
        raw = top.net("n1_raw")
        assert raw.driver[0].name == "g1"

    def test_clamp_behaviour(self, toy_design, lib):
        top = toy_design.top
        iso_net = top.add_input("iso")
        insert_isolation(top, ["n1"], lib, iso_net)
        sim = Simulator(top)
        sim.set_inputs({"a": 1, "b": 0, "iso": 0, "clk": 0})
        assert sim.value("n1") == 1          # NAND(1,0)=1 passes
        sim.set_input("iso", 1)
        assert sim.value("n1") == 0          # clamped low
        assert sim.value("n1_raw") == 1      # raw value unaffected

    def test_clamp_high_variant(self, toy_design, lib):
        top = toy_design.top
        iso_net = top.add_input("iso")
        insert_isolation(top, ["n1"], lib, iso_net, clamp="high")
        sim = Simulator(top)
        sim.set_inputs({"a": 1, "b": 1, "iso": 1, "clk": 0})
        assert sim.value("n1") == 1          # clamped high

    def test_portless_net_rejected(self, toy_design, lib):
        top = toy_design.top
        iso_net = top.add_input("iso")
        with pytest.raises(ScpgError):
            insert_isolation(top, ["a"], lib, iso_net)  # port-driven
