"""Fig. 4 waveform renderer."""

import pytest

from repro.errors import ScpgError
from repro.scpg.clocking import ScpgTimingParams
from repro.scpg.waveform import render_waveforms
from repro.sta.constraints import ClockSpec

TIMING = ScpgTimingParams(
    t_eval=30e-9, t_setup=0.5e-9, t_hold=0.2e-9, t_pgstart=1e-9)


class TestRenderWaveforms:
    def test_lanes_present(self):
        text = render_waveforms(ClockSpec(1e6, 0.5), TIMING)
        for lane in ("CLK", "SLEEP", "VVDD", "ISOLATE", "EVAL"):
            assert lane in text

    def test_lane_widths_equal(self):
        text = render_waveforms(ClockSpec(1e6, 0.5), TIMING, width=60)
        lanes = [l for l in text.splitlines()
                 if l.strip().startswith(("CLK", "SLEEP", "VVDD",
                                          "ISOLATE", "EVAL"))]
        widths = {len(l) for l in lanes}
        assert len(widths) == 1

    def test_sleep_follows_clock(self):
        text = render_waveforms(ClockSpec(1e6, 0.5), TIMING)
        lines = {l.split()[0]: l.split()[1]
                 for l in text.splitlines()
                 if l.strip().startswith(("CLK", "SLEEP"))}
        assert lines["CLK"] == lines["SLEEP"]

    def test_isolation_outlasts_clock_high(self):
        text = render_waveforms(ClockSpec(5e6, 0.5), TIMING, width=72)
        lanes = {}
        for line in text.splitlines():
            parts = line.split()
            if len(parts) == 2:
                lanes[parts[0]] = parts[1]
        clk_high = lanes["CLK"].count("~")
        iso_high = lanes["ISOLATE"].count("~")
        assert iso_high >= clk_high

    def test_rail_shape_with_model(self, mult_study):
        text = render_waveforms(
            ClockSpec(1e6, 0.9), mult_study.model.timing,
            rail=mult_study.scpg.rail)
        vvdd = [l for l in text.splitlines() if "VVDD" in l][0]
        assert "_" in vvdd  # collapsed portion visible at 90% duty

    def test_infeasible_rejected(self):
        with pytest.raises(ScpgError):
            render_waveforms(ClockSpec(20e6, 0.5), TIMING)

    def test_eval_window_marked(self):
        text = render_waveforms(ClockSpec(1e6, 0.5), TIMING)
        eval_lane = [l for l in text.splitlines() if "EVAL" in l][0]
        assert "#" in eval_lane


class TestDegenerateWidths:
    """Regression (ISSUE 7): ``width <= 1`` collapses the ``width - 1``
    bucket divisor to zero -- width 0 indexed an empty ruler and width 1
    divided by zero on the rail time axis.  Both now clamp to the
    2-column minimum diagram."""

    @staticmethod
    def _lane_bodies(text):
        lanes = {}
        for line in text.splitlines():
            parts = line.split()
            if len(parts) == 2 and parts[0] in (
                    "CLK", "SLEEP", "VVDD", "ISOLATE", "EVAL"):
                lanes[parts[0]] = parts[1]
        return lanes

    @pytest.mark.parametrize("width", [0, 1, 2])
    def test_degenerate_widths_render(self, width):
        text = render_waveforms(ClockSpec(1e6, 0.5), TIMING, width=width)
        lanes = self._lane_bodies(text)
        assert set(lanes) == {"CLK", "SLEEP", "VVDD", "ISOLATE", "EVAL"}
        assert all(len(body) == 2 for body in lanes.values())

    @pytest.mark.parametrize("width", [0, 1])
    def test_clamped_equals_minimum_diagram(self, width):
        narrow = render_waveforms(ClockSpec(1e6, 0.5), TIMING, width=width)
        minimum = render_waveforms(ClockSpec(1e6, 0.5), TIMING, width=2)
        assert narrow == minimum

    def test_degenerate_width_with_rail_model(self, mult_study):
        # width=1 used to divide by zero sampling the rail decay
        text = render_waveforms(
            ClockSpec(1e6, 0.9), mult_study.model.timing,
            rail=mult_study.scpg.rail, width=1)
        assert "VVDD" in text
