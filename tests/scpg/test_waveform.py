"""Fig. 4 waveform renderer."""

import pytest

from repro.errors import ScpgError
from repro.scpg.clocking import ScpgTimingParams
from repro.scpg.waveform import render_waveforms
from repro.sta.constraints import ClockSpec

TIMING = ScpgTimingParams(
    t_eval=30e-9, t_setup=0.5e-9, t_hold=0.2e-9, t_pgstart=1e-9)


class TestRenderWaveforms:
    def test_lanes_present(self):
        text = render_waveforms(ClockSpec(1e6, 0.5), TIMING)
        for lane in ("CLK", "SLEEP", "VVDD", "ISOLATE", "EVAL"):
            assert lane in text

    def test_lane_widths_equal(self):
        text = render_waveforms(ClockSpec(1e6, 0.5), TIMING, width=60)
        lanes = [l for l in text.splitlines()
                 if l.strip().startswith(("CLK", "SLEEP", "VVDD",
                                          "ISOLATE", "EVAL"))]
        widths = {len(l) for l in lanes}
        assert len(widths) == 1

    def test_sleep_follows_clock(self):
        text = render_waveforms(ClockSpec(1e6, 0.5), TIMING)
        lines = {l.split()[0]: l.split()[1]
                 for l in text.splitlines()
                 if l.strip().startswith(("CLK", "SLEEP"))}
        assert lines["CLK"] == lines["SLEEP"]

    def test_isolation_outlasts_clock_high(self):
        text = render_waveforms(ClockSpec(5e6, 0.5), TIMING, width=72)
        lanes = {}
        for line in text.splitlines():
            parts = line.split()
            if len(parts) == 2:
                lanes[parts[0]] = parts[1]
        clk_high = lanes["CLK"].count("~")
        iso_high = lanes["ISOLATE"].count("~")
        assert iso_high >= clk_high

    def test_rail_shape_with_model(self, mult_study):
        text = render_waveforms(
            ClockSpec(1e6, 0.9), mult_study.model.timing,
            rail=mult_study.scpg.rail)
        vvdd = [l for l in text.splitlines() if "VVDD" in l][0]
        assert "_" in vvdd  # collapsed portion visible at 90% duty

    def test_infeasible_rejected(self):
        with pytest.raises(ScpgError):
            render_waveforms(ClockSpec(20e6, 0.5), TIMING)

    def test_eval_window_marked(self):
        text = render_waveforms(ClockSpec(1e6, 0.5), TIMING)
        eval_lane = [l for l in text.splitlines() if "EVAL" in l][0]
        assert "#" in eval_lane
