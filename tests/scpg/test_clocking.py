"""SCPG intra-cycle timing (Fig. 4)."""

import pytest

from repro.errors import ScpgError
from repro.power.rails import RailParams, VirtualRailModel
from repro.scpg.clocking import (
    ScpgTimingParams,
    check_hold,
    gated_window,
    scpg_feasible,
    scpg_max_frequency,
    timing_from_sta,
)
from repro.sta.constraints import ClockSpec

TIMING = ScpgTimingParams(
    t_eval=30e-9, t_setup=0.5e-9, t_hold=0.15e-9, t_pgstart=1e-9)


class TestTimingParams:
    def test_low_phase_demand(self):
        assert TIMING.low_phase_demand == pytest.approx(31.5e-9)

    def test_scaled(self):
        double = TIMING.scaled(2.0)
        assert double.t_eval == pytest.approx(60e-9)
        assert double.low_phase_demand == pytest.approx(63e-9)


class TestFeasibility:
    def test_50pct_duty_boundary(self):
        fmax = scpg_max_frequency(TIMING, duty=0.5)
        assert scpg_feasible(ClockSpec(fmax * 0.999, 0.5), TIMING)
        assert not scpg_feasible(ClockSpec(fmax * 1.05, 0.5), TIMING)

    def test_tolerates_exact_boundary(self):
        fmax = scpg_max_frequency(TIMING, duty=0.5)
        assert scpg_feasible(ClockSpec(fmax, 0.5), TIMING)

    def test_lower_duty_extends_fmax(self):
        """The paper: duty below 50% keeps SCPG applicable when
        T_clk/2 < T_eval < T_clk."""
        assert scpg_max_frequency(TIMING, duty=0.3) > \
            scpg_max_frequency(TIMING, duty=0.5)

    def test_bad_duty_rejected(self):
        with pytest.raises(ScpgError):
            scpg_max_frequency(TIMING, duty=0.0)

    def test_gated_window_is_high_phase(self):
        clock = ClockSpec(1e6, 0.7)
        assert gated_window(clock) == pytest.approx(0.7e-6)


class TestHoldCheck:
    def test_slow_collapse_ok(self, lib, mult_module):
        rail = VirtualRailModel(mult_module, lib)
        swing = check_hold(TIMING, rail)
        assert swing < 0.1

    def test_fast_collapse_fails(self, lib, mult_module):
        rail = VirtualRailModel(
            mult_module, lib, RailParams(tau_collapse=0.1e-9))
        slow_hold = ScpgTimingParams(
            t_eval=30e-9, t_setup=0.5e-9, t_hold=2e-9, t_pgstart=1e-9)
        with pytest.raises(ScpgError, match="hold"):
            check_hold(slow_hold, rail)


class TestTimingFromSta:
    def test_composition(self, lib, mult_module, mult_study):
        from repro.power.headers import HeaderNetwork
        from repro.sta.analysis import TimingAnalysis

        sta = TimingAnalysis(mult_module, lib).run()
        rail = VirtualRailModel(mult_module, lib)
        network = HeaderNetwork(cell=lib.cell("HEADER_X2"), count=12,
                                vdd=0.6)
        timing = timing_from_sta(sta, rail, network,
                                 controller_delay=0.4e-9)
        assert timing.t_eval == sta.eval_delay
        assert timing.t_setup == sta.setup
        assert timing.t_pgstart > 0.4e-9  # restore + controller

    @pytest.mark.parametrize("ron", [float("inf"), -10.0])
    def test_dead_header_network_raises(self, lib, mult_module, ron):
        """Regression (ISSUE 7): a zero/negative header on-current used
        to be floored at 1e-15 A, yielding a huge-but-finite restore
        time and a silently "feasible" design instead of an error."""
        from repro.sta.analysis import TimingAnalysis

        sta = TimingAnalysis(mult_module, lib).run()
        rail = VirtualRailModel(mult_module, lib)

        class DeadNetwork:
            cell = lib.cell("HEADER_X2")
            count = 4
            total_width = 4 * cell.header_width

        DeadNetwork.ron = ron
        with pytest.raises(ScpgError, match="on-current"):
            timing_from_sta(sta, rail, DeadNetwork())
