"""SCPG-Max duty-cycle optimisation."""

import pytest

from repro.errors import ScpgError
from repro.scpg.clocking import ScpgTimingParams, scpg_feasible
from repro.scpg.duty import (
    DUTY_CYCLE_CAP,
    DUTY_CYCLE_FLOOR,
    clamp_duty,
    duty_sweep,
    optimise_duty,
)
from repro.scpg.power_model import Mode
from repro.sta.constraints import ClockSpec

TIMING = ScpgTimingParams(
    t_eval=30e-9, t_setup=0.5e-9, t_hold=0.15e-9, t_pgstart=1e-9)


class TestOptimiseDuty:
    def test_low_frequency_hits_cap(self):
        assert optimise_duty(1e4, TIMING) == DUTY_CYCLE_CAP

    def test_result_always_feasible(self):
        for freq in (1e4, 1e5, 1e6, 5e6, 1e7, 2e7):
            duty = optimise_duty(freq, TIMING)
            assert scpg_feasible(ClockSpec(freq, duty), TIMING)

    def test_mid_frequency_exact(self):
        freq = 10e6
        duty = optimise_duty(freq, TIMING)
        assert duty == pytest.approx(1.0 - TIMING.low_phase_demand * freq)

    def test_duty_below_50pct_near_fmax(self):
        """When T_clk/2 < demand < T_clk, the optimiser drops below 50%
        (the paper's extension of SCPG's applicability)."""
        freq = 0.7 / TIMING.low_phase_demand  # demand = 0.7 T
        duty = optimise_duty(freq, TIMING)
        assert 0 < duty < 0.5

    def test_impossible_frequency_raises(self):
        with pytest.raises(ScpgError, match="duty"):
            optimise_duty(1.2 / TIMING.low_phase_demand, TIMING)

    def test_invalid_frequency(self):
        with pytest.raises(ScpgError):
            optimise_duty(0, TIMING)


class TestClampDuty:
    """The single owner of the cap/floor arithmetic (ISSUE 7)."""

    def test_cap_applies(self):
        assert clamp_duty(1.5) == DUTY_CYCLE_CAP
        assert clamp_duty(0.5) == 0.5

    def test_floor_snap_absorbs_fp_noise(self):
        assert clamp_duty(DUTY_CYCLE_FLOOR - 1e-7) == DUTY_CYCLE_FLOOR
        assert clamp_duty(DUTY_CYCLE_FLOOR) == DUTY_CYCLE_FLOOR

    def test_below_floor_is_infeasible(self):
        assert clamp_duty(DUTY_CYCLE_FLOOR - 1e-3) is None
        assert clamp_duty(-1.0) is None

    def test_explicit_bounds_override_the_constants(self):
        assert clamp_duty(0.9, cap=0.6) == 0.6
        assert clamp_duty(0.05, floor=0.1) is None
        assert clamp_duty(0.2, cap=0.6, floor=0.1) == 0.2


class TestDutySweep:
    def test_power_monotone_in_duty(self, mult_study):
        model = mult_study.model
        points = duty_sweep(1e6, model.timing, model, steps=10)
        powers = [b.total for _d, b in points]
        assert powers == sorted(powers, reverse=True)

    def test_sweep_covers_feasible_range(self, mult_study):
        model = mult_study.model
        points = duty_sweep(1e6, model.timing, model, steps=10)
        duties = [d for d, _b in points]
        assert duties[0] < 0.1
        assert duties[-1] == pytest.approx(
            optimise_duty(1e6, model.timing))

    def test_single_step_returns_the_optimum(self, mult_study):
        # Regression: steps=1 used to divide by zero.
        model = mult_study.model
        points = duty_sweep(1e6, model.timing, model, steps=1)
        assert len(points) == 1
        assert points[0][0] == pytest.approx(
            optimise_duty(1e6, model.timing))

    def test_zero_steps_rejected(self, mult_study):
        model = mult_study.model
        with pytest.raises(ScpgError, match="step"):
            duty_sweep(1e6, model.timing, model, steps=0)

    def test_cap_and_floor_are_honoured(self, mult_study):
        # Regression: caller-supplied cap/floor were silently ignored.
        model = mult_study.model
        points = duty_sweep(1e4, model.timing, model, steps=5,
                            cap=0.5, floor=0.1)
        duties = [d for d, _b in points]
        assert duties[0] == pytest.approx(0.1)
        assert duties[-1] == pytest.approx(0.5)
        assert all(0.1 <= d <= 0.5 for d in duties)

    def test_cap_recalibration_reaches_both_paths(self, monkeypatch,
                                                  mult_study):
        """`optimise_duty` and `_power_axis` share one clamp helper.

        Regression (ISSUE 7): the sweep batch path used to re-implement
        the clamp with its own import-time copy of ``DUTY_CYCLE_CAP``,
        so recalibrating the constant moved the optimiser but not the
        sweep and the two silently drifted apart.
        """
        from repro.scpg import duty as duty_mod

        monkeypatch.setattr(duty_mod, "DUTY_CYCLE_CAP", 0.5)
        model = mult_study.model
        freq = 1e4  # low enough that the uncapped solution is ~1.0
        (bd,) = model._power_axis([freq], Mode.SCPG_MAX)
        assert bd.duty == 0.5
        assert optimise_duty(freq, model.timing) == 0.5
        assert model.power(freq, Mode.SCPG_MAX).duty == 0.5

    def test_scpgmax_equals_best_sweep_point(self, mult_study):
        model = mult_study.model
        best_sweep = min(
            b.total for _d, b in duty_sweep(1e6, model.timing, model,
                                            steps=15))
        scpg_max = model.power(1e6, Mode.SCPG_MAX).total
        assert scpg_max == pytest.approx(best_sweep, rel=1e-6)
