"""The SCPG netlist transform."""

import random

import pytest

from repro.errors import ScpgError
from repro.netlist.core import Design
from repro.netlist.stats import module_stats
from repro.netlist.validate import validate_module
from repro.sim.testbench import ClockedTestbench, bus_values, read_bus
from repro.tech.library import CellKind
from repro.techniques import technique

_scpg = technique("scpg")


@pytest.fixture(scope="module")
def scpg_mult(lib):
    from repro.circuits.multiplier import build_mult16

    return _scpg.transform(Design(build_mult16(lib), lib))


class TestStructure:
    def test_flat_design_valid(self, scpg_mult):
        assert validate_module(scpg_mult.flat.top).ok

    def test_headers_present(self, scpg_mult):
        stats = module_stats(scpg_mult.flat.top)
        assert stats.header_cells == scpg_mult.headers.count
        assert scpg_mult.headers.cell.drive_strength == 2  # paper: X2

    def test_isolation_on_every_boundary_output(self, scpg_mult):
        stats = module_stats(scpg_mult.flat.top)
        assert stats.isolation_cells == len(scpg_mult.boundary_outputs)
        assert stats.isolation_cells >= 32  # at least the product bits

    def test_controller_and_sense(self, scpg_mult):
        top = scpg_mult.design.top
        assert top.instance("u_isoctl_or").cell.name == "OR2_X1"
        assert scpg_mult.comb_module.instance("u_vddv_tie") is not None

    def test_override_port_added(self, scpg_mult):
        assert scpg_mult.design.top.has_port("override_n")

    def test_no_retention_registers_needed(self, scpg_mult):
        """Every flop stays in the always-on top (the paper's key
        simplification versus traditional power gating)."""
        comb_kinds = {i.cell.kind
                      for i in scpg_mult.comb_module.cell_instances()}
        assert CellKind.SEQUENTIAL not in comb_kinds

    def test_area_overhead_in_paper_class(self, scpg_mult):
        assert 1.0 < scpg_mult.area_overhead_pct < 9.0

    def test_upf_generated(self, scpg_mult):
        assert "create_power_domain PD_COMB" in scpg_mult.upf
        assert "HEADER_X2" in scpg_mult.upf
        assert "set_isolation" in scpg_mult.upf

    def test_domains_described(self, scpg_mult):
        switched = [d for d in scpg_mult.domains if d.switched]
        assert len(switched) == 1
        assert switched[0].name == "PD_COMB"
        assert len(switched[0].switch_cells) == scpg_mult.headers.count

    def test_missing_clock_rejected(self, lib):
        from repro.circuits.multiplier import build_mult16

        comb_only = build_mult16(lib, registered=False)
        with pytest.raises(ScpgError, match="clock"):
            _scpg.transform(Design(comb_only, lib))

    def test_forced_header_size(self, lib):
        from repro.circuits.multiplier import build_mult16

        scpg = _scpg.transform(Design(build_mult16(lib), lib),
                               header_size=8)
        assert scpg.headers.cell.drive_strength == 8


class TestFunctionalEquivalence:
    def _run_products(self, module, override_n, n=25, seed=11):
        tb = ClockedTestbench(module)
        tb.reset_flops()
        tb.apply({"override_n": override_n})
        rng = random.Random(seed)
        results = []
        prev = None
        for _ in range(n):
            a, b = rng.getrandbits(16), rng.getrandbits(16)
            tb.cycle({**bus_values("a", 16, a),
                      **bus_values("b", 16, b)})
            results.append(read_bus(tb.sim, "p", 32))
            prev = (a, b)
        return results

    def test_equivalent_with_gating_enabled(self, scpg_mult, lib):
        """SCPG's clamps + always-on registers preserve the pipeline
        contents even while gating toggles every cycle."""
        from repro.circuits.multiplier import build_mult16

        base = build_mult16(lib)
        tb = ClockedTestbench(base)
        tb.reset_flops()
        rng = random.Random(11)
        expected = []
        for _ in range(25):
            a, b = rng.getrandbits(16), rng.getrandbits(16)
            tb.cycle({**bus_values("a", 16, a), **bus_values("b", 16, b)})
            expected.append(read_bus(tb.sim, "p", 32))

        gated = self._run_products(scpg_mult.flat.top, override_n=1)
        assert gated == expected

    def test_equivalent_with_override(self, scpg_mult):
        enabled = self._run_products(scpg_mult.flat.top, override_n=1)
        overridden = self._run_products(scpg_mult.flat.top, override_n=0)
        assert enabled == overridden
