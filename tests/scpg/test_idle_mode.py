"""Traditional idle-mode power gating versus (and combined with) SCPG."""

import pytest

from repro.errors import ScpgError
from repro.scpg.idle_mode import (
    GatingScheme,
    WorkloadProfile,
    crossover_activity,
    evaluate_scheme,
    idle_mode_study,
)


class TestWorkloadProfile:
    def test_validation(self):
        with pytest.raises(ScpgError):
            WorkloadProfile(1.5, 1e6)
        with pytest.raises(ScpgError):
            WorkloadProfile(0.5, 0)


class TestSchemePowers:
    @pytest.fixture(scope="class")
    def study_50(self, mult_study):
        return idle_mode_study(mult_study.model,
                               WorkloadProfile(0.5, 2e6))

    def test_all_schemes_present(self, study_50):
        assert set(study_50) == set(GatingScheme)

    def test_average_is_weighted_mix(self, mult_study):
        profile = WorkloadProfile(0.25, 2e6)
        result = evaluate_scheme(mult_study.model, GatingScheme.SCPG,
                                 profile)
        assert result.average == pytest.approx(
            0.25 * result.active_power + 0.75 * result.idle_power)

    def test_traditional_does_not_touch_active_mode(self, study_50):
        assert study_50[GatingScheme.TRADITIONAL].active_power == \
            pytest.approx(study_50[GatingScheme.NONE].active_power)

    def test_scpg_does_not_touch_idle_mode_much(self, study_50):
        """SCPG with the clock stopped low leaves the domain powered."""
        none_idle = study_50[GatingScheme.NONE].idle_power
        scpg_idle = study_50[GatingScheme.SCPG].idle_power
        assert scpg_idle == pytest.approx(none_idle, rel=0.10)

    def test_combined_idle_is_headers_only(self, study_50, mult_study):
        combined = study_50[GatingScheme.COMBINED]
        assert combined.idle_power == pytest.approx(
            mult_study.model.leak_alwayson
            + mult_study.model.leak_header_off)

    def test_combined_never_worse_than_scpg(self, mult_study):
        for fraction in (0.01, 0.2, 0.5, 0.9, 1.0):
            study = idle_mode_study(mult_study.model,
                                    WorkloadProfile(fraction, 2e6))
            assert study[GatingScheme.COMBINED].average <= \
                study[GatingScheme.SCPG].average * 1.0001


class TestCrossover:
    def test_traditional_wins_when_mostly_idle(self, mult_study):
        study = idle_mode_study(mult_study.model,
                                WorkloadProfile(0.01, 2e6))
        assert study[GatingScheme.TRADITIONAL].average < \
            study[GatingScheme.SCPG].average

    def test_scpg_wins_when_mostly_active(self, mult_study):
        study = idle_mode_study(mult_study.model,
                                WorkloadProfile(0.95, 2e6))
        assert study[GatingScheme.SCPG].average < \
            study[GatingScheme.TRADITIONAL].average

    def test_crossover_found_and_consistent(self, mult_study):
        model = mult_study.model
        cross = crossover_activity(model, 2e6)
        assert cross is not None
        assert 0.0 < cross < 1.0
        below = idle_mode_study(model, WorkloadProfile(cross * 0.8, 2e6))
        above = idle_mode_study(
            model, WorkloadProfile(min(1.0, cross * 1.2), 2e6))
        assert below[GatingScheme.TRADITIONAL].average < \
            below[GatingScheme.SCPG].average
        assert above[GatingScheme.SCPG].average < \
            above[GatingScheme.TRADITIONAL].average
