"""Power-budget solving (energy-harvester scenarios)."""

import pytest

from repro.errors import ScpgError
from repro.scpg.budget import (
    HARVESTER_BUDGET_LARGE,
    HARVESTER_BUDGET_SMALL,
    compare_at_budget,
    solve_max_frequency,
)
from repro.scpg.power_model import Mode


class TestSolver:
    def test_power_at_solution_within_budget(self, mult_study):
        scenario = solve_max_frequency(
            mult_study.model, 30e-6, Mode.NO_PG)
        assert scenario.power <= 30e-6 * 1.001
        assert scenario.freq_hz > 0

    def test_solution_is_maximal(self, mult_study):
        model = mult_study.model
        scenario = solve_max_frequency(model, 30e-6, Mode.NO_PG)
        assert model.power(scenario.freq_hz * 1.05,
                           Mode.NO_PG).total > 30e-6

    def test_budget_below_leakage_floor_raises(self, mult_study):
        with pytest.raises(ScpgError, match="floor"):
            solve_max_frequency(mult_study.model, 1e-6, Mode.NO_PG)

    def test_huge_budget_returns_fmax(self, mult_study):
        model = mult_study.model
        scenario = solve_max_frequency(model, 1.0, Mode.NO_PG)
        assert scenario.freq_hz == pytest.approx(
            model.feasible_fmax(Mode.NO_PG))

    def test_scenario_ratios(self, mult_study):
        comparison = compare_at_budget(mult_study.model, 30e-6)
        nopg = comparison[Mode.NO_PG]
        scpg_max = comparison[Mode.SCPG_MAX]
        assert scpg_max.speedup_vs(nopg) > 1
        assert scpg_max.efficiency_vs(nopg) > 1


class TestPaperScenarios:
    def test_multiplier_30uW_scenario(self, mult_study):
        """Paper: 30 uW budget -> no-SCPG ~100 kHz vs SCPG-Max ~5 MHz,
        ~50x clock and ~45x energy-efficiency improvement."""
        comparison = compare_at_budget(
            mult_study.model, HARVESTER_BUDGET_SMALL)
        nopg = comparison[Mode.NO_PG]
        scpg_max = comparison[Mode.SCPG_MAX]
        # The no-PG frequency is extremely sensitive to the leakage floor
        # (paper: 100 kHz with 0.6 uW of dynamic headroom; our floor sits
        # ~1.3 uW lower, buying a few hundred extra kHz).
        assert 0.03e6 <= nopg.freq_hz <= 1.2e6
        assert scpg_max.freq_hz >= 2e6
        assert scpg_max.speedup_vs(nopg) > 4
        assert scpg_max.efficiency_vs(nopg) > 4
        assert scpg_max.energy_per_op < 10e-12  # paper: 6.56 pJ

    def test_m0_250uW_scenario(self, m0_study):
        """Paper: 250 uW budget -> >2x frequency and ~2.5x energy
        efficiency for the Cortex-M0."""
        comparison = compare_at_budget(
            m0_study.model, HARVESTER_BUDGET_LARGE)
        nopg = comparison[Mode.NO_PG]
        scpg_max = comparison[Mode.SCPG_MAX]
        assert scpg_max.speedup_vs(nopg) > 1.5
        assert scpg_max.efficiency_vs(nopg) > 1.5
