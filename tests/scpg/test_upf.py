"""UPF-lite power-intent writer."""

import pytest

from repro.scpg.upf import dumps_upf, write_upf


class TestUpf:
    def test_structure(self, mult_study):
        text = mult_study.scpg.upf
        for required in (
            "create_supply_net VDDV",
            "create_power_domain PD_TOP",
            "create_power_domain PD_COMB",
            "create_power_switch SW_COMB",
            "set_isolation ISO_COMB",
            "-clamp_value 0",
            "ISO_AND_X1",
        ):
            assert required in text, required

    def test_sleep_control_names_clock_and_override(self, mult_study):
        text = dumps_upf(mult_study.scpg, clock_port="clk",
                         override_port="override_n")
        assert "clk_and_override_n" in text

    def test_no_retention_strategy(self, mult_study):
        """SCPG's selling point: no retention registers."""
        text = mult_study.scpg.upf
        assert "set_retention" not in text
        assert "No retention" in text

    def test_write_file(self, mult_study, tmp_path):
        path = tmp_path / "scpg.upf"
        write_upf(mult_study.scpg, path)
        assert path.read_text() == dumps_upf(mult_study.scpg)
