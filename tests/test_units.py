"""Unit helpers: SI formatting and parsing."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.units import (
    UnitError,
    fmt_energy,
    fmt_freq,
    fmt_power,
    fmt_time,
    format_si,
    khz,
    mhz,
    ns,
    parse_si,
    pj,
    uw,
)


class TestFormatSi:
    def test_basic_prefixes(self):
        assert format_si(29.23e-6, "W") == "29.23uW"
        assert format_si(14.3e6, "Hz") == "14.3MHz"
        assert format_si(2.34e-12, "J") == "2.34pJ"
        assert format_si(70e-9, "s") == "70ns"

    def test_zero_and_specials(self):
        assert format_si(0, "W") == "0W"
        assert format_si(float("nan"), "W") == "nanW"
        assert format_si(float("inf"), "W") == "infW"
        assert format_si(float("-inf"), "W") == "-infW"
        assert format_si(None, "W") == "n/a"

    def test_negative(self):
        assert format_si(-2.5e-3, "A") == "-2.5mA"

    def test_rounding_renormalises(self):
        # 999.96e3 rounds to 1000k -> should renormalise to 1M
        assert format_si(999.96e3, "Hz", digits=4) == "1MHz"

    def test_extreme_exponents_clamped(self):
        assert format_si(5e12, "Hz").endswith("GHz")
        assert format_si(1e-17, "J").endswith("fJ")


class TestParseSi:
    def test_with_unit(self):
        assert parse_si("14.3MHz", "Hz") == pytest.approx(14.3e6)
        assert parse_si("250uW", "W") == pytest.approx(250e-6)
        assert parse_si("70ns", "s") == pytest.approx(70e-9)

    def test_without_unit(self):
        assert parse_si("0.6") == pytest.approx(0.6)
        assert parse_si("2k") == pytest.approx(2000)

    def test_micro_sign(self):
        assert parse_si("30µW", "W") == pytest.approx(30e-6)

    def test_numeric_passthrough(self):
        assert parse_si(42) == 42.0
        assert parse_si(0.5) == 0.5

    def test_bad_input(self):
        with pytest.raises(UnitError):
            parse_si("not-a-number", "W")
        with pytest.raises(UnitError):
            parse_si("", "W")

    @given(st.floats(min_value=1e-14, max_value=1e9,
                     allow_nan=False, allow_infinity=False))
    def test_roundtrip(self, value):
        text = format_si(value, "W", digits=9)
        parsed = parse_si(text, "W")
        assert parsed == pytest.approx(value, rel=1e-6)


class TestConvenience:
    def test_wrappers(self):
        assert fmt_freq(1e6) == "1MHz"
        assert fmt_power(1e-6) == "1uW"
        assert fmt_energy(1e-12) == "1pJ"
        assert fmt_time(1e-9) == "1ns"

    def test_scalers(self):
        assert mhz(2) == 2e6
        assert khz(100) == 1e5
        assert uw(30) == pytest.approx(30e-6)
        assert pj(5) == pytest.approx(5e-12)
        assert ns(70) == pytest.approx(70e-9)
        assert math.isclose(mhz(14.3), 14.3e6)
