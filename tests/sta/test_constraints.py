"""Clock specifications."""

import pytest

from repro.errors import TimingError
from repro.sta.constraints import ClockSpec


class TestClockSpec:
    def test_basic_quantities(self):
        clk = ClockSpec(10e6, duty=0.5)
        assert clk.period == pytest.approx(100e-9)
        assert clk.t_high == pytest.approx(50e-9)
        assert clk.t_low == pytest.approx(50e-9)

    def test_asymmetric_duty(self):
        clk = ClockSpec(1e6, duty=0.9)
        assert clk.t_high == pytest.approx(900e-9)
        assert clk.t_low == pytest.approx(100e-9)

    def test_modifiers(self):
        clk = ClockSpec(1e6, duty=0.5, name="core")
        assert clk.with_duty(0.8).duty == 0.8
        assert clk.with_duty(0.8).name == "core"
        assert clk.with_freq(2e6).freq_hz == 2e6
        assert clk.with_freq(2e6).duty == 0.5

    @pytest.mark.parametrize("freq,duty", [
        (0, 0.5), (-1, 0.5), (1e6, 0.0), (1e6, 1.0), (1e6, -0.1),
    ])
    def test_invalid(self, freq, duty):
        with pytest.raises(TimingError):
            ClockSpec(freq, duty)
