"""Multi-corner timing sign-off."""

import pytest

from repro.sta.corners import multi_corner_timing
from repro.subvt.variation import Corner


@pytest.fixture(scope="module")
def mct(mult_module, lib):
    return multi_corner_timing(mult_module, lib)


class TestMultiCorner:
    def test_all_corners_present(self, mct):
        assert len(mct.corners) == 5

    def test_slow_hot_is_setup_critical(self, mct):
        assert mct.slowest.corner.name == "ss_hot"

    def test_signoff_fmax_is_worst(self, mct):
        fmaxes = [c.result.fmax for c in mct.corners]
        assert mct.signoff_fmax == min(fmaxes)

    def test_scales_bracket_nominal(self, mct):
        scales = [c.delay_scale for c in mct.corners]
        assert min(scales) < 1.0 < max(scales)
        tt = [c for c in mct.corners if c.corner.name == "tt"][0]
        assert tt.delay_scale == pytest.approx(1.0)

    def test_signoff_scpg_demand_exceeds_nominal(self, mct, mult_study):
        nominal = mult_study.model.timing.low_phase_demand
        signoff = mct.signoff_scpg_demand(
            mult_study.model.timing.t_pgstart)
        assert signoff > nominal

    def test_report_renders(self, mct):
        text = mct.report()
        assert "sign-off Fmax" in text
        assert "ss_hot" in text

    def test_custom_corner_set(self, mult_module, lib):
        corners = (Corner("slow", +0.06, 125.0),)
        mct = multi_corner_timing(mult_module, lib, corners=corners)
        assert len(mct.corners) == 1
        assert mct.corners[0].delay_scale > 1.3
