"""Static timing analysis."""

import pytest

from repro.circuits.builder import new_module
from repro.errors import TimingError
from repro.netlist.core import Module
from repro.sta.analysis import TimingAnalysis
from repro.sta.delay import cell_delay, net_load


class TestNetLoad:
    def test_pin_caps_plus_wire(self, toy_design, lib):
        n1 = toy_design.top.net("n1")  # loads: DFF D pin
        load = net_load(n1, lib)
        expected = lib.cell("DFF_X1").input_capacitance("D") \
            + lib.wire_cap_per_fanout
        assert load == pytest.approx(expected)

    def test_output_port_counts_as_fanout(self, toy_design, lib):
        y = toy_design.top.net("y")
        # y: driven by g2, loaded only by the port.
        assert net_load(y, lib) == pytest.approx(lib.wire_cap_per_fanout)

    def test_cell_delay_scales(self, lib):
        inv = lib.cell("INV_X1")
        assert cell_delay(inv, 1e-15, scale=3.0) == pytest.approx(
            3 * inv.delay(1e-15))


class TestTimingAnalysis:
    def test_toy_eval_delay(self, toy_design, lib):
        res = TimingAnalysis(toy_design.top, lib).run()
        # Critical path: ff clk->q then INV to output port y.
        dff = lib.cell("DFF_X1")
        inv = lib.cell("INV_X1")
        q_load = inv.input_capacitance("A") + lib.wire_cap_per_fanout
        y_load = lib.wire_cap_per_fanout
        expected = dff.delay(q_load) + inv.delay(y_load)
        assert res.eval_delay == pytest.approx(expected)
        assert res.setup == 0.0  # capture is an output port

    def test_chain_depth_scales_delay(self, lib):
        def chain(depth):
            module, b = new_module("c{}".format(depth), lib)
            net = module.add_input("a")
            clk = module.add_input("clk")
            for _ in range(depth):
                net = b.inv(net)
            q = module.add_output("q")
            b.dff(net, clk, q=q)
            return TimingAnalysis(module, lib).run().eval_delay

        assert chain(20) > 2 * chain(8)

    def test_min_period_and_fmax(self, mult_module, lib):
        res = TimingAnalysis(mult_module, lib).run()
        assert res.min_period == pytest.approx(res.eval_delay + res.setup)
        assert res.fmax == pytest.approx(1.0 / res.min_period)
        assert res.setup > 0  # captured by a register
        assert res.hold > 0

    def test_voltage_scaling(self, mult_module, lib):
        nom = TimingAnalysis(mult_module, lib).run()
        low = TimingAnalysis(mult_module, lib).run(vdd=0.4)
        assert low.eval_delay > 2 * nom.eval_delay
        assert low.eval_delay / nom.eval_delay == pytest.approx(
            lib.delay_scale(0.4), rel=1e-6)

    def test_scaled_helper(self, mult_module, lib):
        res = TimingAnalysis(mult_module, lib).run()
        double = res.scaled(2.0)
        assert double.eval_delay == pytest.approx(2 * res.eval_delay)
        assert double.setup == pytest.approx(2 * res.setup)

    def test_critical_path_traceable(self, mult_module, lib):
        res = TimingAnalysis(mult_module, lib).run()
        path = res.critical_path
        assert len(path.points) > 10      # deep array
        arrivals = [p[2] for p in path.points]
        assert arrivals == sorted(arrivals)  # monotone along the path
        assert "D" in path.capture or "port" in path.capture

    def test_no_capture_points_rejected(self, lib):
        m = Module("empty")
        m.add_input("a")
        with pytest.raises(TimingError):
            TimingAnalysis(m, lib).run()

    def test_multiplier_matches_table_regime(self, mult_module, lib):
        """T_eval must put the 50%-duty Fmax in Table I's range."""
        res = TimingAnalysis(mult_module, lib).run()
        fmax_scpg50 = 1.0 / (2 * res.min_period)
        assert 14.3e6 <= fmax_scpg50 <= 25e6

    def test_m0_slower_than_multiplier(self, mult_module, m0_module, lib):
        mult = TimingAnalysis(mult_module, lib).run()
        m0 = TimingAnalysis(m0_module, lib).run()
        assert m0.eval_delay > mult.eval_delay
