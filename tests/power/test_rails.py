"""Virtual-rail model."""

import pytest

from repro.power.rails import RailParams, VirtualRailModel


@pytest.fixture(scope="module")
def rail(lib, mult_module):
    return VirtualRailModel(mult_module, lib)


class TestSwing:
    def test_zero_time_no_swing(self, rail):
        assert rail.swing_fraction(0.0) == 0.0
        assert rail.swing_fraction(-1.0) == 0.0

    def test_monotone_saturating(self, rail):
        s1 = rail.swing_fraction(1e-9)
        s2 = rail.swing_fraction(10e-9)
        s3 = rail.swing_fraction(1e-6)
        assert 0 < s1 < s2 < s3
        assert s3 == rail.params.full_swing_fraction  # capped

    def test_time_constant(self, lib, mult_module):
        params = RailParams(tau_collapse=10e-9, full_swing_fraction=1.0)
        rail = VirtualRailModel(mult_module, lib, params)
        assert rail.swing_fraction(10e-9) == pytest.approx(
            1 - 0.3679, rel=1e-3)


class TestLeakTime:
    def test_short_window_leaks_almost_fully(self, rail):
        t = 0.1e-9
        assert rail.effective_leak_time(t) == pytest.approx(t, rel=0.05)

    def test_long_window_saturates_at_tau(self, rail):
        assert rail.effective_leak_time(1e-3) == pytest.approx(
            rail.params.tau_collapse)

    def test_never_exceeds_window(self, rail):
        for t in (1e-10, 1e-9, 5e-9, 50e-9):
            assert rail.effective_leak_time(t) <= t


class TestOverheadEnergies:
    def test_recharge_scales_with_swing(self, rail):
        short = rail.recharge_energy(0.6, 1e-9)
        long = rail.recharge_energy(0.6, 100e-9)
        assert short < long
        assert long == pytest.approx(
            rail.c_rail * 0.36 * rail.params.full_swing_fraction)

    def test_crowbar_superlinear_in_gates(self, lib, mult_module,
                                          m0_module):
        mult_rail = VirtualRailModel(mult_module, lib)
        m0_rail = VirtualRailModel(m0_module, lib)
        gate_ratio = m0_rail.n_gates / mult_rail.n_gates
        energy_ratio = m0_rail.crowbar_energy(0.6, 1e-6) \
            / mult_rail.crowbar_energy(0.6, 1e-6)
        # Paper: crowbar is "more significant in a larger design".
        assert energy_ratio > gate_ratio

    def test_cycle_overhead_composition(self, rail):
        base = rail.cycle_overhead(0.6, 50e-9)
        with_hdr = rail.cycle_overhead(0.6, 50e-9, header_gate_cap=1e-12)
        assert with_hdr == pytest.approx(base + 1e-12 * 0.36)

    def test_quadratic_voltage(self, rail):
        e1 = rail.recharge_energy(0.3, 1e-6)
        e2 = rail.recharge_energy(0.6, 1e-6)
        assert e2 == pytest.approx(4 * e1)

    def test_m0_overhead_dwarfs_multiplier(self, lib, mult_module,
                                           m0_module):
        """The overhead gap drives the different convergence points
        (~15 MHz vs ~5 MHz)."""
        mult = VirtualRailModel(mult_module, lib).cycle_overhead(0.6, 1e-6)
        m0 = VirtualRailModel(m0_module, lib).cycle_overhead(0.6, 1e-6)
        assert m0 > 6 * mult
