"""Sleep-transistor sizing (the paper's §III header study)."""

import pytest

from repro.errors import PowerError
from repro.power.headers import (
    HeaderNetwork,
    evaluate_header_sizes,
    peak_current,
    size_header_network,
)
from repro.power.rails import VirtualRailModel
from repro.sta.analysis import TimingAnalysis


class TestHeaderNetwork:
    def test_parallel_resistance(self, lib):
        net = HeaderNetwork(cell=lib.cell("HEADER_X2"), count=10, vdd=0.6)
        assert net.ron == pytest.approx(
            lib.cell("HEADER_X2").header_ron / 10)

    def test_aggregates(self, lib):
        cell = lib.cell("HEADER_X4")
        net = HeaderNetwork(cell=cell, count=3, vdd=0.6)
        assert net.total_width == pytest.approx(3 * cell.header_width)
        assert net.gate_cap == pytest.approx(3 * cell.c_internal)
        assert net.area == pytest.approx(3 * cell.area)
        assert net.leakage_off == pytest.approx(3 * cell.leakage)

    def test_ir_drop(self, lib):
        net = HeaderNetwork(cell=lib.cell("HEADER_X1"), count=1, vdd=0.6)
        assert net.ir_drop(1e-3) == pytest.approx(1e-3 * net.ron)


class TestPeakCurrent:
    def test_formula(self):
        i = peak_current(2e-12, 30e-9, 0.6, crest=10)
        assert i == pytest.approx(10 * 2e-12 / (0.6 * 30e-9))

    def test_invalid(self):
        with pytest.raises(PowerError):
            peak_current(1e-12, 0, 0.6)


class TestSizingStudy:
    def _study(self, lib, module, e_cycle):
        rail = VirtualRailModel(module, lib)
        sta = TimingAnalysis(module, lib).run()
        return size_header_network(lib, rail, e_cycle, sta.eval_delay)

    def test_multiplier_picks_x2(self, lib, mult_module, mult_study):
        sizings, best = self._study(lib, mult_module, mult_study.e_cycle)
        assert best.size == 2  # paper's finding

    def test_m0_picks_x4(self, lib, m0_module, m0_study):
        sizings, best = self._study(lib, m0_module, m0_study.e_cycle)
        assert best.size == 4  # paper's finding

    def test_ir_drop_falls_with_size(self, lib, mult_module, mult_study):
        sizings = evaluate_header_sizes(
            lib, VirtualRailModel(mult_module, lib), mult_study.e_cycle,
            TimingAnalysis(mult_module, lib).run().eval_delay)
        drops = [s.ir_drop for s in sizings]
        assert drops == sorted(drops, reverse=True)

    def test_oversizing_penalties_rise(self, lib, mult_module, mult_study):
        sizings = evaluate_header_sizes(
            lib, VirtualRailModel(mult_module, lib), mult_study.e_cycle,
            TimingAnalysis(mult_module, lib).run().eval_delay)
        inrush = [s.inrush_current for s in sizings]
        areas = [s.area for s in sizings]
        leaks = [s.leakage_off for s in sizings]
        assert inrush == sorted(inrush)
        assert areas == sorted(areas)
        assert leaks == sorted(leaks)

    def test_best_meets_budget(self, lib, mult_module, mult_study):
        _sizings, best = self._study(lib, mult_module, mult_study.e_cycle)
        assert best.meets_budget
        assert best.ir_drop_fraction <= 0.05

    def test_fallback_to_largest_when_nothing_meets(self, lib,
                                                    mult_module):
        rail = VirtualRailModel(mult_module, lib)
        # Absurd switched energy: nothing meets the budget.
        _sizings, best = size_header_network(lib, rail, 1e-9, 1e-9)
        assert best.size == 8
        assert not best.meets_budget
