"""Leakage analysis."""

import numpy as np
import pytest

from repro.power.leakage import (
    GATABLE_KINDS,
    _leakage_power_walk,
    leakage_power,
    state_leakage_trace,
)
from repro.sim.event import Simulator
from repro.tech.library import CellKind


class TestAverageLeakage:
    def test_totals_add_up(self, mult_module, lib):
        report = leakage_power(mult_module, lib)
        assert report.total == pytest.approx(
            sum(report.by_kind.values()))
        assert report.total == pytest.approx(sum(report.by_cell.values()))

    def test_split_properties(self, mult_module, lib):
        report = leakage_power(mult_module, lib)
        assert report.combinational > 0
        assert report.always_on > 0
        assert report.headers == 0.0  # no headers yet
        assert report.total == pytest.approx(
            report.combinational + report.always_on + report.headers)

    def test_gatable_kinds_sane(self):
        assert CellKind.COMBINATIONAL in GATABLE_KINDS
        assert CellKind.SEQUENTIAL not in GATABLE_KINDS
        assert CellKind.ISOLATION not in GATABLE_KINDS

    def test_voltage_scaling(self, mult_module, lib):
        nom = leakage_power(mult_module, lib)
        low = leakage_power(mult_module, lib, vdd=0.4)
        high = leakage_power(mult_module, lib, vdd=0.9)
        assert low.total < nom.total < high.total
        assert low.total / nom.total == pytest.approx(
            lib.leakage_scale(0.4), rel=1e-6)

    def test_temperature_scaling(self, mult_module, lib):
        nom = leakage_power(mult_module, lib)
        hot = leakage_power(mult_module, lib, temp_c=85.0)
        assert hot.total > 2 * nom.total  # leakage is strongly thermal

    def test_str(self, mult_module, lib):
        text = str(leakage_power(mult_module, lib))
        assert "leakage @" in text


class TestStateDependentLeakage:
    def test_state_changes_total(self, mult_module, lib):
        sim = Simulator(mult_module)
        sim.force_flop_state(0)
        from repro.sim.testbench import bus_values

        sim.set_inputs({**bus_values("a", 16, 0), **bus_values("b", 16, 0),
                        "clk": 0})
        low = leakage_power(mult_module, lib,
                            state=sim.state_snapshot())

        sim.set_inputs({**bus_values("a", 16, 0xFFFF),
                        **bus_values("b", 16, 0xFFFF)})
        sim.set_input("clk", 1)
        sim.set_input("clk", 0)
        high = leakage_power(mult_module, lib,
                             state=sim.state_snapshot())

        # All-ones operands turn on far more transistors (stack effect).
        assert high.total > low.total

    def test_state_bounded_by_extremes(self, toy_design, lib):
        avg = leakage_power(toy_design.top, lib)
        sim = Simulator(toy_design.top)
        sim.force_flop_state(0)
        sim.set_inputs({"a": 0, "b": 0, "clk": 0})
        stated = leakage_power(toy_design.top, lib,
                               state=sim.state_snapshot())
        # State-dependent values stay within the library's 0.7..1.3 band.
        assert 0.5 * avg.total < stated.total < 1.5 * avg.total


def _assert_reports_identical(got, ref):
    assert got.vdd == ref.vdd
    assert got.total == ref.total
    assert got.by_kind == ref.by_kind
    assert got.by_cell == ref.by_cell


class TestVectorizedAgainstWalk:
    """``leakage_power`` runs over the ``LeakageSoa`` lowering; the
    per-instance walk is kept as the differential oracle and every
    number must match it bit-for-bit (``==``, never approx)."""

    def test_stateless_identical(self, mult_module, lib):
        for vdd in (None, 0.9, 0.45, 0.25):
            _assert_reports_identical(
                leakage_power(mult_module, lib, vdd=vdd),
                _leakage_power_walk(mult_module, lib, vdd=vdd))

    def test_stateful_identical(self, mult_module, lib):
        from repro.sim.testbench import bus_values

        sim = Simulator(mult_module)
        sim.force_flop_state(0)
        for a, b in ((0, 0), (0xFFFF, 0xFFFF), (0x5A5A, 0x1234)):
            sim.set_inputs({**bus_values("a", 16, a),
                            **bus_values("b", 16, b), "clk": 0})
            sim.set_input("clk", 1)
            sim.set_input("clk", 0)
            state = sim.state_snapshot()
            _assert_reports_identical(
                leakage_power(mult_module, lib, state=state),
                _leakage_power_walk(mult_module, lib, state=state))

    def test_state_with_x_values_identical(self, mult_module, lib):
        """Unresolved (X) nets fold to the state-independent default on
        both paths."""
        sim = Simulator(mult_module)  # flops left unknown
        from repro.sim.testbench import bus_values

        sim.set_inputs({**bus_values("a", 16, 1), "clk": 0})
        state = sim.state_snapshot()
        _assert_reports_identical(
            leakage_power(mult_module, lib, state=state),
            _leakage_power_walk(mult_module, lib, state=state))

    def test_toy_design_identical(self, toy_design, lib):
        sim = Simulator(toy_design.top)
        sim.force_flop_state(0)
        sim.set_inputs({"a": 1, "b": 0, "clk": 0})
        state = sim.state_snapshot()
        _assert_reports_identical(
            leakage_power(toy_design.top, lib, state=state),
            _leakage_power_walk(toy_design.top, lib, state=state))


class TestStateLeakageTrace:
    @pytest.fixture(scope="class")
    def cosim_states(self, m0_module):
        from repro.isa.assembler import assemble
        from repro.isa.trace import GateLevelCpu

        cpu = GateLevelCpu(m0_module, assemble("""
            movi r1, #12
            movi r2, #64
        loop:
            str  r1, [r2, #0]
            addi r1, #-1
            bne  loop
            halt
        """), record_states=True)
        cpu.run()
        return cpu.state_trace(), cpu.state_net_names

    def test_matches_per_cycle_walk(self, m0_module, lib, cosim_states):
        states, names = cosim_states
        trace = state_leakage_trace(m0_module, lib, states)
        assert trace.cycles == len(states)
        for c in (0, 1, len(states) // 2, len(states) - 1):
            snap = dict(zip(names, states[c].tolist()))
            ref = _leakage_power_walk(m0_module, lib, state=snap)
            assert trace.total[c] == ref.total
            for kind, arr in trace.by_kind.items():
                assert arr[c] == ref.by_kind.get(kind, 0.0)

    def test_dict_snapshots_match_matrix(self, m0_module, lib,
                                         cosim_states):
        states, names = cosim_states
        snaps = [dict(zip(names, row.tolist())) for row in states[:4]]
        via_dicts = state_leakage_trace(m0_module, lib, snaps)
        via_matrix = state_leakage_trace(m0_module, lib, states[:4])
        assert np.array_equal(via_dicts.total, via_matrix.total)

    def test_split_properties(self, m0_module, lib, cosim_states):
        states, _ = cosim_states
        trace = state_leakage_trace(m0_module, lib, states)
        recomposed = trace.combinational + trace.always_on + trace.headers
        assert np.allclose(recomposed, trace.total, rtol=1e-12)
        assert np.all(trace.combinational > 0)
        assert np.all(trace.headers == 0.0)  # untransformed core

    def test_single_row_promoted(self, m0_module, lib, cosim_states):
        states, _ = cosim_states
        trace = state_leakage_trace(m0_module, lib, states[0])
        assert trace.cycles == 1
        assert trace.total[0] == state_leakage_trace(
            m0_module, lib, states[:1]).total[0]

    def test_empty_trace(self, m0_module, lib, cosim_states):
        states, _ = cosim_states
        trace = state_leakage_trace(m0_module, lib, states[:0])
        assert trace.cycles == 0

    def test_vdd_scaling(self, m0_module, lib, cosim_states):
        states, _ = cosim_states
        low = state_leakage_trace(m0_module, lib, states[:3], vdd=0.4)
        nom = state_leakage_trace(m0_module, lib, states[:3])
        assert (low.total < nom.total).all()
