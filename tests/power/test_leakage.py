"""Leakage analysis."""

import pytest

from repro.power.leakage import GATABLE_KINDS, leakage_power
from repro.sim.event import Simulator
from repro.tech.library import CellKind


class TestAverageLeakage:
    def test_totals_add_up(self, mult_module, lib):
        report = leakage_power(mult_module, lib)
        assert report.total == pytest.approx(
            sum(report.by_kind.values()))
        assert report.total == pytest.approx(sum(report.by_cell.values()))

    def test_split_properties(self, mult_module, lib):
        report = leakage_power(mult_module, lib)
        assert report.combinational > 0
        assert report.always_on > 0
        assert report.headers == 0.0  # no headers yet
        assert report.total == pytest.approx(
            report.combinational + report.always_on + report.headers)

    def test_gatable_kinds_sane(self):
        assert CellKind.COMBINATIONAL in GATABLE_KINDS
        assert CellKind.SEQUENTIAL not in GATABLE_KINDS
        assert CellKind.ISOLATION not in GATABLE_KINDS

    def test_voltage_scaling(self, mult_module, lib):
        nom = leakage_power(mult_module, lib)
        low = leakage_power(mult_module, lib, vdd=0.4)
        high = leakage_power(mult_module, lib, vdd=0.9)
        assert low.total < nom.total < high.total
        assert low.total / nom.total == pytest.approx(
            lib.leakage_scale(0.4), rel=1e-6)

    def test_temperature_scaling(self, mult_module, lib):
        nom = leakage_power(mult_module, lib)
        hot = leakage_power(mult_module, lib, temp_c=85.0)
        assert hot.total > 2 * nom.total  # leakage is strongly thermal

    def test_str(self, mult_module, lib):
        text = str(leakage_power(mult_module, lib))
        assert "leakage @" in text


class TestStateDependentLeakage:
    def test_state_changes_total(self, mult_module, lib):
        sim = Simulator(mult_module)
        sim.force_flop_state(0)
        from repro.sim.testbench import bus_values

        sim.set_inputs({**bus_values("a", 16, 0), **bus_values("b", 16, 0),
                        "clk": 0})
        low = leakage_power(mult_module, lib,
                            state=sim.state_snapshot())

        sim.set_inputs({**bus_values("a", 16, 0xFFFF),
                        **bus_values("b", 16, 0xFFFF)})
        sim.set_input("clk", 1)
        sim.set_input("clk", 0)
        high = leakage_power(mult_module, lib,
                             state=sim.state_snapshot())

        # All-ones operands turn on far more transistors (stack effect).
        assert high.total > low.total

    def test_state_bounded_by_extremes(self, toy_design, lib):
        avg = leakage_power(toy_design.top, lib)
        sim = Simulator(toy_design.top)
        sim.force_flop_state(0)
        sim.set_inputs({"a": 0, "b": 0, "clk": 0})
        stated = leakage_power(toy_design.top, lib,
                               state=sim.state_snapshot())
        # State-dependent values stay within the library's 0.7..1.3 band.
        assert 0.5 * avg.total < stated.total < 1.5 * avg.total
