"""Dynamic power from toggle counts."""

import random

import pytest

from repro.errors import PowerError
from repro.power.dynamic import dynamic_power
from repro.sim.testbench import ClockedTestbench, bus_values


def _run_mult(mult_module, cycles=40, seed=0, magnitude=0xFFFF):
    tb = ClockedTestbench(mult_module)
    tb.reset_flops()
    rng = random.Random(seed)
    for _ in range(cycles):
        tb.cycle({
            **bus_values("a", 16, rng.getrandbits(16) & magnitude),
            **bus_values("b", 16, rng.getrandbits(16) & magnitude),
        })
    return tb


class TestDynamicPower:
    def test_energy_positive_and_power_linear_in_f(self, mult_module, lib):
        tb = _run_mult(mult_module)
        toggles = tb.sim.toggle_snapshot()
        r1 = dynamic_power(mult_module, lib, toggles, tb.cycles,
                           freq_hz=1e6)
        r2 = dynamic_power(mult_module, lib, toggles, tb.cycles,
                           freq_hz=2e6)
        assert r1.energy_per_cycle > 0
        assert r2.power == pytest.approx(2 * r1.power)
        assert r2.energy_per_cycle == pytest.approx(r1.energy_per_cycle)

    def test_quadratic_in_vdd(self, mult_module, lib):
        tb = _run_mult(mult_module)
        toggles = tb.sim.toggle_snapshot()
        nom = dynamic_power(mult_module, lib, toggles, tb.cycles)
        low = dynamic_power(mult_module, lib, toggles, tb.cycles, vdd=0.3)
        assert low.energy_per_cycle == pytest.approx(
            nom.energy_per_cycle * 0.25, rel=1e-6)

    def test_glitch_factor_multiplies(self, mult_module, lib):
        tb = _run_mult(mult_module)
        toggles = tb.sim.toggle_snapshot()
        g1 = dynamic_power(mult_module, lib, toggles, tb.cycles,
                           glitch_factor=1.0)
        g2 = dynamic_power(mult_module, lib, toggles, tb.cycles,
                           glitch_factor=2.3)
        assert g2.energy_per_cycle == pytest.approx(
            2.3 * g1.energy_per_cycle)

    def test_quiet_operands_use_less(self, mult_module, lib):
        busy = _run_mult(mult_module, seed=1, magnitude=0xFFFF)
        quiet = _run_mult(mult_module, seed=1, magnitude=0x0007)
        rb = dynamic_power(mult_module, lib, busy.sim.toggle_snapshot(),
                           busy.cycles)
        rq = dynamic_power(mult_module, lib, quiet.sim.toggle_snapshot(),
                           quiet.cycles)
        assert rb.energy_per_cycle > 3 * rq.energy_per_cycle

    def test_top_nets_ranked(self, mult_module, lib):
        tb = _run_mult(mult_module)
        report = dynamic_power(mult_module, lib, tb.sim.toggle_snapshot(),
                               tb.cycles)
        top = report.top_nets(5)
        assert len(top) == 5
        energies = [e for _name, e in top]
        assert energies == sorted(energies, reverse=True)

    def test_zero_cycles_rejected(self, mult_module, lib):
        with pytest.raises(PowerError):
            dynamic_power(mult_module, lib, {}, 0)

    def test_calibration_anchor(self, mult_module, lib):
        """Random-operand multiplier E/cycle must sit near the Table I
        slope (2.34 pJ) -- this is the key dynamic calibration, at the
        multiplier's calibrated glitch factor."""
        from repro.power.dynamic import MULT16_GLITCH_FACTOR

        tb = _run_mult(mult_module, cycles=120)
        report = dynamic_power(mult_module, lib, tb.sim.toggle_snapshot(),
                               tb.cycles,
                               glitch_factor=MULT16_GLITCH_FACTOR)
        assert 1.6e-12 < report.energy_per_cycle < 3.2e-12
