"""Vectorless activity estimation."""

import pytest

from repro.circuits.builder import new_module
from repro.power.probabilistic import estimate_activity


class TestSignalProbabilities:
    def test_and_gate(self, lib):
        module, b = new_module("m", lib)
        x = module.add_input("x")
        y = module.add_input("y")
        out = module.add_output("out")
        b.cell("AND2_X1", A=x, B=y, Y=out)
        est = estimate_activity(module, input_probs={"x": 0.5, "y": 0.5})
        assert est.net_prob("out") == pytest.approx(0.25)

    def test_xor_gate(self, lib):
        module, b = new_module("m", lib)
        x = module.add_input("x")
        y = module.add_input("y")
        out = module.add_output("out")
        b.cell("XOR2_X1", A=x, B=y, Y=out)
        est = estimate_activity(module, input_probs={"x": 0.3, "y": 0.5})
        assert est.net_prob("out") == pytest.approx(
            0.3 * 0.5 + 0.7 * 0.5)

    def test_inverter_complements(self, lib):
        module, b = new_module("m", lib)
        x = module.add_input("x")
        out = module.add_output("out")
        b.inv(x, y=out)
        est = estimate_activity(module, input_probs={"x": 0.8})
        assert est.net_prob("out") == pytest.approx(0.2)

    def test_constants(self, lib):
        module, b = new_module("m", lib)
        x = module.add_input("x")
        out = module.add_output("out")
        b.cell("AND2_X1", A=x, B=module.const(0), Y=out)
        est = estimate_activity(module)
        assert est.net_prob("out") == pytest.approx(0.0)
        assert est.net_density("out") == pytest.approx(0.0)


class TestTransitionDensity:
    def test_xor_propagates_fully(self, lib):
        """XOR is sensitive to every input: D(out) = D(x) + D(y)."""
        module, b = new_module("m", lib)
        x = module.add_input("x")
        y = module.add_input("y")
        out = module.add_output("out")
        b.cell("XOR2_X1", A=x, B=y, Y=out)
        est = estimate_activity(
            module,
            input_probs={"x": 0.5, "y": 0.5},
            input_densities={"x": 0.3, "y": 0.4},
        )
        assert est.net_density("out") == pytest.approx(0.7)

    def test_and_attenuates(self, lib):
        """AND passes a transition only when the other input is 1."""
        module, b = new_module("m", lib)
        x = module.add_input("x")
        y = module.add_input("y")
        out = module.add_output("out")
        b.cell("AND2_X1", A=x, B=y, Y=out)
        est = estimate_activity(
            module,
            input_probs={"x": 0.5, "y": 0.5},
            input_densities={"x": 0.4, "y": 0.4},
        )
        assert est.net_density("out") == pytest.approx(0.4)  # 2*0.5*0.4

    def test_flop_resamples(self, lib):
        module, b = new_module("m", lib)
        clk = module.add_input("clk")
        d = module.add_input("d")
        q = module.add_output("q")
        b.dff(d, clk, q=q)
        est = estimate_activity(module, input_probs={"d": 0.25})
        assert est.net_prob("q") == pytest.approx(0.25)
        assert est.net_density("q") == pytest.approx(2 * 0.25 * 0.75)

    def test_multiplier_estimate_in_measured_ballpark(self, mult_module,
                                                      lib):
        """The vectorless estimate should land within ~3x of measurement
        (it is used for header pre-sizing only)."""
        import random

        from repro.power.dynamic import dynamic_power
        from repro.sim.testbench import ClockedTestbench, bus_values

        est = estimate_activity(mult_module)
        tb = ClockedTestbench(mult_module)
        tb.reset_flops()
        rng = random.Random(3)
        for _ in range(60):
            tb.cycle({**bus_values("a", 16, rng.getrandbits(16)),
                      **bus_values("b", 16, rng.getrandbits(16))})
        measured = tb.sim.total_toggles() / tb.cycles
        estimated = sum(est.density.values())
        assert measured / 3.5 < estimated < measured * 3.5

    def test_feedback_converges(self, lib):
        """A counter (Q feeds back through logic) still gets estimates."""
        from repro.circuits.counters import build_counter

        counter = build_counter(lib, width=4)
        est = estimate_activity(counter)
        for i in range(4):
            assert 0.0 <= est.net_prob("q_{}".format(i)) <= 1.0
            assert 0.0 <= est.net_density("q_{}".format(i)) <= 1.0
