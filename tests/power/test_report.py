"""Power report writer."""

import pytest

from repro.power.dynamic import dynamic_power
from repro.power.leakage import leakage_power
from repro.power.report import PowerReport, write_power_report


@pytest.fixture()
def report(mult_study):
    from repro.scpg.power_model import Mode

    lib = mult_study.library
    leak = leakage_power(mult_study.scpg.flat.top, lib)
    breakdown = mult_study.model.power(1e6, Mode.SCPG)
    return PowerReport(
        design="mult16_scpg",
        vdd=0.6,
        freq_hz=1e6,
        leakage=leak,
        scpg=breakdown,
    )


class TestPowerReport:
    def test_total_uses_scpg_when_present(self, report):
        assert report.total == pytest.approx(report.scpg.total)

    def test_render_sections(self, report):
        text = report.render()
        assert "Power Report -- mult16_scpg" in text
        assert "Leakage by cell group" in text
        assert "SCPG decomposition" in text
        assert "energy/operation" in text
        assert "Total average power" in text
        assert "header" in text  # header group present in SCPG netlist

    def test_leakage_only_report(self, mult_module, lib):
        leak = leakage_power(mult_module, lib)
        report = PowerReport(design="mult16", vdd=0.6, freq_hz=1e6,
                             leakage=leak)
        assert report.total == pytest.approx(leak.total)
        assert "SCPG decomposition" not in report.render()

    def test_with_dynamic(self, mult_module, lib):
        import random

        from repro.sim.testbench import ClockedTestbench, bus_values

        tb = ClockedTestbench(mult_module)
        tb.reset_flops()
        rng = random.Random(0)
        for _ in range(20):
            tb.cycle({**bus_values("a", 16, rng.getrandbits(16)),
                      **bus_values("b", 16, rng.getrandbits(16))})
        dyn = dynamic_power(mult_module, lib, tb.sim.toggle_snapshot(),
                            tb.cycles, freq_hz=1e6)
        leak = leakage_power(mult_module, lib)
        report = PowerReport(design="mult16", vdd=0.6, freq_hz=1e6,
                             leakage=leak, dynamic=dyn)
        text = report.render(top_nets=3)
        assert "Dynamic (switching)" in text
        assert "hottest nets" in text
        assert report.total == pytest.approx(leak.total + dyn.power)

    def test_write_file(self, report, tmp_path):
        path = tmp_path / "power.rpt"
        write_power_report(report, path)
        assert "Power Report" in path.read_text()


class TestTimingReportWriter:
    def test_render(self, mult_study):
        from repro.sta.report import render_timing_report

        text = render_timing_report(
            mult_study.sta, design="mult16",
            scpg_timing=mult_study.model.timing)
        assert "Critical path" in text
        assert "T_eval" in text
        assert "SCPG window (Fig. 4)" in text
        assert "duty <=" in text

    def test_write(self, mult_study, tmp_path):
        from repro.sta.report import write_timing_report

        path = tmp_path / "timing.rpt"
        write_timing_report(mult_study.sta, path, design="mult16")
        assert "Timing Report" in path.read_text()
