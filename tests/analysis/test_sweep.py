"""Frequency sweeps and convergence finding."""

import pytest

from repro.analysis.sweep import FrequencySweep, find_convergence, sweep
from repro.errors import ScpgError
from repro.scpg.power_model import Mode


class TestSweep:
    def test_shapes(self, mult_study):
        freqs = [1e5, 1e6, 5e6]
        data = sweep(mult_study.model, freqs)
        assert data.freqs == freqs
        for mode in (Mode.NO_PG, Mode.SCPG, Mode.SCPG_MAX):
            assert len(data.results[mode]) == 3

    def test_infeasible_points_none(self, mult_study):
        fmax_nopg = mult_study.model.feasible_fmax(Mode.NO_PG)
        data = sweep(mult_study.model, [fmax_nopg])
        assert data.results[Mode.NO_PG][0] is not None
        assert data.results[Mode.SCPG][0] is None
        assert data.totals(Mode.SCPG) == [None]
        assert data.energies(Mode.SCPG) == [None]

    def test_power_monotone_in_frequency(self, mult_study):
        freqs = [0.1e6 * k for k in range(1, 30)]
        data = sweep(mult_study.model, freqs, modes=(Mode.NO_PG,))
        totals = data.totals(Mode.NO_PG)
        assert totals == sorted(totals)


class TestConvergence:
    def test_multiplier_converges_near_paper(self, mult_study):
        """Paper: the three setups converge at approximately 15 MHz."""
        fc = find_convergence(mult_study.model, Mode.SCPG)
        if fc is None:
            # Saving persists across the feasible range; must then still
            # be saving at Fmax.
            fmax = mult_study.model.feasible_fmax(Mode.SCPG)
            nopg = mult_study.model.power(fmax, Mode.NO_PG).total
            scpg = mult_study.model.power(fmax, Mode.SCPG).total
            assert scpg < nopg
        else:
            assert 9e6 < fc < 25e6

    def test_m0_converges_lower(self, mult_study, m0_study):
        """Paper: M0 converges around 5 MHz, well below the multiplier."""
        fc_m0 = find_convergence(m0_study.model, Mode.SCPG)
        assert fc_m0 is not None
        assert 2e6 < fc_m0 < 9e6
        fc_mult = find_convergence(mult_study.model, Mode.SCPG)
        if fc_mult is not None:
            assert fc_m0 < fc_mult

    def test_m0_negative_savings_beyond_convergence(self, m0_study):
        """Table II: -2.7% at 5 MHz, -12% at 10 MHz."""
        model = m0_study.model
        fc = find_convergence(model, Mode.SCPG)
        f = min(fc * 1.5, model.feasible_fmax(Mode.SCPG))
        nopg = model.power(f, Mode.NO_PG)
        scpg = model.power(f, Mode.SCPG)
        assert scpg.saving_vs(nopg) < 0

    def test_no_saving_at_floor_rejected(self, m0_study):
        model = m0_study.model
        fc = find_convergence(model, Mode.SCPG)
        with pytest.raises(ScpgError):
            # Starting the bisection above convergence: no saving there.
            find_convergence(model, Mode.SCPG, f_lo=fc * 1.2)


class TestConvergenceCaching:
    """Regression: the bisection must not re-pay duplicated power calls."""

    @staticmethod
    def _counting(model, monkeypatch):
        calls = []
        real = model.power

        def counting(freq, mode):
            calls.append((freq, mode))
            return real(freq, mode)

        # Not monkeypatch.setattr: its undo would "restore" the saved
        # *bound method* as an instance attribute on this session-scoped
        # model, leaving it non-pristine (sweep's batch kernel refuses
        # overridden models) for every later test.  Patching the instance
        # dict makes the undo *delete* the override instead.
        monkeypatch.setitem(vars(model), "power", counting)
        return calls

    def test_warm_cache_rerun_evaluates_nothing(
            self, m0_study, tmp_path, monkeypatch):
        from repro.runner import ResultCache, Runner

        model = m0_study.model
        calls = self._counting(model, monkeypatch)

        cold_runner = Runner(cache=ResultCache(tmp_path))
        fc_cold = find_convergence(model, Mode.SCPG, runner=cold_runner)
        n_cold = len(calls)
        assert n_cold > 0

        del calls[:]
        warm_runner = Runner(cache=ResultCache(tmp_path))
        fc_warm = find_convergence(model, Mode.SCPG, runner=warm_runner)
        assert calls == []
        assert fc_warm == fc_cold
        assert warm_runner.stats.evaluated == 0
        assert warm_runner.stats.cache_hits == warm_runner.stats.points

    def test_evaluation_count_reduction(
            self, m0_study, tmp_path, monkeypatch):
        """Two searches cost one search's evaluations with a cache."""
        from repro.runner import ResultCache, Runner

        model = m0_study.model
        calls = self._counting(model, monkeypatch)

        fc_bare = find_convergence(model, Mode.SCPG)
        find_convergence(model, Mode.SCPG)
        n_bare = len(calls)

        del calls[:]
        runner = Runner(cache=ResultCache(tmp_path / "conv"))
        assert find_convergence(model, Mode.SCPG, runner=runner) == fc_bare
        assert find_convergence(model, Mode.SCPG, runner=runner) == fc_bare
        assert 0 < len(calls) == n_bare // 2

    def test_sweep_warms_convergence(self, m0_study, tmp_path, monkeypatch):
        """Sweeps and searches share one cache namespace per model."""
        from repro.runner import ResultCache, Runner

        model = m0_study.model
        runner = Runner(cache=ResultCache(tmp_path))
        sweep(model, [1e4], modes=(Mode.NO_PG, Mode.SCPG), runner=runner)

        calls = self._counting(model, monkeypatch)
        find_convergence(model, Mode.SCPG, runner=runner)
        # The f_lo endpoint (1e4 for both modes) came from the sweep's
        # entries; only genuinely new frequencies were evaluated.
        assert (1e4, Mode.NO_PG) not in calls
        assert (1e4, Mode.SCPG) not in calls
        assert len(calls) > 0
