"""Figure series builders and the ASCII plotter."""

import math

import pytest

from repro.analysis.ascii_plot import ascii_chart
from repro.analysis.figures import (
    FigureSeries,
    energy_series,
    power_series,
    subvt_series,
    switching_series,
)
from repro.scpg.power_model import Mode


class TestPowerSeries:
    def test_three_labelled_series(self, mult_study):
        freqs = [0.5e6 * k for k in range(1, 20)]
        series = power_series(mult_study.model, freqs)
        labels = {s.label for s in series}
        assert labels == {"No Power Gating", "SCPG", "SCPG-Max"}
        for s in series:
            assert len(s.x) == len(s.y) == len(freqs)

    def test_convergence_visible(self, mult_study):
        """Fig. 6(a): the curves converge with rising frequency."""
        freqs = [1e5, 14e6]
        series = {s.label: s for s in power_series(mult_study.model,
                                                   freqs)}
        nopg = series["No Power Gating"].y
        scpg = series["SCPG"].y
        gap_low = nopg[0] - scpg[0]
        gap_high = nopg[1] - scpg[1]
        assert gap_high < 0.35 * gap_low


class TestEnergySeries:
    def test_energy_decreases_with_frequency(self, mult_study):
        """Fig. 6(b): energy per operation falls as the clock rises."""
        freqs = [1e5, 1e6, 5e6, 10e6]
        series = {s.label: s for s in energy_series(mult_study.model,
                                                    freqs)}
        for s in series.values():
            finite = [y for y in s.y if y is not None]
            assert finite == sorted(finite, reverse=True)

    def test_scpg_below_nopg(self, mult_study):
        freqs = [1e5, 1e6]
        series = {s.label: s for s in energy_series(mult_study.model,
                                                    freqs)}
        for a, b in zip(series["SCPG"].y, series["No Power Gating"].y):
            assert a < b


class TestSubvtSeries:
    def test_u_shape(self, mult_study):
        series = subvt_series(mult_study.subvt, 0.15, 0.9, steps=40)
        min_idx = series.y.index(min(series.y))
        assert 0 < min_idx < len(series.y) - 1


class TestSwitchingSeries:
    def test_from_trace(self, m0_study):
        series = switching_series(m0_study.activity_trace)
        assert len(series.x) == len(series.y)
        assert len(series.y) >= 10
        assert all(y >= 0 for y in series.y)


class TestAsciiChart:
    def test_renders_series(self):
        s1 = FigureSeries("sine", x=list(range(30)),
                          y=[math.sin(i / 5) + 2 for i in range(30)])
        s2 = FigureSeries("flat", x=list(range(30)), y=[2.0] * 30)
        text = ascii_chart([s1, s2], width=40, height=10, title="demo")
        assert "demo" in text
        assert "* = sine" in text
        assert "+ = flat" in text
        assert text.count("\n") > 10

    def test_log_scale(self):
        s = FigureSeries("exp", x=[0, 1, 2, 3],
                         y=[1e-12, 1e-11, 1e-10, 1e-9])
        text = ascii_chart([s], logy=True, width=20, height=8)
        assert "1e-12" in text or "1e-09" in text

    def test_none_points_skipped(self):
        s = FigureSeries("partial", x=[0, 1, 2], y=[1.0, None, 3.0])
        text = ascii_chart([s], width=10, height=5)
        assert "*" in text

    def test_empty(self):
        s = FigureSeries("empty", x=[], y=[])
        assert "no plottable points" in ascii_chart([s])
