"""Table I/II builders and formatting."""

import pytest

from repro.analysis.tables import (
    TABLE_I_FREQS,
    TABLE_II_FREQS,
    build_table,
    format_table,
)
from repro.tech.calibration import MULTIPLIER_ANCHORS, relative_error


class TestBuildTable:
    def test_row_count_and_grid(self, mult_study):
        rows = build_table(mult_study.model, TABLE_I_FREQS)
        assert len(rows) == 8
        assert [r.freq_hz for r in rows] == TABLE_I_FREQS

    def test_energy_equals_power_over_freq(self, mult_study):
        rows = build_table(mult_study.model, TABLE_I_FREQS)
        for row in rows:
            assert row.energy_nopg == pytest.approx(
                row.power_nopg / row.freq_hz)

    def test_savings_consistent(self, mult_study):
        rows = build_table(mult_study.model, TABLE_I_FREQS)
        for row in rows:
            if row.power_scpg is None:
                continue
            expected = 100 * (row.power_nopg - row.power_scpg) \
                / row.power_nopg
            assert row.saving_scpg_pct == pytest.approx(expected)

    def test_against_paper_table_i(self, mult_study):
        """Row-by-row power comparison with Table I: the no-PG column must
        match within 15%, the SCPG columns within 45% (shape claim)."""
        rows = build_table(mult_study.model, TABLE_I_FREQS)
        for row, paper in zip(rows, MULTIPLIER_ANCHORS.rows):
            assert relative_error(row.power_nopg, paper.power_nopg) < 0.15
            if row.power_scpg is not None:
                assert relative_error(
                    row.power_scpg, paper.power_scpg) < 0.45

    def test_savings_shrink_with_frequency(self, mult_study):
        rows = build_table(mult_study.model, TABLE_I_FREQS)
        savings = [r.saving_scpg_pct for r in rows
                   if r.saving_scpg_pct is not None]
        assert savings == sorted(savings, reverse=True)

    def test_low_frequency_savings_match_paper(self, mult_study):
        """10 kHz row: paper 39.9% (SCPG) and 80.2% (SCPG-Max)."""
        rows = build_table(mult_study.model, [0.01e6])
        assert rows[0].saving_scpg_pct == pytest.approx(39.9, abs=6.0)
        assert rows[0].saving_scpgmax_pct == pytest.approx(80.2, abs=8.0)

    def test_m0_low_frequency_savings(self, m0_study):
        """Table II 10 kHz row: 28.1% and 57.1%."""
        rows = build_table(m0_study.model, [0.01e6])
        assert rows[0].saving_scpg_pct == pytest.approx(28.1, abs=8.0)
        assert rows[0].saving_scpgmax_pct == pytest.approx(57.1, abs=10.0)


class TestFormatTable:
    def test_layout(self, mult_study):
        rows = build_table(mult_study.model, TABLE_I_FREQS)
        text = format_table(rows, title="TABLE I")
        lines = text.splitlines()
        assert "TABLE I" in lines[0]
        assert "(MHz)" in lines[2]
        assert len(lines) == 4 + len(rows)

    def test_infeasible_rendered_as_dash(self, mult_study):
        # At the no-PG Fmax the SCPG columns are infeasible.
        rows = build_table(mult_study.model, [mult_study.sta.fmax])
        text = format_table(rows)
        assert "-" in text.splitlines()[-1]
