"""Design-size scaling study."""

import pytest

from repro.analysis.scaling import ScalingStudy, evaluate_width, \
    scaling_study


@pytest.fixture(scope="module")
def study(lib):
    return scaling_study(lib, widths=(6, 10, 16))


class TestScalingStudy:
    def test_points_per_width(self, study):
        assert [p.width for p in study.points] == [6, 10, 16]

    def test_gate_counts_grow_quadratically(self, study):
        g = study.trend("comb_gates")
        # 16/6 width ratio ~2.7 -> gates ratio ~7x.
        assert g[-1] > 5 * g[0]

    def test_comb_leak_tracks_gates(self, study):
        gates = study.trend("comb_gates")
        leaks = study.trend("comb_leak")
        per_gate = [l / g for l, g in zip(leaks, gates)]
        # Same cell mix: leakage per gate roughly constant.
        assert max(per_gate) < 1.5 * min(per_gate)

    def test_savings_grow_with_size(self, study):
        saves = study.trend("saving_10k_pct")
        assert saves == sorted(saves)
        assert all(10 < s < 60 for s in saves)

    def test_area_overhead_amortises(self, study):
        areas = study.trend("area_overhead_pct")
        assert areas == sorted(areas, reverse=True)

    def test_overhead_energy_grows(self, study):
        overheads = study.trend("overhead_energy")
        assert overheads == sorted(overheads)

    def test_single_point(self, lib):
        point = evaluate_width(lib, 8)
        assert point.width == 8
        assert point.header_size in (1, 2, 4, 8)
        assert point.savingmax_10k_pct > point.saving_10k_pct

    def test_trend_ordering_by_size(self):
        from repro.analysis.scaling import ScalingPoint

        study = ScalingStudy(points=[
            ScalingPoint(16, 500, 1, 1, 1, None, 1, 1, 2, 1),
            ScalingPoint(8, 100, 2, 1, 1, None, 1, 1, 1, 1),
        ])
        assert study.trend("comb_leak") == [2, 1]  # ordered by gates
