"""JobSpec validation and exact JSON round-trip.

The round-trip property is the serve API's foundation: a spec that
survives ``to_dict -> json.dumps -> json.loads -> from_dict`` unchanged
(floats included, bit for bit) means a job resubmitted from its own
status payload reruns the *same* grid and hits the same cache keys.
"""

import json
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ServeError
from repro.scpg.power_model import Mode
from repro.serve import JobSpec, breakdown_to_dict, sweep_to_dict


class TestValidation:
    def test_minimal_sweep(self):
        spec = JobSpec(kind="sweep", design="mult16", freqs=[1e4, 1e5])
        assert spec.freqs == (1e4, 1e5)
        assert spec.modes is None
        assert spec.tenant == "anon"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServeError, match="unknown job kind"):
            JobSpec(kind="dance", design="mult16", freqs=[1e4])

    def test_sweep_needs_freqs(self):
        with pytest.raises(ServeError, match="non-empty freqs"):
            JobSpec(kind="sweep", design="mult16")

    def test_sweep_needs_design(self):
        with pytest.raises(ServeError, match="needs a design"):
            JobSpec(kind="sweep", freqs=[1e4])

    def test_family_sweep_needs_family(self):
        with pytest.raises(ServeError, match="needs a family"):
            JobSpec(kind="family_sweep")

    @pytest.mark.parametrize("bad", [
        [0.0], [-1e5], [float("nan")], [float("inf")], ["bogus"],
    ])
    def test_bad_freqs_rejected(self, bad):
        with pytest.raises(ServeError):
            JobSpec(kind="sweep", design="mult16", freqs=bad)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ServeError, match="unknown mode"):
            JobSpec(kind="sweep", design="mult16", freqs=[1e4],
                    modes=["warp"])

    def test_mode_objects(self):
        spec = JobSpec(kind="sweep", design="mult16", freqs=[1e4],
                       modes=["no-pg", "scpg"])
        assert spec.mode_objects() == (Mode.NO_PG, Mode.SCPG)
        assert JobSpec(kind="sweep", design="mult16",
                       freqs=[1e4]).mode_objects() is None

    def test_non_scalar_params_rejected(self):
        with pytest.raises(ServeError, match="scalar"):
            JobSpec(kind="sweep", design="mult16", freqs=[1e4],
                    params={"n": [1, 2]})

    def test_non_scalar_axis_values_rejected(self):
        with pytest.raises(ServeError, match="scalars"):
            JobSpec(kind="family_sweep", family="multiplier",
                    axes={"n": [{"nested": 1}]})

    def test_scalar_axis_becomes_singleton(self):
        spec = JobSpec(kind="family_sweep", family="multiplier",
                       axes={"n": 8})
        assert spec.axes == {"n": (8,)}

    def test_bad_vdd_rejected(self):
        with pytest.raises(ServeError, match="vdd"):
            JobSpec(kind="compare", design="mult16", vdd=-0.2)


class TestFromDict:
    def test_unknown_keys_rejected(self):
        with pytest.raises(ServeError, match="unknown job spec fields"):
            JobSpec.from_dict({"kind": "sweep", "design": "mult16",
                               "freqs": [1e4], "frqs": [1e5]})

    def test_missing_kind_rejected(self):
        with pytest.raises(ServeError, match="needs a kind"):
            JobSpec.from_dict({"design": "mult16", "freqs": [1e4]})

    def test_non_object_rejected(self):
        with pytest.raises(ServeError, match="JSON object"):
            JobSpec.from_dict([1, 2, 3])

    def test_null_fields_mean_defaults(self):
        spec = JobSpec.from_dict({"kind": "sweep", "design": "c",
                                  "freqs": [1e4], "modes": None,
                                  "vdd": None})
        assert spec.modes is None and spec.vdd is None


# -- the round-trip property ---------------------------------------------------

_designs = st.sampled_from(["mult16", "m0lite", "counter16", "lfsr16"])
_freq = st.floats(min_value=1.0, max_value=1e12, allow_nan=False,
                  allow_infinity=False)
_scalars = st.one_of(
    st.integers(min_value=-2**31, max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=12), st.booleans())
_tenants = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1, max_size=12)

_sweep_specs = st.fixed_dictionaries({
    "kind": st.just("sweep"),
    "design": _designs,
    "freqs": st.lists(_freq, min_size=1, max_size=8),
    "modes": st.one_of(
        st.none(),
        st.lists(st.sampled_from([m.value for m in Mode]),
                 min_size=1, max_size=4, unique=True)),
    "params": st.dictionaries(st.text(min_size=1, max_size=8),
                              _scalars, max_size=3),
    "tenant": _tenants,
})

_compare_specs = st.fixed_dictionaries({
    "kind": st.just("compare"),
    "design": _designs,
    "freqs": st.lists(_freq, max_size=6),
    "techniques": st.one_of(
        st.none(),
        st.lists(st.sampled_from(["scpg", "cbtstc", "lector"]),
                 min_size=1, max_size=3, unique=True)),
    "vdd": st.one_of(st.none(),
                     st.floats(min_value=0.1, max_value=2.0,
                               allow_nan=False)),
    "tenant": _tenants,
})

_family_specs = st.fixed_dictionaries({
    "kind": st.just("family_sweep"),
    "family": st.sampled_from(["multiplier", "counter", "adder"]),
    "freqs": st.lists(_freq, max_size=4),
    "axes": st.dictionaries(
        st.sampled_from(["n", "width", "taps"]),
        st.lists(st.integers(min_value=2, max_value=64),
                 min_size=1, max_size=4),
        max_size=2),
    "tenant": _tenants,
})


class TestRoundTrip:
    @given(st.one_of(_sweep_specs, _compare_specs, _family_specs))
    def test_spec_survives_json_exactly(self, payload):
        spec = JobSpec.from_dict(payload)
        wire = json.loads(json.dumps(spec.to_dict()))
        again = JobSpec.from_dict(wire)
        assert again == spec
        assert again.to_dict() == spec.to_dict()
        # Floats specifically: bit-for-bit, not approximately.
        for a, b in zip(again.freqs, spec.freqs):
            assert math.copysign(1.0, a) == math.copysign(1.0, b)
            assert a.hex() == b.hex()

    @given(_sweep_specs)
    def test_resubmission_is_idempotent(self, payload):
        spec = JobSpec.from_dict(payload)
        assert JobSpec.from_dict(spec.to_dict()).to_dict() \
            == spec.to_dict()


class TestResultSerialisation:
    def test_breakdown_floats_survive_json(self, mult_study):
        b = mult_study.model.power(1e5, Mode.SCPG)
        d = json.loads(json.dumps(breakdown_to_dict(b)))
        assert d["mode"] == "scpg"
        for name in ("freq_hz", "duty", "p_dynamic", "p_overhead",
                     "p_leak_alwayson", "p_leak_comb", "p_leak_header"):
            assert d[name] == getattr(b, name)
        assert d["total"] == b.total
        assert d["energy_per_op"] == b.energy_per_op

    def test_none_breakdown_passes_through(self):
        assert breakdown_to_dict(None) is None

    def test_sweep_dict_shape(self, mult_study):
        from repro.analysis.sweep import sweep

        data = sweep(mult_study.model, [1e4, 1e5])
        d = json.loads(json.dumps(sweep_to_dict(data)))
        assert d["freqs"] == [1e4, 1e5]
        assert d["modes"] == [m.value for m in data.results]
        for mode, series in d["series"].items():
            assert len(series) == 2
