"""SweepService behaviour: FIFO fairness, cancellation, dedupe
accounting, failure capture and the per-job journals."""

import os
import threading
import time

import pytest

from repro.errors import ServeError
from repro.runner import read_journal
from repro.serve import JobSpec, SweepService
from repro.session import Session


def _wait(job, timeout=60.0):
    deadline = time.monotonic() + timeout
    while job.state not in ("done", "failed", "cancelled"):
        if time.monotonic() > deadline:
            raise AssertionError("job stuck {}".format(job.state))
        time.sleep(0.01)
    return job


@pytest.fixture()
def service(tmp_path):
    svc = SweepService(cache=tmp_path / "cache",
                       spool=tmp_path / "spool")
    yield svc
    svc.close()


SWEEP = {"kind": "sweep", "design": "counter16",
         "freqs": [1e4, 1e5, 1e6]}


class TestLifecycle:
    def test_sweep_job_completes(self, service):
        job = service.submit(SWEEP)
        assert job.state in ("queued", "running", "done")
        _wait(job)
        assert job.state == "done"
        assert job.result["freqs"] == [1e4, 1e5, 1e6]
        assert set(job.result["series"]) == {"no-pg", "scpg",
                                             "scpg-max"}
        assert job.started >= job.submitted
        assert job.finished >= job.started
        assert job.latency > 0

    def test_status_dict_is_json_shaped(self, service):
        import json

        job = _wait(service.submit(SWEEP))
        status = json.loads(json.dumps(job.status_dict()))
        assert status["id"] == job.id
        assert status["state"] == "done"
        assert status["spec"] == JobSpec.from_dict(SWEEP).to_dict()
        assert status["dedupe"] == job.dedupe

    def test_unknown_job_id_raises(self, service):
        with pytest.raises(ServeError, match="unknown job id"):
            service.get("job-999999")

    def test_failed_job_keeps_the_error(self, service):
        job = _wait(service.submit(
            {"kind": "sweep", "design": "no_such_design",
             "freqs": [1e4]}))
        assert job.state == "failed"
        assert job.error and "no_such_design" in job.error
        assert job.result is None

    def test_compare_job(self, service):
        job = _wait(service.submit(
            {"kind": "compare", "design": "counter16",
             "freqs": [1e5, 1e6]}))
        assert job.state == "done", job.error
        assert job.result["design"]
        assert job.result["entries"]

    def test_family_sweep_job(self, service):
        job = _wait(service.submit(
            {"kind": "family_sweep", "family": "counter",
             "freqs": [1e5, 1e6], "axes": {"width": [4, 8]}}))
        assert job.state == "done", job.error
        designs = [d["design"] for d in job.result["designs"]]
        assert len(designs) == 2
        for block in job.result["designs"]:
            assert len(block["rows"]) == 2

    def test_submit_after_close_raises(self, tmp_path):
        svc = SweepService(cache=False, spool=tmp_path / "s")
        svc.close()
        with pytest.raises(ServeError, match="closed"):
            svc.submit(SWEEP)


class TestFifoFairness:
    def test_jobs_start_in_submission_order(self, tmp_path):
        svc = SweepService(cache=False, spool=tmp_path / "spool",
                           start=False)
        try:
            specs = [
                {"kind": "sweep", "design": "counter16",
                 "freqs": [1e4 * (i + 1)], "tenant": "t{}".format(i)}
                for i in range(5)
            ]
            jobs = [svc.submit(s) for s in specs]
            svc.start()
            for job in jobs:
                _wait(job)
            starts = [job.started for job in jobs]
            assert starts == sorted(starts)
            # And strictly serial: no job starts before the previous
            # one finished.
            for prev, job in zip(jobs, jobs[1:]):
                assert job.started >= prev.finished
        finally:
            svc.close()

    def test_jobs_listing_preserves_order_and_filters(self, tmp_path):
        svc = SweepService(cache=False, spool=tmp_path / "spool",
                           start=False)
        try:
            a = svc.submit(dict(SWEEP, tenant="alice"))
            b = svc.submit(dict(SWEEP, tenant="bob"))
            c = svc.submit(dict(SWEEP, tenant="alice"))
            assert [j.id for j in svc.jobs()] == [a.id, b.id, c.id]
            assert [j.id for j in svc.jobs(tenant="alice")] \
                == [a.id, c.id]
        finally:
            svc.close()


class TestCancel:
    def test_queued_job_cancels(self, tmp_path):
        svc = SweepService(cache=False, spool=tmp_path / "spool",
                           start=False)
        try:
            job = svc.submit(SWEEP)
            svc.cancel(job.id)
            assert job.state == "cancelled"
            assert job.finished is not None
            # A cancelled job never runs, even once the worker starts.
            svc.start()
            time.sleep(0.1)
            assert job.state == "cancelled"
            assert job.result is None
        finally:
            svc.close()

    def test_terminal_job_does_not_cancel(self, service):
        job = _wait(service.submit(SWEEP))
        with pytest.raises(ServeError, match="only queued"):
            service.cancel(job.id)

    def test_close_cancels_the_queue(self, tmp_path):
        svc = SweepService(cache=False, spool=tmp_path / "spool",
                           start=False)
        job = svc.submit(SWEEP)
        svc.close()
        assert job.state == "cancelled"


class TestDedupeAccounting:
    def test_identical_jobs_dedupe_fully(self, service):
        first = _wait(service.submit(SWEEP))
        second = _wait(service.submit(SWEEP))
        assert first.cache_misses > 0
        assert first.cache_hits == 0
        assert second.cache_misses == 0
        assert second.cache_hits == first.cache_misses
        assert second.dedupe == 1.0

    def test_overlapping_jobs_dedupe_partially(self, service):
        _wait(service.submit(SWEEP))
        overlap = _wait(service.submit(
            {"kind": "sweep", "design": "counter16",
             "freqs": [1e4, 1e5, 1e6, 5e6]}))
        assert 0.0 < overlap.dedupe < 1.0
        # Exactly the 3 shared freqs x 3 modes hit; the new freq misses.
        assert overlap.cache_hits == 9
        assert overlap.cache_misses == 3

    def test_counts_and_metrics(self, service):
        _wait(service.submit(SWEEP))
        _wait(service.submit(SWEEP))
        counts = service.counts()
        assert counts["done"] == 2
        text = service.render_metrics()
        assert 'repro_serve_jobs{state="done"} 2' in text
        assert "repro_serve_dedupe_ratio 0.5" in text
        assert "repro_serve_job_seconds_count 2" in text
        # The session-level registry rides along.
        assert "repro_cache_hits_total" in text

    def test_metrics_scrapes_do_not_double_count(self, service):
        _wait(service.submit(SWEEP))
        service.render_metrics()
        text = service.render_metrics()
        assert "repro_serve_job_seconds_count 1" in text


class TestJournals:
    def test_every_job_gets_its_own_journal(self, service):
        a = _wait(service.submit(SWEEP))
        b = _wait(service.submit(dict(SWEEP, freqs=[5e6])))
        assert a.journal_path != b.journal_path
        for job in (a, b):
            assert os.path.exists(job.journal_path)
            events = [e["event"] for e in
                      read_journal(job.journal_path)]
            assert events[0] == "job_submitted"
            assert "job_started" in events
            assert "run_start" in events
            assert "point_finished" in events
            assert events[-1] == "job_finished"

    def test_accounting_event_carries_the_dedupe(self, service):
        _wait(service.submit(SWEEP))
        job = _wait(service.submit(SWEEP))
        events = read_journal(job.journal_path)
        acct = [e for e in events if e["event"] == "job_accounting"]
        assert len(acct) == 1
        assert acct[0]["cache_hits"] == job.cache_hits
        assert acct[0]["dedupe"] == 1.0

    def test_failed_job_journal_records_the_error(self, service):
        job = _wait(service.submit(
            {"kind": "sweep", "design": "nope", "freqs": [1e4]}))
        events = read_journal(job.journal_path)
        assert events[-1]["event"] == "job_failed"
        assert "nope" in events[-1]["error"]

    def test_session_journal_restored_after_each_job(self, tmp_path):
        session = Session(cache=False,
                          journal=str(tmp_path / "session.jsonl"))
        svc = SweepService(session=session, spool=tmp_path / "spool")
        try:
            _wait(svc.submit(SWEEP))
            assert svc.session.runner.journal.path \
                == str(tmp_path / "session.jsonl")
        finally:
            svc.close()
            session.close()


class TestSharedSessionRules:
    def test_session_and_kwargs_are_exclusive(self):
        session = Session(cache=False)
        try:
            with pytest.raises(ValueError, match="not both"):
                SweepService(session=session, workers=2)
        finally:
            session.close()

    def test_borrowed_session_stays_open(self, tmp_path):
        session = Session(cache=False)
        svc = SweepService(session=session, spool=tmp_path / "spool")
        svc.close()
        handle = session.design("counter16")
        assert handle.sta().min_period > 0
        session.close()

    def test_concurrent_submitters_all_complete(self, service):
        jobs, lock = [], threading.Lock()

        def client(i):
            job = service.submit(
                {"kind": "sweep", "design": "counter16",
                 "freqs": [1e4 + i], "tenant": "t{}".format(i)})
            with lock:
                jobs.append(job)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(jobs) == 6
        assert len({j.id for j in jobs}) == 6
        for job in jobs:
            assert _wait(job).state == "done"
