"""HTTP front-end: routes, status codes, SSE streaming, metrics.

Everything runs against a real server on a real socket (``port=0``
picks a free one); the client is the stdlib-only
:class:`repro.serve.ServeClient`, same as the load benchmark uses.
"""

import http.client
import json

import pytest

from repro.errors import ServeError
from repro.serve import ServeClient, SweepService, serve_in_thread

SWEEP = {"kind": "sweep", "design": "counter16",
         "freqs": [1e4, 1e5, 1e6]}


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve-http")
    handle = serve_in_thread(cache=str(tmp / "cache"),
                             spool=str(tmp / "spool"))
    yield handle
    handle.close()


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(server.host, server.port, tenant="pytest")


def _raw(server, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection(server.host, server.port,
                                      timeout=30.0)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        text = response.read().decode()
    finally:
        conn.close()
    return response.status, text


class TestRoutes:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert set(health["jobs"]) == {"queued", "running", "done",
                                       "failed", "cancelled"}

    def test_submit_wait_result(self, client):
        status = client.submit(SWEEP)
        assert status["state"] in ("queued", "running", "done")
        assert status["spec"]["tenant"] == "pytest"
        final = client.wait(status["id"])
        assert final["state"] == "done"
        result = client.result(status["id"])
        assert result["freqs"] == [1e4, 1e5, 1e6]
        assert set(result["series"]) == {"no-pg", "scpg", "scpg-max"}

    def test_jobs_listing_and_tenant_filter(self, client):
        client.run(SWEEP)
        everyone = client.jobs()
        mine = client.jobs(tenant="pytest")
        nobody = client.jobs(tenant="ghost")
        assert len(everyone) >= len(mine) >= 1
        assert nobody == []
        assert all(j["spec"]["tenant"] == "pytest" for j in mine)

    def test_unknown_job_is_404(self, server, client):
        status, text = _raw(server, "GET", "/jobs/job-999999")
        assert status == 404
        assert "unknown job id" in json.loads(text)["error"]
        with pytest.raises(ServeError, match="404"):
            client.status("job-999999")

    def test_unknown_route_is_404(self, server):
        status, _ = _raw(server, "GET", "/nope")
        assert status == 404

    def test_wrong_method_is_405(self, server):
        status, _ = _raw(server, "DELETE", "/jobs")
        assert status == 405

    def test_bad_json_is_400(self, server):
        status, text = _raw(server, "POST", "/jobs", body="not json{")
        assert status == 400
        assert "JSON" in json.loads(text)["error"]

    def test_invalid_spec_is_400(self, client):
        with pytest.raises(ServeError, match="400"):
            client.submit({"kind": "sweep", "design": "counter16",
                           "freqs": []})

    def test_unknown_spec_field_is_400(self, server):
        status, text = _raw(server, "POST", "/jobs",
                            body=json.dumps(dict(SWEEP, surprise=1)))
        assert status == 400
        assert "surprise" in json.loads(text)["error"]

    def test_oversized_body_is_413(self, server):
        status, _ = _raw(server, "POST", "/jobs",
                         body="x" * (2 << 20))
        assert status == 413

    def test_failed_job_result_is_500(self, client):
        status = client.submit({"kind": "sweep", "design": "missing",
                                "freqs": [1e4]})
        final = client.wait(status["id"])
        assert final["state"] == "failed"
        with pytest.raises(ServeError, match="500"):
            client.result(status["id"])


class TestResultStates:
    def test_pending_result_is_409_and_cancel_flow(self, tmp_path):
        service = SweepService(cache=False,
                               spool=tmp_path / "spool", start=False)
        handle = serve_in_thread(service=service)
        try:
            client = ServeClient(handle.host, handle.port)
            job_id = client.submit(SWEEP)["id"]
            with pytest.raises(ServeError, match="409"):
                client.result(job_id)
            cancelled = client.cancel(job_id)
            assert cancelled["state"] == "cancelled"
            # Result of a cancelled job: 410.
            with pytest.raises(ServeError, match="410"):
                client.result(job_id)
            # Cancelling twice: 409 with the reason.
            with pytest.raises(ServeError, match="409"):
                client.cancel(job_id)
        finally:
            handle.close()
            service.close()


class TestEvents:
    def test_sse_stream_replays_the_job_journal(self, client):
        job_id = client.submit(dict(SWEEP, freqs=[2e4, 2e5]))["id"]
        client.wait(job_id)
        events = client.events(job_id)
        names = [e["event"] for e in events]
        assert names[0] == "job_submitted"
        assert "run_start" in names
        assert names.count("point_finished") >= 6  # 2 freqs x 3 modes
        assert "job_accounting" in names
        assert names[-1] == "job_finished"

    def test_sse_frames_are_wellformed(self, server, client):
        job_id = client.submit(dict(SWEEP, freqs=[3e4]))["id"]
        client.wait(job_id)
        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=30.0)
        try:
            conn.request("GET", "/jobs/" + job_id + "/events")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") \
                == "text/event-stream"
            raw = response.read().decode()
        finally:
            conn.close()
        frames = [f for f in raw.split("\n\n") if f.strip()]
        assert frames[-1].startswith("event: end\ndata: ")
        end_status = json.loads(
            frames[-1].split("\ndata: ", 1)[1])
        assert end_status["id"] == job_id
        assert end_status["state"] == "done"
        for frame in frames[:-1]:
            assert frame.startswith("data: ")
            json.loads(frame[len("data: "):])


class TestMetrics:
    def test_prometheus_exposition(self, client):
        client.run(SWEEP)
        text = client.metrics()
        assert "# TYPE repro_serve_jobs gauge" in text
        assert 'repro_serve_jobs{state="done"}' in text
        assert "repro_serve_dedupe_ratio" in text
        assert "repro_serve_job_seconds_bucket" in text
        assert "repro_cache_hits_total" in text
        assert "repro_points_total" in text
