"""Golden-file machinery: exact JSON snapshots of paper outputs.

``golden_check(name, data)`` compares ``data`` against the committed
``tests/golden/data/<name>.json``.  The comparison is **exact** -- JSON
serialises Python floats through ``repr``, which round-trips every bit,
and the evaluation paths are bit-identical by contract (see
``tests/integration/test_equivalence_matrix.py``) -- so any drift in a
table or figure number is a real behaviour change, not noise.

To bless intentional changes::

    PYTHONPATH=src python -m pytest tests/golden --update-golden

and commit the rewritten files with the change that caused them.
"""

import json
import os

import pytest

DATA_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "data")


@pytest.fixture()
def golden_check(request):
    update = request.config.getoption("update_golden", default=False)

    def check(name, data):
        path = os.path.join(DATA_DIR, name + ".json")
        if update:
            os.makedirs(DATA_DIR, exist_ok=True)
            with open(path, "w") as f:
                json.dump(data, f, indent=2, sort_keys=True)
                f.write("\n")
            return
        if not os.path.exists(path):
            pytest.fail(
                "golden file {} missing -- generate it with "
                "--update-golden and commit it".format(path))
        with open(path) as f:
            expected = json.load(f)
        # round-trip `data` through JSON so tuples/lists and int-valued
        # floats compare in their serialised form, then require equality
        assert json.loads(json.dumps(data)) == expected, (
            "{} drifted from its golden file; if the change is "
            "intentional, rerun with --update-golden and commit".format(
                name))

    return check
