"""Golden regression tests for the paper's tables and figure series.

Each test regenerates one published output from the shared fast-mode
case studies and compares it, bit for bit, against the committed JSON
snapshot under ``tests/golden/data/``.  These freeze the *numbers*; the
shape/trend assertions live in ``tests/analysis/``.
"""

from dataclasses import asdict

from repro.analysis.figures import (
    energy_series,
    power_series,
    subvt_series,
    switching_series,
)
from repro.analysis.tables import (
    TABLE_I_FREQS,
    TABLE_II_FREQS,
    build_table,
)

#: Figure frequency grids (Hz): denser than the tables, like the plots.
FIG6_FREQS = [0.5e6 * k for k in range(1, 20)]       # multiplier
FIG8_FREQS = [0.25e6 * k for k in range(1, 25)]      # Cortex-M0


def _series_data(series):
    return [{"label": s.label, "x": s.x, "y": s.y} for s in series]


class TestGoldenTables:
    def test_table1_multiplier(self, mult_study, golden_check):
        rows = build_table(mult_study.model, TABLE_I_FREQS)
        golden_check("table1_mult16", [asdict(r) for r in rows])

    def test_table2_cortex_m0(self, m0_study, golden_check):
        rows = build_table(m0_study.model, TABLE_II_FREQS)
        golden_check("table2_m0lite", [asdict(r) for r in rows])


class TestGoldenFigures:
    def test_fig6a_power_vs_frequency(self, mult_study, golden_check):
        golden_check("fig6a_power_mult16", _series_data(
            power_series(mult_study.model, FIG6_FREQS)))

    def test_fig6b_energy_vs_frequency(self, mult_study, golden_check):
        golden_check("fig6b_energy_mult16", _series_data(
            energy_series(mult_study.model, FIG6_FREQS)))

    def test_fig7_switching_probability(self, m0_study, golden_check):
        series = switching_series(m0_study.activity_trace)
        golden_check("fig7_switching_m0lite",
                     {"label": series.label, "x": series.x,
                      "y": series.y})

    def test_fig8a_power_vs_frequency(self, m0_study, golden_check):
        golden_check("fig8a_power_m0lite", _series_data(
            power_series(m0_study.model, FIG8_FREQS)))

    def test_fig8b_energy_vs_frequency(self, m0_study, golden_check):
        golden_check("fig8b_energy_m0lite", _series_data(
            energy_series(m0_study.model, FIG8_FREQS)))

    def test_fig9_subvt_energy(self, mult_study, golden_check):
        series = subvt_series(mult_study.subvt, steps=40)
        golden_check("fig9_subvt_mult16",
                     {"label": series.label, "x": series.x,
                      "y": series.y})
