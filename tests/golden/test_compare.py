"""Golden snapshots of the cross-technique comparison.

Every number in ``repro compare`` -- per-technique Fmax, area
overheads, power breakdowns and savings against the shared baseline on
both case-study designs -- is pinned exactly.  The SCPG column doubles
as the bit-identity guarantee for the plugin refactor: it must keep
producing the pre-plugin ``ScpgPowerModel`` numbers forever.
"""

import pytest

from repro.session import Session
from repro.techniques import DEFAULT_COMPARE_FREQS


@pytest.fixture(scope="module")
def session():
    s = Session(cache=None)
    yield s
    s.close()


@pytest.mark.parametrize("design", ["mult16", "m0lite"])
def test_compare_snapshot(session, design, golden_check):
    comparison = session.compare_techniques(design)
    assert comparison.freqs == list(DEFAULT_COMPARE_FREQS)
    assert comparison.techniques == ["cbtstc", "lector", "scpg"]
    golden_check("compare_{}".format(design), comparison.as_dict())
