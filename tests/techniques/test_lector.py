"""LECTOR: leakage-control transistor insertion."""

import pickle

import pytest

from repro.errors import TechniqueError
from repro.netlist.validate import validate_module
from repro.runner.kernel import compile_kernel
from repro.tech.library import CellKind
from repro.techniques import technique
from repro.techniques.lector import (
    LCT_SUFFIX,
    LectorModel,
    LectorTable,
    lector_library,
)


@pytest.fixture(scope="module")
def transformed(mult_design):
    return technique("lector").transform(mult_design)


@pytest.fixture(scope="module")
def model(mult_handle, transformed):
    return technique("lector").sweep_model(
        transformed, library=mult_handle.session.library,
        e_cycle=mult_handle.switching()[0],
        base_leakage=mult_handle.leakage(),
        base_sta=mult_handle.sta())


class TestVariantLibrary:
    def test_stacking_factor_is_physical(self, session):
        stack = session.library.device_model("svt") \
            .stack_leakage_factor(session.library.vdd_nom)
        # The stacking effect buys roughly an order of magnitude.
        assert 2.0 < stack < 1000.0

    def test_lct_twins_added_for_combinational_cells(self, session):
        lib = session.library
        lib_l = lector_library(lib)
        assert lib_l.name == lib.name + "-lector"
        for cell in lib.cells():
            assert lib_l.has_cell(cell.name)
            twin = cell.name + LCT_SUFFIX
            if cell.kind in (CellKind.COMBINATIONAL, CellKind.BUFFER) \
                    and cell.inputs and cell.outputs:
                assert lib_l.has_cell(twin)
            else:
                assert not lib_l.has_cell(twin)

    def test_twin_tradeoffs(self, session):
        lib_l = lector_library(session.library)
        inv = lib_l.cell("INV_X1")
        twin = lib_l.cell("INV_X1" + LCT_SUFFIX)
        assert twin.leakage < inv.leakage / 2
        assert all(t.power < s.power for t, s in
                   zip(twin.leakage_states, inv.leakage_states))
        assert twin.area > inv.area
        assert twin.intrinsic_delay > inv.intrinsic_delay
        assert twin.c_internal > inv.c_internal
        # Same pin interface: instances swap in place.
        assert [p.name for p in twin.pins] == [p.name for p in inv.pins]

    def test_penalties_amortise_over_gate_width(self, session):
        lib_l = lector_library(session.library)
        inv, inv_t = lib_l.cell("INV_X1"), lib_l.cell("INV_X1_LCT")
        nand, nand_t = lib_l.cell("NAND2_X1"), lib_l.cell("NAND2_X1_LCT")
        inv_penalty = inv_t.intrinsic_delay / inv.intrinsic_delay
        nand_penalty = nand_t.intrinsic_delay / nand.intrinsic_delay
        assert inv_penalty == pytest.approx(1.35)
        assert nand_penalty < inv_penalty


class TestTransform:
    def test_remap_swaps_gates_only(self, transformed, mult_design):
        top = transformed.design.top
        assert validate_module(top).ok
        assert transformed.swapped > 0
        lct = [i for i in top.cell_instances()
               if i.cell.name.endswith(LCT_SUFFIX)]
        assert len(lct) == transformed.swapped
        seq = [i for i in top.cell_instances() if i.cell.is_sequential]
        assert all(not i.cell.name.endswith(LCT_SUFFIX) for i in seq)
        # Net-for-net structural copy: same ports, same instance names.
        assert {p.name for p in top.ports} == \
            {p.name for p in mult_design.top.ports}

    def test_area_overhead_is_substantial(self, transformed):
        # Two extra transistors per gate cost real area (the paper's
        # trade for zero control logic).
        assert 10.0 < transformed.area_overhead_pct < 60.0

    def test_transform_takes_no_options(self, mult_design):
        with pytest.raises(TypeError, match="no options"):
            technique("lector").transform(mult_design, header_size=4)


class TestModel:
    def test_leakage_stacked_down_no_overhead_bucket(self, mult_handle,
                                                     model):
        base = mult_handle.leakage().total
        b = model.breakdown(1e4)
        assert b.p_leak < base / 2
        assert b.p_overhead == 0.0
        # Extra internal capacitance makes switching more expensive.
        assert model.e_cycle > mult_handle.switching()[0]

    def test_slower_than_base_design(self, mult_handle, model):
        assert 0 < model.fmax() < 1.0 / mult_handle.sta().min_period

    def test_infeasible_frequency_raises(self, model):
        with pytest.raises(TechniqueError, match="Fmax"):
            model.breakdown(model.fmax() * 2)

    def test_batch_kernel_matches_point_path(self, model):
        kernel = compile_kernel(model)
        assert kernel is not None
        batch = kernel([1e4, 1e6])
        assert batch[0].total == model.breakdown(1e4).total
        assert batch[1].total == model.breakdown(1e6).total

    def test_artifact_table_roundtrip(self, mult_handle, transformed,
                                      model):
        table = technique("lector").artifact_table(transformed)
        assert isinstance(table, LectorTable)
        clone = pickle.loads(pickle.dumps(table))
        rebuilt = clone.build_model(mult_handle.session.library,
                                    mult_handle.switching()[0],
                                    mult_handle.leakage())
        assert isinstance(rebuilt, LectorModel)
        assert rebuilt == model
