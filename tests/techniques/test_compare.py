"""Cross-technique comparison through the Session facade."""

import pytest

from repro.errors import RegistryError
from repro.scpg.power_model import Mode
from repro.techniques import (
    DEFAULT_COMPARE_FREQS,
    format_comparison,
    run_comparison,
)
from repro.techniques.compare import BaselineModel, compare_cache_key

FREQS = [1e4, 1e5, 1e6]


@pytest.fixture(scope="module")
def comparison(mult_handle):
    return run_comparison(mult_handle, freqs=FREQS)


class TestRunComparison:
    def test_all_registered_techniques_compared(self, comparison):
        assert comparison.design == "mult16"
        assert comparison.techniques == ["cbtstc", "lector", "scpg"]
        assert comparison.freqs == FREQS

    def test_every_technique_saves_leakage_at_low_frequency(
            self, comparison):
        base = comparison.baseline.points[0]
        for entry in comparison.entries:
            b = entry.points[0]
            assert b is not None
            assert b.p_leak < base.p_leak
            assert entry.savings_pct[0] > 0.0

    def test_baseline_column(self, comparison):
        assert comparison.baseline.technique == "baseline"
        assert comparison.baseline.area_overhead_pct == 0.0
        assert comparison.baseline.savings_pct == [0.0] * len(FREQS)

    def test_entries_carry_citation_and_overhead(self, comparison):
        for entry in comparison.entries:
            assert entry.paper
            assert entry.fmax_hz > 0
            assert entry.area_overhead_pct > 0.0

    def test_scpg_bit_identical_to_the_scpg_power_model(self, mult_handle,
                                                        comparison):
        """The plugin adapter must not perturb the paper's numbers."""
        reference = mult_handle.power_model()._power_axis(
            FREQS, Mode.SCPG_MAX)
        entry = comparison.entry("scpg")
        assert len(entry.points) == len(reference)
        for got, want in zip(entry.points, reference):
            assert got.total == want.total
            assert got.p_dynamic == want.p_dynamic
            assert got.p_overhead == want.p_overhead
            assert got.p_leak == want.leakage

    def test_points_above_fmax_are_none(self, mult_handle):
        cmp = run_comparison(mult_handle, freqs=[1e4, 1e12],
                             techniques=["lector"])
        entry = cmp.entry("lector")
        assert entry.points[0] is not None
        assert entry.points[1] is None
        assert entry.savings_pct == [pytest.approx(entry.savings_pct[0]),
                                     None]

    def test_technique_subset_and_unknown_name(self, mult_handle):
        cmp = run_comparison(mult_handle, freqs=[1e4],
                             techniques=["scpg"])
        assert cmp.techniques == ["scpg"]
        with pytest.raises(RegistryError, match="unknown technique"):
            run_comparison(mult_handle, freqs=[1e4],
                           techniques=["mtcmos"])

    def test_unknown_entry_lookup(self, comparison):
        with pytest.raises(KeyError):
            comparison.entry("mtcmos")

    def test_default_grid(self):
        assert DEFAULT_COMPARE_FREQS == (1e4, 1e5, 1e6, 5e6)


class TestSessionFacade:
    def test_compare_techniques_by_name_and_handle(self, session,
                                                   mult_handle,
                                                   comparison):
        via_name = session.compare_techniques("mult16", freqs=FREQS)
        via_handle = session.compare_techniques(mult_handle, freqs=FREQS)
        assert via_name.as_dict() == comparison.as_dict()
        assert via_handle.as_dict() == comparison.as_dict()

    def test_session_lists_techniques(self, session):
        assert session.techniques() == ["cbtstc", "lector", "scpg"]

    def test_runner_labels_journal_the_comparison(self, tmp_path):
        from repro.session import Session

        journal = tmp_path / "journal.jsonl"
        s = Session(cache=None, journal=str(journal))
        try:
            s.compare_techniques("mult16", freqs=[1e4],
                                 techniques=["lector"])
        finally:
            s.close()
        text = journal.read_text()
        assert "compare:mult16:baseline" in text
        assert "compare:mult16:lector" in text


class TestCacheAndRendering:
    def test_models_are_fingerprintable(self, mult_handle):
        base_sta = mult_handle.sta()
        model = BaselineModel(
            e_cycle=1e-12, leak_total=1e-6,
            t_eval=base_sta.eval_delay, t_setup=base_sta.setup, vdd=1.2)
        key = compare_cache_key(model)
        assert key is not None
        assert key == compare_cache_key(model)

    def test_format_comparison_renders_every_row(self, comparison):
        text = format_comparison(comparison)
        assert "baseline" in text
        for name in comparison.techniques:
            assert name in text
        assert "10kHz" in text and "1MHz" in text

    def test_comparison_series_for_figures(self, comparison):
        from repro.analysis.figures import comparison_series

        totals = comparison_series(comparison)
        assert [s.label for s in totals] == \
            ["baseline", "cbtstc", "lector", "scpg"]
        assert all(len(s.finite()) == len(FREQS) for s in totals)
        savings = comparison_series(comparison, metric="saving")
        assert [s.label for s in savings] == ["cbtstc", "lector", "scpg"]
        with pytest.raises(ValueError):
            comparison_series(comparison, metric="bogus")
