"""Deprecation shims for the pre-plugin entry points.

Two generations of shims meet here:

* PR 6 kernel-era shims -- ``ScpgPowerModel.power_axis`` /
  ``power_points``, ``SubvtModel.points_axis``, the runner's
  ``batch_fn=`` keyword -- must keep warning (with the caller's frame,
  ``stacklevel=2``) when reached through models built by the technique
  registry.
* This PR's plugin-era shims -- ``apply_scpg`` and ``run_scpg_flow`` --
  warn and delegate to the registered ``scpg`` technique's internals
  with identical results.
"""

import warnings

import pytest

from repro.netlist.core import Design, Module
from repro.scpg.power_model import Mode
from repro.techniques import technique


def _toy(lib):
    """clk -> [NAND2 -> DFF -> INV] (cheap enough to transform twice)."""
    m = Module("toy")
    clk = m.add_input("clk")
    a = m.add_input("a")
    b = m.add_input("b")
    y = m.add_output("y")
    n1 = m.add_net("n1")
    q = m.add_net("q")
    m.add_instance("g1", lib.cell("NAND2_X1"), {"A": a, "B": b, "Y": n1})
    m.add_instance("ff", lib.cell("DFF_X1"), {"D": n1, "CK": clk, "Q": q})
    m.add_instance("g2", lib.cell("INV_X1"), {"A": q, "Y": y})
    return Design(m, lib)


def _deprecations(record):
    return [w for w in record if w.category is DeprecationWarning]


@pytest.fixture(scope="module")
def scpg_model(mult_handle):
    """A technique-registry-built SCPG comparison model."""
    e_cycle, _ = mult_handle.switching()
    scpg = technique("scpg")
    transformed = scpg.transform_for_compare(mult_handle.design, e_cycle)
    return scpg.sweep_model(
        transformed, library=mult_handle.session.library, e_cycle=e_cycle,
        base_leakage=mult_handle.leakage(), base_sta=mult_handle.sta())


class TestPluginEraShims:
    def test_apply_scpg_warns_at_the_caller(self, session):
        from repro.scpg.transform import apply_scpg

        design = _toy(session.library)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            shimmed = apply_scpg(design)
        (w,) = _deprecations(record)
        assert "technique('scpg')" in str(w.message)
        assert w.filename == __file__  # stacklevel=2: caller's frame

        direct = technique("scpg").transform(_toy(session.library))
        assert shimmed.headers.count == direct.headers.count
        assert shimmed.upf == direct.upf

    def test_run_scpg_flow_warns_at_the_caller(self, session):
        from repro.flows import run_scpg_flow

        lib = session.library
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            result = run_scpg_flow(lambda: _toy(lib), lib)
        (w,) = _deprecations(record)
        assert "implement" in str(w.message)
        assert w.filename == __file__
        assert result.flow.name == "scpg:toy"


class TestKernelEraShimsThroughTheRegistry:
    def test_power_axis_warns_and_matches(self, scpg_model):
        inner = scpg_model.model  # the wrapped ScpgPowerModel
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            shimmed = inner.power_axis([1e4, 1e6], Mode.SCPG_MAX)
        (w,) = _deprecations(record)
        assert "compile_kernel" in str(w.message)
        assert w.filename == __file__
        reference = inner._power_axis([1e4, 1e6], Mode.SCPG_MAX)
        assert [b.total for b in shimmed] == \
            [b.total for b in reference]

    def test_power_points_warns_and_matches(self, scpg_model):
        inner = scpg_model.model
        points = [(1e4, Mode.NO_PG), (1e6, Mode.SCPG_MAX)]
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            shimmed = inner.power_points(points)
        (w,) = _deprecations(record)
        assert w.filename == __file__
        assert [b.total for b in shimmed] == \
            [b.total for b in inner._power_points(points)]

    def test_points_axis_warns_and_matches(self, mult_handle):
        model = mult_handle.subvt_model()
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            shimmed = model.points_axis([0.4, 0.9])
        (w,) = _deprecations(record)
        assert "compile_kernel" in str(w.message)
        assert w.filename == __file__
        assert shimmed == model._points_axis([0.4, 0.9])

    def test_runner_batch_fn_warns_and_matches(self, scpg_model):
        from repro.runner import Runner

        inner = scpg_model.model
        freqs = [1e4, 1e5, 1e6]

        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            values = Runner().run(
                lambda m, f: m.power(f, Mode.SCPG_MAX), freqs,
                context=inner,
                batch_fn=lambda m, fs: m._power_axis(list(fs),
                                                     Mode.SCPG_MAX))
        (w,) = _deprecations(record)
        assert "kernel=" in str(w.message)
        assert w.filename == __file__
        reference = inner._power_axis(freqs, Mode.SCPG_MAX)
        assert [b.total for b in values] == \
            [b.total for b in reference]

    def test_registry_model_batch_path_is_warning_free(self, scpg_model):
        """The technique kernel path must not touch any shim."""
        from repro.runner import compile_kernel

        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            kernel = compile_kernel(scpg_model)
            assert kernel is not None
            kernel([1e4, 1e6])
        assert _deprecations(record) == []
