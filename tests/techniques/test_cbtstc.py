"""CBTSTC: clustered tunable sleep transistor cells."""

import pickle

import pytest

from repro.errors import TechniqueError
from repro.netlist.stats import module_stats
from repro.netlist.validate import validate_module
from repro.runner.kernel import compile_kernel
from repro.techniques import technique
from repro.techniques.cbtstc import (
    BIAS_STEPS,
    DEFAULT_CLUSTER_SIZE,
    MAX_BIAS_FRACTION,
    CbtstcModel,
    CbtstcTable,
)


@pytest.fixture(scope="module")
def transformed(mult_handle):
    e_cycle, _ = mult_handle.switching()
    return technique("cbtstc").transform(mult_handle.design,
                                         energy_per_cycle=e_cycle)


@pytest.fixture(scope="module")
def model(mult_handle, transformed):
    e_cycle, _ = mult_handle.switching()
    return technique("cbtstc").sweep_model(
        transformed, library=mult_handle.session.library,
        e_cycle=e_cycle, base_leakage=mult_handle.leakage(),
        base_sta=mult_handle.sta())


class TestTransform:
    def test_every_gatable_gate_is_clustered_once(self, transformed,
                                                  mult_design):
        from repro.power.leakage import GATABLE_KINDS

        gatable = {i.name for i in mult_design.top.cell_instances()
                   if i.cell.kind in GATABLE_KINDS}
        seen = []
        for cluster in transformed.clusters:
            assert 1 <= len(cluster.instances) <= DEFAULT_CLUSTER_SIZE
            seen.extend(cluster.instances)
        assert len(seen) == len(set(seen))
        assert set(seen) == gatable

    def test_one_tstc_instance_per_cluster(self, transformed, mult_design):
        stats = module_stats(transformed.design.top)
        assert stats.header_cells == len(transformed.clusters)
        assert module_stats(mult_design.top).header_cells == 0
        assert validate_module(transformed.design.top).ok
        assert transformed.design.top.has_port("tstc_sleep")

    def test_clusters_follow_levelization(self, transformed):
        for cluster in transformed.clusters:
            assert cluster.level_lo <= cluster.level_hi
        starts = [c.level_lo for c in transformed.clusters]
        assert starts == sorted(starts)

    def test_activity_and_bias_tuning(self, transformed):
        for c in transformed.clusters:
            assert 0.0 <= c.p_active <= 1.0
            assert 0 <= c.bias_step <= BIAS_STEPS
            assert 0.0 <= c.bias_v <= \
                MAX_BIAS_FRACTION * transformed.design.library.vdd_nom
            # Deeper bias only for idler clusters.
            if c.bias_step == BIAS_STEPS:
                assert c.p_active <= 0.5
        assert any(c.ir_drop > 0 for c in transformed.clusters)

    def test_area_overhead_is_small_but_real(self, transformed):
        assert 0.0 < transformed.area_overhead_pct < 15.0

    def test_bad_cluster_size_rejected(self, mult_design):
        with pytest.raises(TechniqueError, match="cluster_size"):
            technique("cbtstc").transform(mult_design, cluster_size=0)


class TestModel:
    def test_saves_leakage_vs_ungated_baseline(self, mult_handle, model):
        base = mult_handle.leakage().total
        b = model.breakdown(1e4)
        assert b.p_leak < base
        assert b.p_overhead > 0.0

    def test_ir_drop_costs_fmax(self, mult_handle, model):
        assert 0 < model.fmax() < 1.0 / mult_handle.sta().min_period

    def test_infeasible_frequencies_raise(self, model):
        with pytest.raises(TechniqueError, match="Fmax"):
            model.breakdown(model.fmax() * 2)
        with pytest.raises(TechniqueError, match="positive"):
            model.breakdown(0.0)

    def test_batch_kernel_matches_point_path(self, model):
        kernel = compile_kernel(model)
        assert kernel is not None
        freqs = [1e4, 1e6, model.fmax() * 2]
        batch = kernel(freqs)
        assert batch[-1] is None
        for f, b in zip(freqs[:2], batch[:2]):
            assert b.total == model.breakdown(f).total

    def test_artifact_table_is_picklable_and_deterministic(
            self, mult_handle, transformed, model):
        table = technique("cbtstc").artifact_table(transformed)
        assert isinstance(table, CbtstcTable)
        clone = pickle.loads(pickle.dumps(table))
        rebuilt = clone.build_model(
            mult_handle.session.library,
            mult_handle.switching()[0], mult_handle.leakage())
        assert isinstance(rebuilt, CbtstcModel)
        assert rebuilt == model
