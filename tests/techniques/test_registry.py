"""The technique registry and the shared plugin protocol."""

import pytest

from repro.errors import RegistryError, TechniqueError
from repro.netlist.core import Design, Module
from repro.techniques import (
    CbtstcTechnique,
    LectorTechnique,
    ScpgTechnique,
    Technique,
    available_techniques,
    register_technique,
    technique,
)
import repro.techniques as techniques_pkg


class TestRegistry:
    def test_builtin_techniques_registered(self):
        assert available_techniques() == ["cbtstc", "lector", "scpg"]

    def test_lookup_returns_the_registered_instances(self):
        assert isinstance(technique("scpg"), ScpgTechnique)
        assert isinstance(technique("cbtstc"), CbtstcTechnique)
        assert isinstance(technique("lector"), LectorTechnique)
        # Stateless singletons: every lookup is the same object.
        assert technique("scpg") is technique("scpg")

    def test_unknown_name_lists_available(self):
        with pytest.raises(RegistryError, match="cbtstc, lector, scpg"):
            technique("mtcmos")

    def test_non_technique_rejected(self):
        with pytest.raises(RegistryError, match="Technique instance"):
            register_technique(object())

    def test_duplicate_name_rejected(self):
        class Dup(Technique):
            name = "scpg"

        with pytest.raises(RegistryError, match="already registered"):
            register_technique(Dup())

    def test_registration_roundtrip(self):
        class Custom(Technique):
            name = "custom-xyz"

        tech = Custom()
        assert register_technique(tech) is tech
        try:
            assert technique("custom-xyz") is tech
            assert "custom-xyz" in available_techniques()
        finally:
            del techniques_pkg._REGISTRY["custom-xyz"]

    def test_every_builtin_cites_a_paper(self):
        for name in available_techniques():
            assert technique(name).paper

    def test_top_level_exports(self):
        import repro

        assert repro.technique("scpg") is technique("scpg")
        assert repro.available_techniques() == available_techniques()


class TestEligibility:
    def test_flat_clocked_design_is_eligible_everywhere(self, mult_design):
        for name in available_techniques():
            report = technique(name).check(mult_design)
            assert report.ok, report.issues
            assert report.raise_if_blocked() is report

    def test_hierarchical_design_blocked(self, session, mult_design):
        lib = session.library
        parent = Module("parent")
        clk = parent.add_input("clk")
        parent.add_instance("u_core", mult_design.top, {"clk": clk})
        hier = Design(parent, lib)
        for name in available_techniques():
            report = technique(name).check(hier)
            assert [i.code for i in report.issues] == ["hierarchical"]
            with pytest.raises(TechniqueError, match="flatten"):
                report.raise_if_blocked()

    def test_clockless_design_blocks_only_clock_derived_schemes(
            self, session):
        lib = session.library
        m = Module("combonly")
        a = m.add_input("a")
        b = m.add_input("b")
        y = m.add_output("y")
        m.add_instance("g", lib.cell("NAND2_X1"), {"A": a, "B": b, "Y": y})
        design = Design(m, lib)

        scpg = technique("scpg").check(design)
        assert "no-clock" in [i.code for i in scpg.issues]
        # CBTSTC/LECTOR derive no control from the clock.
        assert technique("cbtstc").check(design).ok
        assert technique("lector").check(design).ok

    def test_no_gatable_logic_blocked(self, session):
        lib = session.library
        m = Module("seqonly")
        clk = m.add_input("clk")
        d = m.add_input("d")
        q = m.add_output("q")
        m.add_instance("ff", lib.cell("DFF_X1"),
                       {"D": d, "CK": clk, "Q": q})
        design = Design(m, lib)
        for name in available_techniques():
            report = technique(name).check(design)
            assert "no-gatable-logic" in [i.code for i in report.issues]
