"""Fixtures for the technique-plugin tests."""

import pytest

from repro.session import Session


@pytest.fixture(scope="module")
def session():
    """A hermetic session (no on-disk caches)."""
    s = Session(cache=None)
    yield s
    s.close()


@pytest.fixture(scope="module")
def mult_handle(session):
    return session.design("mult16")


@pytest.fixture(scope="module")
def mult_design(mult_handle):
    return mult_handle.design
