"""End-to-end case-study pipeline: the studies drive every table/figure
benchmark, so their invariants are checked here once (fast mode)."""

import pytest

from repro.scpg.power_model import Mode


class TestMultiplierStudy:
    def test_components_present(self, mult_study):
        assert mult_study.name == "mult16"
        assert mult_study.model is not None
        assert mult_study.subvt is not None
        assert mult_study.scpg.upf
        assert mult_study.e_cycle > 0

    def test_energy_per_cycle_near_anchor(self, mult_study):
        anchor = mult_study.anchors.energy_per_cycle
        assert 0.5 * anchor < mult_study.e_cycle < 1.6 * anchor

    def test_header_choice_matches_paper(self, mult_study):
        assert mult_study.scpg.headers.cell.drive_strength == \
            mult_study.anchors.best_header

    def test_leakage_floor_near_anchor(self, mult_study):
        nopg = mult_study.model.power(1e4, Mode.NO_PG).total
        assert nopg == pytest.approx(mult_study.anchors.leakage_total,
                                     rel=0.25)

    def test_study_is_memoised(self):
        from repro.paper import multiplier_study

        assert multiplier_study(fast=True) is multiplier_study(fast=True)


class TestCortexM0Study:
    def test_components_present(self, m0_study):
        assert m0_study.name == "cortex_m0"
        assert m0_study.activity_trace is not None
        assert m0_study.workload_cycles > 100

    def test_header_choice_matches_paper(self, m0_study):
        assert m0_study.scpg.headers.cell.drive_strength == \
            m0_study.anchors.best_header

    def test_activity_groups_vary(self, m0_study):
        """Fig. 7's premise: workload phases differ in activity."""
        series = m0_study.activity_trace.series
        assert max(series) > 2 * min(series)

    def test_m0_glitch_factor_documented(self, m0_study):
        from repro.power.dynamic import M0LITE_GLITCH_FACTOR

        assert m0_study.glitch_factor == M0LITE_GLITCH_FACTOR


class TestCrossDesign:
    def test_m0_bigger_in_every_dimension(self, mult_study, m0_study):
        assert m0_study.e_cycle > 2 * mult_study.e_cycle
        assert m0_study.model.leak_comb > 3 * mult_study.model.leak_comb
        assert m0_study.scpg.rail.c_rail > 3 * mult_study.scpg.rail.c_rail

    def test_m0_lower_savings_at_same_frequency(self, mult_study,
                                                m0_study):
        """Paper: 28.1% vs 39.9% at 10 kHz -- the larger design saves a
        smaller fraction."""
        def saving(study):
            nopg = study.model.power(1e4, Mode.NO_PG)
            scpg = study.model.power(1e4, Mode.SCPG)
            return scpg.saving_vs(nopg)

        assert saving(m0_study) < saving(mult_study)
