"""SCPG transform preserves processor behaviour.

The transformed M0-lite -- split domains, isolation clamps toggling every
cycle, headers, controller -- must execute programs identically to the
original netlist and to the ISS.  This is the end-to-end proof that
sub-clock power gating is architecturally invisible, clamps included.
"""

import pytest

from repro.isa.assembler import assemble
from repro.isa.programs import dhrystone_memory, dhrystone_program
from repro.isa.trace import GateLevelCpu, cosimulate
from repro.netlist.core import Design
from repro.techniques import technique


@pytest.fixture(scope="module")
def scpg_core(lib, m0_module):
    scpg = technique("scpg").transform(Design(m0_module, lib),
                                       energy_per_cycle=10e-12)
    return scpg.flat.top


PROGRAM = """
    movi r1, #13
    movi r2, #29
    mul  r1, r2
    movi r3, #64
    str  r1, [r3, #0]
    ldr  r4, [r3, #0]
    movi r5, #4
loop:
    add  r4, r1
    addi r5, #-1        ; decrement last: bne tests ITS flags (docs/isa.md)
    bne  loop
    halt
"""


class _ScpgGateLevelCpu(GateLevelCpu):
    """Drives the SCPG core: holds the override input inactive so gating
    toggles with the clock during the whole run (on either engine)."""

    _extra_reset_inputs = {"override_n": 1}


class TestScpgEquivalence:
    def test_scpg_core_matches_iss(self, scpg_core):
        from repro.isa.cpu import M0LiteCpu

        program = assemble(PROGRAM)
        iss = M0LiteCpu(program)
        iss.run()
        gate = _ScpgGateLevelCpu(scpg_core, program)
        gate.run()
        for r in range(16):
            assert gate.register(r) == iss.state.regs[r], "r{}".format(r)
        assert gate.memory == iss.memory

    def test_gating_does_not_change_cycle_count(self, m0_module,
                                                scpg_core):
        program = assemble(PROGRAM)
        base = GateLevelCpu(m0_module, program)
        base_cycles = base.run()
        gated = _ScpgGateLevelCpu(scpg_core, program)
        gated_cycles = gated.run()
        assert gated_cycles == base_cycles

    def test_short_dhrystone_on_scpg_core(self, scpg_core):
        from repro.isa.cpu import M0LiteCpu
        from repro.isa.programs.dhrystone import RESULT_BASE

        program = dhrystone_program(2)
        memory = dhrystone_memory()
        iss = M0LiteCpu(program, memory)
        iss.run()
        gate = _ScpgGateLevelCpu(scpg_core, program, memory)
        gate.run()
        assert gate.memory[RESULT_BASE] == iss.memory[RESULT_BASE]

    def test_regfile_flop_names_survive_transform(self, scpg_core):
        """GateLevelCpu reads architectural state by flop name; the SCPG
        flatten must preserve those names."""
        gate = _ScpgGateLevelCpu(scpg_core, assemble("halt"))
        assert gate.register(0) == 0
