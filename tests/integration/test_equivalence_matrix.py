"""Every execution strategy produces bit-for-bit identical results.

The runner promises that parallelism, batch kernels, the result cache
and the artifact tables are pure execution detail: the Table I grid
(Fig. 6's frequency axis x all three modes) must come back as *exactly*
the same :class:`PowerBreakdown` objects -- float-equal, not approx --
whichever way it is evaluated.  This is the differential harness that
holds the PR 2/3 optimisations (and anything layered on top, like
tracing) to the paper's numbers.
"""

import importlib

import pytest

from repro.analysis.sweep import sweep
from repro.analysis.tables import TABLE_I_FREQS, TABLE_II_FREQS
from repro.runner import Runner, RunJournal, WorkerPool
from repro.scpg.power_model import Mode

MODES = (Mode.NO_PG, Mode.SCPG, Mode.SCPG_MAX)


def _reference_for(model, freqs):
    """Plain serial, uncached, kernel-less evaluation of a grid."""
    results = {}
    for mode in MODES:
        for f in freqs:
            try:
                results[(f, mode)] = model.power(f, mode)
            except Exception:
                results[(f, mode)] = None
    return results


@pytest.fixture(scope="module")
def model(mult_study):
    return mult_study.model


@pytest.fixture(scope="module")
def reference(model):
    """The plain serial, uncached, kernel-less evaluation."""
    return _reference_for(model, TABLE_I_FREQS)


def _flatten(data):
    return {(f, mode): b
            for mode in MODES
            for f, b in zip(data.freqs, data.results[mode])}


def _assert_identical(results, reference):
    assert set(results) == set(reference)
    for key, breakdown in results.items():
        expected = reference[key]
        if expected is None:
            assert breakdown is None, key
        else:
            # dataclass ==: every field must be float-identical
            assert breakdown == expected, key


class TestEquivalenceMatrix:
    def test_serial_point_at_a_time(self, model, reference, monkeypatch):
        """The runner with the batch kernel disabled: one
        ``model.power`` call per point, like the original code path."""
        sweep_mod = importlib.import_module("repro.analysis.sweep")
        monkeypatch.setattr(sweep_mod, "_batch_kernel", lambda m: None)
        data = sweep(model, TABLE_I_FREQS, runner=Runner())
        _assert_identical(_flatten(data), reference)

    def test_parallel_workers(self, model, reference):
        data = sweep(model, TABLE_I_FREQS, runner=Runner(workers=2))
        _assert_identical(_flatten(data), reference)

    def test_batch_kernel(self, model, reference):
        """type(model) is ScpgPowerModel, so the serial path uses the
        vectorised power_points kernel."""
        data = sweep(model, TABLE_I_FREQS, runner=Runner())
        _assert_identical(_flatten(data), reference)

    def test_batch_kernel_directly(self, model, reference):
        from repro.runner import compile_kernel

        kernel = compile_kernel(model)
        points = [(f, mode) for mode in MODES for f in TABLE_I_FREQS]
        feasible = [p for p in points if reference[p] is not None]
        for point, breakdown in zip(feasible, kernel(feasible)):
            assert breakdown == reference[point], point

    def test_cold_then_warm_cache(self, model, reference, tmp_path):
        runner = Runner(cache=tmp_path / "cache")
        cold = sweep(model, TABLE_I_FREQS, runner=runner)
        assert runner.stats.cache_misses > 0
        warm = sweep(model, TABLE_I_FREQS, runner=runner)
        assert runner.stats.cache_hits >= runner.stats.cache_misses
        _assert_identical(_flatten(cold), reference)
        _assert_identical(_flatten(warm), reference)

    def test_parallel_warm_cache(self, model, reference, tmp_path):
        serial = Runner(cache=tmp_path / "cache")
        sweep(model, TABLE_I_FREQS, runner=serial)
        parallel = Runner(workers=2, cache=tmp_path / "cache")
        data = sweep(model, TABLE_I_FREQS, runner=parallel)
        _assert_identical(_flatten(data), reference)

    def test_journal_and_trace_do_not_perturb(self, model, reference,
                                              tmp_path):
        """Observability on vs off: identical numbers."""
        from repro.obs import MemorySink, MetricsRegistry, Tracer

        runner = Runner(journal=RunJournal(tmp_path / "run.jsonl"),
                        tracer=Tracer(MemorySink()),
                        metrics=MetricsRegistry())
        data = sweep(model, TABLE_I_FREQS, runner=runner)
        runner.journal.close()
        _assert_identical(_flatten(data), reference)
        assert runner.tracer.spans > 0

    def test_parallel_batch_explicit_chunks(self, model, reference):
        """Chunk boundaries are pure scheduling: a deliberately odd
        chunk size still reassembles the grid bit-for-bit."""
        data = sweep(model, TABLE_I_FREQS,
                     runner=Runner(workers=2, chunk_size=3))
        _assert_identical(_flatten(data), reference)

    def test_artifact_table_evaluation(self):
        """Artifact tables on vs off: the Session rebuilds the same
        model, so the whole grid matches bit-for-bit (the PR 3
        contract, re-proved through the public facade)."""
        from repro.session import Session

        with_tables = Session(cache=False, artifacts=True) \
            .design("mult16").sweep(TABLE_I_FREQS)
        without = Session(cache=False, artifacts=False) \
            .design("mult16").sweep(TABLE_I_FREQS)
        for mode in MODES:
            assert with_tables.results[mode] == without.results[mode], \
                mode


#: design -> (case-study fixture, paper frequency axis)
CASES = {
    "mult16": ("mult_study", TABLE_I_FREQS),
    "m0": ("m0_study", TABLE_II_FREQS),
}


@pytest.fixture(scope="module", params=sorted(CASES), ids=sorted(CASES))
def case(request):
    """``(model, freqs, reference)`` for each paper case study."""
    study_fixture, freqs = CASES[request.param]
    model = request.getfixturevalue(study_fixture).model
    return model, freqs, _reference_for(model, freqs)


class TestParallelBatchMatrix:
    """The chunked parallel batch path (PR 5) against every other
    execution strategy, for *both* paper case studies: the scheduler may
    shard, pool and requeue however it likes, but the Table I / Table II
    grids must come back float-identical."""

    def test_serial_reference_strategy(self, case, monkeypatch):
        model, freqs, reference = case
        sweep_mod = importlib.import_module("repro.analysis.sweep")
        monkeypatch.setattr(sweep_mod, "_batch_kernel", lambda m: None)
        data = sweep(model, freqs, runner=Runner())
        _assert_identical(_flatten(data), reference)

    def test_serial_batch_kernel(self, case):
        model, freqs, reference = case
        data = sweep(model, freqs, runner=Runner())
        _assert_identical(_flatten(data), reference)

    def test_per_point_parallel(self, case, monkeypatch):
        model, freqs, reference = case
        sweep_mod = importlib.import_module("repro.analysis.sweep")
        monkeypatch.setattr(sweep_mod, "_batch_kernel", lambda m: None)
        data = sweep(model, freqs, runner=Runner(workers=2))
        _assert_identical(_flatten(data), reference)

    def test_parallel_batch(self, case):
        model, freqs, reference = case
        data = sweep(model, freqs,
                     runner=Runner(workers=2, chunk_size=4))
        _assert_identical(_flatten(data), reference)

    def test_parallel_batch_on_a_warm_pool(self, case):
        model, freqs, reference = case
        with WorkerPool(workers=2) as pool:
            runner = Runner(workers=2, pool=pool, chunk_size=4)
            data = sweep(model, freqs, runner=runner)
            again = sweep(model, freqs, runner=runner)
            # The pool really served the grids (unpicklable state would
            # have silently degraded to an ephemeral fork pool).
            assert pool.alive and pool.generation == 1
        _assert_identical(_flatten(data), reference)
        _assert_identical(_flatten(again), reference)


class TestCosimEngineStrategy:
    """The gate-level co-sim engine as one more execution strategy: the
    compiled closed-loop stepper and the event simulator must agree on
    every observable of a full program run -- cycle-for-cycle, toggle-
    for-toggle -- so engine choice stays pure execution detail exactly
    like workers, kernels and caches above."""

    @pytest.fixture(scope="class")
    def runs(self, m0_module):
        from repro.isa.programs import crc32_program, dhrystone_memory
        from repro.isa.trace import cosimulate

        program, memory = crc32_program(1), dhrystone_memory()
        return {engine: cosimulate(m0_module, program, dict(memory),
                                   engine=engine)
                for engine in ("event", "compiled")}

    def test_both_architecturally_ok(self, runs):
        assert runs["event"].ok and runs["compiled"].ok

    def test_scalar_observables_identical(self, runs):
        ev, cp = runs["event"], runs["compiled"]
        assert (ev.instructions, ev.cycles, ev.cpi) == \
               (cp.instructions, cp.cycles, cp.cpi)

    def test_grouped_toggle_trace_identical(self, runs):
        ev, cp = runs["event"].trace, runs["compiled"].trace
        assert len(ev.groups) == len(cp.groups)
        for a, b in zip(ev.groups, cp.groups):
            assert (a.index, a.cycles, a.total_toggles, a.nets,
                    a.toggles) == \
                   (b.index, b.cycles, b.total_toggles, b.nets, b.toggles)


#: design name -> paper frequency axis, for the serve strategy below.
SERVE_CASES = {
    "mult16": TABLE_I_FREQS,
    "m0lite": TABLE_II_FREQS,
}


@pytest.fixture(scope="module")
def serve_server(tmp_path_factory):
    """One HTTP server over a *cold* SQLite store: every point is
    computed fresh by the serve path, nothing borrowed from the offline
    reference sessions."""
    from repro.serve import serve_in_thread

    tmp = tmp_path_factory.mktemp("serve-equiv")
    handle = serve_in_thread(store=str(tmp / "store.sqlite"),
                             spool=str(tmp / "spool"))
    yield handle
    handle.close()


@pytest.fixture(scope="module")
def serve_client(serve_server):
    from repro.serve import ServeClient

    return ServeClient(serve_server.host, serve_server.port,
                       tenant="equiv")


class TestServeStrategy:
    """The serve path as one more execution strategy: a sweep submitted
    over HTTP, executed by the service's own session against a cold
    SQLite store, and shipped back as JSON must be float-*exact* equal
    to the offline ``Session.sweep()`` -- JSON serialises floats via
    ``repr`` (shortest round-trip), so equality here really is
    bit-for-bit, and any drift in the serve pipeline (store, job
    scheduling, serialisation) fails the diff."""

    @pytest.fixture(scope="class", params=sorted(SERVE_CASES),
                    ids=sorted(SERVE_CASES))
    def offline(self, request):
        """``(design, freqs, offline Session sweep as wire dict)``."""
        import json

        from repro.serve import sweep_to_dict
        from repro.session import Session

        design = request.param
        freqs = SERVE_CASES[design]
        session = Session(cache=False)
        data = session.design(design).sweep(freqs)
        session.close()
        return design, freqs, json.loads(json.dumps(sweep_to_dict(data)))

    def test_sweep_float_exact_vs_offline(self, offline, serve_client):
        design, freqs, expected = offline
        result = serve_client.run({"kind": "sweep", "design": design,
                                   "freqs": list(freqs)}, timeout=600.0)
        assert result == expected

    def test_compare_float_exact_vs_offline(self, offline, serve_client):
        import json

        from repro.session import Session

        design, freqs, _ = offline
        session = Session(cache=False)
        expected = json.loads(json.dumps(
            session.compare_techniques(design,
                                       freqs=list(freqs)).as_dict()))
        session.close()
        result = serve_client.run({"kind": "compare", "design": design,
                                   "freqs": list(freqs)}, timeout=600.0)
        assert result == expected
