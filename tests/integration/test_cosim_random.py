"""Randomised ISS-vs-gate-level equivalence (the strongest evidence that
M0-lite is a faithful workload vehicle).

A random-program generator emits structurally valid code (bounded loops
via counted conditional branches, aligned memory traffic in a small
window) and hypothesis drives it through both models.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.isa.encoding import Funct
from repro.isa.trace import cosimulate


def _random_program(rng, length=30):
    """A linear random program: ALU soup + memory ops + a counted loop."""
    lines = []
    # Seed registers with interesting values.
    for r in range(1, 6):
        lines.append("movi r{}, #{}".format(r, rng.randrange(256)))
        if rng.random() < 0.5:
            lines.append("addi r{}, #{}".format(r, rng.randrange(-128, 128)))
    # r10 = memory base (aligned, small).
    lines.append("movi r10, #64")

    alu_ops = [f.name.lower() for f in Funct]
    for _ in range(length):
        choice = rng.random()
        rd = rng.randrange(1, 8)
        rs = rng.randrange(1, 8)
        if choice < 0.55:
            lines.append("{} r{}, r{}".format(rng.choice(alu_ops), rd, rs))
        elif choice < 0.7:
            lines.append("movi r{}, #{}".format(rd, rng.randrange(256)))
        elif choice < 0.85:
            off = 4 * rng.randrange(8)
            lines.append("str r{}, [r10, #{}]".format(rd, off))
        else:
            off = 4 * rng.randrange(8)
            lines.append("ldr r{}, [r10, #{}]".format(rd, off))
    # A counted loop with a conditional branch (always terminates: the
    # decrement is the last flag-setting instruction before the branch).
    lines.append("movi r9, #{}".format(rng.randrange(1, 6)))
    lines.append("loop:")
    lines.append("add r1, r2")
    lines.append("addi r9, #-1")
    lines.append("bne loop")
    lines.append("halt")
    return "\n".join(lines)


class TestRandomCosim:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.integers(0, 10_000))
    def test_random_programs_match(self, m0_module, seed):
        rng = random.Random(seed)
        program = assemble(_random_program(rng))
        result = cosimulate(m0_module, program, max_cycles=20_000)
        assert result.ok, (seed, result.mismatches[:5])

    def test_long_soak(self, m0_module):
        """One longer soak with a fixed seed (regression anchor)."""
        rng = random.Random(20110314)  # DATE 2011 ;-)
        program = assemble(_random_program(rng, length=120))
        result = cosimulate(m0_module, program, max_cycles=40_000)
        assert result.ok, result.mismatches[:5]
        assert result.instructions > 100


class TestEngineDifferential:
    """The compiled closed-loop stepper against the event simulator:
    same random programs, bit-identical execution -- cycle counts,
    register files, data memory, and the grouped toggle trace."""

    @staticmethod
    def _assert_engines_match(m0_module, program, seed=None):
        from repro.isa.trace import GateLevelCpu

        ev = GateLevelCpu(m0_module, program, engine="event")
        cp = GateLevelCpu(m0_module, program, engine="compiled")
        ev.run(max_cycles=20_000)
        cp.run(max_cycles=20_000)
        assert ev.cycles == cp.cycles, seed
        assert ev.registers() == cp.registers(), seed
        assert ev.memory == cp.memory, seed
        assert ev.toggle_snapshot() == cp.toggle_snapshot(), seed
        te, tc = ev.activity_trace(), cp.activity_trace()
        assert len(te.groups) == len(tc.groups), seed
        for a, b in zip(te.groups, tc.groups):
            assert (a.index, a.cycles, a.total_toggles, a.nets,
                    a.toggles) == \
                   (b.index, b.cycles, b.total_toggles, b.nets,
                    b.toggles), seed

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.integers(0, 10_000))
    def test_random_programs_bit_identical(self, m0_module, seed):
        rng = random.Random(seed)
        program = assemble(_random_program(rng, length=20))
        self._assert_engines_match(m0_module, program, seed)

    def test_soak_bit_identical(self, m0_module):
        rng = random.Random(20110314)
        program = assemble(_random_program(rng, length=60))
        self._assert_engines_match(m0_module, program)
