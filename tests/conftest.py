"""Shared fixtures for the test suite.

Heavy artefacts (the library, generated circuits, case studies) are
session-scoped; tests that need to *mutate* a netlist build their own via
the factory fixtures.
"""

import pytest
from hypothesis import settings

from repro.circuits.m0lite import build_m0lite

# Gate-level simulation makes single examples legitimately slow, and the
# sandbox shares one CPU core -- wall-clock deadlines would only add
# flakiness, so disable them for every property test.
settings.register_profile("repro", deadline=None)
settings.load_profile("repro")
from repro.circuits.multiplier import build_mult16
from repro.netlist.core import Design, Module
from repro.tech.scl90 import build_scl90


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the golden files under tests/golden/data/ from "
        "the current outputs instead of comparing against them")


@pytest.fixture(scope="session")
def lib():
    """The scl90 library (read-only)."""
    return build_scl90()


@pytest.fixture(scope="session")
def mult_module(lib):
    """A generated 16-bit multiplier (treat as read-only)."""
    return build_mult16(lib)


@pytest.fixture(scope="session")
def m0_module(lib):
    """A generated M0-lite core (treat as read-only)."""
    return build_m0lite(lib)


@pytest.fixture()
def fresh_mult(lib):
    """A private multiplier instance tests may mutate."""
    return build_mult16(lib)


def _toy(lib, registered=True):
    """clk -> [NAND2 -> DFF -> INV] toy design."""
    m = Module("toy")
    clk = m.add_input("clk")
    a = m.add_input("a")
    b = m.add_input("b")
    y = m.add_output("y")
    n1 = m.add_net("n1")
    q = m.add_net("q")
    m.add_instance("g1", "NAND2_X1", {"A": a, "B": b, "Y": n1}, library=lib)
    if registered:
        m.add_instance("ff", "DFF_X1", {"D": n1, "CK": clk, "Q": q},
                       library=lib)
        m.add_instance("g2", "INV_X1", {"A": q, "Y": y}, library=lib)
    else:
        m.add_instance("g2", "INV_X1", {"A": n1, "Y": y}, library=lib)
    return Design(m, lib)


@pytest.fixture()
def toy_design(lib):
    """A tiny registered design tests may mutate."""
    return _toy(lib)


@pytest.fixture(scope="session")
def mult_study():
    """The full multiplier case study (fast mode, shared)."""
    from repro.paper import multiplier_study

    return multiplier_study(fast=True)


@pytest.fixture(scope="session")
def m0_study():
    """The full M0-lite case study (fast mode, shared)."""
    from repro.paper import cortex_m0_study

    return cortex_m0_study(fast=True)
