"""Synthesis step: lint plus fan-out repair.

Our netlists come pre-mapped (the generators emit library cells), so the
synthesis step models the part that matters to SCPG accounting: high
fan-out data nets get buffer trees (the paper attributes part of its area
overhead to "the addition of buffers to compensate for the splitting of
the combinational and sequential logic into separate power domains").
Clock nets are left to CTS.
"""

from __future__ import annotations

from ..netlist.validate import validate_module
from ..tech.library import CellKind
from .base import StepReport

#: Data nets with more fan-out than this get a buffer.
MAX_FANOUT = 24


def _is_clock_net(net):
    """Heuristic: a net feeding any flop CK pin is a clock net."""
    for load in net.loads:
        if isinstance(load, tuple):
            inst, pin = load
            if inst.is_cell and inst.cell.kind is CellKind.SEQUENTIAL:
                if inst.cell.pin(pin).is_clock:
                    return True
    return False


def synthesize(module, library, max_fanout=MAX_FANOUT):
    """Run the synthesis step on a flat ``module`` in place.

    Splits the loads of over-loaded data nets across BUF_X4 cells.
    Returns a :class:`StepReport`.
    """
    report = StepReport("synthesize")
    if not module.submodule_instances():
        lint = validate_module(module)
        lint.raise_if_errors()
        for warning in lint.warnings[:10]:
            report.log("lint: " + warning)
    else:
        report.log("hierarchical module: lint deferred to the flat netlist")

    buf = library.cell("BUF_X4")
    added = 0
    for net in list(module.nets()):
        if net.is_const or not net.is_driven:
            continue
        loads = [l for l in net.loads if isinstance(l, tuple)]
        if len(loads) <= max_fanout or _is_clock_net(net):
            continue
        # Split loads into balanced chunks, each behind a buffer.
        chunks = [
            loads[i:i + max_fanout] for i in range(0, len(loads), max_fanout)
        ]
        for k, chunk in enumerate(chunks):
            new_net = module.add_net("{}_fo{}".format(net.name, k))
            for inst, pin in chunk:
                inst.connections[pin] = new_net
                new_net.loads.append((inst, pin))
                net.loads.remove((inst, pin))
            module.add_instance(
                "fobuf_{}_{}".format(net.name, k), buf,
                {"A": net, "Y": new_net},
            )
            added += 1
    report.metrics["buffers_added"] = added
    report.metrics["cells"] = len(module.instances())
    return report
