"""Design planning: die sizing, domain placement, congestion estimate.

The paper recommends that "the combinational logic domain is located in
the center of the design to alleviate problems with routing congestion
between the combinational logic and the sequential logic domains".  This
step models the floorplan well enough to quantify that advice: the gated
domain is a centred square, the always-on logic forms the ring around it,
and congestion is the boundary-crossing wire count per unit of domain
perimeter -- centring maximises the shared perimeter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..netlist.stats import module_stats
from .base import StepReport

#: Target placement utilization.
UTILIZATION = 0.70

#: Crossings per um of perimeter above which routing is congested.
CONGESTION_LIMIT = 2.0


@dataclass
class Floorplan:
    """Result of design planning."""

    die_width: float
    die_height: float
    utilization: float
    comb_region: tuple = None          # (x0, y0, x1, y1) of gated domain
    boundary_crossings: int = 0
    congestion: float = 0.0
    centred: bool = True
    messages: list = field(default_factory=list)

    @property
    def die_area(self):
        """Die area (um^2)."""
        return self.die_width * self.die_height


def plan_design(module, library, comb_module=None, boundary_nets=0,
                centred=True, utilization=UTILIZATION):
    """Plan a die for ``module``; returns ``(Floorplan, StepReport)``.

    When ``comb_module`` is given (SCPG flow), its region is placed in the
    centre (or at the edge when ``centred=False``, to demonstrate the
    congestion penalty the paper warns about).
    """
    report = StepReport("design-planning")
    stats = module_stats(module)
    comb_area = module_stats(comb_module).area if comb_module else 0.0
    total_area = stats.area + comb_area
    die_side = math.sqrt(total_area / utilization)
    plan = Floorplan(
        die_width=die_side,
        die_height=die_side,
        utilization=utilization,
        centred=centred,
    )
    report.metrics["die_side_um"] = round(die_side, 2)
    report.metrics["cell_area_um2"] = round(total_area, 1)

    if comb_module is not None:
        side = math.sqrt(comb_area / utilization)
        if centred:
            x0 = (die_side - side) / 2.0
            plan.comb_region = (x0, x0, x0 + side, x0 + side)
            perimeter = 4.0 * side
        else:
            # Corner placement: only two edges face always-on logic.
            plan.comb_region = (0.0, 0.0, side, side)
            perimeter = 2.0 * side
        plan.boundary_crossings = boundary_nets
        plan.congestion = boundary_nets / max(perimeter, 1e-9)
        report.metrics["comb_region_side_um"] = round(side, 2)
        report.metrics["congestion_per_um"] = round(plan.congestion, 3)
        if plan.congestion > CONGESTION_LIMIT:
            msg = (
                "congestion {:.2f}/um exceeds {:.2f}; centre the "
                "combinational domain".format(plan.congestion,
                                              CONGESTION_LIMIT)
            )
            plan.messages.append(msg)
            report.log(msg)
    return plan, report
