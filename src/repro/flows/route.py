"""Routing estimate: wirelength and congestion roll-up.

Detailed routing is far outside scope; the estimate exists so flow reports
carry the quantities the paper discusses (extra routing of control
signals, congestion between the split domains).  Wire capacitance itself
is already part of the library's per-fanout load model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..netlist.stats import module_stats
from .base import StepReport

#: Average routed length per fanout connection, as a multiple of the
#: average cell pitch.
LENGTH_PER_FANOUT = 3.0


@dataclass
class RoutingEstimate:
    """Wirelength and track demand summary."""

    total_wirelength: float       # um
    nets: int
    connections: int
    avg_fanout: float
    track_demand: float           # dimensionless utilisation proxy


def estimate_routing(module, library):
    """Estimate routing for a flat module; returns
    ``(RoutingEstimate, StepReport)``."""
    report = StepReport("routing")
    stats = module_stats(module)
    pitch = math.sqrt(stats.area / max(stats.cells, 1))
    connections = 0
    nets = 0
    for net in module.nets():
        if net.is_const or not net.is_driven:
            continue
        fanout = net.fanout()
        if fanout == 0:
            continue
        nets += 1
        connections += fanout
    wirelength = connections * LENGTH_PER_FANOUT * pitch
    die_side = math.sqrt(stats.area / 0.7)
    demand = wirelength / max(die_side * die_side / pitch, 1e-9)
    estimate = RoutingEstimate(
        total_wirelength=wirelength,
        nets=nets,
        connections=connections,
        avg_fanout=connections / max(nets, 1),
        track_demand=demand,
    )
    report.metrics["wirelength_um"] = round(wirelength, 1)
    report.metrics["track_demand"] = round(demand, 3)
    return estimate, report
