"""Baseline implementation flow (no SCPG): synthesize, plan, CTS, route."""

from __future__ import annotations

from ..netlist.stats import module_stats
from ..sta.analysis import TimingAnalysis
from .base import FlowResult
from .cts import synthesize_clock_tree
from .floorplan import plan_design
from .route import estimate_routing
from .synthesis import synthesize


def run_traditional_flow(design, clock="clk"):
    """Implement a flat ``design`` traditionally; returns a
    :class:`~repro.flows.base.FlowResult` whose ``flat`` has the clock tree
    and fanout buffers inserted (the module is modified in place)."""
    module = design.top
    lib = design.library
    steps = []

    steps.append(synthesize(module, lib))
    plan, step = plan_design(module, lib)
    steps.append(step)
    if module.has_port(clock):
        cts, step = synthesize_clock_tree(module, lib, clock)
        steps.append(step)
    else:
        cts = None
    routing, step = estimate_routing(module, lib)
    steps.append(step)

    stats = module_stats(module)
    timing = TimingAnalysis(module, lib).run()
    result = FlowResult(
        name="traditional:{}".format(module.name),
        design=design,
        flat=design,
        steps=steps,
    )
    result.metrics.update(
        area=stats.area,
        cells=stats.cells,
        fmax_hz=timing.fmax,
        floorplan=plan,
        cts=cts,
        routing=routing,
        timing=timing,
    )
    return result
