"""Flow bookkeeping: step reports and overall results."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StepReport:
    """Log of one flow step."""

    name: str
    messages: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    def log(self, message):
        """Append a log line."""
        self.messages.append(message)

    def __str__(self):
        lines = ["[{}]".format(self.name)]
        lines += ["  " + m for m in self.messages]
        for key, value in self.metrics.items():
            lines.append("  {} = {}".format(key, value))
        return "\n".join(lines)


@dataclass
class FlowResult:
    """Outcome of a complete implementation flow."""

    name: str
    design: object                      # implemented hierarchical design
    flat: object                        # flattened for sign-off analyses
    steps: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    def step(self, name):
        """Find a step report by name (``None`` when absent)."""
        for s in self.steps:
            if s.name == name:
                return s
        return None

    def summary(self):
        """Multi-line textual flow summary."""
        lines = ["flow {}:".format(self.name)]
        for s in self.steps:
            lines.append(str(s))
        for key, value in self.metrics.items():
            lines.append("{} = {}".format(key, value))
        return "\n".join(lines)
