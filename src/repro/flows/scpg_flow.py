"""The Fig. 5 SCPG implementation flow.

Two steps beyond a traditional power-gating flow:

1. **Separate combinational and sequential logic** -- parse the netlist and
   move the combinational logic to its own module (power domain).
2. **Combine the custom isolation circuitry** -- the Fig. 3 controller and
   the output clamps -- with the split netlist.

Both happen inside :func:`repro.scpg.transform.apply_scpg`; the remainder
(synthesis, design planning with the centred gated domain, CTS, routing)
"is identical to a traditional power gating implementation flow".  The
flow compares its result against a freshly implemented baseline to report
the SCPG area overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netlist.stats import module_stats
from ..scpg.transform import _apply_scpg
from .base import FlowResult, StepReport
from .cts import synthesize_clock_tree
from .floorplan import plan_design
from .route import estimate_routing
from .synthesis import synthesize


@dataclass
class ScpgFlowResult:
    """Outcome of the SCPG flow plus its baseline comparison."""

    scpg: object                        # the ScpgDesign (flat post-CTS)
    flow: FlowResult
    baseline: FlowResult = None
    area_overhead_pct: float = 0.0
    steps: list = field(default_factory=list)

    def summary(self):
        """Readable flow summary."""
        lines = [self.flow.summary()]
        lines.append("area overhead vs baseline: {:.2f}%".format(
            self.area_overhead_pct))
        return "\n".join(lines)


def run_scpg_flow(design_builder, library, clock="clk", header_size=None,
                  energy_per_cycle=None, centred=True):
    """Deprecated spelling of the SCPG implementation flow.

    Use ``repro.techniques.technique("scpg").implement(...)`` -- the
    registered technique owns the full Fig. 5 flow.
    """
    import warnings

    warnings.warn(
        "run_scpg_flow is deprecated; use "
        "repro.techniques.technique('scpg').implement(...)",
        DeprecationWarning, stacklevel=2)
    return _run_scpg_flow(
        design_builder, library, clock=clock, header_size=header_size,
        energy_per_cycle=energy_per_cycle, centred=centred)


def _run_scpg_flow(design_builder, library, clock="clk", header_size=None,
                   energy_per_cycle=None, centred=True):
    """Implement a design with SCPG and a baseline for comparison.

    Parameters
    ----------
    design_builder:
        Zero-argument callable returning a fresh flat
        :class:`~repro.netlist.core.Design` (the flow implements two
        copies: SCPG and baseline; a builder avoids aliasing).
    library:
        Cell library.
    clock:
        Clock port name.
    header_size / energy_per_cycle:
        Forwarded to :func:`~repro.scpg.transform.apply_scpg`.
    centred:
        Centre the gated domain in the floorplan (the paper's
        recommendation); ``False`` shows the congestion penalty.
    """
    from .traditional import run_traditional_flow

    steps = []

    # Baseline first (its area is the overhead reference).
    baseline = run_traditional_flow(design_builder(), clock)

    # SCPG steps 1+2.
    step12 = StepReport("scpg-split-and-isolate")
    scpg = _apply_scpg(
        design_builder(), clock_port=clock, header_size=header_size,
        energy_per_cycle=energy_per_cycle,
    )
    step12.metrics.update(
        comb_gates=module_stats(scpg.comb_module).comb_gates,
        isolation_cells=len(scpg.iso_instances),
        headers="{}x HEADER_X{}".format(
            scpg.headers.count, scpg.headers.cell.drive_strength),
    )
    steps.append(step12)

    # Remainder of the flow on the SCPG top (hierarchy preserved; analyses
    # run on the flattened copy).  Both domains get fan-out repair, like
    # the baseline.
    top = scpg.design.top
    steps.append(synthesize(top, library))
    comb_step = synthesize(scpg.comb_module, library)
    comb_step.name = "synthesize-comb-domain"
    steps.append(comb_step)
    plan, step = plan_design(
        top, library, comb_module=scpg.comb_module,
        boundary_nets=len(scpg.boundary_outputs), centred=centred)
    steps.append(step)
    cts, step = synthesize_clock_tree(top, library, clock)
    steps.append(step)

    flat = scpg.design.flatten()
    scpg.flat = flat  # refresh: post-synthesis/post-CTS netlist

    routing, step = estimate_routing(flat.top, library)
    steps.append(step)

    flow = FlowResult(
        name="scpg:{}".format(top.name),
        design=scpg.design,
        flat=flat,
        steps=steps,
    )
    stats = module_stats(flat.top)
    flow.metrics.update(
        area=stats.area,
        cells=stats.cells,
        floorplan=plan,
        cts=cts,
        routing=routing,
    )

    overhead = 100.0 * (stats.area - baseline.metrics["area"]) \
        / baseline.metrics["area"]
    return ScpgFlowResult(
        scpg=scpg,
        flow=flow,
        baseline=baseline,
        area_overhead_pct=overhead,
        steps=steps,
    )
