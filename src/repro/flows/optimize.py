"""Logic optimisation pass: the cleanup a synthesis tool runs after
netlist surgery.

Three peephole transforms, iterated to a fixed point:

* **constant propagation** -- a gate whose output is fixed by constant
  inputs (``AND(x, 0)``, ``OR(x, 1)``, an inverter on a constant, ...) is
  replaced by the constant net;
* **double-inverter / buffer collapsing** -- ``INV(INV(x))`` and
  ``BUF(x)`` chains forward ``x`` to their loads (buffers inserted for
  drive strength by fan-out repair are re-inserted later, so collapsing
  here is safe);
* **dead-gate removal** -- combinational cells whose outputs drive
  nothing disappear.

The pass never touches sequential cells, isolation cells, headers, ties
feeding isolation sensing, or nets attached to ports.  Every run is
verifiable with :func:`repro.netlist.equivalence.check_equivalence`; the
flow's tests do exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.logic import X, compile_cell
from ..tech.library import CellKind
from .base import StepReport

#: Cell kinds the optimiser may rewrite or delete.
_TOUCHABLE = (CellKind.COMBINATIONAL, CellKind.BUFFER)


@dataclass
class OptimizeStats:
    """What one optimisation run did."""

    constants_folded: int = 0
    buffers_collapsed: int = 0
    dead_removed: int = 0
    iterations: int = 0

    @property
    def total(self):
        return (self.constants_folded + self.buffers_collapsed
                + self.dead_removed)


def _net_is_protected(module, net):
    return net.is_const or module.has_port(net.name)


def _rewire_loads(module, from_net, to_net):
    """Move every load (instances and output-port views) of ``from_net``
    onto ``to_net``."""
    for load in list(from_net.loads):
        if isinstance(load, tuple):
            inst, pin = load
            inst.connections[pin] = to_net
            to_net.loads.append(load)
            from_net.loads.remove(load)
    # Output ports keep their own net; protected nets are never rewired
    # away, so port loads stay untouched.


def _fold_constants(module):
    """Replace gates with constant-determined outputs; returns count."""
    folded = 0
    for inst in list(module.cell_instances()):
        cell = inst.cell
        if cell.kind not in _TOUCHABLE or not cell.outputs:
            continue
        compiled = compile_cell(cell)
        values = []
        all_known = True
        for pin in compiled.input_names:
            net = inst.connections.get(pin)
            if net is None:
                values.append(X)
                all_known = False
            elif net.is_const:
                values.append(net.const_value)
            else:
                values.append(X)
                all_known = False
        outs = compiled.evaluate(values)
        # Fold any output that is fully determined despite unknown inputs
        # (controlling values), or everything when all inputs are const.
        determined = {pin: v for pin, v in outs.items() if v != X}
        if not determined:
            continue
        if not all_known and len(determined) < len(outs):
            continue  # partial folds of multi-output cells: skip
        replaceable = True
        for pin in determined:
            net = inst.connections.get(pin)
            if net is None:
                continue
            if _net_is_protected(module, net):
                replaceable = False
        if not replaceable:
            continue
        for pin, value in determined.items():
            net = inst.connections.get(pin)
            if net is None:
                continue
            _rewire_loads(module, net, module.const(value))
        module.remove_instance(inst.name)
        folded += 1
    return folded


_FORWARDERS = {"BUF": False, "INV": True}


def _collapse_buffers(module):
    """Forward BUF outputs and INV-INV pairs; returns count."""
    collapsed = 0
    for inst in list(module.cell_instances()):
        base = inst.cell.name.split("_")[0]
        if base not in _FORWARDERS or inst.cell.kind not in _TOUCHABLE:
            continue
        in_net = inst.connections.get(inst.cell.inputs[0].name)
        out_net = inst.connections.get(inst.cell.outputs[0].name)
        if in_net is None or out_net is None:
            continue
        if _net_is_protected(module, out_net):
            continue
        if base == "BUF":
            _rewire_loads(module, out_net, in_net)
            module.remove_instance(inst.name)
            collapsed += 1
            continue
        # INV: collapse only a pair INV(INV(x)).
        driver = in_net.driver
        if not isinstance(driver, tuple):
            continue
        drv_inst, _pin = driver
        if not drv_inst.is_cell or \
                not drv_inst.cell.name.startswith("INV"):
            continue
        source = drv_inst.connections.get("A")
        if source is None:
            continue
        _rewire_loads(module, out_net, source)
        module.remove_instance(inst.name)
        collapsed += 1
        # The inner inverter may now be dead; the dead pass reaps it.
    return collapsed


def _remove_dead(module):
    """Delete combinational cells driving nothing; returns count."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for inst in list(module.cell_instances()):
            if inst.cell.kind not in _TOUCHABLE:
                continue
            alive = False
            for pin in inst.output_pins():
                net = inst.connections.get(pin)
                if net is None:
                    continue
                if net.loads or module.has_port(net.name):
                    alive = True
                    break
            if not alive and inst.output_pins():
                module.remove_instance(inst.name)
                removed += 1
                changed = True
    return removed


def optimize(module, max_iterations=10):
    """Run the peephole passes to a fixed point.

    Returns ``(OptimizeStats, StepReport)``.  The module is modified in
    place.
    """
    report = StepReport("logic-optimisation")
    stats = OptimizeStats()
    for _ in range(max_iterations):
        stats.iterations += 1
        work = 0
        folded = _fold_constants(module)
        collapsed = _collapse_buffers(module)
        dead = _remove_dead(module)
        stats.constants_folded += folded
        stats.buffers_collapsed += collapsed
        stats.dead_removed += dead
        work = folded + collapsed + dead
        if work == 0:
            break
    report.metrics.update(
        constants_folded=stats.constants_folded,
        buffers_collapsed=stats.buffers_collapsed,
        dead_removed=stats.dead_removed,
        iterations=stats.iterations,
    )
    return stats, report
