"""Clock-tree synthesis: balanced buffer insertion.

The paper notes SCPG "exploits the extensive, high-fanout clock tree of a
processor for the power gating control signal"; this step actually builds
that tree.  Flop clock pins (and the SCPG clock consumers: the sleep
control AND and the isolation controller) are grouped under CLKBUF cells
bottom-up until the root drives at most ``max_fanout`` sinks.  The tree's
cells are always-on leakage and per-cycle switching energy in the power
model -- part of the SCPG-Max residual floor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FlowError
from .base import StepReport

#: Maximum sinks per clock buffer.
MAX_CLOCK_FANOUT = 16


@dataclass
class CtsReport:
    """Clock-tree metrics."""

    buffers: int
    levels: int
    sinks: int
    root_fanout: int
    insertion_delay: float
    leakage: float


def synthesize_clock_tree(module, library, clock="clk",
                          max_fanout=MAX_CLOCK_FANOUT,
                          buffer_cell="CLKBUF_X4"):
    """Insert a clock tree under input port ``clock`` of a flat module.

    Returns ``(CtsReport, StepReport)``.  The tree is balanced: sinks are
    chunked into groups of ``max_fanout`` per level until one root group
    remains on the clock port net.
    """
    report = StepReport("clock-tree-synthesis")
    if not module.has_port(clock):
        raise FlowError("module {} has no clock port {}".format(
            module.name, clock))
    clk_net = module.net(clock)
    cell = library.cell(buffer_cell)

    sinks = [l for l in clk_net.loads if isinstance(l, tuple)]
    n_sinks = len(sinks)
    if n_sinks <= max_fanout:
        report.log("clock fanout {} within limit; no tree needed".format(
            n_sinks))
        cts = CtsReport(0, 0, n_sinks, n_sinks, 0.0, 0.0)
        return cts, report

    buffers = 0
    levels = 0
    current = sinks  # (inst, pin) sink connections to regroup
    # Bottom-up grouping: each pass replaces groups of sinks by one buffer
    # sink, until the count fits under the root.
    while len(current) > max_fanout:
        levels += 1
        next_level = []
        for k in range(0, len(current), max_fanout):
            chunk = current[k:k + max_fanout]
            branch = module.add_net("{}_l{}_{}".format(
                clock, levels, k // max_fanout))
            for inst, pin in chunk:
                inst.connections[pin] = branch
                branch.loads.append((inst, pin))
                if (inst, pin) in clk_net.loads:
                    clk_net.loads.remove((inst, pin))
            buf = module.add_instance(
                "ctsbuf_l{}_{}".format(levels, k // max_fanout),
                cell,
                {"Y": branch},
            )
            buffers += 1
            next_level.append((buf, "A"))
        current = next_level
    # Attach the top level to the clock root.
    for inst, pin in current:
        if pin not in inst.connections:
            module.connect(inst, pin, clk_net)

    insertion = levels * cell.delay(
        max_fanout * (cell.pin("A").capacitance
                      + library.wire_cap_per_fanout))
    cts = CtsReport(
        buffers=buffers,
        levels=levels,
        sinks=n_sinks,
        root_fanout=len(current),
        insertion_delay=insertion,
        leakage=buffers * cell.leakage,
    )
    report.metrics.update(
        buffers=buffers, levels=levels, sinks=n_sinks,
        insertion_delay_ns=round(insertion * 1e9, 3),
    )
    return cts, report
