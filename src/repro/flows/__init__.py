"""Implementation flows (the paper's Fig. 5).

The SCPG flow is a traditional power-gating flow with two extra steps:
splitting combinational from sequential logic, and merging in the custom
isolation circuitry.  This package models the rest of the flow far enough
to account its costs: synthesis fan-out repair, design planning (with the
paper's recommendation to centre the gated domain), clock-tree synthesis
(real buffer insertion -- the clock tree is always-on leakage under SCPG),
and a routing estimate.

* :func:`run_traditional_flow` -- baseline implementation of a design.
* :func:`run_scpg_flow` -- the Fig. 5 flow; reports the area overhead the
  paper quotes (+3.9% multiplier, +6.6% Cortex-M0).
"""

from .base import FlowResult, StepReport
from .synthesis import synthesize
from .optimize import OptimizeStats, optimize
from .floorplan import plan_design, Floorplan
from .cts import synthesize_clock_tree, CtsReport
from .route import estimate_routing, RoutingEstimate
from .traditional import run_traditional_flow
from .scpg_flow import run_scpg_flow, ScpgFlowResult

__all__ = [
    "FlowResult",
    "StepReport",
    "synthesize",
    "optimize",
    "OptimizeStats",
    "plan_design",
    "Floorplan",
    "synthesize_clock_tree",
    "CtsReport",
    "estimate_routing",
    "RoutingEstimate",
    "run_traditional_flow",
    "run_scpg_flow",
    "ScpgFlowResult",
]
