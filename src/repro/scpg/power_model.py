"""Cycle-level average power of No-PG / SCPG / SCPG-Max / Override designs.

The decomposition behind Tables I and II::

    P(f) = E_cycle * f                      switching (logic + isolation)
         + E_overhead(t_high) * f           SCPG only: rail recharge +
                                            crowbar + header gate
         + P_leak_alwayson                  sequential / clock / iso / ctl
         + P_leak_comb * on_fraction        combinational domain when live
         + P_leak_comb_decay                leak while the rail collapses
         + P_leak_header * off_fraction     residual through the headers

Under No-PG the combinational domain simply leaks all cycle.  Under SCPG
the header is off for the clock-high phase ``t_high = duty * T``; leakage
then decays with the rail (time constant from the rail model), and the
recharge/crowbar/header energies are paid once per cycle.  As frequency
rises, ``t_high`` shrinks toward the collapse time constant and the saving
vanishes while the overhead stays -- producing the convergence behaviour
of Figs 6(a)/8(a) and the negative Cortex-M0 savings at 5-10 MHz.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ScpgError
from ..power.leakage import leakage_power
from ..runner.kernel import Kernel, register_kernel
from ..sta.constraints import ClockSpec
from .clocking import scpg_feasible
from .duty import clamp_duty, optimise_duty


class Mode(enum.Enum):
    """Operating configurations compared in the paper."""

    NO_PG = "no-pg"          # original design, no SCPG circuitry
    SCPG = "scpg"            # SCPG at 50% clock duty cycle
    SCPG_MAX = "scpg-max"    # SCPG at the maximum feasible duty cycle
    OVERRIDE = "override"    # SCPG design with gating overridden (always on)


@dataclass
class PowerBreakdown:
    """One operating point's power decomposition (W, J)."""

    mode: Mode
    freq_hz: float
    duty: float
    p_dynamic: float
    p_overhead: float
    p_leak_alwayson: float
    p_leak_comb: float
    p_leak_header: float

    @property
    def total(self):
        """Average power (W)."""
        return (
            self.p_dynamic
            + self.p_overhead
            + self.p_leak_alwayson
            + self.p_leak_comb
            + self.p_leak_header
        )

    @property
    def leakage(self):
        """Total leakage component (W)."""
        return self.p_leak_alwayson + self.p_leak_comb + self.p_leak_header

    @property
    def energy_per_op(self):
        """Energy per operation (J) -- one operation per clock cycle."""
        return self.total / self.freq_hz

    def saving_vs(self, other):
        """Percent power saving relative to ``other`` (positive = better)."""
        return 100.0 * (other.total - self.total) / other.total


class ScpgPowerModel:
    """Evaluate the Tables I/II power model for one design.

    Parameters
    ----------
    e_cycle:
        Switched energy per clock cycle of the base design (J).
    leak_comb:
        Combinational-domain leakage (W) at the operating voltage.
    leak_alwayson:
        Always-on leakage (W): sequential, clock tree, isolation cells,
        controller.
    leak_header_off:
        Residual leakage through the gated header network (W).
    rail:
        :class:`~repro.power.rails.VirtualRailModel` of the gated domain.
    header_gate_cap:
        Summed header gate capacitance (F).
    timing:
        :class:`~repro.scpg.clocking.ScpgTimingParams` at this voltage.
    vdd:
        Operating supply (V).
    e_iso_cycle:
        Extra switching energy of the isolation cells and controller per
        cycle (J); charged in every SCPG/Override mode.
    """

    def __init__(self, e_cycle, leak_comb, leak_alwayson, leak_header_off,
                 rail, header_gate_cap, timing, vdd, e_iso_cycle=0.0):
        self.e_cycle = e_cycle
        self.leak_comb = leak_comb
        self.leak_alwayson = leak_alwayson
        self.leak_header_off = leak_header_off
        self.rail = rail
        self.header_gate_cap = header_gate_cap
        self.timing = timing
        self.vdd = vdd
        self.e_iso_cycle = e_iso_cycle

    def __fingerprint__(self):
        """Content identity for result-cache keys (see repro.runner).

        Everything :meth:`power` reads enters the fingerprint -- including
        the explicitly-set No-PG base leakages, which default to the SCPG
        figures but change the NO_PG breakdowns when overridden.
        """
        return (
            "scpg-model-v1",
            self.e_cycle,
            self.leak_comb,
            self.leak_alwayson,
            self.leak_header_off,
            self.rail,
            self.header_gate_cap,
            self.timing,
            self.vdd,
            self.e_iso_cycle,
            self.leak_comb_base,
            self.leak_alwayson_base,
        )

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_scpg_design(cls, scpg_design, e_cycle, vdd=None,
                         extra_alwayson=0.0):
        """Build the model from an :class:`~repro.scpg.transform.ScpgDesign`
        and a measured per-cycle energy.

        ``extra_alwayson`` adds always-on leakage not present in the
        netlist yet (e.g. a clock tree before CTS has run).
        """
        lib = scpg_design.design.library
        vdd = lib.vdd_nom if vdd is None else vdd
        report = leakage_power(scpg_design.flat.top, lib, vdd)
        scale = lib.delay_scale(vdd)
        timing = scpg_design.timing.scaled(scale / lib.delay_scale(
            scpg_design.sta.vdd))
        energy_scale = lib.energy_scale(vdd)
        return cls(
            e_cycle=e_cycle * energy_scale,
            leak_comb=report.combinational,
            leak_alwayson=report.always_on + extra_alwayson,
            leak_header_off=report.headers,
            rail=scpg_design.rail,
            header_gate_cap=scpg_design.headers.gate_cap,
            timing=timing,
            vdd=vdd,
            e_iso_cycle=cls._iso_energy(scpg_design, vdd),
        )

    @staticmethod
    def _iso_energy(scpg_design, vdd):
        """Per-cycle switching energy of clamps + controller.

        The ISOLATE net toggles twice per cycle into every isolation cell;
        half the clamps see an output transition.
        """
        lib = scpg_design.design.library
        iso_cell = lib.cell("ISO_AND_X1")
        n = len(scpg_design.iso_instances)
        ctl_cap = n * iso_cell.pin("ISO").capacitance
        out_cap = 0.5 * n * iso_cell.c_internal
        return (ctl_cap + out_cap) * vdd * vdd

    # -- evaluation -------------------------------------------------------------

    def feasible_fmax(self, mode, duty=0.5):
        """Highest frequency the mode supports.

        SCPG-Max may *lower* the duty cycle below 50% near Fmax (the
        paper: duty adjustment "allows the application of SCPG even when
        T_clk/2 < T_eval < T_clk"), so its ceiling is set by the duty
        floor, not the 50% point.
        """
        if mode in (Mode.NO_PG, Mode.OVERRIDE):
            return 1.0 / (self.timing.t_eval + self.timing.t_setup)
        if mode is Mode.SCPG_MAX:
            from .duty import DUTY_CYCLE_FLOOR

            duty = DUTY_CYCLE_FLOOR
        return (1.0 - duty) / self.timing.low_phase_demand

    def power(self, freq_hz, mode, duty=None):
        """Evaluate the model; returns a :class:`PowerBreakdown`.

        Raises :class:`ScpgError` when the frequency/duty combination is
        infeasible for the mode.
        """
        if freq_hz <= 0:
            raise ScpgError("frequency must be positive")
        if mode in (Mode.NO_PG, Mode.OVERRIDE):
            return self._power_ungated(freq_hz, mode)
        if mode is Mode.SCPG:
            duty = 0.5 if duty is None else duty
        else:  # SCPG_MAX
            duty = optimise_duty(freq_hz, self.timing) if duty is None \
                else duty
        clock = ClockSpec(freq_hz, duty)
        if not scpg_feasible(clock, self.timing):
            raise ScpgError(
                "SCPG infeasible at {:.3g} Hz with duty {:.2f}: low phase "
                "{:.3g} s < demand {:.3g} s".format(
                    freq_hz, duty, clock.t_low,
                    self.timing.low_phase_demand)
            )
        t_high = clock.t_high
        period = clock.period

        # Leakage of the gated domain: fully on during the low phase,
        # decaying during collapse, residual through the header after.
        on_time = period - t_high
        decay_time = self.rail.effective_leak_time(t_high)
        comb_eff = self.leak_comb * (on_time + decay_time) / period
        header_eff = self.leak_header_off * max(
            0.0, t_high - decay_time) / period

        overhead = self.rail.cycle_overhead(
            self.vdd, t_high, self.header_gate_cap) * freq_hz

        return PowerBreakdown(
            mode=mode,
            freq_hz=freq_hz,
            duty=duty,
            p_dynamic=(self.e_cycle + self.e_iso_cycle) * freq_hz,
            p_overhead=overhead,
            p_leak_alwayson=self.leak_alwayson,
            p_leak_comb=comb_eff,
            p_leak_header=header_eff,
        )

    # -- batch kernels ----------------------------------------------------------

    def power_axis(self, freqs, mode, duty=None):
        """Deprecated spelling of the frequency-axis batch kernel.

        Use the :class:`~repro.runner.kernel.Kernel` API instead:
        ``compile_kernel(model)`` returns the uniform
        ``callable(points)`` the runner dispatches.
        """
        import warnings

        warnings.warn(
            "ScpgPowerModel.power_axis is deprecated; use "
            "repro.runner.compile_kernel(model) and the (freq, mode) "
            "point shape", DeprecationWarning, stacklevel=2)
        return self._power_axis(freqs, mode, duty)

    def _power_axis(self, freqs, mode, duty=None):
        """Evaluate one mode across a whole frequency axis in one pass.

        Returns one :class:`PowerBreakdown` per frequency, with ``None``
        where :meth:`power` would raise :class:`ScpgError` -- the exact
        ``None`` convention of :func:`repro.analysis.sweep.sweep`.  The
        per-mode constants (feasibility limit, hoisted energy sums, duty
        bounds) are computed once; every per-point operation replays
        :meth:`power`'s arithmetic unchanged, so results are
        bit-identical to the point-at-a-time path.
        """
        if mode in (Mode.NO_PG, Mode.OVERRIDE):
            fmax = 1.0 / (self.timing.t_eval + self.timing.t_setup)
            limit = fmax * 1.0001
            if mode is Mode.NO_PG:
                e_dyn = self.e_cycle
                leak_on = self.leak_alwayson_base
                leak_comb = self.leak_comb_base
            else:
                e_dyn = self.e_cycle + self.e_iso_cycle
                leak_on = self.leak_alwayson
                leak_comb = self.leak_comb
            out = []
            for f in freqs:
                if f <= 0 or f > limit:
                    out.append(None)
                    continue
                out.append(PowerBreakdown(
                    mode=mode, freq_hz=f, duty=0.5,
                    p_dynamic=e_dyn * f, p_overhead=0.0,
                    p_leak_alwayson=leak_on, p_leak_comb=leak_comb,
                    p_leak_header=0.0))
            return out

        timing = self.timing
        demand = timing.low_phase_demand
        tol = demand * (1.0 - 1e-6)
        rail = self.rail
        effective_leak_time = rail.effective_leak_time
        cycle_overhead = rail.cycle_overhead
        e_dyn = self.e_cycle + self.e_iso_cycle
        leak_comb = self.leak_comb
        leak_header_off = self.leak_header_off
        leak_on = self.leak_alwayson
        vdd = self.vdd
        header_gate_cap = self.header_gate_cap
        is_scpg = mode is Mode.SCPG
        out = []
        for f in freqs:
            if f <= 0:
                out.append(None)
                continue
            if duty is not None:
                d = duty
            elif is_scpg:
                d = 0.5
            else:
                d = clamp_duty(1.0 - demand * f)
                if d is None:
                    out.append(None)
                    continue
            period = 1.0 / f
            t_high = period * d
            t_low = period * (1.0 - d)
            if not t_low >= tol:
                out.append(None)
                continue
            on_time = period - t_high
            decay_time = effective_leak_time(t_high)
            comb_eff = leak_comb * (on_time + decay_time) / period
            header_eff = leak_header_off * max(
                0.0, t_high - decay_time) / period
            overhead = cycle_overhead(vdd, t_high, header_gate_cap) * f
            out.append(PowerBreakdown(
                mode=mode, freq_hz=f, duty=d,
                p_dynamic=e_dyn * f, p_overhead=overhead,
                p_leak_alwayson=leak_on, p_leak_comb=comb_eff,
                p_leak_header=header_eff))
        return out

    def power_points(self, points):
        """Deprecated spelling of the sweep-point batch kernel.

        Use ``repro.runner.compile_kernel(model)`` -- the compiled
        kernel takes the same ``(freq_hz, mode)`` points and returns
        the same breakdowns.
        """
        import warnings

        warnings.warn(
            "ScpgPowerModel.power_points is deprecated; use "
            "repro.runner.compile_kernel(model)", DeprecationWarning,
            stacklevel=2)
        return self._power_points(points)

    def _power_points(self, points):
        """Batch-evaluate ``(freq_hz, mode)`` sweep points.

        Groups the points by mode, runs each group through
        :meth:`_power_axis`, and reassembles results in point order --
        what :class:`ScpgPowerKernel` dispatches for
        :func:`repro.analysis.sweep.sweep`.
        """
        out = [None] * len(points)
        by_mode = {}
        for i, (freq_hz, mode) in enumerate(points):
            by_mode.setdefault(mode, []).append((i, freq_hz))
        for mode, items in by_mode.items():
            values = self._power_axis([f for _, f in items], mode)
            for (i, _), value in zip(items, values):
                out[i] = value
        return out

    def _power_ungated(self, freq_hz, mode):
        fmax = self.feasible_fmax(mode)
        if freq_hz > fmax * 1.0001:
            raise ScpgError(
                "{:.3g} Hz exceeds Fmax {:.3g} Hz".format(freq_hz, fmax))
        if mode is Mode.NO_PG:
            # The base design: no headers, no isolation.
            return PowerBreakdown(
                mode=mode,
                freq_hz=freq_hz,
                duty=0.5,
                p_dynamic=self.e_cycle * freq_hz,
                p_overhead=0.0,
                p_leak_alwayson=self.leak_alwayson_base,
                p_leak_comb=self.leak_comb_base,
                p_leak_header=0.0,
            )
        # Override: SCPG silicon with gating disabled -- pays the iso/ctl
        # leakage and switching, headers always on (their channel leakage
        # is negligible next to the logic under them).
        return PowerBreakdown(
            mode=mode,
            freq_hz=freq_hz,
            duty=0.5,
            p_dynamic=(self.e_cycle + self.e_iso_cycle) * freq_hz,
            p_overhead=0.0,
            p_leak_alwayson=self.leak_alwayson,
            p_leak_comb=self.leak_comb,
            p_leak_header=0.0,
        )

    # The No-PG reference excludes SCPG circuitry; by default assume the
    # SCPG netlist's extra always-on leakage (iso + controller) is small
    # and reuse the same figures, unless base values are set explicitly.
    @property
    def leak_comb_base(self):
        """Combinational leakage of the unmodified design (W)."""
        return getattr(self, "_leak_comb_base", self.leak_comb)

    @leak_comb_base.setter
    def leak_comb_base(self, value):
        self._leak_comb_base = value

    @property
    def leak_alwayson_base(self):
        """Always-on leakage of the unmodified design (W)."""
        return getattr(self, "_leak_alwayson_base", self.leak_alwayson)

    @leak_alwayson_base.setter
    def leak_alwayson_base(self, value):
        self._leak_alwayson_base = value

    def table_row(self, freq_hz):
        """No-PG / SCPG / SCPG-Max breakdowns at one frequency (a Table I/II
        row); infeasible entries come back as ``None``."""
        row = {}
        for mode in (Mode.NO_PG, Mode.SCPG, Mode.SCPG_MAX):
            try:
                row[mode] = self.power(freq_hz, mode)
            except ScpgError:
                row[mode] = None
        return row


class ScpgPowerKernel(Kernel):
    """Batch kernel for ``(freq_hz, mode)`` grids over a pristine
    :class:`ScpgPowerModel` (see :mod:`repro.runner.kernel`)."""

    name = "scpg-power"

    def applies(self, model):
        # A subclassed model, or one whose ``power`` was replaced on the
        # instance (tests do this to count evaluations), must keep the
        # point-at-a-time path so the override is honoured.
        return type(model) is ScpgPowerModel \
            and "power" not in getattr(model, "__dict__", {})

    def evaluate(self, model, points, library=None):
        return model._power_points(points)


register_kernel(ScpgPowerModel, ScpgPowerKernel())
