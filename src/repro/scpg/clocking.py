"""Intra-cycle SCPG timing (the paper's Figs 1 and 4).

With the header driven by the clock, one cycle looks like::

    posedge                          negedge                     posedge
    |-- power off ------------------|-- power restored ---------|
    |<-T_hold->(rail collapses)     |<-T_PGStart->|<-T_eval->|<-T_setup->|
    |<========= T_high =============>|<========== T_low ==============>|

* the rising edge switches the header off; the rail collapse is slow
  enough to cover the hold window (checked against the rail model);
* isolation asserts with the clock edge (Fig. 3 controller) and releases
  only once the rail is back up -- ``T_PGStart`` accounts for the rail
  restore plus the controller delay;
* the combinational logic must evaluate and settle within
  ``T_low >= T_PGStart + T_eval + T_setup``.

These relations give the two headline constraints: 50% duty needs
``T_eval < T_clk/2``; raising the duty is possible while
``T_clk/2 < T_eval < T_clk`` and maximises saving when ``T_eval << T_clk``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ScpgError

#: Hold-safety: the rail may sag at most this fraction of VDD within T_hold.
HOLD_SWING_LIMIT = 0.10


@dataclass(frozen=True)
class ScpgTimingParams:
    """Per-design SCPG timing numbers at one operating voltage.

    Attributes
    ----------
    t_eval:
        Longest evaluation path (clock-to-Q + combinational logic), s.
    t_setup:
        Capture-flop setup time, s.
    t_hold:
        Capture-flop hold requirement, s.
    t_pgstart:
        Wake-up guard: rail restore time + isolation-controller delay, s.
    """

    t_eval: float
    t_setup: float
    t_hold: float
    t_pgstart: float

    @property
    def low_phase_demand(self):
        """Minimum usable low phase: ``T_PGStart + T_eval + T_setup``."""
        return self.t_pgstart + self.t_eval + self.t_setup

    def scaled(self, factor):
        """All delays multiplied by ``factor`` (voltage scaling)."""
        return ScpgTimingParams(
            t_eval=self.t_eval * factor,
            t_setup=self.t_setup * factor,
            t_hold=self.t_hold * factor,
            t_pgstart=self.t_pgstart * factor,
        )


def timing_from_sta(sta_result, rail, network, controller_delay=0.5e-9,
                    vdd=None):
    """Build :class:`ScpgTimingParams` from an STA result, the rail model
    and the chosen header network.

    The wake-up guard is the header-limited rail restore time plus the
    Fig. 3 controller's isolation-release delay.
    """
    vdd = vdd if vdd is not None else sta_result.vdd
    i_on = vdd / network.ron
    if not i_on > 0.0:
        # A flat max(i_on, eps) here would silently turn a dead header
        # into a huge-but-finite restore time and a "feasible" design.
        raise ScpgError(
            "header network cannot restore the virtual rail: on-current "
            "{:.3g} A is not positive ({} header(s), total width {:.3g} um, "
            "ron {:.3g} ohm)".format(
                i_on, getattr(network, "count", "?"),
                getattr(network, "total_width", float("nan")),
                network.ron))
    restore = rail.c_rail * vdd / i_on
    return ScpgTimingParams(
        t_eval=sta_result.eval_delay,
        t_setup=sta_result.setup,
        t_hold=sta_result.hold,
        t_pgstart=restore + controller_delay,
    )


def scpg_feasible(clock, timing):
    """Can the design evaluate within this clock's low phase?

    A one-ppm tolerance absorbs floating-point noise when the duty cycle
    was solved to make the low phase exactly equal to the demand.
    """
    return clock.t_low >= timing.low_phase_demand * (1.0 - 1e-6)


def check_hold(timing, rail):
    """Verify the rail collapse is slow enough to cover the hold window.

    The state must propagate into the registers before the sagging rail
    corrupts the combinational outputs (paper: "the delay in the collapse
    of the virtual rail ... maintains the hold time").
    """
    swing = rail.swing_fraction(timing.t_hold)
    if swing > HOLD_SWING_LIMIT:
        raise ScpgError(
            "virtual rail sags {:.0%} of VDD within the hold window "
            "({:.3g} s); hold cannot be guaranteed".format(
                swing, timing.t_hold)
        )
    return swing


def scpg_max_frequency(timing, duty=0.5):
    """Highest clock frequency at which SCPG works at ``duty``.

    The low phase ``(1 - duty) * T`` must fit the evaluation demand.
    """
    if not 0.0 < duty < 1.0:
        raise ScpgError("duty must be in (0, 1)")
    return (1.0 - duty) / timing.low_phase_demand


def gated_window(clock):
    """Seconds per cycle the header is off (the clock-high phase)."""
    return clock.t_high
