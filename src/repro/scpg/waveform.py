r"""Render the Fig. 4 intra-cycle timing diagram as ASCII waveforms.

One SCPG clock cycle, annotated with the paper's intervals::

    CLK      ____/~~~~~~~~~~~~~~~~\____________________
    SLEEP    ____/~~~~~~~~~~~~~~~~\____________________
    VVDD     ~~~~\_______________./~~~~~~~~~~~~~~~~~~~
    ISOLATE  ____/~~~~~~~~~~~~~~~~~~~\________________
    EVAL     ..........................####### .......
             |hold|--- T_PGoff ---|PGS|T_eval|setup|

The renderer is analytic (driven by the clock spec, the timing params and
the rail model), so it doubles as documentation and as a check that the
interval arithmetic in :mod:`repro.scpg.clocking` is self-consistent.
"""

from __future__ import annotations

import io

from ..errors import ScpgError
from .clocking import scpg_feasible


def _lane(width):
    return [" "] * width


def render_waveforms(clock, timing, rail=None, width=72):
    """ASCII waveform diagram for one SCPG cycle.

    Parameters
    ----------
    clock:
        :class:`~repro.sta.constraints.ClockSpec` (frequency + duty).
    timing:
        :class:`~repro.scpg.clocking.ScpgTimingParams`.
    rail:
        Optional :class:`~repro.power.rails.VirtualRailModel` for the
        VVDD collapse shape; a generic ramp is drawn without it.
    width:
        Diagram width in characters (one clock period).
    """
    if not scpg_feasible(clock, timing):
        raise ScpgError(
            "cannot draw an infeasible configuration ({} at duty {:.2f})"
            .format(clock.freq_hz, clock.duty))
    # Degenerate widths break the bucket mapping: ``width - 1`` collapses
    # to 0 (every column lands on index 0, and the time axis divides by
    # zero) and width 0 indexes an empty ruler.  Two columns is the
    # narrowest diagram with a distinct first and last bucket.
    width = max(int(width), 2)
    period = clock.period

    def col(t):
        return max(0, min(width - 1, int(round(t / period * (width - 1)))))

    c_fall = col(clock.t_high)                     # negedge
    c_hold = col(timing.t_hold)
    c_pgstart_end = col(clock.t_high + timing.t_pgstart)
    c_eval_end = col(clock.t_high + timing.t_pgstart + timing.t_eval)

    def square(high_from, high_to):
        lane = []
        for i in range(width):
            lane.append("~" if high_from <= i < high_to else "_")
        # mark the edges
        if 0 <= high_from < width:
            lane[high_from] = "/"
        if 0 <= high_to < width:
            lane[high_to] = "\\"
        return "".join(lane)

    clk = square(0, c_fall)
    sleep = square(0, c_fall)  # SLEEP = CLK AND override_n (override off)

    # VVDD: high until the rail sags (after hold), low-ish until power
    # returns at the negedge, then a quick restore ramp.
    vvdd = _lane(width)
    if rail is not None:
        # sample the exponential decay
        for i in range(width):
            t = i / (width - 1) * period
            if t <= timing.t_hold or t >= clock.t_high + timing.t_pgstart:
                vvdd[i] = "~"
            elif t >= clock.t_high:
                vvdd[i] = "/"
            else:
                swing = rail.swing_fraction(t - timing.t_hold)
                vvdd[i] = "~" if swing < 0.3 else ("-" if swing < 0.7
                                                   else "_")
    else:
        for i in range(width):
            if i <= c_hold or i >= c_pgstart_end:
                vvdd[i] = "~"
            elif i >= c_fall:
                vvdd[i] = "/"
            else:
                vvdd[i] = "_"
    vvdd = "".join(vvdd)

    # ISOLATE: rises with the clock, holds until VVDD restored.
    isolate = square(0, c_pgstart_end)

    # Evaluation activity: between isolation release and setup.
    eval_lane = _lane(width)
    for i in range(width):
        if c_pgstart_end <= i < c_eval_end:
            eval_lane[i] = "#"
        else:
            eval_lane[i] = "."
    eval_lane = "".join(eval_lane)

    out = io.StringIO()
    out.write("SCPG cycle @ {:.3g} Hz, duty {:.2f}  (T = {:.3g} s)\n"
              .format(clock.freq_hz, clock.duty, period))
    for name, lane in (("CLK", clk), ("SLEEP", sleep), ("VVDD", vvdd),
                       ("ISOLATE", isolate), ("EVAL", eval_lane)):
        out.write("{:>8} {}\n".format(name, lane))

    # Interval ruler.
    ruler = _lane(width)
    for c, mark in ((0, "|"), (c_hold, "h"), (c_fall, "|"),
                    (c_pgstart_end, "p"), (c_eval_end, "e"),
                    (width - 1, "|")):
        ruler[c] = mark
    out.write("{:>8} {}\n".format("", "".join(ruler)))
    out.write("{:>8} h=hold end  |=clock edges  p=isolation release  "
              "e=eval done\n".format(""))
    out.write("  T_PGoff = {:.3g} s gated, idle margin = {:.3g} s\n".format(
        clock.t_high,
        clock.t_low - timing.low_phase_demand))
    return out.getvalue()
