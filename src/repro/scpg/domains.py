"""Power-domain metadata for the SCPG transform and the UPF writer."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PowerDomainSpec:
    """Description of one power domain in the transformed design.

    ``switched`` domains hang off the virtual rail behind the headers;
    the always-on domain connects straight to VDD (paper Fig. 2).
    """

    name: str
    switched: bool
    elements: list = field(default_factory=list)   # module/instance names
    supply_net: str = "VDD"
    internal_net: str = ""                          # VDDV for switched
    switch_cells: list = field(default_factory=list)
    isolation_cells: list = field(default_factory=list)
    isolation_control: str = ""

    def __str__(self):
        kind = "switched" if self.switched else "always-on"
        return "domain {} ({}): {} elements, {} switches, {} iso".format(
            self.name, kind, len(self.elements), len(self.switch_cells),
            len(self.isolation_cells),
        )
