"""Sub-clock power gating (SCPG): the paper's contribution.

SCPG power-gates the combinational domain *within the clock cycle* during
active mode: the high-Vt header is driven by ``clock AND override_n``, so
the logic is off during the clock's high phase and evaluates during the low
phase.  Leakage saving grows as the clock is scaled below Fmax (more idle
time per cycle), and raising the duty cycle ("SCPG-Max") extends the gated
window up to the evaluation-time limit.

* :mod:`repro.scpg.transform` -- applies SCPG to a netlist: split the
  domains, insert isolation and the Fig. 3 adaptive isolation controller,
  size and instantiate the header network, emit UPF-lite.
* :mod:`repro.scpg.clocking` -- the Fig. 4 intra-cycle timing model:
  feasibility, maximum duty cycle, maximum frequency.
* :mod:`repro.scpg.power_model` -- cycle-level average power in No-PG /
  SCPG / SCPG-Max / Override modes (Tables I and II).
* :mod:`repro.scpg.duty` -- duty-cycle optimisation (SCPG-Max).
* :mod:`repro.scpg.budget` -- power-budget solving: highest frequency and
  best energy/operation within a budget (the energy-harvester scenarios).
* :mod:`repro.scpg.upf` -- UPF-subset power-intent writer.
"""

from .clocking import ScpgTimingParams, scpg_max_frequency, scpg_feasible
from .domains import PowerDomainSpec
from .transform import apply_scpg, ScpgDesign
from .power_model import Mode, PowerBreakdown, ScpgPowerModel
from .duty import optimise_duty, DUTY_CYCLE_CAP
from .budget import (
    solve_max_frequency,
    BudgetScenario,
    compare_at_budget,
    HARVESTER_BUDGET_SMALL,
    HARVESTER_BUDGET_LARGE,
)
from .upf import write_upf, dumps_upf
from .waveform import render_waveforms
from .idle_mode import (
    GatingScheme,
    WorkloadProfile,
    crossover_activity,
    idle_mode_study,
)

__all__ = [
    "render_waveforms",
    "GatingScheme",
    "WorkloadProfile",
    "crossover_activity",
    "idle_mode_study",
    "ScpgTimingParams",
    "scpg_max_frequency",
    "scpg_feasible",
    "PowerDomainSpec",
    "apply_scpg",
    "ScpgDesign",
    "Mode",
    "PowerBreakdown",
    "ScpgPowerModel",
    "optimise_duty",
    "DUTY_CYCLE_CAP",
    "solve_max_frequency",
    "BudgetScenario",
    "compare_at_budget",
    "HARVESTER_BUDGET_SMALL",
    "HARVESTER_BUDGET_LARGE",
    "write_upf",
    "dumps_upf",
]
