"""Power-budget analysis: the energy-harvester scenarios of §III.

A harvester-powered node must stay within the harvester's output power
(tens to hundreds of uW [6]).  For a given budget these helpers find the
highest feasible clock frequency per mode -- average power is monotonic in
frequency -- and the resulting energy per operation, reproducing the
paper's headline numbers: at 30 uW the multiplier runs 100 kHz without
SCPG but ~5 MHz with SCPG-Max (~50x clock, ~45x energy efficiency); at
250 uW the Cortex-M0 gains >2x frequency and ~2.5x energy efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ScpgError
from .power_model import Mode

#: Typical energy-harvester budget used for the multiplier scenario (W).
HARVESTER_BUDGET_SMALL = 30e-6

#: Budget used for the Cortex-M0 scenario (W).
HARVESTER_BUDGET_LARGE = 250e-6


@dataclass
class BudgetScenario:
    """Best operating point of one mode within a power budget."""

    mode: Mode
    budget: float
    freq_hz: float
    power: float
    energy_per_op: float

    def speedup_vs(self, other):
        """Frequency ratio against another scenario."""
        return self.freq_hz / other.freq_hz

    def efficiency_vs(self, other):
        """Energy-per-operation improvement over another scenario."""
        return other.energy_per_op / self.energy_per_op


def solve_max_frequency(model, budget, mode, f_lo=1e3, f_hi=None,
                        tolerance=1e-3):
    """Highest frequency whose average power fits ``budget`` (bisection).

    Returns a :class:`BudgetScenario`.  Raises :class:`ScpgError` when the
    budget cannot even be met at ``f_lo`` (leakage alone exceeds it).
    """
    f_hi = f_hi if f_hi is not None else model.feasible_fmax(mode)

    def power_at(f):
        return model.power(f, mode).total

    if power_at(f_lo) > budget:
        raise ScpgError(
            "budget {:.3g} W below leakage floor in mode {}".format(
                budget, mode.value)
        )
    if power_at(f_hi) <= budget:
        best = f_hi
    else:
        lo, hi = f_lo, f_hi
        while (hi - lo) / hi > tolerance:
            mid = (lo + hi) / 2.0
            if power_at(mid) <= budget:
                lo = mid
            else:
                hi = mid
        best = lo
    breakdown = model.power(best, mode)
    return BudgetScenario(
        mode=mode,
        budget=budget,
        freq_hz=best,
        power=breakdown.total,
        energy_per_op=breakdown.energy_per_op,
    )


def compare_at_budget(model, budget, modes=(Mode.NO_PG, Mode.SCPG,
                                            Mode.SCPG_MAX)):
    """Solve every mode at one budget; returns dict mode -> scenario."""
    return {
        mode: solve_max_frequency(model, budget, mode) for mode in modes
    }
