"""Traditional (idle-mode) power gating, and how SCPG composes with it.

The paper positions SCPG against traditional power gating [5]: the latter
"is effective at reducing leakage power during idle mode" (up to 25x in
the ARM926EJ) but saves nothing *while the logic works*; SCPG attacks
exactly that active-mode leakage.  The two are complementary -- an SCPG
design still has its header network, so extended idle periods can gate
the combinational domain continuously while the always-on registers hold
state (no retention needed: SCPG's registers were never gated).

This module models a duty-cycled workload (a sensor node computing in
bursts) and evaluates four configurations:

* ``none`` -- no power gating at all;
* ``traditional`` -- idle-mode gating with retention registers and a
  power-gating controller (area and wake-latency costs, active mode
  untouched);
* ``scpg`` -- sub-clock gating during active mode, plain leakage when
  idle (clock stopped: the header input sits low, so the domain is ON);
* ``combined`` -- SCPG during active mode, and during idle the override
  logic parks the header off (clock stopped high, or a sleep request into
  the same AND gate): the gated domain leaks only through the headers.

The crossover behaviour is the point of the study: traditional PG wins
only when the node hardly ever computes, SCPG wins at moderate-to-high
activity, the combination dominates everywhere.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ScpgError
from .power_model import Mode

#: Leakage fraction retained by state-retention registers in idle mode.
RETENTION_LEAK_FRACTION = 0.35

#: Always-on power-gating controller + routing of a traditional scheme,
#: as a fraction of the design's sequential leakage.
CONTROLLER_LEAK_FRACTION = 0.05


class GatingScheme(enum.Enum):
    """Configurations compared by the idle-mode study."""

    NONE = "none"
    TRADITIONAL = "traditional"
    SCPG = "scpg"
    COMBINED = "scpg+idle"


@dataclass(frozen=True)
class WorkloadProfile:
    """A duty-cycled workload: compute bursts at ``freq_hz``, idle rest.

    ``active_fraction`` is the share of wall-clock time spent computing.
    """

    active_fraction: float
    freq_hz: float

    def __post_init__(self):
        if not 0.0 <= self.active_fraction <= 1.0:
            raise ScpgError("active_fraction must be in [0, 1]")
        if self.freq_hz <= 0:
            raise ScpgError("freq_hz must be positive")


@dataclass
class SchemePower:
    """Average power of one scheme under a profile."""

    scheme: GatingScheme
    active_power: float
    idle_power: float
    average: float


def _idle_leakage(model, scheme):
    """Idle-mode (clock stopped) power of each configuration."""
    full_leak = model.leak_comb_base + model.leak_alwayson_base
    if scheme is GatingScheme.NONE:
        return full_leak
    if scheme is GatingScheme.TRADITIONAL:
        # Comb and seq gated; retention registers + controller remain.
        retained = RETENTION_LEAK_FRACTION * model.leak_alwayson_base
        controller = CONTROLLER_LEAK_FRACTION * model.leak_alwayson_base
        return retained + controller + model.leak_header_off
    if scheme is GatingScheme.SCPG:
        # Clock stopped low: the header control (clk AND override_n) is
        # low, the header conducts, the comb domain leaks; registers on.
        return model.leak_comb + model.leak_alwayson
    # COMBINED: idle parks the header off; registers stay on (they are
    # the state -- no retention cells needed).
    return model.leak_alwayson + model.leak_header_off


def _active_power(model, scheme, freq_hz):
    if scheme in (GatingScheme.NONE, GatingScheme.TRADITIONAL):
        return model.power(freq_hz, Mode.NO_PG).total
    return model.power(freq_hz, Mode.SCPG_MAX).total


def evaluate_scheme(model, scheme, profile):
    """Average power of ``scheme`` under ``profile``."""
    active = _active_power(model, scheme, profile.freq_hz)
    idle = _idle_leakage(model, scheme)
    avg = profile.active_fraction * active \
        + (1.0 - profile.active_fraction) * idle
    return SchemePower(scheme=scheme, active_power=active,
                       idle_power=idle, average=avg)


def idle_mode_study(model, profile):
    """All four schemes under one profile; dict scheme -> SchemePower."""
    return {
        scheme: evaluate_scheme(model, scheme, profile)
        for scheme in GatingScheme
    }


def crossover_activity(model, freq_hz, lo=1e-4, hi=1.0, tolerance=1e-4):
    """The active fraction where SCPG starts beating traditional PG.

    Below it the node idles so much that idle-mode gating dominates;
    above it active-mode leakage dominates and SCPG wins.  Returns
    ``None`` when one scheme wins over the whole range.
    """
    def diff(fraction):
        profile = WorkloadProfile(fraction, freq_hz)
        scpg = evaluate_scheme(model, GatingScheme.SCPG, profile).average
        trad = evaluate_scheme(
            model, GatingScheme.TRADITIONAL, profile).average
        return scpg - trad  # positive -> traditional better

    d_lo, d_hi = diff(lo), diff(hi)
    if d_lo <= 0 and d_hi <= 0:
        return None  # SCPG always wins
    if d_lo >= 0 and d_hi >= 0:
        return None  # traditional always wins
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if (diff(mid) > 0) == (d_lo > 0):
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0
