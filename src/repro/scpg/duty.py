"""Duty-cycle optimisation (the "SCPG-Max" configuration).

At 50% duty, half the period is gated but the evaluation window is also
halved; when ``T_eval << T_clk`` that wastes most of the idle time.  The
paper raises the clock duty cycle so the low phase just fits the
evaluation demand, maximising the gated window -- and conversely *lowers*
it below 50% when ``T_clk/2 < T_eval < T_clk`` to keep SCPG applicable
near Fmax.
"""

from __future__ import annotations

from ..errors import ScpgError

#: Practical ceiling on the clock duty cycle (clock-generator resolution,
#: minimum low-pulse width); calibrated against the paper's 10 kHz
#: SCPG-Max rows, where ~98% of the cycle is gated.
DUTY_CYCLE_CAP = 0.98

#: Floor: below this the gated window is useless (isolation still cycles).
DUTY_CYCLE_FLOOR = 0.02


def clamp_duty(duty, cap=None, floor=None):
    """Clip a raw duty-cycle solution into the practical range.

    This is the single owner of the cap/floor arithmetic: both the
    optimiser below and the sweep batch path in
    :mod:`repro.scpg.power_model` route through it, so a recalibrated
    :data:`DUTY_CYCLE_CAP` / :data:`DUTY_CYCLE_FLOOR` cannot drift
    between them.  ``cap``/``floor`` default to the module-level
    constants *at call time* for exactly that reason.

    Floating-point noise just below the floor (the exact ceiling
    frequency) snaps up to the floor; anything genuinely below it is
    infeasible and returns ``None``.
    """
    if cap is None:
        cap = DUTY_CYCLE_CAP
    if floor is None:
        floor = DUTY_CYCLE_FLOOR
    if floor - 1e-6 <= duty < floor:
        duty = floor  # floating-point noise at the exact ceiling frequency
    if duty < floor:
        return None
    return min(duty, cap)


def optimise_duty(freq_hz, timing, cap=None, floor=None):
    """Largest feasible duty cycle at ``freq_hz``.

    ``(1 - duty) / freq >= T_PGStart + T_eval + T_setup`` rearranged, then
    clipped to the practical range.  Raises :class:`ScpgError` when even
    the floor duty cannot fit the evaluation (frequency too high for SCPG).
    """
    if freq_hz <= 0:
        raise ScpgError("frequency must be positive")
    duty = clamp_duty(1.0 - timing.low_phase_demand * freq_hz,
                      cap=cap, floor=floor)
    if duty is None:
        floor_value = DUTY_CYCLE_FLOOR if floor is None else floor
        raise ScpgError(
            "no feasible duty cycle at {:.3g} Hz: evaluation demand "
            "{:.3g} s exceeds {:.3g} s of period".format(
                freq_hz, timing.low_phase_demand,
                (1.0 - floor_value) / freq_hz)
        )
    return duty


def duty_sweep(freq_hz, timing, model, steps=20, cap=None, floor=None):
    """Evaluate SCPG power across feasible duty cycles (ablation study).

    Returns a list of ``(duty, PowerBreakdown)``; useful to show that
    power decreases monotonically with duty until the feasibility edge.
    ``cap``/``floor`` bound the swept range (and the optimiser finding
    its upper end); ``steps=1`` evaluates the optimum alone.
    """
    from .power_model import Mode  # local import avoids a cycle

    if steps < 1:
        raise ScpgError("duty_sweep needs at least one step")
    if floor is None:
        floor = DUTY_CYCLE_FLOOR
    best = optimise_duty(freq_hz, timing, cap=cap, floor=floor)
    if steps == 1:
        duties = [best]
    else:
        duties = [
            floor + (best - floor) * k / (steps - 1)
            for k in range(steps)
        ]
    return [(d, model.power(freq_hz, Mode.SCPG, duty=d)) for d in duties]
