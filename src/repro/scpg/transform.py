"""Apply sub-clock power gating to a design (steps 1-2 of the paper's
Fig. 5 flow, plus header sizing).

Given a flat design, :func:`apply_scpg`:

1. splits it into an always-on parent and a combinational child module
   (step 1: "parsing the netlist ... moving the combinational logic to a
   separate verilog module");
2. adds the VDDV sense tie, the Fig. 3 isolation controller, and isolation
   clamps on every child output (step 2: "custom isolation circuitry ...
   combined with the new split netlist");
3. derives the header network (sized per the §III IR-drop study unless a
   size is forced), instantiates the sleep transistors, and drives their
   SLEEP pins with ``clock AND override_n`` -- the active-low override
   forces the power gate on continuously, giving the Override
   peak-performance mode discussed in §IV;
4. produces the power-intent description (UPF-lite) and the book-keeping
   the power model and the flow reports need.

The transformed design remains simulatable: the two-phase flop semantics
of the event simulator capture register data before the isolation clamps
assert on the rising edge, mirroring the hold-time argument of Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ScpgError
from ..netlist.core import Design
from ..netlist.stats import module_stats
from ..netlist.transform import split_combinational
from ..netlist.validate import validate_module
from ..power.dynamic import DEFAULT_GLITCH_FACTOR
from ..power.headers import HeaderNetwork, size_header_network
from ..power.probabilistic import estimate_activity
from ..power.rails import RailParams, VirtualRailModel
from ..sta.analysis import TimingAnalysis
from ..sta.delay import net_load
from . import isolation as iso
from .clocking import ScpgTimingParams, check_hold, timing_from_sta
from .domains import PowerDomainSpec
from .upf import dumps_upf


@dataclass
class ScpgDesign:
    """Everything produced by the SCPG netlist transform
    (``repro.techniques.technique("scpg").transform``).

    Attributes
    ----------
    design:
        The hierarchical SCPG design (always-on top + gated child).
    flat:
        Flattened copy for simulation and sign-off analyses.
    base:
        The original (pre-SCPG) flat design for comparisons.
    comb_module:
        The power-gated child module.
    headers:
        The chosen :class:`~repro.power.headers.HeaderNetwork`.
    header_sizings:
        The full §III sizing study (one entry per available size).
    rail:
        Virtual-rail model of the gated domain.
    timing:
        :class:`ScpgTimingParams` at the library's nominal voltage.
    sta:
        The base design's timing result.
    domains:
        UPF-level domain descriptions.
    upf:
        UPF-lite power-intent text.
    iso_instances / boundary_outputs:
        Isolation bookkeeping.
    """

    design: Design
    flat: Design
    base: Design
    comb_module: object
    headers: HeaderNetwork
    header_sizings: list
    rail: VirtualRailModel
    timing: ScpgTimingParams
    sta: object
    domains: list = field(default_factory=list)
    upf: str = ""
    iso_instances: list = field(default_factory=list)
    boundary_outputs: list = field(default_factory=list)

    @property
    def area(self):
        """Total cell area of the SCPG design (um^2)."""
        return module_stats(self.flat.top).area

    @property
    def base_area(self):
        """Cell area of the original design (um^2)."""
        return module_stats(self.base.top).area

    @property
    def area_overhead_pct(self):
        """SCPG area overhead in percent (paper: 3.9% / 6.6%)."""
        return 100.0 * (self.area - self.base_area) / self.base_area


def apply_scpg(design, clock_port="clk", header_size=None,
               energy_per_cycle=None, rail_params=None,
               glitch_factor=DEFAULT_GLITCH_FACTOR,
               override_port="override_n"):
    """Deprecated spelling of the SCPG netlist transform.

    Use ``repro.techniques.technique("scpg").transform(design, ...)`` --
    the registered technique is the supported entry point and gains the
    eligibility checks of the plugin protocol.
    """
    import warnings

    warnings.warn(
        "apply_scpg is deprecated; use "
        "repro.techniques.technique('scpg').transform(design, ...)",
        DeprecationWarning, stacklevel=2)
    return _apply_scpg(
        design, clock_port=clock_port, header_size=header_size,
        energy_per_cycle=energy_per_cycle, rail_params=rail_params,
        glitch_factor=glitch_factor, override_port=override_port)


def _apply_scpg(design, clock_port="clk", header_size=None,
                energy_per_cycle=None, rail_params=None,
                glitch_factor=DEFAULT_GLITCH_FACTOR,
                override_port="override_n"):
    """Transform ``design`` (flat) into an SCPG implementation.

    Parameters
    ----------
    design:
        Flat :class:`~repro.netlist.core.Design` with a clock input.
    clock_port:
        Name of the clock input port.
    header_size:
        Force a header size (1/2/4/8); default picks by the IR-drop study.
    energy_per_cycle:
        Measured switched energy per cycle for header sizing; when absent,
        a vectorless probabilistic estimate is used.
    rail_params:
        Optional :class:`~repro.power.rails.RailParams` override.
    glitch_factor:
        Hazard multiplier applied to the vectorless estimate.
    override_port:
        Name of the added active-low override input.
    """
    lib = design.library
    top_src = design.top
    if not top_src.has_port(clock_port):
        raise ScpgError("design has no clock port {}".format(clock_port))
    validate_module(top_src).raise_if_errors()

    sta = TimingAnalysis(top_src, lib).run()

    if energy_per_cycle is None:
        energy_per_cycle = _estimate_energy_per_cycle(
            top_src, lib, glitch_factor)

    # Step 1: split combinational logic into its own module.
    split = split_combinational(design)
    top = split.top
    comb = split.comb

    # Step 2: VDDV sense + Fig. 3 controller + isolation clamps.
    sense_port = iso.add_rail_sense(comb, lib)
    vddv_net = top.add_net("vddv")
    top.connect(split.comb_instance, sense_port, vddv_net)
    clk_net = top.net(clock_port)
    iso_net = iso.build_isolation_controller(top, lib, clk_net, vddv_net)
    iso_instances = iso.insert_isolation(
        top, list(split.boundary_outputs), lib, iso_net)

    # Step 3: header network.
    rail = VirtualRailModel(comb, lib, rail_params or RailParams())
    sizings, best = size_header_network(
        lib, rail, energy_per_cycle, sta.eval_delay)
    if header_size is not None:
        matches = [s for s in sizings if s.size == header_size]
        if not matches:
            raise ScpgError("no HEADER_X{} in library".format(header_size))
        best = matches[0]
    network = best.network

    override_net = top.add_input(override_port)
    sleep_net = top.add_net("sleep")
    top.add_instance(
        "u_pgctl", lib.cell("AND2_X1"),
        {"A": clk_net, "B": override_net, "Y": sleep_net},
    )
    header_names = []
    for i in range(network.count):
        name = "u_header_{}".format(i)
        top.add_instance(
            name, lib.cell("HEADER_X{}".format(best.size)),
            {"SLEEP": sleep_net},
        )
        header_names.append(name)

    new_design = Design(top, lib)
    flat = new_design.flatten()
    validate_module(flat.top).raise_if_errors()

    timing = timing_from_sta(
        sta, rail, network,
        controller_delay=iso.controller_delay(lib))
    check_hold(timing, rail)

    domains = [
        PowerDomainSpec(
            name="PD_COMB",
            switched=True,
            elements=[comb.name],
            internal_net="VDDV",
            switch_cells=header_names,
            isolation_cells=[i.name for i in iso_instances],
            isolation_control="isolate",
        ),
        PowerDomainSpec(
            name="PD_TOP",
            switched=False,
            elements=[top.name],
        ),
    ]

    result = ScpgDesign(
        design=new_design,
        flat=flat,
        base=design,
        comb_module=comb,
        headers=network,
        header_sizings=sizings,
        rail=rail,
        timing=timing,
        sta=sta,
        domains=domains,
        iso_instances=iso_instances,
        boundary_outputs=list(split.boundary_outputs),
    )
    result.upf = dumps_upf(result, clock_port=clock_port,
                           override_port=override_port)
    return result


def _estimate_energy_per_cycle(module, library, glitch_factor):
    """Vectorless switched-energy estimate (probabilistic activity)."""
    est = estimate_activity(module)
    half_v2 = 0.5 * library.vdd_nom ** 2
    total = 0.0
    for net in module.nets():
        if net.is_const:
            continue
        d = est.density.get(net.name, 0.0)
        if d <= 0:
            continue
        cap = net_load(net, library)
        driver = net.driver
        if isinstance(driver, tuple) and driver[0].is_cell:
            cap += driver[0].cell.c_internal
        total += half_v2 * cap * d
    return total * glitch_factor
