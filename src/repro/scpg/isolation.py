"""Isolation insertion and the Fig. 3 adaptive isolation controller.

Traditional power gating sequences isolation from a controller state
machine; SCPG gates within the cycle, so no state machine can time the
clamps.  The paper's Fig. 3 circuit derives the isolation control from the
clock and the virtual rail itself (sensed through a TIEHI cell placed in
the power-gated domain)::

    ISOLATE = clock OR NOT(VDDV_sense)

-- isolation asserts as soon as the clock rises (power about to drop) and
releases only when the virtual rail is back at logic 1 (clock low AND rail
restored).  Functionally the TIEHI reads as constant 1, so the simulated
behaviour degenerates to clock-synchronous clamping; the electrical
release delay is carried by the timing model's ``T_PGStart``.
"""

from __future__ import annotations

from ..errors import ScpgError
#: Clamp styles: cell name and value the output is clamped to.
CLAMP_CELLS = {"low": "ISO_AND_X1", "high": "ISO_OR_X1"}


def add_rail_sense(comb_module, library, port_name="vddv_sense"):
    """Place a TIEHI in the gated module and export it as a port (Fig. 3
    senses VDDV through it).  Returns the port name."""
    if comb_module.has_port(port_name):
        raise ScpgError("module already has a {} port".format(port_name))
    net = comb_module.add_output(port_name)
    comb_module.add_instance(
        "u_vddv_tie", library.cell("TIEHI_X1"), {"Y": net}
    )
    return port_name


def build_isolation_controller(top, library, clk_net, vddv_net,
                               prefix="u_isoctl"):
    """Emit the Fig. 3 controller into ``top``; returns the ISOLATE net."""
    inv_out = top.add_net("vddv_n")
    iso_net = top.add_net("isolate")
    top.add_instance(
        prefix + "_inv", library.cell("INV_X1"),
        {"A": vddv_net, "Y": inv_out},
    )
    top.add_instance(
        prefix + "_or", library.cell("OR2_X1"),
        {"A": clk_net, "B": inv_out, "Y": iso_net},
    )
    return iso_net


def controller_delay(library, vdd=None):
    """Isolation-release delay of the Fig. 3 circuit (INV + OR2), s."""
    scale = library.delay_scale(vdd) if vdd is not None else 1.0
    inv = library.cell("INV_X1")
    orr = library.cell("OR2_X1")
    # Small fanout assumption: a couple of pin loads each.
    load = 2 * library.wire_cap_per_fanout + 2e-15
    return (inv.delay(load) + orr.delay(load)) * scale


def insert_isolation(top, nets, library, iso_net, clamp="low",
                     prefix="u_iso"):
    """Clamp each net in ``nets`` (names or Net objects) with an isolation
    cell controlled by ``iso_net``.

    The clamp is spliced at the driver side: the raw domain output moves to
    a new ``<name>_raw`` net and the isolation cell re-drives the original
    net, so every existing load -- flop D pins and output ports alike --
    now sees the clamped value.  Returns the inserted instances.
    """
    cell = library.cell(CLAMP_CELLS[clamp])
    inserted = []
    for i, net in enumerate(nets):
        if isinstance(net, str):
            net = top.net(net)
        driver = net.driver
        if not isinstance(driver, tuple):
            raise ScpgError(
                "cannot isolate net {} (no instance driver)".format(net.name))
        raw = top.add_net(net.name + "_raw")
        drv_inst, drv_pin = driver
        drv_inst.connections[drv_pin] = raw
        raw.driver = (drv_inst, drv_pin)
        net.driver = None
        inst = top.add_instance(
            "{}_{}".format(prefix, i), cell,
            {"A": raw, "ISO": iso_net, "Y": net},
        )
        inserted.append(inst)
    return inserted
