"""Energy-per-operation versus supply voltage (Figs 9 and 10).

At each supply the design runs at its voltage-scaled Fmax; energy per
operation is::

    E(V) = E_cycle * (V / Vnom)^2  +  P_leak(V) / Fmax(V)

Dynamic energy falls quadratically while the leakage term *rises* as the
clock slows exponentially below threshold -- the two cross at the
minimum-energy point.  A design with a higher leakage-to-dynamic ratio
(the Cortex-M0's "increased density of logic") reaches its minimum at a
higher supply, exactly the Fig. 9 vs Fig. 10 contrast.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..errors import PowerError
from ..runner.kernel import Kernel, register_kernel


@dataclass(frozen=True)
class EnergyPoint:
    """One operating point of the sub-threshold sweep."""

    vdd: float
    fmax_hz: float
    e_dynamic: float
    e_leakage: float
    power: float

    @property
    def energy(self):
        """Total energy per operation (J)."""
        return self.e_dynamic + self.e_leakage


class SubvtModel:
    """Voltage-scaled energy model for one design.

    Parameters
    ----------
    library:
        Cell library (provides the device scaling).
    e_cycle:
        Switched energy per cycle at ``vdd_nom`` (J).
    leak_nominal:
        Total leakage power at ``vdd_nom`` (W).
    min_period:
        Minimum clock period at ``vdd_nom`` (s) -- the STA result.
    """

    def __init__(self, library, e_cycle, leak_nominal, min_period):
        if min_period <= 0:
            raise PowerError("min_period must be positive")
        self.library = library
        self.e_cycle = e_cycle
        self.leak_nominal = leak_nominal
        self.min_period = min_period

    def __fingerprint__(self):
        """Content identity for result-cache keys (see repro.runner)."""
        return ("subvt-model-v1", self.library, self.e_cycle,
                self.leak_nominal, self.min_period)

    def point(self, vdd):
        """Evaluate one supply voltage."""
        lib = self.library
        fmax = 1.0 / (self.min_period * lib.delay_scale(vdd))
        p_leak = self.leak_nominal * lib.leakage_scale(vdd)
        e_dyn = self.e_cycle * lib.energy_scale(vdd)
        return EnergyPoint(
            vdd=vdd,
            fmax_hz=fmax,
            e_dynamic=e_dyn,
            e_leakage=p_leak / fmax,
            power=e_dyn * fmax + p_leak,
        )

    def points_axis(self, vdds):
        """Deprecated spelling of the supply-axis batch kernel.

        Use ``repro.runner.compile_kernel(model)`` -- the compiled
        kernel takes the same supply points and returns the same
        :class:`EnergyPoint` objects.
        """
        warnings.warn(
            "SubvtModel.points_axis is deprecated; use "
            "repro.runner.compile_kernel(model)", DeprecationWarning,
            stacklevel=2)
        return self._points_axis(vdds)

    def _points_axis(self, vdds):
        """Evaluate a whole supply axis in one pass (the batch kernel).

        Hoists the device models and reference currents the library's
        scaling functions rebuild per call; every remaining operation
        replays :meth:`point` -- via ``Library.delay_scale`` /
        ``leakage_scale`` / ``energy_scale`` -- unchanged, so results
        are bit-identical to the point-at-a-time path (including the
        degenerate ``i_op <= 0`` / ``i_ref <= 0`` branches).
        """
        lib = self.library
        ref = lib._ref_model("svt")
        op = lib.device_model("svt")
        vdd_nom = lib.vdd_nom
        on_ref_term = vdd_nom / ref.on_current(vdd_nom, 1.0)
        i_ref_leak = ref.subthreshold_leakage(vdd_nom, 1.0)
        min_period = self.min_period
        leak_nominal = self.leak_nominal
        e_cycle = self.e_cycle
        inf = float("inf")
        out = []
        for vdd in vdds:
            i_op = op.on_current(vdd, 1.0)
            delay_scale = inf if i_op <= 0 \
                else (vdd / i_op) / on_ref_term
            fmax = 1.0 / (min_period * delay_scale)
            leakage_scale = 0.0 if i_ref_leak <= 0 \
                else (op.subthreshold_leakage(vdd, 1.0) / i_ref_leak) \
                * (vdd / vdd_nom)
            p_leak = leak_nominal * leakage_scale
            e_dyn = e_cycle * ((vdd / vdd_nom) ** 2)
            out.append(EnergyPoint(
                vdd=vdd,
                fmax_hz=fmax,
                e_dynamic=e_dyn,
                e_leakage=p_leak / fmax,
                power=e_dyn * fmax + p_leak,
            ))
        return out


class SubvtKernel(Kernel):
    """Batch kernel for supply-voltage grids over a pristine
    :class:`SubvtModel` (see :mod:`repro.runner.kernel`)."""

    name = "subvt-energy"

    def applies(self, model):
        # A subclassed model, or one whose ``point`` was replaced on
        # the instance (tests do this to count evaluations), must keep
        # the point-at-a-time path so the override is honoured.
        return type(model) is SubvtModel \
            and "point" not in getattr(model, "__dict__", {})

    def evaluate(self, model, points, library=None):
        return model._points_axis(points)


register_kernel(SubvtModel, SubvtKernel())


def _voltage_point(model, vdd):
    return model.point(vdd)


def _batch_kernel(model):
    """The compiled sweep kernel -- or ``None`` for non-pristine models
    (the :meth:`SubvtKernel.applies` guard keeps instance overrides
    honoured on the point-at-a-time path)."""
    from ..runner.kernel import compile_kernel

    return compile_kernel(model)


def _model_cache_key(model):
    from ..runner import can_fingerprint, stable_hash

    if not can_fingerprint(model):
        return None
    return stable_hash("subvt-point", model)


def energy_sweep(model, v_lo=0.15, v_hi=0.9, steps=76, runner=None):
    """Sweep the supply; returns a list of :class:`EnergyPoint`.

    ``runner`` (a :class:`repro.runner.Runner`) supplies workers and the
    result cache; by default the sweep runs serial and uncached.
    """
    if steps < 2 or v_hi <= v_lo:
        raise PowerError("bad sweep range")
    from ..runner import Runner

    runner = Runner() if runner is None else runner
    grid = [v_lo + (v_hi - v_lo) * k / (steps - 1) for k in range(steps)]
    return runner.run(_voltage_point, grid, context=model,
                      cache_key=_model_cache_key(model),
                      label="energy_sweep",
                      kernel=_batch_kernel(model))


def minimum_energy_point(model, v_lo=0.15, v_hi=0.9, tolerance=1e-3,
                         runner=None):
    """Golden-section search for the minimum-energy supply voltage.

    With a ``runner`` the per-voltage evaluations go through its result
    cache, so repeated searches over the same model are warm no-ops.
    """
    if runner is None:
        point = model.point
    else:
        evaluator = runner.evaluator(
            lambda vdd: model.point(vdd),
            cache_key=_model_cache_key(model))
        point = evaluator
    phi = (5 ** 0.5 - 1) / 2.0
    lo, hi = v_lo, v_hi
    a = hi - phi * (hi - lo)
    b = lo + phi * (hi - lo)
    ea = point(a).energy
    eb = point(b).energy
    while hi - lo > tolerance:
        if ea < eb:
            hi, b, eb = b, a, ea
            a = hi - phi * (hi - lo)
            ea = point(a).energy
        else:
            lo, a, ea = a, b, eb
            b = lo + phi * (hi - lo)
            eb = point(b).energy
    return point((lo + hi) / 2.0)
