"""Energy-per-operation versus supply voltage (Figs 9 and 10).

At each supply the design runs at its voltage-scaled Fmax; energy per
operation is::

    E(V) = E_cycle * (V / Vnom)^2  +  P_leak(V) / Fmax(V)

Dynamic energy falls quadratically while the leakage term *rises* as the
clock slows exponentially below threshold -- the two cross at the
minimum-energy point.  A design with a higher leakage-to-dynamic ratio
(the Cortex-M0's "increased density of logic") reaches its minimum at a
higher supply, exactly the Fig. 9 vs Fig. 10 contrast.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PowerError


@dataclass(frozen=True)
class EnergyPoint:
    """One operating point of the sub-threshold sweep."""

    vdd: float
    fmax_hz: float
    e_dynamic: float
    e_leakage: float
    power: float

    @property
    def energy(self):
        """Total energy per operation (J)."""
        return self.e_dynamic + self.e_leakage


class SubvtModel:
    """Voltage-scaled energy model for one design.

    Parameters
    ----------
    library:
        Cell library (provides the device scaling).
    e_cycle:
        Switched energy per cycle at ``vdd_nom`` (J).
    leak_nominal:
        Total leakage power at ``vdd_nom`` (W).
    min_period:
        Minimum clock period at ``vdd_nom`` (s) -- the STA result.
    """

    def __init__(self, library, e_cycle, leak_nominal, min_period):
        if min_period <= 0:
            raise PowerError("min_period must be positive")
        self.library = library
        self.e_cycle = e_cycle
        self.leak_nominal = leak_nominal
        self.min_period = min_period

    def __fingerprint__(self):
        """Content identity for result-cache keys (see repro.runner)."""
        return ("subvt-model-v1", self.library, self.e_cycle,
                self.leak_nominal, self.min_period)

    def point(self, vdd):
        """Evaluate one supply voltage."""
        lib = self.library
        fmax = 1.0 / (self.min_period * lib.delay_scale(vdd))
        p_leak = self.leak_nominal * lib.leakage_scale(vdd)
        e_dyn = self.e_cycle * lib.energy_scale(vdd)
        return EnergyPoint(
            vdd=vdd,
            fmax_hz=fmax,
            e_dynamic=e_dyn,
            e_leakage=p_leak / fmax,
            power=e_dyn * fmax + p_leak,
        )


def _voltage_point(model, vdd):
    return model.point(vdd)


def _model_cache_key(model):
    from ..runner import can_fingerprint, stable_hash

    if not can_fingerprint(model):
        return None
    return stable_hash("subvt-point", model)


def energy_sweep(model, v_lo=0.15, v_hi=0.9, steps=76, runner=None):
    """Sweep the supply; returns a list of :class:`EnergyPoint`.

    ``runner`` (a :class:`repro.runner.Runner`) supplies workers and the
    result cache; by default the sweep runs serial and uncached.
    """
    if steps < 2 or v_hi <= v_lo:
        raise PowerError("bad sweep range")
    from ..runner import Runner

    runner = Runner() if runner is None else runner
    grid = [v_lo + (v_hi - v_lo) * k / (steps - 1) for k in range(steps)]
    return runner.run(_voltage_point, grid, context=model,
                      cache_key=_model_cache_key(model),
                      label="energy_sweep")


def minimum_energy_point(model, v_lo=0.15, v_hi=0.9, tolerance=1e-3,
                         runner=None):
    """Golden-section search for the minimum-energy supply voltage.

    With a ``runner`` the per-voltage evaluations go through its result
    cache, so repeated searches over the same model are warm no-ops.
    """
    if runner is None:
        point = model.point
    else:
        evaluator = runner.evaluator(
            lambda vdd: model.point(vdd),
            cache_key=_model_cache_key(model))
        point = evaluator
    phi = (5 ** 0.5 - 1) / 2.0
    lo, hi = v_lo, v_hi
    a = hi - phi * (hi - lo)
    b = lo + phi * (hi - lo)
    ea = point(a).energy
    eb = point(b).energy
    while hi - lo > tolerance:
        if ea < eb:
            hi, b, eb = b, a, ea
            a = hi - phi * (hi - lo)
            ea = point(a).energy
        else:
            lo, a, ea = a, b, eb
            b = lo + phi * (hi - lo)
            eb = point(b).energy
    return point((lo + hi) / 2.0)
