"""Process/temperature variation study (the §IV stability argument).

The paper's closing argument against sub-threshold: *"The circuit is more
sensitive to process variations such as variations in threshold voltage
and temperature.  The increased sensitivity can skew the minimum energy
point significantly ... In comparison, SCPG operates above threshold
maintaining greater stability with process and temperature variations."*

This module quantifies that claim on our models:

* :func:`corner_study` evaluates named corners (Vth shift + temperature)
  for both techniques -- the sub-threshold design pinned at its
  nominally-chosen supply (a built chip cannot chase the moving minimum),
  the SCPG design at VDD = 0.6 V and a chosen frequency;
* :func:`monte_carlo` samples global Vth variation and reports spread
  statistics for both;
* the headline metric is *performance* sensitivity: below threshold,
  delay is exponential in Vth, so the committed-voltage Fmax spans a
  multiple-x range across corners (and the minimum-energy point itself
  wanders), while the above-threshold SCPG design's Fmax moves mildly.

A nuance this analysis surfaces honestly: sub-threshold *energy per
operation at the committed voltage* is first-order insensitive to Vth
(leakage current and clock period shift oppositely and cancel in
``I * V * T``), so the paper's stability argument is really about
performance predictability and the skewed minimum-energy point -- which
is exactly what the quoted §IV sentence says.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PowerError
from ..runner import Runner
from ..scpg.power_model import Mode
from .energy import SubvtModel, minimum_energy_point

#: A typical global Vth sigma for a 90nm process (V).
DEFAULT_VTH_SIGMA = 0.020


@dataclass(frozen=True)
class Corner:
    """One process/temperature corner."""

    name: str
    delta_vth: float = 0.0     # V, applied to every flavour
    temp_c: float = 25.0


#: The classic slow/typical/fast x cold/hot corner set.
STANDARD_CORNERS = (
    Corner("ss_cold", +0.03, 0.0),
    Corner("ss_hot", +0.03, 85.0),
    Corner("tt", 0.0, 25.0),
    Corner("ff_cold", -0.03, 0.0),
    Corner("ff_hot", -0.03, 85.0),
)


def corner_library(library, corner):
    """A corner view of ``library`` (shared cells, shifted devices)."""
    devices = {
        name: params.scaled(vth=params.vth + corner.delta_vth)
        for name, params in library.devices.items()
    }
    lib = library.with_devices(devices)
    lib.temp_c = library.temp_c  # characterisation temp unchanged
    return lib


@dataclass
class CornerResult:
    """Both techniques at one corner."""

    corner: Corner
    subvt_energy: float       # J/op at the nominally-chosen sub-vt supply
    subvt_fmax: float         # achievable frequency at that supply
    subvt_mep_vdd: float      # where the minimum-energy point moved to
    scpg_energy: float        # J/op at 0.6 V / the chosen frequency
    scpg_power: float
    scpg_fmax: float          # SCPG 50%-duty Fmax at 0.6 V


@dataclass
class VariationStudy:
    """Outcome of :func:`corner_study` / :func:`monte_carlo`."""

    results: list = field(default_factory=list)
    nominal: CornerResult = None

    def spread(self, attr):
        """(max - min) / nominal for ``attr`` over all results."""
        values = [getattr(r, attr) for r in self.results]
        ref = getattr(self.nominal, attr)
        if ref == 0:
            raise PowerError("zero nominal for {}".format(attr))
        return (max(values) - min(values)) / ref

    @property
    def subvt_energy_spread(self):
        """Relative energy spread of the sub-threshold design."""
        return self.spread("subvt_energy")

    @property
    def scpg_energy_spread(self):
        """Relative energy spread of the SCPG design."""
        return self.spread("scpg_energy")

    @property
    def subvt_performance_spread(self):
        """Relative Fmax spread at the committed sub-threshold supply.

        This is where sub-threshold sensitivity really bites: delay is
        exponential in Vth below threshold, so the same silicon spans a
        multiple-x frequency range across corners.
        """
        return self.spread("subvt_fmax")

    @property
    def scpg_performance_spread(self):
        """Relative Fmax spread of the SCPG design at 0.6 V."""
        return self.spread("scpg_fmax")

    @property
    def mep_displacement(self):
        """How far the minimum-energy point wanders (V, max-min)."""
        values = [r.subvt_mep_vdd for r in self.results]
        return max(values) - min(values)

    @property
    def stability_ratio(self):
        """Performance-stability advantage of SCPG (>1 supports §IV)."""
        if self.scpg_performance_spread == 0:
            return float("inf")
        return self.subvt_performance_spread \
            / self.scpg_performance_spread


def _evaluate_corner(study, corner, subvt_vdd, scpg_freq, mode, temp_c):
    lib = corner_library(study.library, corner)
    # Sub-threshold design: built for ``subvt_vdd``; the corner moves its
    # speed and leakage out from under it.  Temperature enters through
    # the library scaling at the corner's temp.
    fmax = 1.0 / (study.subvt.min_period * lib.delay_scale(
        subvt_vdd, temp_c=corner.temp_c))
    p_leak = study.subvt.leak_nominal * lib.leakage_scale(
        subvt_vdd, temp_c=corner.temp_c)
    e_dyn = study.subvt.e_cycle * lib.energy_scale(subvt_vdd)
    subvt_energy = e_dyn + p_leak / fmax

    # Where did the minimum-energy point move?  (The paper: variation
    # "can skew the minimum energy point significantly".)
    corner_sub = SubvtModel(lib, study.subvt.e_cycle,
                            study.subvt.leak_nominal,
                            study.subvt.min_period)
    mep_vdd = minimum_energy_point(corner_sub).vdd

    # SCPG design at nominal supply: leakage shifts with the corner, the
    # gating itself keeps working (and above-threshold delay shifts are
    # mild).
    model = study.model
    scale_leak = lib.leakage_scale(0.6, temp_c=corner.temp_c) \
        / study.library.leakage_scale(0.6)
    scale_delay = lib.delay_scale(0.6, temp_c=corner.temp_c) \
        / study.library.delay_scale(0.6)
    breakdown = model.power(scpg_freq, mode)
    leak_part = breakdown.leakage * scale_leak
    scpg_power = breakdown.p_dynamic + breakdown.p_overhead + leak_part
    scpg_fmax = model.feasible_fmax(Mode.SCPG) / scale_delay
    return CornerResult(
        corner=corner,
        subvt_energy=subvt_energy,
        subvt_fmax=fmax,
        subvt_mep_vdd=mep_vdd,
        scpg_energy=scpg_power / scpg_freq,
        scpg_power=scpg_power,
        scpg_fmax=scpg_fmax,
    )


def _corner_point(context, corner):
    study, subvt_vdd, scpg_freq, mode = context
    return _evaluate_corner(study, corner, subvt_vdd, scpg_freq, mode,
                            corner.temp_c)


def corner_study(study, corners=STANDARD_CORNERS, scpg_freq=2e6,
                 mode=Mode.SCPG_MAX, subvt_vdd=None, runner=None):
    """Evaluate both techniques across ``corners``.

    ``study`` is a :class:`repro.paper.CaseStudy`.  ``subvt_vdd`` defaults
    to the *nominal* minimum-energy supply (the voltage a designer would
    have committed to silicon).  With a ``runner`` the corners evaluate in
    parallel worker processes (the study reaches workers by fork
    inheritance -- it is never pickled).
    """
    runner = Runner() if runner is None else runner
    if subvt_vdd is None:
        subvt_vdd = minimum_energy_point(study.subvt).vdd
    nominal = _evaluate_corner(
        study, Corner("nominal", 0.0, study.library.temp_c), subvt_vdd,
        scpg_freq, mode, study.library.temp_c)
    out = VariationStudy(nominal=nominal)
    out.results.extend(runner.run(
        _corner_point, list(corners),
        context=(study, subvt_vdd, scpg_freq, mode)))
    return out


def monte_carlo(study, sigma_vth=DEFAULT_VTH_SIGMA, samples=200,
                seed=2011, scpg_freq=2e6, mode=Mode.SCPG_MAX,
                runner=None):
    """Sample global Vth variation; returns ``(VariationStudy, stats)``.

    ``stats`` is a dict with the relative standard deviation of energy per
    operation for both techniques (``subvt_rel_std``, ``scpg_rel_std``).
    The samples are drawn up front from the seeded generator, so serial
    and parallel runs see the identical corner list.
    """
    rng = np.random.default_rng(seed)
    deltas = rng.normal(0.0, sigma_vth, size=samples)
    corners = [
        Corner("mc{}".format(i), float(delta), study.library.temp_c)
        for i, delta in enumerate(deltas)
    ]
    out = corner_study(study, corners=corners, scpg_freq=scpg_freq,
                       mode=mode, runner=runner)
    sub_e = np.array([r.subvt_energy for r in out.results])
    scpg_e = np.array([r.scpg_energy for r in out.results])
    sub_f = np.array([r.subvt_fmax for r in out.results])
    scpg_f = np.array([r.scpg_fmax for r in out.results])
    mep = np.array([r.subvt_mep_vdd for r in out.results])
    stats = {
        "subvt_energy_rel_std": float(sub_e.std() / sub_e.mean()),
        "scpg_energy_rel_std": float(scpg_e.std() / scpg_e.mean()),
        "subvt_fmax_rel_std": float(sub_f.std() / sub_f.mean()),
        "scpg_fmax_rel_std": float(scpg_f.std() / scpg_f.mean()),
        "mep_vdd_std": float(mep.std()),
    }
    return out, stats
