"""Section IV: sub-clock power gating versus sub-threshold design.

The paper's procedure: find the sub-threshold minimum-energy point, set
its average power as the budget, and ask what the SCPG design achieves
within the same budget.  Sub-threshold wins on energy per operation (it is
the minimum-energy technique by construction) but is locked to one slow
operating point; SCPG trades a few x of energy for orders of magnitude of
frequency range plus the override escape to full performance, and it
operates above threshold where process/temperature sensitivity is benign.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..scpg.budget import solve_max_frequency
from ..scpg.power_model import Mode
from .energy import minimum_energy_point


@dataclass
class SubvtComparison:
    """Outcome of the §IV comparison at one budget."""

    budget: float
    subvt_point: object                # EnergyPoint at min energy
    scpg_scenario: object              # BudgetScenario
    energy_ratio: float                # SCPG energy / sub-vt energy
    performance_ratio: float           # sub-vt freq / SCPG freq

    def __str__(self):
        return (
            "budget {:.3g} W: sub-vt {:.3g} J @ {:.3g} Hz (VDD {:.3f} V) "
            "vs SCPG {:.3g} J @ {:.3g} Hz -> {:.1f}x energy, {:.1f}x "
            "performance gap".format(
                self.budget,
                self.subvt_point.energy,
                self.subvt_point.fmax_hz,
                self.subvt_point.vdd,
                self.scpg_scenario.energy_per_op,
                self.scpg_scenario.freq_hz,
                self.energy_ratio,
                self.performance_ratio,
            )
        )


def compare_with_scpg(subvt_model, scpg_model, mode=Mode.SCPG,
                      budget=None, runner=None):
    """Run the §IV comparison.

    ``budget`` defaults to the sub-threshold minimum-energy point's average
    power (the paper's choice); pass a larger budget to reproduce the
    "difference narrows" observation.  With a ``runner`` the minimum-energy
    search reuses the session's result cache, so repeated comparisons over
    the same model evaluate nothing.
    """
    mep = minimum_energy_point(subvt_model, runner=runner)
    budget = mep.power if budget is None else budget
    scenario = solve_max_frequency(scpg_model, budget, mode)
    return SubvtComparison(
        budget=budget,
        subvt_point=mep,
        scpg_scenario=scenario,
        energy_ratio=scenario.energy_per_op / mep.energy,
        performance_ratio=mep.fmax_hz / scenario.freq_hz,
    )
