"""Sub-threshold operation and the Section IV comparative analysis.

Sub-threshold design lowers VDD past Vth until dynamic energy equals
leakage energy -- the minimum-energy point (Figs 9 and 10).  This package
sweeps the supply with the same device model that scales timing and
leakage everywhere else, finds the minimum-energy point, and reproduces
the paper's comparison: sub-threshold wins on energy, SCPG wins on
performance range, stability and the override escape hatch.
"""

from .energy import EnergyPoint, SubvtModel, energy_sweep, \
    minimum_energy_point
from .compare import SubvtComparison, compare_with_scpg
from .variation import (
    Corner,
    STANDARD_CORNERS,
    VariationStudy,
    corner_study,
    monte_carlo,
)

__all__ = [
    "Corner",
    "STANDARD_CORNERS",
    "VariationStudy",
    "corner_study",
    "monte_carlo",
    "EnergyPoint",
    "SubvtModel",
    "energy_sweep",
    "minimum_energy_point",
    "SubvtComparison",
    "compare_with_scpg",
]
