"""Job specifications and result serialisation for the sweep service.

A :class:`JobSpec` is the wire form of one unit of work a client may
submit: a frequency sweep of one design, a cross-technique comparison,
or a family sweep over a generator parameter grid.  Specs travel as
JSON; :meth:`JobSpec.to_dict` / :meth:`JobSpec.from_dict` are exact
inverses through ``json.dumps``/``json.loads`` (floats round-trip
bit-for-bit through ``repr``, which the hypothesis property test in
``tests/serve/test_jobs.py`` pins), so a job re-submitted from its own
status payload is the *same* job, point for point.

Result payloads are serialised the same way: every
:class:`~repro.scpg.power_model.PowerBreakdown` field is emitted as its
raw float, so a JSON round-trip of a serve-path result compares
float-*exact* against the offline ``Session.sweep()`` objects -- the
contract ``tests/integration/test_equivalence_matrix.py`` enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ServeError
from ..scpg.power_model import Mode

#: Job kinds the service schedules.
KINDS = ("sweep", "compare", "family_sweep")

#: Job lifecycle states (terminal: done / failed / cancelled).
STATES = ("queued", "running", "done", "failed", "cancelled")

#: Mode names accepted on the wire (the enum's values).
MODE_NAMES = tuple(m.value for m in Mode)

_SCALAR = (int, float, str, bool)


def _freqs(values, *, required):
    if values is None:
        values = ()
    try:
        out = tuple(float(v) for v in values)
    except (TypeError, ValueError):
        raise ServeError("freqs must be a list of numbers (got {!r})"
                         .format(values))
    for f in out:
        if not (f == f and 0.0 < f < float("inf")):
            raise ServeError(
                "freqs must be finite and positive (got {!r})".format(f))
    if required and not out:
        raise ServeError("a sweep job needs a non-empty freqs list")
    return out


def _names(values, what):
    if values is None:
        return None
    out = tuple(str(v) for v in values)
    if not out:
        return None
    return out


@dataclass
class JobSpec:
    """One submittable unit of work.

    Parameters
    ----------
    kind:
        ``"sweep"`` (frequency sweep of one design's SCPG power model),
        ``"compare"`` (cross-technique comparison of one design) or
        ``"family_sweep"`` (Table-style sweep over a generator family's
        parameter grid).
    design:
        Registry name or design-database spec (sweep / compare).
    family / axes:
        Generator family name and ``{param: [values, ...]}`` expansion
        axes (family_sweep).
    freqs:
        Frequency grid in Hz.  Required for ``sweep``; optional for the
        other kinds (their library defaults apply).
    modes:
        Mode names for ``sweep`` (default: the paper's No-PG / SCPG /
        SCPG-Max trio).
    techniques / vdd:
        Technique registry names and operating supply (``compare``).
    params:
        Extra design parameters forwarded to ``session.design``.
    tenant:
        Free-form client identity; only used for accounting and
        filtering, never for keys -- tenants *share* the
        content-addressed store, that is the dedupe story.
    """

    kind: str
    design: str = None
    family: str = None
    freqs: tuple = ()
    modes: tuple = None
    techniques: tuple = None
    vdd: float = None
    params: dict = field(default_factory=dict)
    axes: dict = field(default_factory=dict)
    tenant: str = "anon"

    def __post_init__(self):
        self.kind = str(self.kind)
        if self.kind not in KINDS:
            raise ServeError("unknown job kind {!r} (expected one of {})"
                             .format(self.kind, ", ".join(KINDS)))
        self.freqs = _freqs(self.freqs, required=self.kind == "sweep")
        self.modes = _names(self.modes, "modes")
        if self.modes is not None:
            for name in self.modes:
                if name not in MODE_NAMES:
                    raise ServeError(
                        "unknown mode {!r} (expected one of {})".format(
                            name, ", ".join(MODE_NAMES)))
        self.techniques = _names(self.techniques, "techniques")
        if self.vdd is not None:
            self.vdd = float(self.vdd)
            if not (self.vdd == self.vdd and self.vdd > 0.0):
                raise ServeError("vdd must be finite and positive")
        if self.kind in ("sweep", "compare"):
            if not self.design:
                raise ServeError(
                    "a {} job needs a design".format(self.kind))
            self.design = str(self.design)
        else:
            if not self.family:
                raise ServeError("a family_sweep job needs a family")
            self.family = str(self.family)
        self.params = self._scalar_map(self.params, "params")
        self.axes = {
            str(name): tuple(values) if isinstance(values, (list, tuple))
            else (values,)
            for name, values in dict(self.axes or {}).items()
        }
        for name, values in self.axes.items():
            for v in values:
                if not isinstance(v, _SCALAR):
                    raise ServeError(
                        "axes[{!r}] values must be scalars (got {!r})"
                        .format(name, v))
        self.tenant = str(self.tenant)

    @staticmethod
    def _scalar_map(mapping, what):
        out = {}
        for name, value in dict(mapping or {}).items():
            if not isinstance(value, _SCALAR):
                raise ServeError(
                    "{}[{!r}] must be a scalar (got {!r})".format(
                        what, name, value))
            out[str(name)] = value
        return out

    def mode_objects(self):
        """The :class:`~repro.scpg.power_model.Mode` objects requested
        (``None`` means the sweep default trio)."""
        if self.modes is None:
            return None
        return tuple(Mode(name) for name in self.modes)

    def to_dict(self):
        """JSON-ready form; :meth:`from_dict` is its exact inverse."""
        return {
            "kind": self.kind,
            "design": self.design,
            "family": self.family,
            "freqs": list(self.freqs),
            "modes": None if self.modes is None else list(self.modes),
            "techniques": None if self.techniques is None
            else list(self.techniques),
            "vdd": self.vdd,
            "params": dict(self.params),
            "axes": {name: list(values)
                     for name, values in self.axes.items()},
            "tenant": self.tenant,
        }

    @classmethod
    def from_dict(cls, data):
        """Parse a client payload; raises :class:`~repro.errors.
        ServeError` on anything malformed (unknown keys included --
        a typo'd field silently ignored is a wrong sweep)."""
        if not isinstance(data, dict):
            raise ServeError("job spec must be a JSON object")
        known = {"kind", "design", "family", "freqs", "modes",
                 "techniques", "vdd", "params", "axes", "tenant"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ServeError("unknown job spec fields: {}".format(
                ", ".join(unknown)))
        if "kind" not in data:
            raise ServeError("job spec needs a kind")
        kwargs = {k: v for k, v in data.items() if v is not None}
        if "params" not in kwargs:
            kwargs["params"] = {}
        if "axes" not in kwargs:
            kwargs["axes"] = {}
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ServeError("malformed job spec: {}".format(exc))

    def __eq__(self, other):
        if not isinstance(other, JobSpec):
            return NotImplemented
        return self.to_dict() == other.to_dict()


# -- result serialisation ------------------------------------------------------

def breakdown_to_dict(breakdown):
    """One :class:`~repro.scpg.power_model.PowerBreakdown` as JSON.

    Raw floats only -- JSON round-trips them exactly, so the serve path
    stays float-identical to the offline objects.  ``None`` (infeasible
    point) passes through.
    """
    if breakdown is None:
        return None
    return {
        "mode": breakdown.mode.value,
        "freq_hz": breakdown.freq_hz,
        "duty": breakdown.duty,
        "p_dynamic": breakdown.p_dynamic,
        "p_overhead": breakdown.p_overhead,
        "p_leak_alwayson": breakdown.p_leak_alwayson,
        "p_leak_comb": breakdown.p_leak_comb,
        "p_leak_header": breakdown.p_leak_header,
        "total": breakdown.total,
        "energy_per_op": breakdown.energy_per_op,
    }


def sweep_to_dict(data):
    """A :class:`~repro.analysis.sweep.FrequencySweep` as JSON."""
    modes = list(data.results)
    return {
        "freqs": list(data.freqs),
        "modes": [mode.value for mode in modes],
        "series": {
            mode.value: [breakdown_to_dict(b) for b in data.results[mode]]
            for mode in modes
        },
    }


def table_rows_to_dicts(rows):
    """``list[TableRowResult]`` as JSON (all fields, raw floats)."""
    from dataclasses import fields as dc_fields

    out = []
    for row in rows:
        out.append({f.name: getattr(row, f.name)
                    for f in dc_fields(row)})
    return out
