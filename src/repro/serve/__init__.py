"""Sweep-as-a-service: an HTTP job API over one warm shared Session.

The package turns the library's batch machinery into a long-running
multi-tenant service:

* :class:`~repro.serve.jobs.JobSpec` -- the JSON wire form of one job
  (sweep / compare / family_sweep) with exact round-trip serialisation;
* :class:`~repro.serve.service.SweepService` -- FIFO job execution over
  one :class:`~repro.Session`, per-job JSONL journals, per-job cache
  hit/miss accounting (the cross-tenant dedupe measurement);
* :mod:`~repro.serve.http` -- the stdlib-asyncio HTTP front-end:
  job routes, Prometheus ``/metrics``, SSE progress streams;
* :class:`~repro.serve.client.ServeClient` -- a blocking stdlib client.

Point the service at an :class:`~repro.runner.SqliteStore`
(``Session(store="sweeps.sqlite")``) and several clients sweeping
overlapping grids pay for each distinct point once, service-wide::

    from repro.serve import serve_in_thread, ServeClient

    handle = serve_in_thread(workers=2, store="sweeps.sqlite")
    client = ServeClient(handle.host, handle.port)
    result = client.run({"kind": "sweep", "design": "mult16",
                         "freqs": [1e4, 1e5, 1e6]})
    handle.close()

Or from the command line: ``repro serve --port 8080 --workers 2
--store sweeps.sqlite``.
"""

from .client import ServeClient
from .http import ServeApp, ServerHandle, serve_forever, serve_in_thread
from .jobs import (
    KINDS,
    STATES,
    JobSpec,
    breakdown_to_dict,
    sweep_to_dict,
    table_rows_to_dicts,
)
from .service import Job, SweepService

__all__ = [
    "Job",
    "JobSpec",
    "KINDS",
    "STATES",
    "ServeApp",
    "ServeClient",
    "ServerHandle",
    "SweepService",
    "breakdown_to_dict",
    "serve_forever",
    "serve_in_thread",
    "sweep_to_dict",
    "table_rows_to_dicts",
]
