"""Asyncio HTTP front-end for the sweep service (stdlib only).

The server is a hand-rolled HTTP/1.1 implementation on
``asyncio.start_server`` -- no web framework in the toolchain, and the
protocol surface is small enough that one is pure weight: request line,
headers, an optional JSON body, JSON (or Prometheus text, or SSE) back.

Routes
------

====== ============================ ==========================================
Method Path                         Meaning
====== ============================ ==========================================
GET    ``/healthz``                 liveness + job counts
GET    ``/metrics``                 Prometheus text exposition
POST   ``/jobs``                    submit a job spec; ``202`` + status
GET    ``/jobs``                    all job statuses (``?tenant=`` filters)
GET    ``/jobs/<id>``               one job's status
GET    ``/jobs/<id>/result``        result payload (``409`` until terminal)
POST   ``/jobs/<id>/cancel``        cancel a queued job
GET    ``/jobs/<id>/events``        SSE stream tailing the job's journal
====== ============================ ==========================================

The event stream is a live tail of the per-job JSONL journal: each line
the runner appends (``run_start``, ``point_finished``, ``chunk_finished``
...) becomes one ``data:`` frame, so a client watches its sweep make
point-by-point progress; the stream ends once the job is terminal and
the file is drained.

Blocking service calls (``submit`` validates, the rest are dict reads)
are cheap, so handlers call the :class:`~repro.serve.service.
SweepService` directly from the event loop; the actual sweeps run on the
service's own worker thread, never on the loop.
"""

from __future__ import annotations

import asyncio
import json
import threading

from ..errors import ServeError

#: Largest accepted request body; a job spec is tiny, anything larger
#: is a mistake or mischief.
MAX_BODY = 1 << 20

#: Most oversized-body bytes drained before giving up on the client
#: reading its 413 (and seconds allowed for the drain).
DISCARD_CAP = 8 << 20
DISCARD_TIMEOUT = 10.0

#: Seconds between journal polls on the SSE path.
EVENT_POLL = 0.05

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 410: "Gone",
    413: "Payload Too Large", 500: "Internal Server Error",
}

#: Job states that stop the SSE tail once the journal is drained.
_TERMINAL = ("done", "failed", "cancelled")


def _response(status, body, content_type="application/json"):
    if isinstance(body, (dict, list)):
        body = json.dumps(body).encode()
    elif isinstance(body, str):
        body = body.encode()
    head = ("HTTP/1.1 {} {}\r\n"
            "Content-Type: {}\r\n"
            "Content-Length: {}\r\n"
            "Connection: close\r\n"
            "\r\n").format(status, _REASONS.get(status, "?"),
                           content_type, len(body))
    return head.encode() + body


def _error(status, message):
    return _response(status, {"error": message})


async def _read_request(reader):
    """``(method, path, query, headers, body)`` or ``None`` on EOF/junk."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        return None
    method, target, _version = parts
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0) or 0)
    if length > MAX_BODY:
        return method, target, {}, headers, b"__too_large__"
    body = await reader.readexactly(length) if length else b""
    path, _, query_text = target.partition("?")
    query = {}
    for pair in query_text.split("&"):
        if "=" in pair:
            name, _, value = pair.partition("=")
            query[name] = value
    return method, path, query, headers, body


class ServeApp:
    """Routes HTTP requests onto a :class:`~repro.serve.service.
    SweepService` (one app per service; the server wires connections to
    :meth:`handle`)."""

    def __init__(self, service):
        self.service = service

    async def handle(self, reader, writer):
        try:
            request = await _read_request(reader)
            if request is None:
                return
            method, path, query, _headers, body = request
            if body == b"__too_large__":
                writer.write(_error(413, "request body too large"))
                await writer.drain()
                # The client is still sending the body it declared;
                # closing now RSTs the socket under those unread bytes
                # and the 413 never reaches it.  Drain (bounded) so a
                # well-behaved client finishes its send and reads the
                # rejection.
                await self._discard(
                    reader,
                    int(_headers.get("content-length", 0) or 0))
            else:
                await self._dispatch(method, path, query, body, writer)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError lands when the loop shuts down while a
                # connection drains; the task ends right here either
                # way, so completing quietly beats a logged traceback.
                pass

    @staticmethod
    async def _discard(reader, remaining):
        remaining = min(remaining, DISCARD_CAP)

        async def drain():
            left = remaining
            while left > 0:
                chunk = await reader.read(min(65536, left))
                if not chunk:
                    return
                left -= len(chunk)

        try:
            await asyncio.wait_for(drain(), DISCARD_TIMEOUT)
        except (asyncio.TimeoutError, ConnectionError):
            pass

    async def _dispatch(self, method, path, query, body, writer):
        if path == "/healthz" and method == "GET":
            writer.write(_response(200, {
                "status": "ok", "jobs": self.service.counts()}))
            return
        if path == "/metrics" and method == "GET":
            writer.write(_response(
                200, self.service.render_metrics(),
                content_type="text/plain; version=0.0.4"))
            return
        if path == "/jobs":
            if method == "POST":
                writer.write(self._submit(body))
            elif method == "GET":
                jobs = self.service.jobs(tenant=query.get("tenant"))
                writer.write(_response(
                    200, [job.status_dict() for job in jobs]))
            else:
                writer.write(_error(405, "use GET or POST on /jobs"))
            return
        if path.startswith("/jobs/"):
            await self._job_route(method, path, writer)
            return
        writer.write(_error(404, "no route {}".format(path)))

    def _submit(self, body):
        try:
            payload = json.loads(body.decode() or "null")
        except (ValueError, UnicodeDecodeError):
            return _error(400, "body must be JSON")
        try:
            job = self.service.submit(payload)
        except ServeError as exc:
            return _error(400, str(exc))
        return _response(202, job.status_dict())

    async def _job_route(self, method, path, writer):
        parts = path.split("/")  # ['', 'jobs', <id>] or + [<action>]
        job_id = parts[2] if len(parts) > 2 else ""
        action = parts[3] if len(parts) > 3 else None
        try:
            job = self.service.get(job_id)
        except ServeError as exc:
            writer.write(_error(404, str(exc)))
            return
        if action is None and method == "GET":
            writer.write(_response(200, job.status_dict()))
        elif action == "result" and method == "GET":
            writer.write(self._result(job))
        elif action == "cancel" and method == "POST":
            try:
                job = self.service.cancel(job.id)
            except ServeError as exc:
                writer.write(_error(409, str(exc)))
                return
            writer.write(_response(200, job.status_dict()))
        elif action == "events" and method == "GET":
            await self._events(job, writer)
        else:
            writer.write(_error(405, "no {} on {}".format(method, path)))

    @staticmethod
    def _result(job):
        if job.state == "done":
            return _response(200, {"id": job.id, "result": job.result})
        if job.state == "failed":
            return _response(500, {"id": job.id, "error": job.error})
        if job.state == "cancelled":
            return _error(410, "job {} was cancelled".format(job.id))
        return _error(409, "job {} is {}; result not ready".format(
            job.id, job.state))

    async def _events(self, job, writer):
        """Server-sent events: tail the job journal line by line until
        the job is terminal and the file is drained."""
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-cache\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        offset = 0
        while True:
            terminal = job.state in _TERMINAL
            chunk, offset = self._tail(job.journal_path, offset)
            for line in chunk:
                writer.write(b"data: " + line.encode() + b"\n\n")
            if chunk:
                await writer.drain()
            if terminal and not chunk:
                writer.write(b"event: end\ndata: " +
                             json.dumps(job.status_dict()).encode() +
                             b"\n\n")
                await writer.drain()
                return
            if not chunk:
                await asyncio.sleep(EVENT_POLL)

    @staticmethod
    def _tail(path, offset):
        """Complete journal lines past ``offset`` and the new offset
        (a torn final line stays unconsumed until its newline lands)."""
        try:
            with open(path, "rb") as f:
                f.seek(offset)
                data = f.read()
        except FileNotFoundError:
            return [], offset
        keep = data.rfind(b"\n") + 1
        lines = [line.decode("utf-8", "replace")
                 for line in data[:keep].splitlines() if line.strip()]
        return lines, offset + keep


class ServerHandle:
    """A running server: ``host``/``port`` to reach it, ``close()`` to
    stop it (thread-safe; usable as a context manager)."""

    def __init__(self, host, port, loop, server, thread, service,
                 owns_service):
        self.host = host
        self.port = port
        self._loop = loop
        self._server = server
        self._thread = thread
        self.service = service
        self._owns_service = owns_service
        self._closed = False

    @property
    def url(self):
        return "http://{}:{}".format(self.host, self.port)

    def close(self):
        """Stop accepting, drain the loop, join the thread; closes a
        handle-owned service too (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._loop.call_soon_threadsafe(self._server.close)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        if self._owns_service:
            self.service.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __repr__(self):
        return "ServerHandle({})".format(self.url)


def serve_in_thread(service=None, host="127.0.0.1", port=0, **kwargs):
    """Run the HTTP server on a daemon thread; returns a
    :class:`ServerHandle` once the socket is listening.

    ``service=None`` builds a :class:`~repro.serve.service.SweepService`
    from ``kwargs`` and ties its lifetime to the handle.  ``port=0``
    picks a free port (the handle reports which) -- the test-suite mode.
    """
    from .service import SweepService

    owns = service is None
    if owns:
        service = SweepService(**kwargs)
    elif kwargs:
        raise ValueError("pass either service or service kwargs, not both")
    app = ServeApp(service)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    box = {}

    def _run():
        asyncio.set_event_loop(loop)

        async def _start():
            server = await asyncio.start_server(
                app.handle, host=host, port=port)
            box["server"] = server
            box["port"] = server.sockets[0].getsockname()[1]
            started.set()

        loop.run_until_complete(_start())
        try:
            loop.run_forever()
        finally:
            _drain_loop(loop)

    thread = threading.Thread(target=_run, name="repro-serve-http",
                              daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):
        raise ServeError("server failed to start listening")
    return ServerHandle(host, box["port"], loop, box["server"], thread,
                        service, owns)


def _drain_loop(loop):
    """Finish cancelled tasks and close the loop cleanly."""
    pending = asyncio.all_tasks(loop)
    for task in pending:
        task.cancel()
    if pending:
        loop.run_until_complete(
            asyncio.gather(*pending, return_exceptions=True))
    loop.run_until_complete(loop.shutdown_asyncgens())
    loop.close()


def serve_forever(service, host="127.0.0.1", port=8080):
    """Blocking server for the ``repro serve`` CLI; returns on
    KeyboardInterrupt."""
    app = ServeApp(service)

    async def _main():
        server = await asyncio.start_server(app.handle, host=host,
                                            port=port)
        addr = server.sockets[0].getsockname()
        print("repro serve listening on http://{}:{}".format(
            addr[0], addr[1]))
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
