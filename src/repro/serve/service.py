"""The sweep job service: FIFO scheduling over one warm Session.

:class:`SweepService` is the engine behind the HTTP front-end (and
usable directly, which is how most of the test suite drives it): clients
:meth:`~SweepService.submit` :class:`~repro.serve.jobs.JobSpec` objects,
a single worker thread executes them strictly in submission order
through one shared :class:`~repro.Session`, and each job's progress
streams into its own JSONL journal under the service's spool directory.

Why one worker thread and not a pool of them: the runner already
parallelises *inside* a grid (``Session(workers=N)`` forks a warm
:class:`~repro.runner.WorkerPool`), and the process-wide fork lock in
:mod:`repro.runner.core` serialises concurrent grids anyway.  Serial
jobs over a parallel runner keeps ordering fair (strict FIFO -- the
load tests assert started-timestamps are monotone with submission),
keeps per-job cache accounting exact (the stats deltas around a job
belong to that job alone), and loses no throughput.

Cross-job dedupe is the point of the shared session: every sweep point
is content-addressed through the session's result cache (an
:class:`~repro.runner.SqliteStore` when serving for real), so two
tenants submitting overlapping grids each pay only for the points the
other has not already computed.  Each finished job reports its own
``cache_hits`` / ``cache_misses`` and the derived ``dedupe`` ratio.
"""

from __future__ import annotations

import itertools
import os
import queue
import tempfile
import threading
import time

from ..errors import ServeError
from ..runner import RunJournal
from .jobs import JobSpec, sweep_to_dict, table_rows_to_dicts

#: Monotone job-id source, process-wide so two services in one process
#: (a test fixture and the CLI, say) never mint colliding ids.
_JOB_IDS = itertools.count(1)


class Job:
    """One submitted job: spec, lifecycle state and (eventually) result.

    States move ``queued -> running -> done | failed``, or
    ``queued -> cancelled``; a running job cannot be cancelled (the
    runner offers no preemption and a half-torn grid helps nobody).
    All mutation happens under the owning service's lock.
    """

    def __init__(self, job_id, spec, journal_path):
        self.id = job_id
        self.spec = spec
        self.state = "queued"
        self.journal_path = journal_path
        self.submitted = time.time()
        self.started = None
        self.finished = None
        self.error = None
        self.result = None
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def dedupe(self):
        """Fraction of this job's cache lookups served by earlier work
        (its own earlier points or any other job's)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def latency(self):
        """Submit-to-finish seconds (``None`` until terminal)."""
        if self.finished is None:
            return None
        return self.finished - self.submitted

    def status_dict(self):
        """JSON-ready status (everything but the result payload)."""
        return {
            "id": self.id,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "latency": self.latency,
            "error": self.error,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "dedupe": self.dedupe,
            "journal": self.journal_path,
        }

    def __repr__(self):
        return "Job({!r}, {}, {})".format(self.id, self.spec.kind,
                                          self.state)


class SweepService:
    """FIFO job execution over one shared :class:`~repro.Session`.

    Parameters
    ----------
    session:
        The :class:`~repro.Session` jobs execute through; when ``None``
        the service builds its own from ``session_kwargs`` (with
        ``metrics=True`` unless overridden) and closes it on
        :meth:`close`.
    spool:
        Directory for per-job journals (``job-<id>.jsonl``); a temp
        directory is created when omitted.
    start:
        Start the worker thread immediately (default).  ``start=False``
        leaves submissions queued -- how the cancellation tests pin a
        job in the queued state deterministically.
    """

    def __init__(self, session=None, spool=None, start=True,
                 **session_kwargs):
        if session is None:
            session_kwargs.setdefault("metrics", True)
            from ..session import Session

            session = Session(**session_kwargs)
            self._owns_session = True
        elif session_kwargs:
            raise ValueError(
                "pass either session or session kwargs, not both")
        else:
            self._owns_session = False
        self.session = session
        if spool is None:
            spool = tempfile.mkdtemp(prefix="repro-serve-")
        os.makedirs(spool, exist_ok=True)
        self.spool = str(spool)
        self._jobs = {}
        self._order = []
        self._queue = queue.Queue()
        self._lock = threading.Lock()
        self._handles = {}
        self._worker = None
        self._closed = False
        if start:
            self.start()

    # -- lifecycle -------------------------------------------------------------

    def start(self):
        """Start the worker thread (idempotent)."""
        if self._worker is None or not self._worker.is_alive():
            self._worker = threading.Thread(
                target=self._drain, name="repro-serve-worker", daemon=True)
            self._worker.start()

    def close(self, timeout=30.0):
        """Stop the worker after the current job, cancel everything still
        queued, and close a service-owned session (idempotent)."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            for job in self._jobs.values():
                if job.state == "queued":
                    self._finish(job, "cancelled")
        if self._worker is not None and self._worker.is_alive():
            self._queue.put(None)
            self._worker.join(timeout=timeout)
        if self._owns_session:
            self.session.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- client surface --------------------------------------------------------

    def submit(self, spec):
        """Queue one job; returns its :class:`Job` immediately.

        ``spec`` is a :class:`~repro.serve.jobs.JobSpec` or the dict
        form (validated through :meth:`JobSpec.from_dict`).
        """
        if self._closed:
            raise ServeError("service is closed")
        if not isinstance(spec, JobSpec):
            spec = JobSpec.from_dict(spec)
        job_id = "job-{:06d}".format(next(_JOB_IDS))
        path = os.path.join(self.spool, job_id + ".jsonl")
        job = Job(job_id, spec, path)
        RunJournal(path).record("job_submitted", id=job_id,
                                kind=spec.kind, tenant=spec.tenant,
                                spec=spec.to_dict())
        with self._lock:
            self._jobs[job_id] = job
            self._order.append(job_id)
        self._queue.put(job_id)
        return job

    def get(self, job_id):
        """The :class:`Job` for an id; unknown ids raise
        :class:`~repro.errors.ServeError`."""
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError("unknown job id {!r}".format(job_id))
        return job

    def jobs(self, tenant=None):
        """All jobs in submission order (optionally one tenant's)."""
        with self._lock:
            out = [self._jobs[job_id] for job_id in self._order]
        if tenant is not None:
            out = [job for job in out if job.spec.tenant == tenant]
        return out

    def cancel(self, job_id):
        """Cancel a queued job; returns its :class:`Job`.

        Only the queued state is cancellable -- a running grid cannot be
        preempted, and terminal states stay what they are; both raise
        :class:`~repro.errors.ServeError` so the HTTP layer can say why.
        """
        job = self.get(job_id)
        with self._lock:
            if job.state != "queued":
                raise ServeError(
                    "job {!r} is {}, only queued jobs cancel".format(
                        job_id, job.state))
            self._finish(job, "cancelled")
        return job

    def counts(self):
        """``{state: count}`` over every job the service has seen."""
        out = {state: 0 for state in
               ("queued", "running", "done", "failed", "cancelled")}
        with self._lock:
            for job in self._jobs.values():
                out[job.state] += 1
        return out

    def render_metrics(self):
        """Prometheus text: the session's full registry (runner stats +
        result-cache counters) plus the serve-level series -- jobs by
        state, the cross-job dedupe ratio, and a job-latency histogram."""
        registry = self.session.metrics()
        hits = misses = 0
        latencies = []
        for state, count in self.counts().items():
            registry.gauge("repro_serve_jobs",
                           "jobs by lifecycle state",
                           state=state).set(count)
        with self._lock:
            for job in self._jobs.values():
                hits += job.cache_hits
                misses += job.cache_misses
                if job.latency is not None:
                    latencies.append(job.latency)
        lookups = hits + misses
        registry.gauge(
            "repro_serve_dedupe_ratio",
            "fraction of job cache lookups served by earlier work").set(
            hits / lookups if lookups else 0.0)
        hist = registry.histogram("repro_serve_job_seconds",
                                  "submit-to-finish job latency")
        # Snapshot semantics, like fill_from_stats: rebuild rather than
        # double-count on repeated scrapes.
        hist.__init__(hist.name, help=hist.help, labels=hist.labels,
                      buckets=hist.bounds)
        for latency in latencies:
            hist.observe(latency)
        return registry.render()

    # -- execution -------------------------------------------------------------

    def _drain(self):
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            job = self._jobs.get(job_id)
            with self._lock:
                if job is None or job.state != "queued":
                    continue  # cancelled while queued
                job.state = "running"
                job.started = time.time()
            self._run_job(job)

    def _run_job(self, job):
        journal = RunJournal(job.journal_path)
        runner = self.session.runner
        previous = runner.journal
        runner.journal = journal
        stats = self.session.stats
        hits0, misses0 = stats.cache_hits, stats.cache_misses
        journal.record("job_started", id=job.id, kind=job.spec.kind,
                       tenant=job.spec.tenant)
        try:
            result, error = self._execute(job.spec), None
        except Exception as exc:
            result = None
            error = "{}: {}".format(type(exc).__name__, exc)
        # Accounting lands *before* the terminal-state flip: a client
        # that sees "done" sees this job's final hit/miss numbers.
        job.cache_hits = stats.cache_hits - hits0
        job.cache_misses = stats.cache_misses - misses0
        runner.journal = previous
        journal.record(
            "job_accounting", id=job.id, cache_hits=job.cache_hits,
            cache_misses=job.cache_misses, dedupe=job.dedupe)
        with self._lock:
            if error is None:
                job.result = result
                self._finish(job, "done", journal=journal)
            else:
                job.error = error
                self._finish(job, "failed", journal=journal)
        journal.close()

    def _finish(self, job, state, journal=None):
        """Move a job to a terminal state (caller holds the lock)."""
        job.state = state
        job.finished = time.time()
        event = {"done": "job_finished", "failed": "job_failed",
                 "cancelled": "job_cancelled"}[state]
        if journal is None:
            journal = RunJournal(job.journal_path)
            journal.record(event, id=job.id, error=job.error)
            journal.close()
        else:
            journal.record(event, id=job.id, error=job.error)

    def _handle(self, design, params):
        """Memoised :class:`~repro.session.DesignHandle` so repeat jobs
        on one design reuse its built netlist/model, not just its cached
        sweep points."""
        key = (design, tuple(sorted(params.items())))
        handle = self._handles.get(key)
        if handle is None:
            handle = self.session.design(design, **params)
            self._handles[key] = handle
        return handle

    def _execute(self, spec):
        if spec.kind == "sweep":
            handle = self._handle(spec.design, spec.params)
            data = handle.sweep(list(spec.freqs),
                                modes=spec.mode_objects())
            return sweep_to_dict(data)
        if spec.kind == "compare":
            comparison = self.session.compare_techniques(
                self._handle(spec.design, spec.params),
                freqs=list(spec.freqs) or None,
                techniques=list(spec.techniques)
                if spec.techniques else None,
                vdd=spec.vdd)
            return comparison.as_dict()
        # family_sweep: one Table-style block per design in the family's
        # expanded parameter grid.
        handles = self.session.expand_family(spec.family, **spec.axes)
        freqs = list(spec.freqs) or None
        out = {"family": spec.family, "designs": []}
        for handle in handles:
            rows = handle.table(freqs) if freqs else handle.table(
                _DEFAULT_TABLE_FREQS)
            out["designs"].append({
                "design": handle.name,
                "rows": table_rows_to_dicts(rows),
            })
        return out

    def __repr__(self):
        counts = self.counts()
        return "SweepService({} jobs, {} done, {} queued)".format(
            len(self._jobs), counts["done"], counts["queued"])


#: Fallback grid for family_sweep jobs submitted without freqs: the
#: paper's Table I/II operating points.
_DEFAULT_TABLE_FREQS = (1e4, 1e5, 1e6, 5e6)
