"""Minimal blocking client for the sweep service's HTTP API.

Built on ``http.client`` so the load/differential tests (and any script)
talk to the server over real sockets with nothing beyond the stdlib.
One :class:`ServeClient` is cheap; each call opens its own connection
(the server closes after every response anyway), so one client object
can be shared across threads -- which is exactly what the concurrency
tests do with eight of them hammering one server.
"""

from __future__ import annotations

import http.client
import json
import time

from ..errors import ServeError


class ServeClient:
    """Talk to a running ``repro serve`` endpoint.

    Parameters
    ----------
    host / port:
        Where the server listens (take them from
        :attr:`~repro.serve.http.ServerHandle.host` / ``.port`` in
        tests).
    tenant:
        Stamped onto every submitted spec that does not carry its own --
        how per-client accounting shows up in ``GET /jobs?tenant=``.
    timeout:
        Socket timeout per request, seconds.
    """

    def __init__(self, host, port, tenant=None, timeout=60.0):
        self.host = host
        self.port = int(port)
        self.tenant = tenant
        self.timeout = float(timeout)

    # -- transport -------------------------------------------------------------

    def _request(self, method, path, payload=None):
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload)
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            text = response.read().decode()
        finally:
            conn.close()
        try:
            data = json.loads(text) if text else None
        except ValueError:
            data = text
        return response.status, data

    def _expect(self, status, data, *allowed):
        if status not in allowed:
            message = data.get("error") if isinstance(data, dict) \
                else str(data)
            raise ServeError("server said {}: {}".format(status, message))
        return data

    # -- API -------------------------------------------------------------------

    def health(self):
        """The ``/healthz`` payload (raises when not healthy)."""
        status, data = self._request("GET", "/healthz")
        return self._expect(status, data, 200)

    def metrics(self):
        """The Prometheus text exposition, verbatim."""
        status, data = self._request("GET", "/metrics")
        return self._expect(status, data, 200)

    def submit(self, spec):
        """Submit a job spec (dict or :class:`~repro.serve.jobs.
        JobSpec`); returns the status dict (its ``id`` keys everything
        else)."""
        if hasattr(spec, "to_dict"):
            spec = spec.to_dict()
        else:
            spec = dict(spec)
        if self.tenant is not None:
            spec.setdefault("tenant", self.tenant)
        status, data = self._request("POST", "/jobs", payload=spec)
        return self._expect(status, data, 202)

    def jobs(self, tenant=None):
        """All job statuses (optionally one tenant's)."""
        path = "/jobs" if tenant is None else "/jobs?tenant=" + tenant
        status, data = self._request("GET", path)
        return self._expect(status, data, 200)

    def status(self, job_id):
        """One job's status dict."""
        status, data = self._request("GET", "/jobs/" + job_id)
        return self._expect(status, data, 200)

    def result(self, job_id):
        """A finished job's result payload.

        Raises :class:`~repro.errors.ServeError` while the job is still
        pending (409), and for failed (500) or cancelled (410) jobs.
        """
        status, data = self._request("GET",
                                     "/jobs/" + job_id + "/result")
        return self._expect(status, data, 200)["result"]

    def cancel(self, job_id):
        """Cancel a queued job; returns its status dict."""
        status, data = self._request("POST",
                                     "/jobs/" + job_id + "/cancel")
        return self._expect(status, data, 200)

    def wait(self, job_id, timeout=300.0, poll=0.05):
        """Block until a job reaches a terminal state; returns the final
        status dict.  Raises on timeout -- never on a failed job (the
        caller decides what a failure means)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if time.monotonic() > deadline:
                raise ServeError(
                    "job {} still {} after {}s".format(
                        job_id, status["state"], timeout))
            time.sleep(poll)

    def run(self, spec, timeout=300.0):
        """Submit, wait, and return the result payload (raises when the
        job fails or is cancelled)."""
        job_id = self.submit(spec)["id"]
        final = self.wait(job_id, timeout=timeout)
        if final["state"] != "done":
            raise ServeError("job {} ended {}: {}".format(
                job_id, final["state"], final.get("error")))
        return self.result(job_id)

    def events(self, job_id, timeout=300.0):
        """The job's SSE stream as parsed journal events (blocks until
        the stream ends; the terminal ``event: end`` status is NOT
        included -- it is the same dict :meth:`status` returns)."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)
        events = []
        try:
            conn.request("GET", "/jobs/" + job_id + "/events")
            response = conn.getresponse()
            if response.status != 200:
                raise ServeError("server said {} on events stream".format(
                    response.status))
            ended = False
            for raw in response:
                line = raw.decode("utf-8", "replace").strip()
                if line == "event: end":
                    ended = True
                elif line.startswith("data: ") and not ended:
                    try:
                        events.append(json.loads(line[len("data: "):]))
                    except ValueError:
                        continue
        finally:
            conn.close()
        return events

    def __repr__(self):
        return "ServeClient(http://{}:{}, tenant={!r})".format(
            self.host, self.port, self.tenant)
