"""Command-line interface: ``python -m repro <command>``.

Wraps the library's main entry points so the flow is usable without
writing Python:

===============  ============================================================
``info``         library summary (cells, device corners, key parameters)
``liberty``      dump the scl90 library as Liberty-lite text
``netlist``      generate a built-in design as structural Verilog
``scpg``         apply sub-clock power gating; emit Verilog/UPF/report
``sta``          timing report (with the SCPG duty/frequency window)
``power``        power report at an operating point
``table``        regenerate Table I or Table II
``subvt``        sub-threshold sweep and minimum-energy point
===============  ============================================================

Designs are referenced either by a built-in name (``mult16``, ``m0lite``,
``counter16``, ``lfsr16``) or by the path of a structural-Verilog file
produced by this tool (or any tool emitting the supported subset).
"""

from __future__ import annotations

import argparse
import sys

from .errors import ReproError
from .units import fmt_energy, fmt_freq, fmt_power, parse_si


def _load_library(args):
    from .tech.liberty import read_liberty
    from .tech.scl90 import build_scl90

    if getattr(args, "liberty", None):
        return read_liberty(args.liberty)
    return build_scl90()


def _resolve_design(name, library):
    """A design by built-in name or Verilog path."""
    from .netlist.core import Design

    builders = {
        "mult16": lambda: __import__(
            "repro.circuits.multiplier", fromlist=["build_mult16"]
        ).build_mult16(library),
        "m0lite": lambda: __import__(
            "repro.circuits.m0lite", fromlist=["build_m0lite"]
        ).build_m0lite(library),
        "counter16": lambda: __import__(
            "repro.circuits.counters", fromlist=["build_counter"]
        ).build_counter(library, width=16),
        "lfsr16": lambda: __import__(
            "repro.circuits.counters", fromlist=["build_lfsr"]
        ).build_lfsr(library, width=16),
    }
    if name in builders:
        return Design(builders[name](), library)
    from .netlist.verilog import read_verilog

    return read_verilog(name, library)


def _out(args, text):
    if getattr(args, "out", None):
        with open(args.out, "w") as f:
            f.write(text)
        print("wrote {}".format(args.out))
    else:
        sys.stdout.write(text)


# -- commands -----------------------------------------------------------------

def cmd_info(args):
    from .tech.library import CellKind

    lib = _load_library(args)
    print("library {} (vdd_nom {} V, {} cells)".format(
        lib.name, lib.vdd_nom, len(lib)))
    for kind in CellKind:
        cells = lib.cells_of_kind(kind)
        if cells:
            print("  {:<12} {}".format(
                kind.value, ", ".join(c.name for c in cells)))
    for flavour, dev in lib.devices.items():
        print("  device {:<5} vth={:.2f} V  n={:.2f}  dibl={:.2f}".format(
            flavour, dev.vth, dev.n, dev.dibl))
    return 0


def cmd_liberty(args):
    from .tech.liberty import dumps_liberty

    _out(args, dumps_liberty(_load_library(args)))
    return 0


def cmd_netlist(args):
    from .netlist.verilog import dumps_verilog

    lib = _load_library(args)
    design = _resolve_design(args.design, lib)
    _out(args, dumps_verilog(design))
    return 0


def cmd_scpg(args):
    from .netlist.verilog import dumps_verilog
    from .scpg.transform import apply_scpg

    lib = _load_library(args)
    design = _resolve_design(args.design, lib)
    scpg = apply_scpg(design, clock_port=args.clock,
                      header_size=args.header_size)
    print("SCPG applied to {}:".format(design.top.name))
    print("  isolation cells : {}".format(len(scpg.iso_instances)))
    print("  headers         : {} x HEADER_X{}".format(
        scpg.headers.count, scpg.headers.cell.drive_strength))
    print("  area overhead   : {:.2f}%".format(scpg.area_overhead_pct))
    print("  T_PGStart       : {:.3g} s".format(scpg.timing.t_pgstart))
    if args.verilog:
        with open(args.verilog, "w") as f:
            f.write(dumps_verilog(scpg.design))
        print("wrote {}".format(args.verilog))
    if args.upf:
        with open(args.upf, "w") as f:
            f.write(scpg.upf)
        print("wrote {}".format(args.upf))
    return 0


def cmd_sta(args):
    from .sta.analysis import TimingAnalysis
    from .sta.report import render_timing_report

    lib = _load_library(args)
    design = _resolve_design(args.design, lib)
    result = TimingAnalysis(design.top, lib).run(
        vdd=args.vdd if args.vdd else None)
    _out(args, render_timing_report(result, design=design.top.name,
                                    clock=args.clock))
    return 0


def cmd_power(args):
    from .power.leakage import leakage_power
    from .power.probabilistic import estimate_activity
    from .power.report import PowerReport
    from .power.dynamic import DynamicReport
    from .sta.delay import net_load

    lib = _load_library(args)
    design = _resolve_design(args.design, lib)
    vdd = args.vdd or lib.vdd_nom
    freq = parse_si(args.freq, "Hz")
    leak = leakage_power(design.top, lib, vdd=vdd)

    # Vectorless dynamic estimate (measured activity needs a workload;
    # use the Python API for that).
    est = estimate_activity(design.top)
    e_cycle = 0.0
    by_net = {}
    half_v2 = 0.5 * vdd * vdd
    for net in design.top.nets():
        if net.is_const:
            continue
        density = est.density.get(net.name, 0.0)
        if density <= 0:
            continue
        cap = net_load(net, lib)
        driver = net.driver
        if isinstance(driver, tuple) and driver[0].is_cell:
            cap += driver[0].cell.c_internal
        energy = half_v2 * cap * density
        by_net[net.name] = energy
        e_cycle += energy
    dyn = DynamicReport(vdd=vdd, freq_hz=freq, cycles=1,
                        energy_per_cycle=e_cycle, glitch_factor=1.0,
                        by_net=by_net)
    report = PowerReport(design=design.top.name, vdd=vdd, freq_hz=freq,
                         leakage=leak, dynamic=dyn)
    _out(args, report.render())
    return 0


def cmd_table(args):
    from .analysis.tables import (
        TABLE_I_FREQS,
        TABLE_II_FREQS,
        build_table,
        format_table,
    )

    if args.which == 1:
        from .paper import multiplier_study

        study = multiplier_study(fast=args.fast)
        rows = build_table(study.model, TABLE_I_FREQS)
        title = "TABLE I (16-bit multiplier)"
    else:
        from .paper import cortex_m0_study

        study = cortex_m0_study(fast=args.fast)
        rows = build_table(study.model, TABLE_II_FREQS)
        title = "TABLE II (Cortex-M0 / M0-lite)"
    _out(args, format_table(rows, title) + "\n")
    return 0


def cmd_subvt(args):
    from .power.leakage import leakage_power
    from .power.probabilistic import estimate_activity
    from .sta.analysis import TimingAnalysis
    from .sta.delay import net_load
    from .subvt.energy import SubvtModel, energy_sweep, \
        minimum_energy_point

    lib = _load_library(args)
    design = _resolve_design(args.design, lib)
    sta = TimingAnalysis(design.top, lib).run()
    leak = leakage_power(design.top, lib)

    est = estimate_activity(design.top)
    half_v2 = 0.5 * lib.vdd_nom ** 2
    e_cycle = 0.0
    for net in design.top.nets():
        if net.is_const:
            continue
        density = est.density.get(net.name, 0.0)
        if density <= 0:
            continue
        cap = net_load(net, lib)
        driver = net.driver
        if isinstance(driver, tuple) and driver[0].is_cell:
            cap += driver[0].cell.c_internal
        e_cycle += half_v2 * cap * density

    model = SubvtModel(lib, e_cycle, leak.total, sta.min_period)
    print("{:>8} {:>12} {:>12} {:>12}".format(
        "VDD", "Fmax", "E/op", "power"))
    for point in energy_sweep(model, steps=16):
        print("{:>6.2f}V {:>12} {:>12} {:>12}".format(
            point.vdd, fmt_freq(point.fmax_hz), fmt_energy(point.energy),
            fmt_power(point.power)))
    mep = minimum_energy_point(model)
    print("\nminimum-energy point: {:.0f} mV, {} per op, Fmax {}".format(
        mep.vdd * 1e3, fmt_energy(mep.energy), fmt_freq(mep.fmax_hz)))
    return 0


# -- argument parsing -----------------------------------------------------------

def build_parser():
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sub-clock power gating (DATE 2011) reproduction "
                    "toolkit",
    )
    parser.add_argument("--liberty", help="use a Liberty-lite library "
                        "file instead of the built-in scl90")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library summary").set_defaults(
        func=cmd_info)

    p = sub.add_parser("liberty", help="dump the library as Liberty-lite")
    p.add_argument("--out")
    p.set_defaults(func=cmd_liberty)

    p = sub.add_parser("netlist", help="emit a design as Verilog")
    p.add_argument("design")
    p.add_argument("--out")
    p.set_defaults(func=cmd_netlist)

    p = sub.add_parser("scpg", help="apply sub-clock power gating")
    p.add_argument("design")
    p.add_argument("--clock", default="clk")
    p.add_argument("--header-size", type=int, choices=(1, 2, 4, 8))
    p.add_argument("--verilog", help="write the transformed netlist here")
    p.add_argument("--upf", help="write the power intent here")
    p.set_defaults(func=cmd_scpg)

    p = sub.add_parser("sta", help="timing report")
    p.add_argument("design")
    p.add_argument("--clock", default="clk")
    p.add_argument("--vdd", type=float)
    p.add_argument("--out")
    p.set_defaults(func=cmd_sta)

    p = sub.add_parser("power", help="power report")
    p.add_argument("design")
    p.add_argument("--freq", default="1MHz")
    p.add_argument("--vdd", type=float)
    p.add_argument("--out")
    p.set_defaults(func=cmd_power)

    p = sub.add_parser("table", help="regenerate Table I or II")
    p.add_argument("which", type=int, choices=(1, 2))
    p.add_argument("--fast", action="store_true",
                   help="trimmed workloads")
    p.add_argument("--out")
    p.set_defaults(func=cmd_table)

    p = sub.add_parser("subvt", help="sub-threshold sweep")
    p.add_argument("design")
    p.set_defaults(func=cmd_subvt)

    return parser


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
