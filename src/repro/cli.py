"""Command-line interface: ``python -m repro <command>``.

Wraps the library's main entry points so the flow is usable without
writing Python:

===============  ============================================================
``info``         library summary (cells, device corners, key parameters)
``liberty``      dump the scl90 library as Liberty-lite text
``netlist``      generate a built-in design as structural Verilog
``scpg``         apply sub-clock power gating; emit Verilog/UPF/report
``sta``          timing report (with the SCPG duty/frequency window)
``power``        power report at an operating point
``table``        regenerate Table I or Table II
``compare``      compare power-gating techniques (scpg/cbtstc/lector)
``designs``      browse the design database; elaborate or sweep a family
``serve``        HTTP job API: sweeps as a service over a shared store
``subvt``        sub-threshold sweep and minimum-energy point
``report``       replay a run journal/trace into a timing + anomaly report
===============  ============================================================

Designs are referenced by a registered name (``mult16``, ``m0lite``,
``counter16``, ``lfsr16``), a design-database spec such as
``"multiplier(n=8)"`` (see ``repro designs list`` and
``repro.circuits.generators``), or the path of a structural-Verilog file
produced by this tool (or any tool emitting the supported subset).

Every command runs through one :class:`repro.Session`, so the global
options compose with all of them: ``--workers N`` fans sweeps over worker
processes (``--pool {shared,fresh}`` keeps one warm pool across every
grid or forks per grid; ``--chunk-size N`` overrides the adaptive
points-per-chunk of the parallel batch path), ``--cache DIR`` reuses the
content-addressed result cache
(``--no-cache`` disables it, default honours ``REPRO_CACHE_DIR``),
``--no-artifact-cache`` disables the per-circuit precompute cache
(every analysis walks the netlist again, as before the artifact layer),
``--stats`` prints the runner's counters and stage timings to stderr,
``--stats-json PATH`` writes the same counters as JSON,
``--journal PATH`` appends a JSONL event log of every grid point the
command evaluated, ``--trace PATH`` appends nested trace spans
(grid/stage/point/attempt) as JSONL, and ``--metrics PATH`` writes a
Prometheus text exposition of the run's metrics on exit -- stdout stays
byte-identical to the serial, uncached, untraced output.
"""

from __future__ import annotations

import argparse
import sys

from .errors import ReproError
from .units import fmt_energy, fmt_freq, fmt_power, parse_si


def _session(args):
    """The command's :class:`~repro.session.Session` (one per invocation)."""
    if getattr(args, "_session_obj", None) is None:
        from .session import Session

        if getattr(args, "no_cache", False):
            cache = None
        elif getattr(args, "cache", None):
            cache = args.cache
        else:
            cache = "auto"
        args._session_obj = Session(
            liberty=getattr(args, "liberty", None) or None,
            workers=getattr(args, "workers", None),
            cache=cache,
            journal=getattr(args, "journal", None) or None,
            artifacts=not getattr(args, "no_artifact_cache", False),
            trace=getattr(args, "trace", None) or None,
            metrics=bool(getattr(args, "metrics", None)),
            pool=getattr(args, "pool", "shared") or "shared",
            chunk_size=getattr(args, "chunk_size", None))
    return args._session_obj


def _load_library(args):
    return _session(args).library


def _resolve_design(name, library):
    """Deprecated shim: use :func:`repro.circuits.registry.resolve`."""
    from .circuits import registry

    return registry.resolve(name, library)


def _out(args, text):
    if getattr(args, "out", None):
        with open(args.out, "w") as f:
            f.write(text)
        print("wrote {}".format(args.out))
    else:
        sys.stdout.write(text)


# -- commands -----------------------------------------------------------------

def cmd_info(args):
    from .tech.library import CellKind

    lib = _load_library(args)
    print("library {} (vdd_nom {} V, {} cells)".format(
        lib.name, lib.vdd_nom, len(lib)))
    for kind in CellKind:
        cells = lib.cells_of_kind(kind)
        if cells:
            print("  {:<12} {}".format(
                kind.value, ", ".join(c.name for c in cells)))
    for flavour, dev in lib.devices.items():
        print("  device {:<5} vth={:.2f} V  n={:.2f}  dibl={:.2f}".format(
            flavour, dev.vth, dev.n, dev.dibl))
    print("  designs      {}".format(
        ", ".join(_session(args).designs())))
    return 0


def cmd_liberty(args):
    from .tech.liberty import dumps_liberty

    _out(args, dumps_liberty(_load_library(args)))
    return 0


def cmd_netlist(args):
    _out(args, _session(args).design(args.design).netlist())
    return 0


def cmd_scpg(args):
    from .netlist.verilog import dumps_verilog

    handle = _session(args).design(args.design)
    scpg = handle.scpg(clock_port=args.clock,
                       header_size=args.header_size)
    print("SCPG applied to {}:".format(handle.design.top.name))
    print("  isolation cells : {}".format(len(scpg.iso_instances)))
    print("  headers         : {} x HEADER_X{}".format(
        scpg.headers.count, scpg.headers.cell.drive_strength))
    print("  area overhead   : {:.2f}%".format(scpg.area_overhead_pct))
    print("  T_PGStart       : {:.3g} s".format(scpg.timing.t_pgstart))
    if args.verilog:
        with open(args.verilog, "w") as f:
            f.write(dumps_verilog(scpg.design))
        print("wrote {}".format(args.verilog))
    if args.upf:
        with open(args.upf, "w") as f:
            f.write(scpg.upf)
        print("wrote {}".format(args.upf))
    return 0


def cmd_sta(args):
    from .sta.report import render_timing_report

    handle = _session(args).design(args.design)
    result = handle.sta(vdd=args.vdd if args.vdd else None)
    _out(args, render_timing_report(result,
                                    design=handle.design.top.name,
                                    clock=args.clock))
    return 0


def cmd_power(args):
    handle = _session(args).design(args.design)
    report = handle.power_report(parse_si(args.freq, "Hz"),
                                 vdd=args.vdd)
    _out(args, report.render())
    return 0


def cmd_table(args):
    from .analysis.tables import (
        TABLE_I_FREQS,
        TABLE_II_FREQS,
        build_table,
        format_table,
    )

    session = _session(args)
    if args.which == 1:
        from .paper import multiplier_study

        study = multiplier_study(fast=args.fast)
        rows = build_table(study.model, TABLE_I_FREQS,
                           runner=session.runner)
        title = "TABLE I (16-bit multiplier)"
    else:
        from .paper import cortex_m0_study

        study = cortex_m0_study(fast=args.fast)
        rows = build_table(study.model, TABLE_II_FREQS,
                           runner=session.runner)
        title = "TABLE II (Cortex-M0 / M0-lite)"
    _out(args, format_table(rows, title) + "\n")
    return 0


def cmd_compare(args):
    import json

    from .techniques import available_techniques, format_comparison

    session = _session(args)
    techniques = [t.strip() for t in args.techniques.split(",")
                  if t.strip()] if args.techniques else None
    freqs = [parse_si(f, "Hz") for f in args.freqs.split(",")] \
        if args.freqs else None
    comparison = session.compare_techniques(
        args.design, freqs=freqs, techniques=techniques,
        vdd=args.vdd if args.vdd else None)
    text = format_comparison(comparison) + "\n"
    if args.json:
        with open(args.json, "w") as f:
            json.dump(comparison.as_dict(), f, indent=2, sort_keys=True)
            f.write("\n")
        text += "wrote {}\n".format(args.json)
    _out(args, text)
    if args.list_techniques:
        print("registered: {}".format(", ".join(available_techniques())))
    return 0


def _axis_values(spec, text):
    """Parse a ``--param name=v1,v2`` value list using the declared type."""
    values = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if spec.type is bool:
            values.append(chunk.lower() in ("1", "true", "yes"))
        elif spec.type is float:
            values.append(float(chunk))
        elif spec.type is int:
            values.append(int(chunk))
        else:
            values.append(chunk)
    return values


def cmd_designs(args):
    import json

    from .circuits import generators
    from .netlist.stats import module_stats

    session = _session(args)

    if args.action != "list" and not args.target:
        raise ReproError(
            "designs {} needs a target (family or design)".format(
                args.action))

    if args.action == "list":
        print("generator families:")
        for name in session.families():
            fam = generators.family(name)
            params = ", ".join(
                "{}={!r}".format(p.name, p.default) if p.default is not None
                else p.name for p in fam.params)
            print("  {:<12} {}".format(name, params or "(no parameters)"))
        print("registered designs: {}".format(
            ", ".join(session.designs())))
        return 0

    if args.action == "show":
        fam = generators.family(args.target)
        print("family {} (defined at {})".format(fam.name, fam.site))
        if fam.doc:
            print("  {}".format(fam.doc.splitlines()[0]))
        if fam.paper:
            print("  paper: {}".format(fam.paper))
        if fam.params:
            print("  {:<12} {:<7} {:<18} {}".format(
                "param", "type", "range", "default"))
            for p in fam.params:
                print("  {:<12} {:<7} {:<18} {}".format(
                    p.name, p.type.__name__, p.range_text(),
                    "-" if p.default is None else repr(p.default)))
        for key in fam.catalog_keys():
            stats = module_stats(generators.elaborate(key,
                                                      session.library))
            print("  {:<36} {} cells ({} comb, {} seq), {} nets".format(
                str(key), stats.cells, stats.comb_gates, stats.seq_cells,
                stats.nets))
        return 0

    if args.action == "elaborate":
        handle = session.design(args.target)
        stats = module_stats(handle.design.top)
        print("design    {}".format(handle.name))
        print("module    {}".format(handle.design.top.name))
        print("cells     {} ({} combinational, {} sequential)".format(
            stats.cells, stats.comb_gates, stats.seq_cells))
        print("nets      {}".format(stats.nets))
        print("area      {:.1f} um^2".format(stats.area))
        print("leakage   {}".format(fmt_power(stats.leakage_nominal)))
        if args.out:
            with open(args.out, "w") as f:
                f.write(handle.netlist())
            print("wrote {}".format(args.out))
        return 0

    # sweep: expand the family over --param axes, Table-style per design.
    fam = generators.family(args.target)
    axes = {}
    for spec_text in args.param or []:
        name, sep, values = spec_text.partition("=")
        if not sep:
            raise ReproError(
                "--param expects NAME=V1,V2,... (got {!r})".format(
                    spec_text))
        axes[name.strip()] = _axis_values(fam.spec(name.strip()), values)
    freqs = [parse_si(f, "Hz") for f in args.freqs.split(",")] \
        if args.freqs else [1e4, 1e5, 1e6, 5e6]
    handles = session.expand_family(args.target, **axes)
    results = []
    lines = ["{:<40} {:>10} {:>10} {:>10} {:>8}".format(
        "design", "freq", "no-pg", "scpg", "saving")]
    for handle in handles:
        rows = handle.table(freqs)
        for row in rows:
            lines.append(
                "{:<40} {:>10} {:>10} {:>10} {:>7.1f}%".format(
                    handle.name, fmt_freq(row.freq_hz),
                    fmt_power(row.power_nopg),
                    fmt_power(row.power_scpg) if row.power_scpg is not None
                    else "-",
                    row.saving_scpg_pct
                    if row.saving_scpg_pct is not None else float("nan")))
        results.append({
            "design": handle.name,
            "rows": [
                {"freq_hz": r.freq_hz, "power_nopg": r.power_nopg,
                 "power_scpg": r.power_scpg,
                 "saving_scpg_pct": r.saving_scpg_pct}
                for r in rows
            ],
        })
    _out(args, "\n".join(lines) + "\n")
    if args.json:
        with open(args.json, "w") as f:
            json.dump(results, f, indent=2, sort_keys=True)
            f.write("\n")
        print("wrote {}".format(args.json))
    return 0


def cmd_report(args):
    from .obs.report import render_report

    _out(args, render_report(args.journal_file,
                             straggler_k=args.straggler_k))
    return 0


def cmd_serve(args):
    from .serve import SweepService, serve_forever
    from .session import Session

    if getattr(args, "no_cache", False) and not args.store:
        cache, store = None, None
    elif args.store:
        cache, store = "auto", args.store
    elif getattr(args, "cache", None):
        cache, store = args.cache, None
    else:
        cache, store = "auto", None
    session = Session(
        liberty=getattr(args, "liberty", None) or None,
        workers=args.workers, cache=cache, store=store,
        artifacts=not getattr(args, "no_artifact_cache", False),
        metrics=True, pool=getattr(args, "pool", "shared") or "shared",
        chunk_size=getattr(args, "chunk_size", None))
    args._session_obj = session
    service = SweepService(session=session, spool=args.spool)
    try:
        serve_forever(service, host=args.host, port=args.port)
    finally:
        service.close()
    return 0


def cmd_subvt(args):
    from .subvt.energy import energy_sweep, minimum_energy_point

    session = _session(args)
    model = session.design(args.design).subvt_model()
    print("{:>8} {:>12} {:>12} {:>12}".format(
        "VDD", "Fmax", "E/op", "power"))
    for point in energy_sweep(model, steps=16, runner=session.runner):
        print("{:>6.2f}V {:>12} {:>12} {:>12}".format(
            point.vdd, fmt_freq(point.fmax_hz), fmt_energy(point.energy),
            fmt_power(point.power)))
    mep = minimum_energy_point(model, runner=session.runner)
    print("\nminimum-energy point: {:.0f} mV, {} per op, Fmax {}".format(
        mep.vdd * 1e3, fmt_energy(mep.energy), fmt_freq(mep.fmax_hz)))
    return 0


# -- argument parsing -----------------------------------------------------------

def build_parser():
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sub-clock power gating (DATE 2011) reproduction "
                    "toolkit",
    )
    parser.add_argument("--liberty", help="use a Liberty-lite library "
                        "file instead of the built-in scl90")
    parser.add_argument("--workers", type=int, help="worker processes "
                        "for sweeps (0 = one per core; default serial)")
    parser.add_argument("--pool", choices=("shared", "fresh"),
                        default="shared",
                        help="worker-pool policy with --workers: "
                        "'shared' keeps one warm pool across every grid "
                        "(default), 'fresh' forks a new pool per grid")
    parser.add_argument("--chunk-size", type=int, metavar="N",
                        help="points per chunk on the parallel batch "
                        "path (default: adaptive, about pending / "
                        "(4 * workers))")
    parser.add_argument("--cache", help="result-cache directory "
                        "(default: $REPRO_CACHE_DIR when set)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache")
    parser.add_argument("--no-artifact-cache", action="store_true",
                        help="disable the per-circuit artifact cache "
                        "(precomputed STA/leakage/switching tables)")
    parser.add_argument("--stats", action="store_true",
                        help="print runner counters and stage timings "
                        "to stderr")
    parser.add_argument("--journal", metavar="PATH",
                        help="append a JSONL run journal (point "
                        "started/finished/retried, crashes, timings) "
                        "to PATH")
    parser.add_argument("--stats-json", metavar="PATH",
                        help="write the runner's counters and stage "
                        "timings to PATH as JSON on exit")
    parser.add_argument("--trace", metavar="PATH",
                        help="append JSONL trace spans (grid/stage/"
                        "point/attempt, with parent ids and monotonic "
                        "timings) to PATH")
    parser.add_argument("--metrics", metavar="PATH",
                        help="write a Prometheus text exposition of the "
                        "run's counters/gauges/histograms to PATH on "
                        "exit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library summary").set_defaults(
        func=cmd_info)

    p = sub.add_parser("liberty", help="dump the library as Liberty-lite")
    p.add_argument("--out")
    p.set_defaults(func=cmd_liberty)

    p = sub.add_parser("netlist", help="emit a design as Verilog")
    p.add_argument("design")
    p.add_argument("--out")
    p.set_defaults(func=cmd_netlist)

    p = sub.add_parser("scpg", help="apply sub-clock power gating")
    p.add_argument("design")
    p.add_argument("--clock", default="clk")
    p.add_argument("--header-size", type=int, choices=(1, 2, 4, 8))
    p.add_argument("--verilog", help="write the transformed netlist here")
    p.add_argument("--upf", help="write the power intent here")
    p.set_defaults(func=cmd_scpg)

    p = sub.add_parser("sta", help="timing report")
    p.add_argument("design")
    p.add_argument("--clock", default="clk")
    p.add_argument("--vdd", type=float)
    p.add_argument("--out")
    p.set_defaults(func=cmd_sta)

    p = sub.add_parser("power", help="power report")
    p.add_argument("design")
    p.add_argument("--freq", default="1MHz")
    p.add_argument("--vdd", type=float)
    p.add_argument("--out")
    p.set_defaults(func=cmd_power)

    p = sub.add_parser("table", help="regenerate Table I or II")
    p.add_argument("which", type=int, choices=(1, 2))
    p.add_argument("--fast", action="store_true",
                   help="trimmed workloads")
    p.add_argument("--out")
    p.set_defaults(func=cmd_table)

    p = sub.add_parser("compare", help="compare power-gating techniques "
                       "on one design")
    p.add_argument("design")
    p.add_argument("--techniques", metavar="A,B,...",
                   help="comma-separated registry names (default: all "
                   "registered techniques)")
    p.add_argument("--freqs", metavar="F1,F2,...",
                   help="comma-separated frequency grid, SI suffixes "
                   "allowed (default: 10kHz,100kHz,1MHz,5MHz)")
    p.add_argument("--vdd", type=float,
                   help="operating supply (default: library nominal)")
    p.add_argument("--json", metavar="PATH",
                   help="also write the comparison as JSON to PATH")
    p.add_argument("--list-techniques", action="store_true",
                   help="print the registered technique names")
    p.add_argument("--out")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("designs", help="browse the design database; "
                       "elaborate or sweep a generator family")
    p.add_argument("action", choices=("list", "show", "elaborate",
                                      "sweep"),
                   help="'list' families and registered designs, 'show' "
                   "one family's parameter space and catalog, "
                   "'elaborate' one design (stats, optional Verilog), "
                   "'sweep' a family's parameter grid")
    p.add_argument("target", nargs="?",
                   help="family name (show/sweep) or design name / "
                   "spec such as \"multiplier(n=8)\" (elaborate)")
    p.add_argument("--param", action="append", metavar="NAME=V1,V2,...",
                   help="sweep axis (repeatable); e.g. --param "
                   "n=4,8,16,32")
    p.add_argument("--freqs", metavar="F1,F2,...",
                   help="frequency grid for 'sweep', SI suffixes "
                   "allowed (default: 10kHz,100kHz,1MHz,5MHz)")
    p.add_argument("--json", metavar="PATH",
                   help="also write the sweep results as JSON to PATH")
    p.add_argument("--out")
    p.set_defaults(func=cmd_designs)

    p = sub.add_parser("serve", help="run the sweep job service: an "
                       "HTTP API accepting sweep/compare/family-sweep "
                       "jobs over one warm session")
    p.add_argument("--host", default="127.0.0.1",
                   help="listen address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8080,
                   help="listen port (default 8080; 0 picks a free one)")
    p.add_argument("--store", metavar="PATH",
                   help="SQLite result store shared by every job (and "
                   "any other process pointed at the same file); "
                   "default: the --cache directory store")
    p.add_argument("--spool", metavar="DIR",
                   help="directory for per-job JSONL journals "
                   "(default: a temp directory)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("subvt", help="sub-threshold sweep")
    p.add_argument("design")
    p.set_defaults(func=cmd_subvt)

    p = sub.add_parser("report", help="replay a run journal/trace into "
                       "per-stage timings, hit ratios and anomaly flags")
    p.add_argument("journal_file", help="JSONL journal (--journal) or "
                   "trace (--trace) file to replay")
    p.add_argument("--straggler-k", type=float, default=3.0,
                   help="flag points slower than K x the grid's p95 "
                   "(default 3.0)")
    p.add_argument("--out")
    p.set_defaults(func=cmd_report)

    return parser


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 1
    finally:
        session = getattr(args, "_session_obj", None)
        if session is not None:
            if args.stats:
                print(session.stats.render(), file=sys.stderr)
            if getattr(args, "stats_json", None):
                import json

                with open(args.stats_json, "w") as f:
                    json.dump(session.stats.to_dict(), f, indent=2,
                              sort_keys=True)
                    f.write("\n")
            if getattr(args, "metrics", None):
                with open(args.metrics, "w") as f:
                    f.write(session.metrics().render())
            session.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
