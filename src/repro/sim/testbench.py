"""Clocked testbench harness over the event-driven simulator.

Drives a standard cycle protocol: inputs change while the clock is low, a
rising edge captures flip-flops, the high phase completes, then the clock
falls.  Vector streams and bus helpers make running workloads one-liners::

    tb = ClockedTestbench(module, clock="clk")
    tb.reset_flops()
    tb.cycle({"a_0": 1, "a_1": 0})
    product = read_bus(tb.sim, "p", 32)
"""

from __future__ import annotations

from ..errors import SimulationError
from .event import Simulator
from .logic import X


def drive_bus(sim_or_tb, name, width, value):
    """Drive the bit-blasted bus ``name_0..name_{width-1}`` with ``value``."""
    sim = sim_or_tb.sim if isinstance(sim_or_tb, ClockedTestbench) \
        else sim_or_tb
    sim.set_inputs(
        {"{}_{}".format(name, i): (value >> i) & 1 for i in range(width)}
    )


def bus_values(name, width, value):
    """Dict of pin assignments for a bus (to merge into a vector)."""
    return {"{}_{}".format(name, i): (value >> i) & 1 for i in range(width)}


def read_bus(sim, name, width):
    """Read a bus as an int; returns ``None`` if any bit is X."""
    out = 0
    for i in range(width):
        v = sim.value("{}_{}".format(name, i))
        if v == X:
            return None
        out |= v << i
    return out


class ClockedTestbench:
    """Cycle-level driver for a flat module with a single clock input."""

    def __init__(self, module, clock="clk", record_toggles=True):
        self.sim = Simulator(module, record_toggles=record_toggles)
        self.clock = clock
        if clock not in [p.name for p in module.input_ports()]:
            raise SimulationError(
                "module {} has no clock input {}".format(module.name, clock)
            )
        self.cycles = 0
        self.sim.set_input(clock, 0)

    def reset_flops(self, value=0):
        """Force all flip-flops to a known state (posedge-free init)."""
        self.sim.force_flop_state(value)

    def apply(self, inputs):
        """Change inputs during the low phase (no clock edge)."""
        if self.clock in inputs:
            raise SimulationError("drive the clock via cycle(), not apply()")
        self.sim.set_inputs(inputs)

    def posedge(self):
        """Raise the clock (captures flip-flops)."""
        self.sim.set_input(self.clock, 1)

    def negedge(self):
        """Lower the clock."""
        self.sim.set_input(self.clock, 0)

    def cycle(self, inputs=None):
        """One full clock cycle: apply ``inputs``, rising edge, falling edge."""
        if inputs:
            self.apply(inputs)
        self.posedge()
        self.negedge()
        self.cycles += 1

    def run(self, vectors):
        """Run a sequence of input dicts, one per cycle."""
        for vec in vectors:
            self.cycle(vec)

    def toggles_per_cycle(self):
        """Average net toggles per executed cycle (activity metric)."""
        if self.cycles == 0:
            return 0.0
        return self.sim.total_toggles() / self.cycles
