"""VCD (value change dump) writer and a small parser.

The paper's methodology creates a VCD from ModelSim and feeds it to
PrimeTime-PX.  Our simulator can stream net changes into a VCD file through
:class:`VcdWriter` (attach it as a watcher), and :func:`parse_vcd` reads
the subset back (toggle counting, cross-checking).
"""

from __future__ import annotations

import io

from ..errors import SimulationError
from .logic import X

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index):
    """Short VCD identifier code for signal ``index``."""
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(chars)


class VcdWriter:
    """Stream net value changes as VCD.

    Usage::

        writer = VcdWriter(out_file, [net.name for net in nets])
        sim.add_watcher(writer.on_change)
        ...
        writer.set_time(cycle * period_ns)
        tb.cycle(vec)
        writer.close()
    """

    def __init__(self, stream, net_names, timescale="1ns",
                 module_name="top"):
        self._stream = stream if hasattr(stream, "write") else None
        if self._stream is None:
            raise SimulationError("VcdWriter needs a writable stream")
        self._ids = {}
        self._time = 0
        self._time_written = None
        out = self._stream
        out.write("$date repro $end\n")
        out.write("$version repro gate-level simulator $end\n")
        out.write("$timescale {} $end\n".format(timescale))
        out.write("$scope module {} $end\n".format(module_name))
        for i, name in enumerate(net_names):
            ident = _identifier(i)
            self._ids[name] = ident
            out.write("$var wire 1 {} {} $end\n".format(ident, name))
        out.write("$upscope $end\n$enddefinitions $end\n")
        out.write("$dumpvars\n")
        for name in net_names:
            out.write("x{}\n".format(self._ids[name]))
        out.write("$end\n")

    def set_time(self, time):
        """Advance the VCD timestamp (monotonic)."""
        if time < self._time:
            raise SimulationError("VCD time must not go backwards")
        self._time = time

    def on_change(self, net, old, new):
        """Watcher callback for :meth:`Simulator.add_watcher`."""
        ident = self._ids.get(net.name)
        if ident is None:
            return
        if self._time_written != self._time:
            self._stream.write("#{}\n".format(self._time))
            self._time_written = self._time
        symbol = "x" if new == X else str(new)
        self._stream.write("{}{}\n".format(symbol, ident))

    def close(self):
        """Flush the stream (caller owns closing files)."""
        self._stream.flush()


def dump_simulation(module, vectors, clock="clk", period_ns=10,
                    net_names=None):
    """Convenience: run ``vectors`` through a testbench, return VCD text."""
    from .testbench import ClockedTestbench

    tb = ClockedTestbench(module)
    tb.reset_flops()
    names = net_names or [n.name for n in module.nets() if not n.is_const]
    out = io.StringIO()
    writer = VcdWriter(out, names, module_name=module.name)
    tb.sim.add_watcher(writer.on_change)
    for i, vec in enumerate(vectors):
        writer.set_time(i * period_ns)
        tb.apply(vec)
        writer.set_time(i * period_ns + period_ns // 2)
        tb.posedge()
        tb.negedge()
        tb.cycles += 1
    writer.close()
    return out.getvalue()


def parse_vcd(text):
    """Parse VCD text into ``(changes, name_by_id)``.

    ``changes`` is a list of ``(time, identifier, value)`` with value 0/1/X.
    """
    name_by_id = {}
    changes = []
    time = 0
    in_defs = True
    tokens = iter(text.split("\n"))
    for line in tokens:
        line = line.strip()
        if not line:
            continue
        if in_defs:
            if line.startswith("$var"):
                parts = line.split()
                # $var wire 1 <id> <name> $end
                name_by_id[parts[3]] = parts[4]
            elif line.startswith("$enddefinitions"):
                in_defs = False
            continue
        if line.startswith("$"):
            continue
        if line.startswith("#"):
            time = int(line[1:])
            continue
        symbol, ident = line[0], line[1:]
        if symbol in "01xX":
            value = X if symbol in "xX" else int(symbol)
            changes.append((time, ident, value))
    return changes, name_by_id
