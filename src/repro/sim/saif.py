"""SAIF-lite: switching-activity interchange.

Real flows hand activity from simulation to power tools as SAIF (per-net
``T0``/``T1`` durations and ``TC`` toggle counts).  This module writes and
parses a SAIF subset so activity captured by the event simulator can be
stored, diffed and fed back into :func:`repro.power.dynamic.dynamic_power`
without re-simulating::

    (SAIFILE
      (SAIFVERSION "2.0")
      (DURATION 300)
      (INSTANCE top
        (NET
          (n1 (T0 120) (T1 180) (TC 42))
          ...))

Durations are in clock cycles (the simulator is cycle-based).
"""

from __future__ import annotations

import io
import re

from ..errors import SimulationError


def write_saif(stream_or_path, module, cycles, toggles, probabilities=None,
               instance=None):
    """Write SAIF-lite for ``module``.

    Parameters
    ----------
    cycles:
        Observation window in cycles.
    toggles:
        Dict net name -> toggle count (``Simulator.toggle_snapshot``).
    probabilities:
        Optional dict net name -> P(net = 1); ``T1 = P * cycles``.  When
        absent, a 0.5 split is assumed.
    """
    if cycles <= 0:
        raise SimulationError("SAIF needs a positive duration")
    probabilities = probabilities or {}
    own = isinstance(stream_or_path, (str, bytes))
    stream = open(stream_or_path, "w") if own else stream_or_path
    try:
        w = stream.write
        w("(SAIFILE\n")
        w('  (SAIFVERSION "2.0")\n')
        w('  (DIRECTION "backward")\n')
        w("  (DURATION {})\n".format(int(cycles)))
        w("  (INSTANCE {}\n".format(instance or module.name))
        w("    (NET\n")
        for net in module.nets():
            if net.is_const:
                continue
            tc = int(toggles.get(net.name, 0))
            p1 = probabilities.get(net.name, 0.5)
            t1 = int(round(p1 * cycles))
            t0 = int(cycles) - t1
            w("      ({} (T0 {}) (T1 {}) (TC {}))\n".format(
                net.name, t0, t1, tc))
        w("    )\n  )\n)\n")
    finally:
        if own:
            stream.close()


def dumps_saif(module, cycles, toggles, probabilities=None):
    """SAIF-lite text in a string."""
    out = io.StringIO()
    write_saif(out, module, cycles, toggles, probabilities)
    return out.getvalue()


_NET_RE = re.compile(
    r"\(\s*([^\s()]+)\s*\(T0\s+(\d+)\)\s*\(T1\s+(\d+)\)\s*\(TC\s+(\d+)\)\s*\)"
)
_DURATION_RE = re.compile(r"\(DURATION\s+(\d+)\)")


def parse_saif(text):
    """Parse SAIF-lite; returns ``(duration, {net: (t0, t1, tc)})``."""
    m = _DURATION_RE.search(text)
    if not m:
        raise SimulationError("SAIF input has no DURATION")
    duration = int(m.group(1))
    nets = {}
    for name, t0, t1, tc in _NET_RE.findall(text):
        nets[name] = (int(t0), int(t1), int(tc))
    if not nets:
        raise SimulationError("SAIF input has no NET entries")
    return duration, nets


def read_saif(path):
    """Read a SAIF-lite file."""
    with open(path) as f:
        return parse_saif(f.read())


def toggles_from_saif(saif_nets):
    """Extract the toggle-count dict the power engine consumes."""
    return {name: tc for name, (_t0, _t1, tc) in saif_nets.items()}


def probabilities_from_saif(saif_nets, duration):
    """Extract P(net = 1) per net."""
    if duration <= 0:
        raise SimulationError("bad SAIF duration")
    return {
        name: t1 / duration for name, (_t0, t1, _tc) in saif_nets.items()
    }
