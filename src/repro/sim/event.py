"""Event-driven gate-level simulator.

Zero-delay semantics: on each input change, affected cones re-evaluate until
the netlist settles (functional toggles only; the power model applies a
measured glitch factor for deep arithmetic arrays, see
:mod:`repro.power.dynamic`).  Flip-flops trigger on the rising edge of the
net at their clock pin -- the clock is an ordinary net, so gated and
duty-cycle-shaped clocks (the SCPG header control) simulate naturally.

On an acyclic combinational graph each settle wave is processed in
*topological generations*: all gates affected by one simultaneous set of
net changes are evaluated once each, in dependency order, so every net
makes at most one transition per generation and the recorded toggles are
exactly the functional ones (this is also what makes the levelized
vector-parallel engine in :mod:`repro.sim.compiled` bit-for-bit
equivalent).  Netlists with combinational feedback (latch loops) fall
back to FIFO event order, which settles loops but may record
order-dependent hazard transitions.

Typical use goes through :class:`~repro.sim.testbench.ClockedTestbench`;
direct use::

    sim = Simulator(design.flatten().top)
    sim.set_input("a_0", 1)
    sim.settle()
    value = sim.value("p_3")
"""

from __future__ import annotations

import heapq
from collections import deque

from ..errors import NetlistError, SimulationError
from ..tech.library import CellKind
from .logic import X, compile_cell, to_ternary

_MAX_EVENTS_PER_SETTLE = 4_000_000


class _CombRecord:
    __slots__ = ("name", "compiled", "in_idx", "out_idx", "rank")

    def __init__(self, name, compiled, in_idx, out_idx, rank=0):
        self.name = name
        self.compiled = compiled
        self.in_idx = in_idx        # net index per input pin
        self.out_idx = out_idx      # (pin_name, net_index) pairs
        self.rank = rank            # topological position (0 on loops)


class _SeqRecord:
    __slots__ = ("name", "kind", "d_idx", "ck_idx", "q_idx", "en_idx",
                 "rn_idx")

    def __init__(self, name, d_idx, ck_idx, q_idx, en_idx=None, rn_idx=None):
        self.name = name
        self.d_idx = d_idx
        self.ck_idx = ck_idx
        self.q_idx = q_idx
        self.en_idx = en_idx
        self.rn_idx = rn_idx


class Simulator:
    """Simulate one flat module.

    Parameters
    ----------
    module:
        A flat :class:`~repro.netlist.core.Module` (library cells only).
    record_toggles:
        Keep per-net 0<->1 toggle counts (enable for power analysis).
    """

    def __init__(self, module, record_toggles=True):
        self.module = module
        self.record_toggles = record_toggles

        self._net_index = {}
        self._nets = []
        for net in module.nets():
            self._net_index[id(net)] = len(self._nets)
            self._nets.append(net)
        n = len(self._nets)
        self.values = [X] * n
        self.toggles = [0] * n
        self._watchers = []  # callbacks (net, old, new)
        self._settle_shadow = None  # pre-settle values, active per wave

        for net in self._nets:
            if net.is_const:
                self.values[self._net_index[id(net)]] = net.const_value

        # Topological ranks drive the generational wave ordering; a
        # combinational loop (or a hierarchy error surfaced below) keeps
        # ranks empty and selects the FIFO fallback.
        try:
            from ..netlist.traverse import topological_instances

            ranks = {
                id(i): r for r, i in enumerate(topological_instances(module))
            }
        except NetlistError:
            ranks = None
        self._levelized = ranks is not None

        # Build instance records and the net -> loads map.
        self._comb = []
        self._seq = []
        self._loads = [[] for _ in range(n)]  # per net: records to notify
        for inst in module.instances():
            if not inst.is_cell:
                raise SimulationError(
                    "module {} is hierarchical; flatten first".format(
                        module.name
                    )
                )
            cell = inst.cell
            if cell.kind is CellKind.SEQUENTIAL:
                rec = self._build_seq(inst)
                self._seq.append(rec)
                self._loads[rec.ck_idx].append(rec)
                if rec.rn_idx is not None:
                    self._loads[rec.rn_idx].append(rec)
            elif cell.kind is CellKind.HEADER:
                continue  # headers have no logic outputs
            else:
                rec = self._build_comb(inst)
                if rec is None:
                    continue
                if ranks is not None:
                    rec.rank = ranks[id(inst)]
                self._comb.append(rec)
                for idx in set(rec.in_idx):
                    self._loads[idx].append(rec)
        if self._levelized:
            self._comb.sort(key=lambda r: r.rank)

        self._input_index = {}
        for port in module.input_ports():
            self._input_index[port.name] = self._net_index[id(port.net)]

        # Evaluate constants / ties into the netlist once.
        for rec in self._comb:
            if not rec.in_idx:
                self._eval_comb(rec, deque())
        self.settle()

    # -- construction helpers -------------------------------------------------

    def _idx(self, inst, pin, required=True):
        net = inst.connections.get(pin)
        if net is None:
            if required:
                raise SimulationError(
                    "instance {} pin {} unconnected".format(inst.name, pin)
                )
            return None
        return self._net_index[id(net)]

    def _build_comb(self, inst):
        cell = inst.cell
        compiled = compile_cell(cell)
        in_idx = tuple(self._idx(inst, p) for p in compiled.input_names)
        out_idx = tuple(
            (pin, self._net_index[id(net)])
            for pin, net in inst.connections.items()
            if pin in compiled.tables
        )
        if not out_idx:
            return None  # drives nothing: no effect on simulation
        return _CombRecord(inst.name, compiled, in_idx, out_idx)

    def _build_seq(self, inst):
        cell = inst.cell
        en_idx = self._idx(inst, "EN", required=False) if cell.has_pin("EN") \
            else None
        rn_idx = self._idx(inst, "RN", required=False) if cell.has_pin("RN") \
            else None
        q_idx = self._idx(inst, "Q", required=False)
        if q_idx is None:
            q_idx = -1  # flop output unused; still simulate (no-op)
        return _SeqRecord(
            inst.name,
            d_idx=self._idx(inst, "D"),
            ck_idx=self._idx(inst, "CK"),
            q_idx=q_idx,
            en_idx=en_idx,
            rn_idx=rn_idx,
        )

    # -- core propagation ------------------------------------------------------

    def _set_net(self, idx, value, queue):
        old = self.values[idx]
        if old == value:
            return
        if self._settle_shadow is not None:
            self._settle_shadow.setdefault(idx, old)
        self.values[idx] = value
        if self.record_toggles and old != X and value != X:
            self.toggles[idx] += 1
        if self._watchers:
            net = self._nets[idx]
            for cb in self._watchers:
                cb(net, old, value)
        queue.append((idx, old, value))

    def _eval_comb(self, rec, queue):
        vals = [self.values[i] for i in rec.in_idx]
        outs = rec.compiled.evaluate(vals)
        for pin, idx in rec.out_idx:
            self._set_net(idx, outs[pin], queue)

    def _pre_settle_value(self, idx):
        """Value a net had before the current settle wave began."""
        shadow = self._settle_shadow
        if shadow is not None and idx in shadow:
            return shadow[idx]
        return self.values[idx]

    def _sample_seq(self, rec, old, new, src_idx):
        """Decide a flop's new Q for this event; ``None`` means hold.

        D and EN are read at their *pre-settle* values: within one settle
        wave (one external stimulus -- typically a clock edge) a flip-flop
        must capture the data that existed before the edge started
        propagating, no matter how many zero-delay clock buffers, sibling
        flop outputs or clock-derived clamps fire in the same wave.  This
        is the hold-time contract of Fig. 4 in simulation form.
        """
        if rec.rn_idx is not None and self.values[rec.rn_idx] != 1:
            return 0 if self.values[rec.rn_idx] == 0 else X
        if src_idx != rec.ck_idx:
            return None  # reset released; no clock edge -> hold
        rising = old == 0 and new == 1
        if not rising:
            return X if new == X else None
        d = self._pre_settle_value(rec.d_idx)
        if rec.en_idx is not None:
            en = self._pre_settle_value(rec.en_idx)
            if en == 0:
                return None
            if en == X:
                d = X
        return d

    def _drain(self, queue):
        if not self._levelized:
            return self._drain_fifo(queue)
        events = 0
        outer = self._settle_shadow is None
        if outer:
            # Record each net's first pre-change value for this wave.
            self._settle_shadow = {}
            for idx, old, _new in queue:
                self._settle_shadow.setdefault(idx, old)
        heappush = heapq.heappush
        heappop = heapq.heappop
        try:
            while queue:
                # One generation: every change queued so far happened
                # "simultaneously".  Flops sample per originating event;
                # the affected combinational cone then settles in one
                # dependency-ordered sweep (each gate evaluated once, so
                # each net transitions at most once per generation).
                seq_updates = None
                dirty = {}
                heap = []
                for _ in range(len(queue)):
                    idx, old, new = queue.popleft()
                    events += 1
                    if events > _MAX_EVENTS_PER_SETTLE:
                        raise SimulationError(
                            "simulation did not settle (oscillating loop?)"
                            " in module {}".format(self.module.name)
                        )
                    for rec in self._loads[idx]:
                        if isinstance(rec, _SeqRecord):
                            value = self._sample_seq(rec, old, new, idx)
                            if value is not None and rec.q_idx >= 0 \
                                    and self.values[rec.q_idx] != value:
                                if seq_updates is None:
                                    seq_updates = []
                                seq_updates.append((rec.q_idx, value))
                        elif rec.rank not in dirty:
                            dirty[rec.rank] = rec
                            heappush(heap, rec.rank)
                # In-generation settling: evaluating a gate may dirty
                # higher-ranked loads; they join this same sweep.  Output
                # changes still enqueue (via _set_net) so flip-flops fed
                # by derived nets -- clock buffers, gated clocks -- sample
                # in the next generation.
                mark = len(queue)
                while heap:
                    self._eval_comb(dirty[heappop(heap)], queue)
                    for _ in range(len(queue) - mark):
                        oidx, _old, _new = queue[mark]
                        has_seq = False
                        for rec in self._loads[oidx]:
                            if isinstance(rec, _SeqRecord):
                                has_seq = True
                            elif rec.rank not in dirty:
                                dirty[rec.rank] = rec
                                heappush(heap, rec.rank)
                        if has_seq:
                            mark += 1
                        else:
                            del queue[mark]
                if seq_updates is not None:
                    for q_idx, value in seq_updates:
                        self._set_net(q_idx, value, queue)
        finally:
            if outer:
                self._settle_shadow = None

    def _drain_fifo(self, queue):
        """FIFO event order -- the fallback for combinational feedback."""
        events = 0
        outer = self._settle_shadow is None
        if outer:
            # Record each net's first pre-change value for this wave.
            self._settle_shadow = {}
            for idx, old, _new in queue:
                self._settle_shadow.setdefault(idx, old)
        try:
            while queue:
                idx, old, new = queue.popleft()
                events += 1
                if events > _MAX_EVENTS_PER_SETTLE:
                    raise SimulationError(
                        "simulation did not settle (oscillating loop?) in "
                        "module {}".format(self.module.name)
                    )
                loads = self._loads[idx]
                seq_updates = None
                for rec in loads:
                    if isinstance(rec, _SeqRecord):
                        value = self._sample_seq(rec, old, new, idx)
                        if value is not None and rec.q_idx >= 0 \
                                and self.values[rec.q_idx] != value:
                            if seq_updates is None:
                                seq_updates = []
                            seq_updates.append((rec.q_idx, value))
                for rec in loads:
                    if isinstance(rec, _CombRecord):
                        self._eval_comb(rec, queue)
                if seq_updates is not None:
                    for q_idx, value in seq_updates:
                        self._set_net(q_idx, value, queue)
        finally:
            if outer:
                self._settle_shadow = None

    # -- public API -------------------------------------------------------------

    def set_input(self, name, value):
        """Drive primary input ``name`` and propagate to settlement."""
        try:
            idx = self._input_index[name]
        except KeyError:
            raise SimulationError(
                "module {} has no input {}".format(self.module.name, name)
            ) from None
        queue = deque()
        self._set_net(idx, to_ternary(value), queue)
        self._drain(queue)

    def set_inputs(self, values):
        """Drive several inputs at once (dict name -> value), then settle.

        Driving together matters for multi-input transitions: the netlist
        sees one simultaneous change, like applying one test vector.
        """
        queue = deque()
        for name, value in values.items():
            try:
                idx = self._input_index[name]
            except KeyError:
                raise SimulationError(
                    "module {} has no input {}".format(self.module.name, name)
                ) from None
            self._set_net(idx, to_ternary(value), queue)
        self._drain(queue)

    def settle(self):
        """Propagate any pending changes (normally already settled)."""
        queue = deque()
        for rec in self._comb:
            self._eval_comb(rec, queue)
        self._drain(queue)

    def value(self, net_name):
        """Current 0/1/X value of net ``net_name``."""
        net = self.module.net(net_name)
        return self.values[self._net_index[id(net)]]

    def net_toggles(self, net_name):
        """Accumulated 0<->1 toggle count of a net."""
        net = self.module.net(net_name)
        return self.toggles[self._net_index[id(net)]]

    def total_toggles(self):
        """Sum of toggle counts over all nets."""
        return sum(self.toggles)

    def toggle_snapshot(self):
        """Copy of per-net toggle counts as dict name -> count."""
        return {
            net.name: self.toggles[i] for i, net in enumerate(self._nets)
        }

    def state_snapshot(self):
        """Current net values as dict name -> 0/1/X (for state-dependent
        leakage analysis)."""
        return {
            net.name: self.values[i] for i, net in enumerate(self._nets)
        }

    def reset_toggles(self):
        """Zero all toggle counters."""
        self.toggles = [0] * len(self.toggles)

    def add_watcher(self, callback):
        """Register ``callback(net, old, new)`` on every net change (VCD)."""
        self._watchers.append(callback)

    def flop_q(self, inst_name):
        """Current output value of flip-flop instance ``inst_name``."""
        for rec in self._seq:
            if rec.name == inst_name:
                if rec.q_idx < 0:
                    return X
                return self.values[rec.q_idx]
        raise SimulationError(
            "no flip-flop named {} in module {}".format(
                inst_name, self.module.name
            )
        )

    def force_flop_state(self, value=0):
        """Initialise every flip-flop output to ``value`` (dodges X-pessimism
        when a design has no reset, like the registered multiplier)."""
        queue = deque()
        for rec in self._seq:
            if rec.q_idx >= 0:
                self._set_net(rec.q_idx, to_ternary(value), queue)
        self._drain(queue)
