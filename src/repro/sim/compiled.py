"""Vector-parallel levelized gate simulation over the SoA netlist.

:func:`compile_schedule` lowers a flat module once
(:func:`repro.netlist.soa.lower_soa`) and wraps it in a
:class:`CompiledSchedule` -- the levelized evaluation schedule.  A whole
workload of input vectors then simulates as a handful of batched numpy
passes instead of per-event Python dispatch: each clock cycle is three
settled states (inputs applied with the clock low, the rising edge, the
falling edge), every state is one levelized sweep over a ``(cycles,
nets)`` value matrix, and flip-flops sample vectorized with the event
simulator's exact rules (pre-settle D/EN, async RN dominance, X edges).

Cross-cycle state is resolved by fixed-point iteration: the cycle-``k``
row starts from cycle ``k-1``'s settled end state, so each batched pass
finalises at least one more cycle and a ``d``-deep pipeline converges in
``d + 1`` passes.  Toggle counts are consecutive-snapshot differences
(both values known), which makes the result **bit-identical** to the
event simulator's functional (generational) toggle accounting -- the
differential tests in ``tests/sim/test_compiled.py`` assert equality,
not closeness.

Not every netlist is batchable: combinational feedback has no levelized
order, and clock/reset cones that pass through logic or state cannot be
replayed per-phase.  :meth:`CompiledSchedule.vector_ready` reports this,
and :meth:`CompiledSchedule.run_vectors` transparently falls back to the
event-driven :class:`~repro.sim.event.Simulator` (float-exact by
construction) for those designs.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

import numpy as np

from ..errors import NetlistError, SimulationError
from ..netlist.core import Module
from ..netlist.soa import lower_soa
from ..runner.kernel import CompiledKernel, Kernel, register_kernel
from .activity import ActivityTrace, GroupActivity
from .logic import X, to_ternary


def _diff(a, b):
    """Functional-toggle mask between consecutive settled states."""
    return (a != b) & (a != X) & (b != X)


@dataclass
class CompiledRun:
    """Result of one workload run (levelized or event fallback)."""

    cycles: int
    engine: str
    #: Per-net toggle counts (all nets, zeros included) -- same key set
    #: and values as ``Simulator.toggle_snapshot`` after the same run.
    toggles: dict = field(default_factory=dict)
    trace: ActivityTrace = None
    #: Net name -> final settled value (clock low).
    final_values: dict = field(default_factory=dict)
    #: Per-cycle per-net toggle matrix (levelized engine only).
    toggle_matrix: np.ndarray = None

    def toggle_snapshot(self):
        """Dict net name -> toggle count (``Simulator`` parity)."""
        return dict(self.toggles)

    def total_toggles(self):
        return sum(self.toggles.values())

    def value(self, net_name):
        """Final settled value of a net (0/1/X)."""
        return self.final_values[net_name]


class CompiledSchedule:
    """A module's levelized evaluation schedule plus eligibility facts.

    Instances pickle (for the artifact cache) without the source module;
    an unpickled schedule keeps the full vector-parallel path but cannot
    fall back to the event simulator.
    """

    def __init__(self, module=None, soa=None, why=""):
        self._module = module
        self.soa = soa
        self.why = why          # non-empty when lowering failed
        self._cones = {}
        if soa is not None:
            self._port_name = {idx: name
                               for name, idx in soa.input_ports.items()}
            self._init = self._build_init()

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_module"] = None
        state.pop("_fo_state", None)
        state.pop("_fo_clock", None)
        return state

    @property
    def module(self):
        return self._module

    def bind_module(self, module):
        """Re-attach the live module an unpickled schedule lost, restoring
        the event-simulator fallback.  Returns ``self``."""
        if self._module is None:
            self._module = module
        return self

    # -- eligibility ---------------------------------------------------------

    def _cone(self, idx):
        """``(source port names, depends-on-state)`` of one net's cone."""
        res = self._cones.get(idx)
        if res is not None:
            return res
        soa = self.soa
        if soa.driver_seq[idx] >= 0:
            res = (frozenset(), True)
        elif soa.driver_gate[idx] >= 0:
            self._cones[idx] = (frozenset(), False)  # placeholder (DAG)
            ports = set()
            seq = False
            for i in soa.gate_inputs[soa.driver_gate[idx]]:
                p, s = self._cone(i)
                ports |= p
                seq = seq or s
            res = (frozenset(ports), seq)
        else:
            name = self._port_name.get(idx)
            res = (frozenset([name]) if name else frozenset(), False)
        self._cones[idx] = res
        return res

    def vector_ready(self, clock="clk"):
        """``(ok, reason)``: can this schedule batch a clocked workload?

        Requires an acyclic combinational graph, every flop clocked from
        a pure clock cone (sources only the ``clock`` port / constants),
        and async resets free of state feedback -- the conditions under
        which the three-phase batched replay is exact.
        """
        if self.soa is None:
            return False, self.why or "combinational feedback"
        soa = self.soa
        if clock not in soa.input_ports:
            return False, "no input port {!r}".format(clock)
        for row in range(soa.n_seq):
            if soa.seq_ck[row] < 0:
                return False, "flop {} has no clock pin".format(
                    soa.seq_names[row])
            if soa.seq_q[row] >= 0 and soa.seq_d[row] < 0:
                return False, "flop {} has no data pin".format(
                    soa.seq_names[row])
        for idx in set(soa.seq_ck.tolist()):
            if idx < 0:
                continue
            ports, seq = self._cone(idx)
            if seq or not ports <= {clock}:
                return False, (
                    "clock cone of net {} mixes in {}".format(
                        soa.net_names[idx],
                        "state" if seq else ", ".join(sorted(ports - {
                            clock}))))
        for idx in set(soa.seq_rn.tolist()):
            if idx < 0:
                continue
            if self._cone(idx)[1]:
                return False, "reset cone of net {} depends on state".format(
                    soa.net_names[idx])
        return True, ""

    # -- batched engine ------------------------------------------------------

    def _build_init(self):
        """Settled pre-run state: all-X, constants applied, combinational
        nets evaluated (ties propagate)."""
        row = self.soa.initial_values()[np.newaxis, :].copy()
        self.soa.eval_comb(row)
        return row[0]

    def _sample_flops(self, pre, now):
        """Vectorized flip-flop sampling for one phase.

        ``pre`` holds the phase-start (pre-settle) values, ``now`` the
        settled values; Q columns of ``now`` are updated in place.
        Returns True when any Q changed.  Rules replicate the event
        simulator: RN (async, post-settle) dominates; a rising edge
        samples the *pre-settle* D/EN; a non-rising change to X drives
        Q to X; EN==0 holds, EN==X corrupts the sample.
        """
        soa = self.soa
        rows = np.nonzero(soa.seq_q >= 0)[0]
        if not len(rows):
            return False
        qcol = soa.seq_q[rows]
        ck = soa.seq_ck[rows]
        dcol = soa.seq_d[rows]
        ck_old = pre[:, ck]
        ck_new = now[:, ck]
        d_pre = pre[:, dcol]
        en = soa.seq_en[rows]
        has_en = en >= 0
        en_pre = np.where(has_en, pre[:, np.where(has_en, en, 0)], 1)
        rn = soa.seq_rn[rows]
        has_rn = rn >= 0
        rn_now = np.where(has_rn, now[:, np.where(has_rn, rn, 0)], 1)

        held = now[:, qcol]
        changed = ck_new != ck_old
        rising = (ck_old == 0) & (ck_new == 1)
        q_next = np.where(changed & ~rising & (ck_new == X), X, held)
        d_eff = np.where(en_pre == X, X, d_pre)
        q_next = np.where(rising & (en_pre != 0), d_eff, q_next)
        q_next = np.where(rn_now == 0, 0, q_next)
        q_next = np.where(rn_now == X, X, q_next)
        q_next = q_next.astype(np.int8)
        if np.array_equal(q_next, held):
            return False
        now[:, qcol] = q_next
        return True

    def _phase(self, start, mutate, levels):
        """One settled phase: copy ``start``, apply ``mutate``, settle
        the perturbed cone (``levels``), sample flops against ``start``,
        re-settle the state cone if any flop moved.
        Returns ``(pre_sample_state, post_sample_state)``."""
        soa = self.soa
        pre = start.copy()
        mutate(pre)
        soa.eval_comb(pre, levels)
        post = pre.copy()
        if self._sample_flops(start, post):
            soa.eval_comb(post, self._state_levels())
        else:
            post = pre
        return pre, post

    def _state_levels(self):
        """Subschedule for the fanout of every flop output."""
        levels = getattr(self, "_fo_state", None)
        if levels is None:
            levels = self.soa.subschedule(self.soa.seq_q.tolist())
            self._fo_state = levels
        return levels

    def _clock_levels(self, clk_idx):
        """Subschedule for the clock fanout (memoised per clock net)."""
        cache = getattr(self, "_fo_clock", None)
        if cache is None:
            cache = self._fo_clock = {}
        levels = cache.get(clk_idx)
        if levels is None:
            levels = cache[clk_idx] = self.soa.subschedule([clk_idx])
        return levels

    def _run_levelized(self, vectors, clock, reset, group_size,
                       max_batch=1024):
        soa = self.soa
        n = soa.n_nets
        clk_idx = soa.input_ports[clock]

        # Pre-run settle sequence mirrors ClockedTestbench construction:
        # clock low, then all flops forced to the reset value.  All
        # transitions are X -> known, so no toggles accrue -- identical
        # to the event path's zero pre-run count.
        state = self._init[np.newaxis, :].copy()
        state[0, clk_idx] = 0
        soa.eval_comb(state)
        qcols = soa.seq_q[soa.seq_q >= 0]
        if len(qcols):
            state[0, qcols] = to_ternary(reset)
            soa.eval_comb(state)
        state = state[0]

        per_cycle = []
        final = state
        groups = None if group_size is None else []
        done = 0
        vectors = list(vectors)
        for at in range(0, len(vectors), max_batch):
            chunk = vectors[at:at + max_batch]
            tog, final = self._run_chunk(chunk, clock, clk_idx, state=final)
            per_cycle.append(tog)
            done += len(chunk)
        toggle_matrix = np.concatenate(per_cycle, axis=0) if per_cycle \
            else np.zeros((0, n), dtype=np.int64)
        counts = toggle_matrix.sum(axis=0)

        if group_size is not None:
            trace = ActivityTrace()
            for start in range(0, len(vectors), group_size):
                block = toggle_matrix[start:start + group_size]
                sums = block.sum(axis=0)
                nz = np.nonzero(sums)[0]
                trace.groups.append(GroupActivity(
                    index=len(trace.groups),
                    cycles=block.shape[0],
                    total_toggles=int(sums.sum()),
                    nets=soa.non_const_nets,
                    toggles={soa.net_names[i]: int(sums[i]) for i in nz},
                ))
        else:
            trace = None

        return CompiledRun(
            cycles=len(vectors),
            engine="levelized",
            toggles={name: int(counts[i])
                     for i, name in enumerate(soa.net_names)},
            trace=trace,
            final_values={name: int(final[i])
                          for i, name in enumerate(soa.net_names)},
            toggle_matrix=toggle_matrix,
        )

    def _run_chunk(self, vectors, clock, clk_idx, state):
        """Fixed-point batched replay of one chunk of cycles.

        ``state`` is the settled clock-low state entering the chunk;
        returns ``(per-cycle toggle matrix, final state row)``.
        """
        soa = self.soa
        ncyc = len(vectors)
        n = soa.n_nets
        if ncyc == 0:
            return np.zeros((0, n), dtype=np.int64), state

        # Input stimulus with carry-forward for unspecified ports.
        stim_cols = []
        stim_idx = []
        prev = {name: int(state[idx])
                for name, idx in soa.input_ports.items() if name != clock}
        series = {name: [] for name in prev}
        for vec in vectors:
            vec = vec or {}
            if clock in vec:
                raise SimulationError(
                    "drive the clock via the cycle protocol, not vectors")
            for name in vec:
                if name not in prev:
                    raise SimulationError(
                        "module {} has no input port {}".format(
                            soa.module_name, name))
                prev[name] = to_ternary(vec[name])
            for name, col in series.items():
                col.append(prev[name])
        for name, col in series.items():
            stim_idx.append(soa.input_ports[name])
            stim_cols.append(col)
        stim_idx = np.asarray(stim_idx, dtype=np.int64)
        stim = np.asarray(stim_cols, dtype=np.int8).T \
            if stim_cols else np.zeros((ncyc, 0), dtype=np.int8)

        def apply_inputs(v):
            if len(stim_idx):
                v[:, stim_idx] = stim

        def clk_to(value):
            def mutate(v):
                v[:, clk_idx] = value
            return mutate

        fo_inputs = soa.subschedule(stim_idx.tolist())
        fo_clock = self._clock_levels(clk_idx)
        prev_c = np.repeat(state[np.newaxis, :], ncyc, axis=0)
        for _ in range(ncyc + 1):
            a_pre, a_post = self._phase(prev_c, apply_inputs, fo_inputs)
            b_pre, b_post = self._phase(a_post, clk_to(1), fo_clock)
            c_pre, c_post = self._phase(b_post, clk_to(0), fo_clock)
            rolled = np.vstack([state[np.newaxis, :], c_post[:-1]])
            if np.array_equal(rolled, prev_c):
                break
            prev_c = rolled
        else:  # pragma: no cover - ncyc+1 iterations always suffice
            raise SimulationError("batched replay failed to converge")

        tog = _diff(prev_c, a_pre).astype(np.int64)
        for before, after in ((a_pre, a_post), (a_post, b_pre),
                              (b_pre, b_post), (b_post, c_pre),
                              (c_pre, c_post)):
            tog += _diff(before, after)
        return tog, c_post[-1]

    # -- event-simulator fallback --------------------------------------------

    def _run_event(self, vectors, clock, reset, group_size):
        if self._module is None:
            raise SimulationError(
                "schedule for {} needs the event simulator ({}), but was "
                "restored without its module".format(
                    self.soa.module_name if self.soa else "?", self.why))
        from .activity import GroupRecorder
        from .testbench import ClockedTestbench

        tb = ClockedTestbench(self._module, clock=clock)
        tb.reset_flops(reset)
        recorder = None if group_size is None \
            else GroupRecorder(tb.sim, group_size)
        for vec in vectors:
            tb.cycle(vec)
            if recorder is not None:
                recorder.after_cycle()
        if recorder is not None:
            recorder.flush()
        return CompiledRun(
            cycles=tb.cycles,
            engine="event",
            toggles=tb.sim.toggle_snapshot(),
            trace=None if recorder is None else recorder.trace,
            final_values={net.name: tb.sim.value(net.name)
                          for net in self._module.nets()},
        )

    # -- public API ----------------------------------------------------------

    def run_vectors(self, vectors, clock="clk", reset=0, group_size=None):
        """Simulate a clocked workload; returns a :class:`CompiledRun`.

        One vector dict per cycle (standard apply / posedge / negedge
        protocol, flops pre-forced to ``reset``).  Batches through the
        levelized engine when :meth:`vector_ready`, otherwise replays
        through the event simulator -- either way the toggle counts and
        final values are bit-identical.
        """
        vectors = list(vectors)
        ok, _why = self.vector_ready(clock)
        if ok:
            return self._run_levelized(vectors, clock, reset, group_size)
        return self._run_event(vectors, clock, reset, group_size)

    def evaluate(self, points):
        """Batch-evaluate a purely combinational module.

        ``points`` is ``(batch, n_inputs)`` of 0/1/X values in
        ``input_ports`` declaration order; returns ``(batch,
        n_outputs)`` in ``output_ports`` order.  This is the gate-level
        :class:`~repro.runner.kernel.Kernel` callable shape.
        """
        if self.soa is None:
            raise SimulationError(
                "no levelized schedule: {}".format(self.why))
        soa = self.soa
        if soa.n_seq:
            raise SimulationError(
                "evaluate() is combinational-only; module {} has {} "
                "flops (use run_vectors)".format(
                    soa.module_name, soa.n_seq))
        points = np.asarray(points, dtype=np.int8)
        if points.ndim == 1:
            points = points[np.newaxis, :]
        in_idx = np.asarray(list(soa.input_ports.values()), dtype=np.int64)
        if points.shape[1] != len(in_idx):
            raise SimulationError(
                "expected {} input columns, got {}".format(
                    len(in_idx), points.shape[1]))
        values = np.repeat(self._init[np.newaxis, :], len(points), axis=0)
        values[:, in_idx] = points
        soa.eval_comb(values)
        out_idx = np.asarray(list(soa.output_ports.values()), dtype=np.int64)
        return values[:, out_idx]


def compile_schedule(module, library=None):
    """Compile ``module`` into a :class:`CompiledSchedule`.

    Never raises for feedback: an un-lowerable module yields a schedule
    whose :meth:`~CompiledSchedule.vector_ready` is False and whose
    workload runs ride the event simulator.
    """
    try:
        soa = lower_soa(module, library)
    except NetlistError as exc:
        return CompiledSchedule(module=module, soa=None, why=str(exc))
    return CompiledSchedule(module=module, soa=soa)


_SCHEDULES = weakref.WeakKeyDictionary()


def peek_schedule(module):
    """The memoised schedule for ``module``, or ``None`` -- never
    compiles one (for callers that only want to reuse paid-for tables,
    e.g. :func:`repro.power.dynamic.dynamic_power`)."""
    return _SCHEDULES.get(module)


def schedule_for(module, library=None):
    """Per-module memoised :func:`compile_schedule` (keyed weakly, so
    dropping the module drops the schedule)."""
    entry = _SCHEDULES.get(module)
    if entry is None or (library is not None and entry.soa is not None
                         and entry.soa.net_cap is None):
        entry = compile_schedule(module, library)
        _SCHEDULES[module] = entry
    return entry


class GateSimKernel(Kernel):
    """The gate-level :class:`~repro.runner.kernel.Kernel`: a flat
    combinational :class:`~repro.netlist.core.Module` compiles once into
    its levelized schedule; the compiled callable batch-evaluates input
    matrices (see :meth:`CompiledSchedule.evaluate`)."""

    name = "gate-sim"

    def applies(self, module):
        schedule = schedule_for(module)
        return schedule.soa is not None and schedule.soa.n_seq == 0

    def evaluate(self, schedule, points, library=None):
        return schedule.evaluate(points)

    def compile(self, module, library=None):
        # Lower once here: the compiled kernel embeds the (picklable)
        # schedule, not the module, so worker processes replay the
        # levelized tables without re-lowering the netlist.
        if not self.applies(module):
            schedule = schedule_for(module)
            raise SimulationError(
                "gate-sim kernel needs a flat combinational module: "
                + (schedule.why or "{} has {} flops".format(
                    module.name, schedule.soa.n_seq)))
        return CompiledKernel(self, schedule_for(module, library))


register_kernel(Module, GateSimKernel())
