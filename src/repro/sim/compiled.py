"""Vector-parallel levelized gate simulation over the SoA netlist.

:func:`compile_schedule` lowers a flat module once
(:func:`repro.netlist.soa.lower_soa`) and wraps it in a
:class:`CompiledSchedule` -- the levelized evaluation schedule.  A whole
workload of input vectors then simulates as a handful of batched numpy
passes instead of per-event Python dispatch: each clock cycle is three
settled states (inputs applied with the clock low, the rising edge, the
falling edge), every state is one levelized sweep over a ``(cycles,
nets)`` value matrix, and flip-flops sample vectorized with the event
simulator's exact rules (pre-settle D/EN, async RN dominance, X edges).

Cross-cycle state is resolved by fixed-point iteration: the cycle-``k``
row starts from cycle ``k-1``'s settled end state, so each batched pass
finalises at least one more cycle and a ``d``-deep pipeline converges in
``d + 1`` passes.  Toggle counts are consecutive-snapshot differences
(both values known), which makes the result **bit-identical** to the
event simulator's functional (generational) toggle accounting -- the
differential tests in ``tests/sim/test_compiled.py`` assert equality,
not closeness.

Not every netlist is batchable: combinational feedback has no levelized
order, and clock/reset cones that pass through logic or state cannot be
replayed per-phase.  :meth:`CompiledSchedule.vector_ready` reports this,
and :meth:`CompiledSchedule.run_vectors` transparently falls back to the
event-driven :class:`~repro.sim.event.Simulator` (float-exact by
construction) for those designs.

Closed-loop workloads (a testbench that must *read* outputs each cycle
to decide the next inputs -- the ISA co-simulator's memory protocol)
cannot batch cycles at all, so :meth:`CompiledSchedule.stepper` exposes
the same settled-phase machinery one cycle at a time: a
:class:`ClosedLoopStepper` settles single value rows through merged
packed row programs (:meth:`repro.netlist.soa.SoaNetlist.pack_levels`),
skips applies whose values did not change, samples flops only on phases
whose affected cone reaches a CK/RN pin, and accrues the identical
consecutive-snapshot toggle diffs -- bit-identical state and toggle
counts versus driving the event simulator through the same protocol.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

import numpy as np

from ..errors import NetlistError, SimulationError
from ..netlist.core import Module
from ..netlist.soa import lower_soa
from ..runner.kernel import CompiledKernel, Kernel, register_kernel
from .activity import ActivityTrace, GroupActivity
from .logic import X, to_ternary


def _diff(a, b):
    """Functional-toggle mask between consecutive settled states."""
    return (a != b) & (a != X) & (b != X)


@dataclass
class CompiledRun:
    """Result of one workload run (levelized or event fallback)."""

    cycles: int
    engine: str
    #: Per-net toggle counts (all nets, zeros included) -- same key set
    #: and values as ``Simulator.toggle_snapshot`` after the same run.
    toggles: dict = field(default_factory=dict)
    trace: ActivityTrace = None
    #: Net name -> final settled value (clock low).
    final_values: dict = field(default_factory=dict)
    #: Per-cycle per-net toggle matrix (levelized engine only).
    toggle_matrix: np.ndarray = None

    def toggle_snapshot(self):
        """Dict net name -> toggle count (``Simulator`` parity)."""
        return dict(self.toggles)

    def total_toggles(self):
        return sum(self.toggles.values())

    def value(self, net_name):
        """Final settled value of a net (0/1/X)."""
        return self.final_values[net_name]


class CompiledSchedule:
    """A module's levelized evaluation schedule plus eligibility facts.

    Instances pickle (for the artifact cache) without the source module;
    an unpickled schedule keeps the full vector-parallel path but cannot
    fall back to the event simulator.
    """

    def __init__(self, module=None, soa=None, why=""):
        self._module = module
        self.soa = soa
        self.why = why          # non-empty when lowering failed
        self._cones = {}
        if soa is not None:
            self._port_name = {idx: name
                               for name, idx in soa.input_ports.items()}
            self._init = self._build_init()

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_module"] = None
        state.pop("_fo_state", None)
        state.pop("_fo_clock", None)
        state.pop("_seq_cols", None)
        state.pop("_row_state", None)
        state.pop("_row_inputs", None)
        return state

    @property
    def module(self):
        return self._module

    def bind_module(self, module):
        """Re-attach the live module an unpickled schedule lost, restoring
        the event-simulator fallback.  Returns ``self``."""
        if self._module is None:
            self._module = module
        return self

    # -- eligibility ---------------------------------------------------------

    def _cone(self, idx):
        """``(source port names, depends-on-state)`` of one net's cone."""
        res = self._cones.get(idx)
        if res is not None:
            return res
        soa = self.soa
        if soa.driver_seq[idx] >= 0:
            res = (frozenset(), True)
        elif soa.driver_gate[idx] >= 0:
            self._cones[idx] = (frozenset(), False)  # placeholder (DAG)
            ports = set()
            seq = False
            for i in soa.gate_inputs[soa.driver_gate[idx]]:
                p, s = self._cone(i)
                ports |= p
                seq = seq or s
            res = (frozenset(ports), seq)
        else:
            name = self._port_name.get(idx)
            res = (frozenset([name]) if name else frozenset(), False)
        self._cones[idx] = res
        return res

    def vector_ready(self, clock="clk"):
        """``(ok, reason)``: can this schedule batch a clocked workload?

        Requires an acyclic combinational graph, every flop clocked from
        a pure clock cone (sources only the ``clock`` port / constants),
        and async resets free of state feedback -- the conditions under
        which the three-phase batched replay is exact.
        """
        if self.soa is None:
            return False, self.why or "combinational feedback"
        soa = self.soa
        if clock not in soa.input_ports:
            return False, "no input port {!r}".format(clock)
        for row in range(soa.n_seq):
            if soa.seq_ck[row] < 0:
                return False, "flop {} has no clock pin".format(
                    soa.seq_names[row])
            if soa.seq_q[row] >= 0 and soa.seq_d[row] < 0:
                return False, "flop {} has no data pin".format(
                    soa.seq_names[row])
        for idx in set(soa.seq_ck.tolist()):
            if idx < 0:
                continue
            ports, seq = self._cone(idx)
            if seq or not ports <= {clock}:
                return False, (
                    "clock cone of net {} mixes in {}".format(
                        soa.net_names[idx],
                        "state" if seq else ", ".join(sorted(ports - {
                            clock}))))
        for idx in set(soa.seq_rn.tolist()):
            if idx < 0:
                continue
            if self._cone(idx)[1]:
                return False, "reset cone of net {} depends on state".format(
                    soa.net_names[idx])
        return True, ""

    # -- batched engine ------------------------------------------------------

    def _build_init(self):
        """Settled pre-run state: all-X, constants applied, combinational
        nets evaluated (ties propagate)."""
        row = self.soa.initial_values()[np.newaxis, :].copy()
        self.soa.eval_comb(row)
        return row[0]

    def _sample_flops(self, pre, now):
        """Vectorized flip-flop sampling for one phase.

        ``pre`` holds the phase-start (pre-settle) values, ``now`` the
        settled values; Q columns of ``now`` are updated in place.
        Returns True when any Q changed.  Rules replicate the event
        simulator: RN (async, post-settle) dominates; a rising edge
        samples the *pre-settle* D/EN; a non-rising change to X drives
        Q to X; EN==0 holds, EN==X corrupts the sample.
        """
        qcol, ck, dcol, has_en, en_safe, has_rn, rn_safe = \
            self._seq_columns()
        if not len(qcol):
            return False
        ck_old = pre[:, ck]
        ck_new = now[:, ck]
        d_pre = pre[:, dcol]
        en_pre = np.where(has_en, pre[:, en_safe], 1)
        rn_now = np.where(has_rn, now[:, rn_safe], 1)

        held = now[:, qcol]
        changed = ck_new != ck_old
        rising = (ck_old == 0) & (ck_new == 1)
        q_next = np.where(changed & ~rising & (ck_new == X), X, held)
        d_eff = np.where(en_pre == X, X, d_pre)
        q_next = np.where(rising & (en_pre != 0), d_eff, q_next)
        q_next = np.where(rn_now == 0, 0, q_next)
        q_next = np.where(rn_now == X, X, q_next)
        q_next = q_next.astype(np.int8)
        if np.array_equal(q_next, held):
            return False
        now[:, qcol] = q_next
        return True

    def _seq_columns(self):
        """Memoised per-flop column arrays for :meth:`_sample_flops`."""
        cols = getattr(self, "_seq_cols", None)
        if cols is None:
            soa = self.soa
            rows = np.nonzero(soa.seq_q >= 0)[0]
            en = soa.seq_en[rows]
            has_en = en >= 0
            rn = soa.seq_rn[rows]
            has_rn = rn >= 0
            cols = self._seq_cols = (
                soa.seq_q[rows], soa.seq_ck[rows], soa.seq_d[rows],
                has_en, np.where(has_en, en, 0),
                has_rn, np.where(has_rn, rn, 0))
        return cols

    def _phase(self, start, mutate, levels):
        """One settled phase: copy ``start``, apply ``mutate``, settle
        the perturbed cone (``levels``), sample flops against ``start``,
        re-settle the state cone if any flop moved.
        Returns ``(pre_sample_state, post_sample_state)``."""
        soa = self.soa
        pre = start.copy()
        mutate(pre)
        soa.eval_comb(pre, levels)
        post = pre.copy()
        if self._sample_flops(start, post):
            soa.eval_comb(post, self._state_levels())
        else:
            post = pre
        return pre, post

    def _state_levels(self):
        """Subschedule for the fanout of every flop output."""
        levels = getattr(self, "_fo_state", None)
        if levels is None:
            levels = self.soa.subschedule(self.soa.seq_q.tolist())
            self._fo_state = levels
        return levels

    def _clock_levels(self, clk_idx):
        """Subschedule for the clock fanout (memoised per clock net)."""
        cache = getattr(self, "_fo_clock", None)
        if cache is None:
            cache = self._fo_clock = {}
        levels = cache.get(clk_idx)
        if levels is None:
            levels = cache[clk_idx] = self.soa.subschedule([clk_idx])
        return levels

    def _row_state_prog(self):
        """Packed row program for the flop-output fanout (memoised)."""
        prog = getattr(self, "_row_state", None)
        if prog is None:
            prog = self._row_state = \
                self.soa.pack_levels(self._state_levels())
        return prog

    def _row_apply_prog(self, idxs):
        """``(packed cone program, needs-flop-sampling)`` for applying
        the given net indices, memoised per index set.

        Sampling is needed exactly when the apply can move a CK or RN
        pin net -- the only nets through which a settled clock-low apply
        can change flop state (the event simulator's per-flop event
        triggers reduce to the same condition).
        """
        cache = getattr(self, "_row_inputs", None)
        if cache is None:
            cache = self._row_inputs = {}
        key = tuple(idxs)
        entry = cache.get(key)
        if entry is None:
            soa = self.soa
            prog = soa.pack_levels(soa.subschedule(list(key)))
            affected = set(key)
            for op in prog:
                affected.update(op.out.tolist())
            sens = set(soa.seq_ck[soa.seq_ck >= 0].tolist())
            sens |= set(soa.seq_rn[soa.seq_rn >= 0].tolist())
            entry = cache[key] = (prog, bool(affected & sens))
        return entry

    def stepper(self, clock="clk", record_toggles=True):
        """A :class:`ClosedLoopStepper` over this schedule.

        Raises :class:`~repro.errors.SimulationError` unless
        :meth:`vector_ready` -- callers that need a fallback should
        check eligibility first (see :class:`repro.isa.trace.GateLevelCpu`).
        """
        return ClosedLoopStepper(self, clock=clock,
                                 record_toggles=record_toggles)

    def _run_levelized(self, vectors, clock, reset, group_size,
                       max_batch=1024):
        soa = self.soa
        n = soa.n_nets
        clk_idx = soa.input_ports[clock]

        # Pre-run settle sequence mirrors ClockedTestbench construction:
        # clock low, then all flops forced to the reset value.  All
        # transitions are X -> known, so no toggles accrue -- identical
        # to the event path's zero pre-run count.
        state = self._init[np.newaxis, :].copy()
        state[0, clk_idx] = 0
        soa.eval_comb(state)
        qcols = soa.seq_q[soa.seq_q >= 0]
        if len(qcols):
            state[0, qcols] = to_ternary(reset)
            soa.eval_comb(state)
        state = state[0]

        per_cycle = []
        final = state
        groups = None if group_size is None else []
        done = 0
        vectors = list(vectors)
        for at in range(0, len(vectors), max_batch):
            chunk = vectors[at:at + max_batch]
            tog, final = self._run_chunk(chunk, clock, clk_idx, state=final)
            per_cycle.append(tog)
            done += len(chunk)
        toggle_matrix = np.concatenate(per_cycle, axis=0) if per_cycle \
            else np.zeros((0, n), dtype=np.int64)
        counts = toggle_matrix.sum(axis=0)

        if group_size is not None:
            trace = ActivityTrace()
            for start in range(0, len(vectors), group_size):
                block = toggle_matrix[start:start + group_size]
                sums = block.sum(axis=0)
                nz = np.nonzero(sums)[0]
                trace.groups.append(GroupActivity(
                    index=len(trace.groups),
                    cycles=block.shape[0],
                    total_toggles=int(sums.sum()),
                    nets=soa.non_const_nets,
                    toggles={soa.net_names[i]: int(sums[i]) for i in nz},
                ))
        else:
            trace = None

        return CompiledRun(
            cycles=len(vectors),
            engine="levelized",
            toggles={name: int(counts[i])
                     for i, name in enumerate(soa.net_names)},
            trace=trace,
            final_values={name: int(final[i])
                          for i, name in enumerate(soa.net_names)},
            toggle_matrix=toggle_matrix,
        )

    def _run_chunk(self, vectors, clock, clk_idx, state):
        """Fixed-point batched replay of one chunk of cycles.

        ``state`` is the settled clock-low state entering the chunk;
        returns ``(per-cycle toggle matrix, final state row)``.
        """
        soa = self.soa
        ncyc = len(vectors)
        n = soa.n_nets
        if ncyc == 0:
            return np.zeros((0, n), dtype=np.int64), state

        # Input stimulus with carry-forward for unspecified ports.
        stim_cols = []
        stim_idx = []
        prev = {name: int(state[idx])
                for name, idx in soa.input_ports.items() if name != clock}
        series = {name: [] for name in prev}
        for vec in vectors:
            vec = vec or {}
            if clock in vec:
                raise SimulationError(
                    "drive the clock via the cycle protocol, not vectors")
            for name in vec:
                if name not in prev:
                    raise SimulationError(
                        "module {} has no input port {}".format(
                            soa.module_name, name))
                prev[name] = to_ternary(vec[name])
            for name, col in series.items():
                col.append(prev[name])
        for name, col in series.items():
            stim_idx.append(soa.input_ports[name])
            stim_cols.append(col)
        stim_idx = np.asarray(stim_idx, dtype=np.int64)
        stim = np.asarray(stim_cols, dtype=np.int8).T \
            if stim_cols else np.zeros((ncyc, 0), dtype=np.int8)

        def apply_inputs(v):
            if len(stim_idx):
                v[:, stim_idx] = stim

        def clk_to(value):
            def mutate(v):
                v[:, clk_idx] = value
            return mutate

        fo_inputs = soa.subschedule(stim_idx.tolist())
        fo_clock = self._clock_levels(clk_idx)
        prev_c = np.repeat(state[np.newaxis, :], ncyc, axis=0)
        for _ in range(ncyc + 1):
            a_pre, a_post = self._phase(prev_c, apply_inputs, fo_inputs)
            b_pre, b_post = self._phase(a_post, clk_to(1), fo_clock)
            c_pre, c_post = self._phase(b_post, clk_to(0), fo_clock)
            rolled = np.vstack([state[np.newaxis, :], c_post[:-1]])
            if np.array_equal(rolled, prev_c):
                break
            prev_c = rolled
        else:  # pragma: no cover - ncyc+1 iterations always suffice
            raise SimulationError("batched replay failed to converge")

        tog = _diff(prev_c, a_pre).astype(np.int64)
        for before, after in ((a_pre, a_post), (a_post, b_pre),
                              (b_pre, b_post), (b_post, c_pre),
                              (c_pre, c_post)):
            tog += _diff(before, after)
        return tog, c_post[-1]

    # -- event-simulator fallback --------------------------------------------

    def _run_event(self, vectors, clock, reset, group_size):
        if self._module is None:
            raise SimulationError(
                "schedule for {} needs the event simulator ({}), but was "
                "restored without its module".format(
                    self.soa.module_name if self.soa else "?", self.why))
        from .activity import GroupRecorder
        from .testbench import ClockedTestbench

        tb = ClockedTestbench(self._module, clock=clock)
        tb.reset_flops(reset)
        recorder = None if group_size is None \
            else GroupRecorder(tb.sim, group_size)
        for vec in vectors:
            tb.cycle(vec)
            if recorder is not None:
                recorder.after_cycle()
        if recorder is not None:
            recorder.flush()
        return CompiledRun(
            cycles=tb.cycles,
            engine="event",
            toggles=tb.sim.toggle_snapshot(),
            trace=None if recorder is None else recorder.trace,
            final_values={net.name: tb.sim.value(net.name)
                          for net in self._module.nets()},
        )

    # -- public API ----------------------------------------------------------

    def run_vectors(self, vectors, clock="clk", reset=0, group_size=None):
        """Simulate a clocked workload; returns a :class:`CompiledRun`.

        One vector dict per cycle (standard apply / posedge / negedge
        protocol, flops pre-forced to ``reset``).  Batches through the
        levelized engine when :meth:`vector_ready`, otherwise replays
        through the event simulator -- either way the toggle counts and
        final values are bit-identical.
        """
        vectors = list(vectors)
        ok, _why = self.vector_ready(clock)
        if ok:
            return self._run_levelized(vectors, clock, reset, group_size)
        return self._run_event(vectors, clock, reset, group_size)

    def evaluate(self, points):
        """Batch-evaluate a purely combinational module.

        ``points`` is ``(batch, n_inputs)`` of 0/1/X values in
        ``input_ports`` declaration order; returns ``(batch,
        n_outputs)`` in ``output_ports`` order.  This is the gate-level
        :class:`~repro.runner.kernel.Kernel` callable shape.
        """
        if self.soa is None:
            raise SimulationError(
                "no levelized schedule: {}".format(self.why))
        soa = self.soa
        if soa.n_seq:
            raise SimulationError(
                "evaluate() is combinational-only; module {} has {} "
                "flops (use run_vectors)".format(
                    soa.module_name, soa.n_seq))
        points = np.asarray(points, dtype=np.int8)
        if points.ndim == 1:
            points = points[np.newaxis, :]
        in_idx = np.asarray(list(soa.input_ports.values()), dtype=np.int64)
        if points.shape[1] != len(in_idx):
            raise SimulationError(
                "expected {} input columns, got {}".format(
                    len(in_idx), points.shape[1]))
        values = np.repeat(self._init[np.newaxis, :], len(points), axis=0)
        values[:, in_idx] = points
        soa.eval_comb(values)
        out_idx = np.asarray(list(soa.output_ports.values()), dtype=np.int64)
        return values[:, out_idx]


class BusView:
    """Packed integer view over ``name_0 .. name_{width-1}`` bit nets.

    Output views gather the current settled values in one take;
    input views drive a whole integer through the stepper's memoised
    apply program -- no per-bit name formatting or dict traffic on the
    per-cycle path (compare :func:`repro.sim.testbench.read_bus`).
    """

    __slots__ = ("_stepper", "name", "width", "_idx", "_shifts", "_pow2",
                 "_prog", "_sample")

    def __init__(self, stepper, name, width, writable):
        soa = stepper.soa
        self._stepper = stepper
        self.name = name
        self.width = width
        space = soa.input_ports if writable else soa.net_index
        idx = []
        for i in range(width):
            bit = "{}_{}".format(name, i)
            at = space.get(bit)
            if at is None:
                raise SimulationError(
                    "module {} has no {} {}".format(
                        soa.module_name,
                        "input port" if writable else "net", bit))
            idx.append(at)
        self._idx = np.asarray(idx, dtype=np.int64)
        self._shifts = np.arange(width, dtype=np.int64)
        self._pow2 = np.int64(1) << self._shifts
        if writable:
            self._prog, self._sample = \
                stepper.schedule._row_apply_prog(tuple(idx))
        else:
            self._prog = self._sample = None

    def read(self):
        """The bus as an int, or ``None`` when any bit is X
        (:func:`~repro.sim.testbench.read_bus` parity)."""
        row = self._stepper._state[self._idx]
        if (row == X).any():
            return None
        return int(row.astype(np.int64) @ self._pow2)

    def drive(self, value):
        """Apply ``value``'s bits as one settled input phase."""
        if self._prog is None:
            raise SimulationError("bus {} is read-only".format(self.name))
        vals = ((np.int64(value) >> self._shifts) & 1).astype(np.int8)
        self._stepper._apply_indexed(self._idx, vals, self._prog,
                                     self._sample)


class ClosedLoopStepper:
    """Cycle-at-a-time reactive stepping over a compiled schedule.

    Mirrors driving an event :class:`~repro.sim.event.Simulator` through
    the standard protocol (settled apply phases with the clock low, then
    :meth:`posedge` / :meth:`negedge`), but every phase is a handful of
    fused gathers over a single ``(n_nets,)`` value row: the perturbed
    cone settles through a memoised packed row program, flop sampling
    runs only when the cone can reach a CK/RN pin, unchanged applies
    skip entirely, and toggle accounting accrues the same
    consecutive-snapshot diffs as the batched engine -- so state,
    toggles and flop values stay bit-identical to the event path.

    This is the engine under :class:`repro.isa.trace.GateLevelCpu`'s
    compiled mode; anything per-cycle-interactive can drive it directly
    via :meth:`apply` / :meth:`cycle` and the :class:`BusView` accessors.
    """

    def __init__(self, schedule, clock="clk", record_toggles=True):
        ok, why = schedule.vector_ready(clock)
        if not ok:
            raise SimulationError(
                "cannot step {}: {}".format(
                    schedule.soa.module_name if schedule.soa else "?", why))
        self.schedule = schedule
        self.soa = schedule.soa
        self.clock = clock
        self.record_toggles = record_toggles
        soa = self.soa
        self._state = schedule._init.copy()
        self.toggle_counts = np.zeros(soa.n_nets, dtype=np.int64)
        self.cycles = 0
        self._state_prog = schedule._row_state_prog()
        self._programs = {}
        self._seq_rows = {name: row
                          for row, name in enumerate(soa.seq_names)}
        clk_idx = soa.input_ports[clock]
        self._clk_idx = np.asarray([clk_idx], dtype=np.int64)
        self._clk_prog, _ = schedule._row_apply_prog((clk_idx,))
        self._clk_vals = (np.asarray([0], dtype=np.int8),
                          np.asarray([1], dtype=np.int8))

    # -- phase engine --------------------------------------------------------

    def _apply_indexed(self, idx, vals, prog, sample):
        """One settled phase: set ``vals`` at ``idx``, settle the cone,
        sample flops when the cone warrants it.  No-op when every value
        is unchanged (the event simulator drops such events too)."""
        start = self._state
        if np.array_equal(start[idx], vals):
            return
        soa = self.soa
        pre = start.copy()
        pre[idx] = vals
        soa.eval_row(pre, prog)
        post = pre
        if sample:
            post = pre.copy()
            if self.schedule._sample_flops(start[None, :], post[None, :]):
                soa.eval_row(post, self._state_prog)
            else:
                post = pre
        if self.record_toggles:
            self.toggle_counts += _diff(start, pre)
            if post is not pre:
                self.toggle_counts += _diff(pre, post)
        self._state = post

    def apply(self, values):
        """Settle a ``{port name: value}`` change (clock stays put)."""
        names = tuple(sorted(values))
        entry = self._programs.get(names)
        if entry is None:
            soa = self.soa
            idx = []
            for name in names:
                at = soa.input_ports.get(name)
                if at is None:
                    raise SimulationError(
                        "module {} has no input port {}".format(
                            soa.module_name, name))
                idx.append(at)
            prog, sample = self.schedule._row_apply_prog(tuple(idx))
            entry = self._programs[names] = (
                np.asarray(idx, dtype=np.int64), prog, sample)
        idx, prog, sample = entry
        vals = np.asarray([to_ternary(values[name]) for name in names],
                          dtype=np.int8)
        self._apply_indexed(idx, vals, prog, sample)

    def posedge(self):
        """Drive the clock high (flops sample against the pre-edge
        state, exactly like the event simulator's edge)."""
        self._apply_indexed(self._clk_idx, self._clk_vals[1],
                            self._clk_prog, True)

    def negedge(self):
        """Drive the clock low."""
        self._apply_indexed(self._clk_idx, self._clk_vals[0],
                            self._clk_prog, True)

    def cycle(self, inputs=None):
        """One full protocol cycle: apply ``inputs``, posedge, negedge."""
        if inputs:
            if self.clock in inputs:
                raise SimulationError(
                    "drive the clock via posedge/negedge, not apply")
            self.apply(inputs)
        self.posedge()
        self.negedge()
        self.cycles += 1

    def force_flops(self, value=0):
        """Force every flop output and re-settle the state cone
        (:meth:`~repro.sim.event.Simulator.force_flop_state` parity)."""
        soa = self.soa
        qcols = soa.seq_q[soa.seq_q >= 0]
        if not len(qcols):
            return
        start = self._state
        pre = start.copy()
        pre[qcols] = to_ternary(value)
        soa.eval_row(pre, self._state_prog)
        if self.record_toggles:
            self.toggle_counts += _diff(start, pre)
        self._state = pre

    # -- accessors -----------------------------------------------------------

    def input_bus(self, name, width):
        """A writable :class:`BusView` over input ports ``name_*``."""
        return BusView(self, name, width, writable=True)

    def output_bus(self, name, width):
        """A read-only :class:`BusView` over nets ``name_*``."""
        return BusView(self, name, width, writable=False)

    def value(self, net_name):
        """Current settled value of one net (0/1/X)."""
        return int(self._state[self.soa.net_index[net_name]])

    def flop_q(self, inst_name):
        """Current Q of a flop by instance name (X when output-less)."""
        row = self._seq_rows.get(inst_name)
        if row is None:
            raise SimulationError("unknown flop {}".format(inst_name))
        q = self.soa.seq_q[row]
        return X if q < 0 else int(self._state[q])

    def state_row(self):
        """A copy of the settled ``(n_nets,)`` value row (net order =
        ``soa.net_names`` = ``module.nets()`` order)."""
        return self._state.copy()

    def toggle_snapshot(self):
        """Dict net name -> toggle count (``Simulator`` parity)."""
        return {name: int(self.toggle_counts[i])
                for i, name in enumerate(self.soa.net_names)}

    def reset_toggles(self):
        self.toggle_counts[:] = 0


def compile_schedule(module, library=None):
    """Compile ``module`` into a :class:`CompiledSchedule`.

    Never raises for feedback: an un-lowerable module yields a schedule
    whose :meth:`~CompiledSchedule.vector_ready` is False and whose
    workload runs ride the event simulator.
    """
    try:
        soa = lower_soa(module, library)
    except NetlistError as exc:
        return CompiledSchedule(module=module, soa=None, why=str(exc))
    return CompiledSchedule(module=module, soa=soa)


_SCHEDULES = weakref.WeakKeyDictionary()


def peek_schedule(module):
    """The memoised schedule for ``module``, or ``None`` -- never
    compiles one (for callers that only want to reuse paid-for tables,
    e.g. :func:`repro.power.dynamic.dynamic_power`)."""
    return _SCHEDULES.get(module)


def schedule_for(module, library=None):
    """Per-module memoised :func:`compile_schedule` (keyed weakly, so
    dropping the module drops the schedule)."""
    entry = _SCHEDULES.get(module)
    if entry is None or (library is not None and entry.soa is not None
                         and entry.soa.net_cap is None):
        entry = compile_schedule(module, library)
        _SCHEDULES[module] = entry
    return entry


class GateSimKernel(Kernel):
    """The gate-level :class:`~repro.runner.kernel.Kernel`: a flat
    combinational :class:`~repro.netlist.core.Module` compiles once into
    its levelized schedule; the compiled callable batch-evaluates input
    matrices (see :meth:`CompiledSchedule.evaluate`)."""

    name = "gate-sim"

    def applies(self, module):
        schedule = schedule_for(module)
        return schedule.soa is not None and schedule.soa.n_seq == 0

    def evaluate(self, schedule, points, library=None):
        return schedule.evaluate(points)

    def compile(self, module, library=None):
        # Lower once here: the compiled kernel embeds the (picklable)
        # schedule, not the module, so worker processes replay the
        # levelized tables without re-lowering the netlist.
        if not self.applies(module):
            schedule = schedule_for(module)
            raise SimulationError(
                "gate-sim kernel needs a flat combinational module: "
                + (schedule.why or "{} has {} flops".format(
                    module.name, schedule.soa.n_seq)))
        return CompiledKernel(self, schedule_for(module, library))


register_kernel(Module, GateSimKernel())
