"""Switching-activity capture and vector grouping (the paper's Fig. 7 flow).

The paper divides the 3700-vector Dhrystone run into groups of 10 vectors,
computes each group's average switching activity with PrimeTime-PX, plots
the per-group switching probability (Fig. 7), and picks the maximum /
minimum / average groups for detailed HSpice power simulation.  This module
reproduces that pipeline on our simulator: toggle counts per group, the
switching-probability series, and the representative-group selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class GroupActivity:
    """Activity of one vector group.

    ``switching_probability`` is the average per-net toggle rate per cycle
    (the paper's y-axis); ``toggles`` maps net name -> count for the power
    engine.
    """

    index: int
    cycles: int
    total_toggles: int
    nets: int
    toggles: dict = field(default_factory=dict)

    @property
    def switching_probability(self):
        """Average toggles per net per cycle."""
        if self.cycles == 0 or self.nets == 0:
            return 0.0
        return self.total_toggles / (self.cycles * self.nets)


@dataclass
class ActivityTrace:
    """A full run's per-group activity plus representative groups."""

    groups: list = field(default_factory=list)

    @property
    def series(self):
        """Switching probability per group (Fig. 7's y series)."""
        return [g.switching_probability for g in self.groups]

    def representative_groups(self):
        """The paper's max / min / average trio.

        Returns a dict with keys ``max``, ``min``, ``avg`` -- the group with
        the highest, lowest, and closest-to-mean switching probability.
        """
        if not self.groups:
            raise ValueError("no activity groups recorded")
        by_prob = sorted(self.groups, key=lambda g: g.switching_probability)
        mean = sum(self.series) / len(self.groups)
        avg_group = min(
            self.groups,
            key=lambda g: abs(g.switching_probability - mean),
        )
        return {"max": by_prob[-1], "min": by_prob[0], "avg": avg_group}

    def average_switching_probability(self):
        """Cycle-weighted mean switching probability of the whole run."""
        total_cycles = sum(g.cycles for g in self.groups)
        if total_cycles == 0:
            return 0.0
        return (
            sum(g.switching_probability * g.cycles for g in self.groups)
            / total_cycles
        )


class GroupRecorder:
    """Incrementally collect toggle counts into fixed-size cycle groups."""

    def __init__(self, sim, group_size=10):
        self.sim = sim
        self.group_size = group_size
        self.trace = ActivityTrace()
        self._cycles_in_group = 0
        self._base = dict(sim.toggle_snapshot())
        self._nets = len([n for n in sim.module.nets() if not n.is_const])

    def after_cycle(self):
        """Call once per simulated cycle."""
        self._cycles_in_group += 1
        if self._cycles_in_group >= self.group_size:
            self.flush()

    def flush(self):
        """Close the current group (no-op when empty)."""
        if self._cycles_in_group == 0:
            return
        snap = self.sim.toggle_snapshot()
        deltas = {
            name: snap[name] - self._base.get(name, 0)
            for name in snap
            if snap[name] != self._base.get(name, 0)
        }
        self.trace.groups.append(
            GroupActivity(
                index=len(self.trace.groups),
                cycles=self._cycles_in_group,
                total_toggles=sum(deltas.values()),
                nets=self._nets,
                toggles=deltas,
            )
        )
        self._base = snap
        self._cycles_in_group = 0


def group_activity(module, vectors, group_size=10, clock="clk"):
    """Run ``vectors`` through ``module`` and return the grouped
    :class:`ActivityTrace` (paper Fig. 7 pipeline for open-loop stimuli).

    Rides the levelized struct-of-arrays engine
    (:mod:`repro.sim.compiled`) when the circuit qualifies, with a
    transparent event-simulator fallback -- the traces are bit-identical
    either way.
    """
    from .compiled import schedule_for

    run = schedule_for(module).run_vectors(
        list(vectors), clock=clock, group_size=group_size)
    return run.trace
