"""Ternary logic values and compiled cell evaluators.

Values are ``0``, ``1`` and :data:`X` (unknown, encoded as ``2``).  Cell
boolean functions (:class:`~repro.tech.boolfunc.BoolExpr`) are compiled once
per cell into dense ternary truth tables -- a 3-input cell needs 27 entries
-- so the inner simulation loop is a list lookup instead of an AST walk.
"""

from __future__ import annotations

from ..errors import SimulationError

#: The unknown value.  Chosen as an int so net values pack into lists.
X = 2

_TO_TERNARY = {0: 0, 1: 1, X: X, None: X, False: 0, True: 1}


def to_ternary(value):
    """Normalise ``value`` to 0/1/X."""
    try:
        return _TO_TERNARY[value]
    except KeyError:
        raise SimulationError(
            "not a logic value: {!r}".format(value)
        ) from None


def from_ternary(value):
    """Map 0/1 to ints and X to ``None`` (for BoolExpr interop)."""
    return None if value == X else value


class CompiledCell:
    """Evaluation tables for one combinational library cell.

    ``input_names`` fixes the operand order; ``tables`` maps each output pin
    to a dense list indexed by ``sum(v_k * 3**k)`` over the ternary input
    values.
    """

    __slots__ = ("cell", "input_names", "tables")

    def __init__(self, cell, input_names, tables):
        self.cell = cell
        self.input_names = input_names
        self.tables = tables

    def evaluate(self, values):
        """Evaluate all outputs for ``values`` (sequence matching
        ``input_names``); returns a dict pin -> 0/1/X."""
        idx = 0
        stride = 1
        for v in values:
            idx += v * stride
            stride *= 3
        return {pin: table[idx] for pin, table in self.tables.items()}


_CACHE = {}


def compile_cell(cell):
    """Compile (and cache) evaluation tables for a combinational cell."""
    key = id(cell)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    input_names = tuple(p.name for p in cell.inputs)
    n = len(input_names)
    if n > 8:
        raise SimulationError(
            "cell {} has too many inputs to tabulate".format(cell.name)
        )
    tables = {}
    for out in cell.outputs:
        if out.expr is None:
            raise SimulationError(
                "cell {} output {} has no function".format(cell.name, out.name)
            )
        table = []
        for idx in range(3 ** n):
            assignment = {}
            rest = idx
            for name in input_names:
                assignment[name] = from_ternary(rest % 3)
                rest //= 3
            result = out.expr.eval(assignment)
            table.append(X if result is None else result)
        tables[out.name] = table
    compiled = CompiledCell(cell, input_names, tables)
    _CACHE[key] = compiled
    return compiled
