"""Gate-level logic simulation, VCD output and switching-activity capture.

Replaces the paper's Mentor ModelSim step: the event-driven simulator runs
vectors through flat netlists, records per-net toggle counts (the input to
dynamic power analysis, standing in for PrimeTime-PX's VCD flow), and can
write/parse VCD.

* :mod:`repro.sim.logic` -- ternary cell evaluation (compiled truth tables).
* :mod:`repro.sim.event` -- the event-driven simulator core.
* :mod:`repro.sim.testbench` -- clocked testbench harness.
* :mod:`repro.sim.vcd` -- VCD writer/parser.
* :mod:`repro.sim.activity` -- toggle recording, vector grouping (Fig. 7).
* :mod:`repro.sim.saif` -- SAIF-lite activity interchange.
"""

from .logic import X, compile_cell
from .event import Simulator
from .testbench import ClockedTestbench, drive_bus, read_bus
from .vcd import VcdWriter, parse_vcd
from .activity import ActivityTrace, GroupActivity, group_activity
from .saif import dumps_saif, parse_saif, read_saif, write_saif

__all__ = [
    "dumps_saif",
    "parse_saif",
    "read_saif",
    "write_saif",
    "X",
    "compile_cell",
    "Simulator",
    "ClockedTestbench",
    "drive_bus",
    "read_bus",
    "VcdWriter",
    "parse_vcd",
    "ActivityTrace",
    "GroupActivity",
    "group_activity",
]
