"""repro -- reproduction of "Sub-Clock Power-Gating Technique for
Minimising Leakage Power During Active Mode" (Mistry, Al-Hashimi, Flynn,
Hill; DATE 2011).

Quick start::

    from repro import Session

    session = Session(workers=4)          # scl90 library, 4-way sweeps
    handle = session.design("mult16")     # registry-built multiplier
    rows = handle.table([1e4, 1e6, 1e7])  # Table-I style rows
    print(session.stats.render())         # what the runner did

The lower-level entry points remain public (see ``docs/api.md``)::

    from repro import multiplier_study, Mode, build_table, format_table
    from repro.analysis.tables import TABLE_I_FREQS

    study = multiplier_study()
    rows = build_table(study.model, TABLE_I_FREQS)
    print(format_table(rows))

Package map (see DESIGN.md for the full inventory):

========================  ====================================================
``repro.tech``            synthetic 90nm library, device models, Liberty-lite
``repro.netlist``         netlist model, Verilog subset I/O, transforms
``repro.circuits``        generator families + keyed design database + registry
``repro.sim``             event-driven simulator, VCD, activity capture
``repro.sta``             static timing analysis
``repro.power``           leakage / dynamic / rails / header sizing
``repro.isa``             M0-lite ISA, assembler, ISS, Dhrystone-lite
``repro.scpg``            the SCPG technique (transform + power model)
``repro.techniques``      pluggable gating schemes (scpg/cbtstc/lector) +
                          cross-technique comparison
``repro.flows``           Fig. 5 implementation flows
``repro.subvt``           sub-threshold study (§IV)
``repro.analysis``        tables, figures, sweeps, ASCII plots
``repro.runner``          parallel grid evaluation + result cache + stats
``repro.session``         the Session/DesignHandle facade over all of it
========================  ====================================================
"""

from .analysis.tables import build_table, format_table
from .circuits.generators import DesignKey, available_families, \
    expand_family, register_family
from .circuits.registry import available_designs, register_design
from .errors import ReproError
from .netlist.core import Design, Module
from .paper import CaseStudy, cortex_m0_study, multiplier_study
from .runner import ResultCache, RunJournal, Runner, RunStats, \
    evaluate_grid
from .scpg import Mode, ScpgPowerModel, apply_scpg
from .session import DesignHandle, Session
from .tech import build_scl90
from .techniques import available_techniques, register_technique, technique

__version__ = "1.1.0"

__all__ = [
    "ReproError",
    "Design",
    "Module",
    "build_scl90",
    "apply_scpg",
    "Mode",
    "ScpgPowerModel",
    "CaseStudy",
    "multiplier_study",
    "cortex_m0_study",
    "build_table",
    "format_table",
    "Session",
    "DesignHandle",
    "Runner",
    "RunStats",
    "RunJournal",
    "ResultCache",
    "evaluate_grid",
    "register_design",
    "available_designs",
    "DesignKey",
    "register_family",
    "available_families",
    "expand_family",
    "technique",
    "register_technique",
    "available_techniques",
    "__version__",
]
