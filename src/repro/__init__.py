"""repro -- reproduction of "Sub-Clock Power-Gating Technique for
Minimising Leakage Power During Active Mode" (Mistry, Al-Hashimi, Flynn,
Hill; DATE 2011).

Quick start::

    from repro import multiplier_study, Mode, build_table, format_table
    from repro.analysis.tables import TABLE_I_FREQS

    study = multiplier_study()
    rows = build_table(study.model, TABLE_I_FREQS)
    print(format_table(rows))

Package map (see DESIGN.md for the full inventory):

========================  ====================================================
``repro.tech``            synthetic 90nm library, device models, Liberty-lite
``repro.netlist``         netlist model, Verilog subset I/O, transforms
``repro.circuits``        multiplier / M0-lite / block generators
``repro.sim``             event-driven simulator, VCD, activity capture
``repro.sta``             static timing analysis
``repro.power``           leakage / dynamic / rails / header sizing
``repro.isa``             M0-lite ISA, assembler, ISS, Dhrystone-lite
``repro.scpg``            the SCPG technique (transform + power model)
``repro.flows``           Fig. 5 implementation flows
``repro.subvt``           sub-threshold study (§IV)
``repro.analysis``        tables, figures, sweeps, ASCII plots
========================  ====================================================
"""

from .analysis.tables import build_table, format_table
from .errors import ReproError
from .netlist.core import Design, Module
from .paper import CaseStudy, cortex_m0_study, multiplier_study
from .scpg import Mode, ScpgPowerModel, apply_scpg
from .tech import build_scl90

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "Design",
    "Module",
    "build_scl90",
    "apply_scpg",
    "Mode",
    "ScpgPowerModel",
    "CaseStudy",
    "multiplier_study",
    "cortex_m0_study",
    "build_table",
    "format_table",
    "__version__",
]
