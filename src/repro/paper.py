"""End-to-end case-study drivers for the paper's evaluation.

:func:`multiplier_study` and :func:`cortex_m0_study` run the full
reproduction pipeline for one test design:

1. generate the netlist (:mod:`repro.circuits`);
2. implement it twice through the flows (baseline and SCPG, incl. CTS);
3. measure switched energy per cycle with the event simulator (random
   operands for the multiplier; the Dhrystone-lite workload, grouped per
   10 vectors with representative max/min/avg groups, for the M0-lite --
   the paper's §III-B methodology);
4. assemble the :class:`~repro.scpg.power_model.ScpgPowerModel` (Tables
   I/II, Figs 6/8) and the :class:`~repro.subvt.energy.SubvtModel`
   (Figs 9/10, §IV).

Results are memoised per (design, fast) so the benchmark suite shares one
simulation run.  ``fast=True`` trims the workload length for unit tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from .circuits import registry
from .flows.scpg_flow import _run_scpg_flow
from .isa.programs import dhrystone_memory, dhrystone_program
from .isa.trace import GateLevelCpu
from .netlist.core import Design
from .power.dynamic import (
    M0LITE_GLITCH_FACTOR,
    MULT16_GLITCH_FACTOR,
    dynamic_power,
)
from .power.leakage import leakage_power
from .scpg.power_model import ScpgPowerModel
from .sim.compiled import schedule_for
from .sim.testbench import bus_values
from .subvt.energy import SubvtModel
from .tech.calibration import CORTEX_M0_ANCHORS, MULTIPLIER_ANCHORS
from .tech.scl90 import build_scl90


@dataclass
class CaseStudy:
    """Everything needed to regenerate one design's tables and figures."""

    name: str
    library: object
    base: Design                 # implemented baseline (post-CTS)
    flow: object                 # ScpgFlowResult
    scpg: object                 # ScpgDesign (flat refreshed post-CTS)
    model: ScpgPowerModel
    subvt: SubvtModel
    sta: object
    e_cycle: float
    glitch_factor: float
    anchors: object
    activity_trace: object = None   # Dhrystone grouping (M0 only)
    workload_cycles: int = 0


def _finish_study(name, flow_result, base_flow, e_cycle, glitch, anchors,
                  library, trace=None, cycles=0):
    scpg = flow_result.scpg
    base_design = base_flow.flat
    base_leak = leakage_power(base_design.top, library)
    model = ScpgPowerModel.from_scpg_design(scpg, e_cycle)
    model.leak_comb_base = base_leak.combinational
    model.leak_alwayson_base = base_leak.always_on
    sta = base_flow.metrics["timing"]
    subvt = SubvtModel(
        library,
        e_cycle=e_cycle,
        leak_nominal=base_leak.total,
        min_period=sta.min_period,
    )
    return CaseStudy(
        name=name,
        library=library,
        base=base_design,
        flow=flow_result,
        scpg=scpg,
        model=model,
        subvt=subvt,
        sta=sta,
        e_cycle=e_cycle,
        glitch_factor=glitch,
        anchors=anchors,
        activity_trace=trace,
        workload_cycles=cycles,
    )


def _measure_multiplier_energy(module, library, vectors, seed):
    """Switched energy per cycle under random operand vectors.

    Runs through the levelized struct-of-arrays engine
    (:mod:`repro.sim.compiled`); its toggle counts are bit-identical to
    the event simulator's, so the calibration numbers are unchanged.
    """
    rng = random.Random(seed)
    stimulus = [{
        **bus_values("a", 16, rng.getrandbits(16)),
        **bus_values("b", 16, rng.getrandbits(16)),
    } for _ in range(vectors)]
    run = schedule_for(module, library).run_vectors(stimulus)
    dyn = dynamic_power(
        module, library, run.toggle_snapshot(), run.cycles,
        glitch_factor=MULT16_GLITCH_FACTOR)
    return dyn.energy_per_cycle, run.cycles


@lru_cache(maxsize=None)
def multiplier_study(fast=False, seed=2011):
    """Case study 1: the 16-bit parallel multiplier."""
    library = build_scl90()

    # Quick pre-pass on the raw netlist: the header IR-drop sizing needs a
    # realistic switched-energy figure (the paper sizes sleep transistors
    # "from synthesis and simulation").
    e_sizing, _ = _measure_multiplier_energy(
        registry.build("mult16", library), library, vectors=60, seed=seed)

    flow_result = _run_scpg_flow(
        lambda: Design(registry.build("mult16", library), library),
        library, energy_per_cycle=e_sizing)
    base_flow = flow_result.baseline

    # Final measurement on the implemented baseline (clock tree included).
    vectors = 60 if fast else 300
    e_cycle, cycles = _measure_multiplier_energy(
        base_flow.flat.top, library, vectors, seed)

    return _finish_study(
        "mult16", flow_result, base_flow, e_cycle,
        MULT16_GLITCH_FACTOR, MULTIPLIER_ANCHORS, library,
        cycles=cycles)


def _run_dhrystone(module, library, iterations=None):
    """Run Dhrystone-lite on a gate-level core; returns (cpu, E/cycle)."""
    program = dhrystone_program() if iterations is None \
        else dhrystone_program(iterations)
    gate = GateLevelCpu(module, program, dhrystone_memory())
    gate.run()
    dyn = dynamic_power(
        module, library, gate.toggle_snapshot(), gate.cycles,
        glitch_factor=M0LITE_GLITCH_FACTOR)
    return gate, dyn.energy_per_cycle


@lru_cache(maxsize=None)
def cortex_m0_study(fast=False):
    """Case study 2: the M0-lite processor running Dhrystone-lite."""
    library = build_scl90()

    # Sizing pre-pass (short workload on the raw core).
    _, e_sizing = _run_dhrystone(registry.build("m0lite", library),
                                 library, iterations=4)

    flow_result = _run_scpg_flow(
        lambda: Design(registry.build("m0lite", library), library),
        library, energy_per_cycle=e_sizing)
    base_flow = flow_result.baseline

    iterations = 4 if fast else None  # None -> paper-matched ~3700 cycles
    gate, e_cycle = _run_dhrystone(base_flow.flat.top, library, iterations)

    return _finish_study(
        "cortex_m0", flow_result, base_flow, e_cycle,
        M0LITE_GLITCH_FACTOR, CORTEX_M0_ANCHORS, library,
        trace=gate.activity_trace(), cycles=gate.cycles)
