"""Result generation: sweeps, the paper's tables and figures, ASCII plots."""

from .sweep import FrequencySweep, find_convergence, sweep
from .tables import TableRowResult, build_table, format_table
from .figures import (
    FigureSeries,
    energy_series,
    power_series,
    subvt_series,
    switching_series,
)
from .ascii_plot import ascii_chart
from .scaling import ScalingPoint, ScalingStudy, scaling_study

__all__ = [
    "FrequencySweep",
    "find_convergence",
    "sweep",
    "TableRowResult",
    "build_table",
    "format_table",
    "FigureSeries",
    "power_series",
    "energy_series",
    "subvt_series",
    "switching_series",
    "ascii_chart",
    "ScalingPoint",
    "ScalingStudy",
    "scaling_study",
]
