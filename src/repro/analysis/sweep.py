"""Frequency sweeps and the savings convergence point.

Figs 6(a) and 8(a) show the three configurations' average power converging
as the clock rises: the per-cycle gating overhead grows linearly with
frequency while the gatable idle time shrinks.  :func:`find_convergence`
locates the frequency where SCPG stops saving power -- about 15 MHz for
the multiplier and 5 MHz for the Cortex-M0 in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ScpgError
from ..scpg.power_model import Mode


@dataclass
class FrequencySweep:
    """Power/energy of every mode across a frequency grid."""

    freqs: list
    results: dict = field(default_factory=dict)  # mode -> list of breakdowns

    def totals(self, mode):
        """Average power (W) per grid point (``None`` when infeasible)."""
        return [
            b.total if b is not None else None for b in self.results[mode]
        ]

    def energies(self, mode):
        """Energy per op (J) per grid point (``None`` when infeasible)."""
        return [
            b.energy_per_op if b is not None else None
            for b in self.results[mode]
        ]


def sweep(model, freqs, modes=(Mode.NO_PG, Mode.SCPG, Mode.SCPG_MAX)):
    """Evaluate ``model`` across ``freqs`` for each mode."""
    out = FrequencySweep(freqs=list(freqs))
    for mode in modes:
        rows = []
        for f in freqs:
            try:
                rows.append(model.power(f, mode))
            except ScpgError:
                rows.append(None)
        out.results[mode] = rows
    return out


def find_convergence(model, mode=Mode.SCPG, f_lo=1e4, f_hi=None,
                     tolerance=1e-3):
    """Frequency where ``mode`` stops saving power versus No-PG.

    The saving ``P_nopg(f) - P_mode(f)`` decreases monotonically with
    frequency (linear overhead vs shrinking idle time), so bisection finds
    the zero crossing.  Returns ``None`` when the mode still saves power at
    its own maximum feasible frequency.
    """
    if f_hi is None:
        f_hi = model.feasible_fmax(mode)

    def saving(f):
        return model.power(f, Mode.NO_PG).total - model.power(f, mode).total

    if saving(f_lo) <= 0:
        raise ScpgError("no saving even at {:.3g} Hz".format(f_lo))
    if saving(f_hi) > 0:
        return None
    lo, hi = f_lo, f_hi
    while (hi - lo) / hi > tolerance:
        mid = (lo + hi) / 2.0
        if saving(mid) > 0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0
