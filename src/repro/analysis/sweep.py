"""Frequency sweeps and the savings convergence point.

Figs 6(a) and 8(a) show the three configurations' average power converging
as the clock rises: the per-cycle gating overhead grows linearly with
frequency while the gatable idle time shrinks.  :func:`find_convergence`
locates the frequency where SCPG stops saving power -- about 15 MHz for
the multiplier and 5 MHz for the Cortex-M0 in the paper.

Both entry points execute through :mod:`repro.runner`: pass a
:class:`~repro.runner.Runner` to fan the grid over worker processes
and/or reuse the content-addressed result cache.  Sweeps and convergence
searches share one cache namespace -- a convergence search after a sweep
of the same model re-reads the sweep's points instead of recomputing
them.  The runner's fault-tolerance policy (``retry_on`` / ``retries`` /
``timeout``) and its JSONL journal apply here too: sweep grids are
journalled under the label ``"sweep"``.  The defaults (no runner) keep
the historical serial, uncached behaviour with identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ScpgError
from ..runner import Runner, can_fingerprint, compile_kernel, stable_hash
from ..scpg.power_model import Mode


@dataclass
class FrequencySweep:
    """Power/energy of every mode across a frequency grid."""

    freqs: list
    results: dict = field(default_factory=dict)  # mode -> list of breakdowns

    def totals(self, mode):
        """Average power (W) per grid point (``None`` when infeasible)."""
        return [
            b.total if b is not None else None for b in self.results[mode]
        ]

    def energies(self, mode):
        """Energy per op (J) per grid point (``None`` when infeasible)."""
        return [
            b.energy_per_op if b is not None else None
            for b in self.results[mode]
        ]


def _power_point(model, point):
    freq_hz, mode = point
    return model.power(freq_hz, mode)


def _batch_kernel(model):
    """The compiled sweep kernel -- or ``None`` for non-pristine models
    (the ``ScpgPowerKernel.applies`` guard keeps instance overrides
    honoured on the point-at-a-time path)."""
    return compile_kernel(model)


def power_cache_key(model):
    """Cache namespace for one model's ``power(f, mode)`` evaluations.

    ``None`` (caching disabled) for models without a content fingerprint
    -- a wrong key is worse than no cache.
    """
    if not can_fingerprint(model):
        return None
    return stable_hash("scpg-power-point", model)


def sweep(model, freqs, modes=(Mode.NO_PG, Mode.SCPG, Mode.SCPG_MAX),
          runner=None, label="sweep"):
    """Evaluate ``model`` across ``freqs`` for each mode.

    Infeasible (frequency, mode) points come back as ``None``, exactly as
    the serial implementation always produced them.  ``label`` names the
    grid in the journal/trace (``DesignHandle.sweep`` passes
    ``"sweep:<design>"`` so replay reports break down per design).
    """
    runner = Runner() if runner is None else runner
    freqs = list(freqs)
    modes = tuple(modes)
    grid = [(f, mode) for mode in modes for f in freqs]
    values = runner.run(_power_point, grid, context=model,
                        cache_key=power_cache_key(model),
                        on_error=(ScpgError,), label=label,
                        kernel=_batch_kernel(model))
    out = FrequencySweep(freqs=freqs)
    for i, mode in enumerate(modes):
        out.results[mode] = values[i * len(freqs):(i + 1) * len(freqs)]
    return out


def find_convergence(model, mode=Mode.SCPG, f_lo=1e4, f_hi=None,
                     tolerance=1e-3, runner=None):
    """Frequency where ``mode`` stops saving power versus No-PG.

    The saving ``P_nopg(f) - P_mode(f)`` decreases monotonically with
    frequency (linear overhead vs shrinking idle time), so bisection finds
    the zero crossing.  Returns ``None`` when the mode still saves power at
    its own maximum feasible frequency.

    Every breakdown evaluation goes through the runner's cached evaluator,
    so the No-PG reference is computed once per frequency and repeated
    searches over the same model (with a cache-equipped runner) evaluate
    nothing at all.
    """
    runner = Runner() if runner is None else runner
    if f_hi is None:
        f_hi = model.feasible_fmax(mode)
    breakdown = runner.evaluator(
        lambda point: model.power(point[0], point[1]),
        cache_key=power_cache_key(model))

    def saving(f):
        return breakdown((f, Mode.NO_PG)).total - breakdown((f, mode)).total

    if saving(f_lo) <= 0:
        raise ScpgError("no saving even at {:.3g} Hz".format(f_lo))
    if saving(f_hi) > 0:
        return None
    lo, hi = f_lo, f_hi
    while (hi - lo) / hi > tolerance:
        mid = (lo + hi) / 2.0
        if saving(mid) > 0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0
