"""Design-size scaling study: how SCPG's value moves with gate count.

The paper compares exactly two designs and attributes the Cortex-M0's
lower savings and earlier convergence to its size ("the increased
concentration of combinational logic ... increases the energy required to
charge the virtual supply rail" and worsens crowbar).  This module turns
that two-point observation into a trend by sweeping generated multipliers
across operand widths: per width it applies SCPG, sizes headers, and
derives the figures the paper discusses -- the gatable leakage share, the
per-cycle overhead, the convergence frequency and the 10 kHz savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits.generators import DesignKey, elaborate
from ..errors import ScpgError
from ..netlist.core import Design
from ..netlist.stats import module_stats
from ..power.leakage import leakage_power
from ..runner import Runner, can_fingerprint, stable_hash
from ..scpg.power_model import Mode, ScpgPowerModel
from .sweep import find_convergence


@dataclass
class ScalingPoint:
    """SCPG characteristics of one design size."""

    width: int
    comb_gates: int
    comb_leak: float
    alwayson_leak: float
    overhead_energy: float       # per-cycle gating overhead at full swing
    convergence_hz: float        # None -> saving persists to SCPG Fmax
    saving_10k_pct: float
    savingmax_10k_pct: float
    header_size: int
    area_overhead_pct: float


@dataclass
class ScalingStudy:
    """A sweep over operand widths."""

    points: list = field(default_factory=list)

    def trend(self, attr):
        """Values of ``attr`` ordered by design size."""
        return [getattr(p, attr) for p in
                sorted(self.points, key=lambda p: p.comb_gates)]


def _estimate_e_cycle(module, library):
    """Vectorless switched-energy estimate (adequate for trends)."""
    from ..power.probabilistic import vectorless_switching

    return vectorless_switching(module, library)[0]


def evaluate_width(library, width):
    """One :class:`ScalingPoint` for a ``width x width`` multiplier."""
    from ..techniques import technique

    key = DesignKey("multiplier", n=width)
    design = Design(elaborate(key, library, fresh=True), library)
    e_cycle = _estimate_e_cycle(design.top, library)
    scpg = technique("scpg").transform(
        Design(elaborate(key, library, fresh=True), library),
        energy_per_cycle=e_cycle)
    model = ScpgPowerModel.from_scpg_design(scpg, e_cycle)
    base = leakage_power(design.top, library)
    model.leak_comb_base = base.combinational
    model.leak_alwayson_base = base.always_on

    row = model.table_row(1e4)
    nopg, s50, smax = row[Mode.NO_PG], row[Mode.SCPG], row[Mode.SCPG_MAX]
    try:
        convergence = find_convergence(model, Mode.SCPG)
    except ScpgError:
        convergence = None
    stats = module_stats(design.top)
    return ScalingPoint(
        width=width,
        comb_gates=stats.comb_gates,
        comb_leak=model.leak_comb,
        alwayson_leak=model.leak_alwayson,
        overhead_energy=scpg.rail.cycle_overhead(
            library.vdd_nom, 1e-3, scpg.headers.gate_cap),
        convergence_hz=convergence,
        saving_10k_pct=s50.saving_vs(nopg),
        savingmax_10k_pct=smax.saving_vs(nopg),
        header_size=scpg.headers.cell.drive_strength,
        area_overhead_pct=scpg.area_overhead_pct,
    )


def _width_point(library, width):
    return evaluate_width(library, width)


def scaling_study(library, widths=(8, 12, 16, 24, 32), runner=None):
    """Sweep multiplier widths; returns a :class:`ScalingStudy`.

    Each width is an independent build-transform-model pipeline, so with
    a ``runner`` the widths evaluate in parallel worker processes and land
    in the content-addressed cache keyed by the library's fingerprint.
    """
    runner = Runner() if runner is None else runner
    cache_key = stable_hash("scaling-point", library) \
        if can_fingerprint(library) else None
    points = runner.run(_width_point, [int(w) for w in widths],
                        context=library, cache_key=cache_key)
    study = ScalingStudy()
    study.points.extend(points)
    return study
