"""Figure series builders (Figs 6, 8, 9, 10 and 7)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..scpg.power_model import Mode
from .sweep import sweep


@dataclass
class FigureSeries:
    """One plottable series: x values, y values, label."""

    label: str
    x: list = field(default_factory=list)
    y: list = field(default_factory=list)

    def finite(self):
        """(x, y) pairs with the infeasible (None) points removed."""
        return [(a, b) for a, b in zip(self.x, self.y) if b is not None]


_MODE_LABELS = {
    Mode.NO_PG: "No Power Gating",
    Mode.SCPG: "SCPG",
    Mode.SCPG_MAX: "SCPG-Max",
}


def power_series(model, freqs):
    """Fig. 6(a)/8(a): average power vs clock frequency, three setups."""
    data = sweep(model, freqs)
    out = []
    for mode, label in _MODE_LABELS.items():
        out.append(
            FigureSeries(label=label, x=list(freqs),
                         y=data.totals(mode))
        )
    return out


def energy_series(model, freqs):
    """Fig. 6(b)/8(b): energy per operation vs clock frequency (log y)."""
    data = sweep(model, freqs)
    out = []
    for mode, label in _MODE_LABELS.items():
        out.append(
            FigureSeries(label=label, x=list(freqs),
                         y=data.energies(mode))
        )
    return out


def comparison_series(comparison, metric="total"):
    """Cross-technique figure: per-technique power (or savings) vs
    frequency from a :class:`~repro.techniques.compare.
    TechniqueComparison` -- one series per column, baseline first.

    ``metric`` is ``"total"`` (average power, W) or ``"saving"``
    (percent saving vs the shared baseline; the baseline series is
    omitted since it is identically zero).
    """
    if metric not in ("total", "saving"):
        raise ValueError("metric must be 'total' or 'saving'")
    out = []
    entries = [comparison.baseline] + list(comparison.entries) \
        if metric == "total" else list(comparison.entries)
    for entry in entries:
        if metric == "total":
            y = [None if b is None else b.total for b in entry.points]
        else:
            y = list(entry.savings_pct)
        out.append(FigureSeries(label=entry.technique,
                                x=list(comparison.freqs), y=y))
    return out


def subvt_series(subvt_model, v_lo=0.15, v_hi=0.9, steps=76):
    """Fig. 9/10: energy per operation vs supply voltage."""
    from ..subvt.energy import energy_sweep

    points = energy_sweep(subvt_model, v_lo, v_hi, steps)
    return FigureSeries(
        label="Energy per operation",
        x=[p.vdd for p in points],
        y=[p.energy for p in points],
    )


def switching_series(trace):
    """Fig. 7: switching probability per Dhrystone vector group."""
    return FigureSeries(
        label="Switching probability",
        x=list(range(len(trace.groups))),
        y=trace.series,
    )
