"""Minimal ASCII chart renderer for benchmark output.

No plotting libraries are available offline, so figure benches render
their series as text -- enough to eyeball the convergence of Fig. 6(a) or
the U-shape of Fig. 9 straight from the test log.
"""

from __future__ import annotations

import math

_MARKS = "*+xo#@"


def ascii_chart(series_list, width=72, height=20, logy=False, title="",
                xlabel="", ylabel=""):
    """Render one or more :class:`~repro.analysis.figures.FigureSeries`.

    ``None`` y-values (infeasible points) are skipped.  ``logy`` plots
    log10(y) (Figs 6(b), 8(b)).
    """
    points = []
    for idx, series in enumerate(series_list):
        for x, y in series.finite():
            if y is None or (logy and y <= 0):
                continue
            points.append((x, math.log10(y) if logy else y, idx))
    if not points:
        return "(no plottable points)"

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, idx in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = _MARKS[idx % len(_MARKS)]

    lines = []
    if title:
        lines.append(title)
    for series_idx, series in enumerate(series_list):
        lines.append("  {} = {}".format(
            _MARKS[series_idx % len(_MARKS)], series.label))
    top_label = "{:.3g}".format(10 ** y_hi if logy else y_hi)
    bottom_label = "{:.3g}".format(10 ** y_lo if logy else y_lo)
    pad = max(len(top_label), len(bottom_label))
    for r, row in enumerate(grid):
        label = top_label if r == 0 else (
            bottom_label if r == height - 1 else "")
        lines.append("{:>{}} |{}".format(label, pad, "".join(row)))
    lines.append("{} +{}".format(" " * pad, "-" * width))
    lines.append("{}  {:<{}}{:>{}}".format(
        " " * pad, "{:.3g}".format(x_lo), width // 2,
        "{:.3g}".format(x_hi), width - width // 2))
    if xlabel or ylabel:
        lines.append("{}   x: {}   y: {}{}".format(
            " " * pad, xlabel, ylabel, " (log)" if logy else ""))
    return "\n".join(lines)
