"""Table I / Table II generation in the paper's exact format.

Columns: clock frequency; then power, energy/op for No Power Gating;
power, energy/op and saving % for Proposed SCPG; the same for Proposed
SCPG-Max.  Savings are relative to the No-PG power at the same frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..scpg.power_model import Mode
from .sweep import sweep

#: The frequency grids of Table I and Table II (Hz).
TABLE_I_FREQS = [0.01e6, 0.1e6, 1e6, 2e6, 5e6, 8e6, 10e6, 14.3e6]
TABLE_II_FREQS = [0.01e6, 0.1e6, 1e6, 2e6, 5e6, 10e6]


@dataclass
class TableRowResult:
    """One table row (SI units; ``None`` marks infeasible entries)."""

    freq_hz: float
    power_nopg: float
    energy_nopg: float
    power_scpg: float
    energy_scpg: float
    saving_scpg_pct: float
    power_scpgmax: float
    energy_scpgmax: float
    saving_scpgmax_pct: float


def build_table(model, freqs, runner=None, label="sweep"):
    """Evaluate the model on a frequency grid; returns
    ``list[TableRowResult]``.

    ``runner`` (a :class:`repro.runner.Runner`) supplies workers and the
    result cache for the underlying sweep; ``label`` names the grid in
    the journal/trace.
    """
    data = sweep(model, freqs, runner=runner, label=label)
    rows = []
    for i, f in enumerate(freqs):
        nopg = data.results[Mode.NO_PG][i]
        scpg = data.results[Mode.SCPG][i]
        scpgmax = data.results[Mode.SCPG_MAX][i]

        def fields(breakdown):
            if breakdown is None or nopg is None:
                return None, None, None
            return (
                breakdown.total,
                breakdown.energy_per_op,
                breakdown.saving_vs(nopg),
            )

        p2, e2, s2 = fields(scpg)
        p3, e3, s3 = fields(scpgmax)
        rows.append(
            TableRowResult(
                freq_hz=f,
                power_nopg=nopg.total if nopg else None,
                energy_nopg=nopg.energy_per_op if nopg else None,
                power_scpg=p2,
                energy_scpg=e2,
                saving_scpg_pct=s2,
                power_scpgmax=p3,
                energy_scpgmax=e3,
                saving_scpgmax_pct=s3,
            )
        )
    return rows


def _fmt(value, scale, pattern="{:8.2f}"):
    if value is None:
        return " " * (len(pattern.format(0.0)) - 1) + "-"
    return pattern.format(value * scale)


def format_table(rows, title="POWER AND ENERGY PER OPERATION", vdd=0.6):
    """Render rows in the paper's layout (uW / pJ / %)."""
    lines = []
    lines.append("{}, VDD={}V".format(title, vdd))
    lines.append(
        "{:>8} | {:>8} {:>9} | {:>8} {:>9} {:>7} | {:>8} {:>9} {:>7}".format(
            "Clock", "Power", "Energy", "Power", "Energy", "Saving",
            "Power", "Energy", "Saving")
    )
    lines.append(
        "{:>8} | {:>8} {:>9} | {:>8} {:>9} {:>7} | {:>8} {:>9} {:>7}".format(
            "(MHz)", "(uW)", "(pJ)", "(uW)", "(pJ)", "(%)",
            "(uW)", "(pJ)", "(%)")
    )
    lines.append("-" * 96)
    for row in rows:
        lines.append(
            "{:>8.2f} | {} {} | {} {} {} | {} {} {}".format(
                row.freq_hz / 1e6,
                _fmt(row.power_nopg, 1e6),
                _fmt(row.energy_nopg, 1e12, "{:9.2f}"),
                _fmt(row.power_scpg, 1e6),
                _fmt(row.energy_scpg, 1e12, "{:9.2f}"),
                _fmt(row.saving_scpg_pct, 1.0, "{:7.1f}"),
                _fmt(row.power_scpgmax, 1e6),
                _fmt(row.energy_scpgmax, 1e12, "{:9.2f}"),
                _fmt(row.saving_scpgmax_pct, 1.0, "{:7.1f}"),
            )
        )
    return "\n".join(lines)
