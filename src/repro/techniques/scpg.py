"""Sub-clock power gating as a registered technique (the source paper).

The transform, flow and power model live in :mod:`repro.scpg` /
:mod:`repro.flows` exactly as before -- this module is the plugin
adapter: eligibility checks, the artifact table, and the uniform
comparison model.  The numbers are bit-identical to the pre-plugin
entry points because the adapter delegates to the same code.
"""

from __future__ import annotations

from ..scpg.power_model import Mode, ScpgPowerModel
from ..scpg.transform import _apply_scpg
from .base import (
    Technique,
    TechniqueBreakdown,
    TechniqueModel,
    common_checks,
    register_model_kernel,
)


def _to_breakdown(b):
    """:class:`~repro.scpg.power_model.PowerBreakdown` -> the uniform
    :class:`TechniqueBreakdown` (same buckets, leakage folded)."""
    if b is None:
        return None
    return TechniqueBreakdown(
        technique="scpg", freq_hz=b.freq_hz,
        p_dynamic=b.p_dynamic, p_overhead=b.p_overhead,
        p_leak=b.leakage, total=b.total)


@register_model_kernel
class ScpgCompareModel(TechniqueModel):
    """The SCPG power model behind the uniform technique surface.

    Wraps a pristine :class:`~repro.scpg.power_model.ScpgPowerModel`
    and evaluates one mode (SCPG-Max by default -- the paper's best
    configuration); the batch path rides ``_power_axis`` so the numbers
    are bit-identical to the Table I/II sweeps.
    """

    technique = "scpg"

    def __init__(self, model, mode=Mode.SCPG_MAX):
        self.model = model
        self.mode = mode

    def __fingerprint__(self):
        return ("technique-scpg-v1", self.model, self.mode.value)

    def fmax(self):
        return self.model.feasible_fmax(self.mode)

    def breakdown(self, freq_hz):
        return _to_breakdown(self.model.power(freq_hz, self.mode))

    def _power_points(self, freqs):
        values = self.model._power_axis(list(freqs), self.mode)
        return [_to_breakdown(b) for b in values]


class ScpgTechnique(Technique):
    """The paper's sub-clock power gating, as the first plugin."""

    name = "scpg"
    paper = "Sub-clock power gating (DATE 2011)"

    def check(self, design, clock_port="clk"):
        return common_checks(self.name, design, clock_port=clock_port)

    def transform(self, design, **options):
        """Apply SCPG; see :func:`repro.scpg.transform._apply_scpg` for
        the options (``clock_port``, ``header_size``,
        ``energy_per_cycle``, ``rail_params``, ...)."""
        return _apply_scpg(design, **options)

    def transform_for_compare(self, design, e_cycle):
        return self.transform(design, energy_per_cycle=e_cycle)

    def implement(self, design_builder, library, **options):
        """The full Fig. 5 implementation flow (synthesis, centred
        floorplan, CTS, routing) with a baseline comparison; see
        :func:`repro.flows.scpg_flow._run_scpg_flow`."""
        from ..flows.scpg_flow import _run_scpg_flow

        return _run_scpg_flow(design_builder, library, **options)

    def artifact_table(self, transformed):
        from ..runner.artifacts import ScpgModelTable

        return ScpgModelTable.compile(transformed)

    def power_model(self, transformed, e_cycle, vdd=None,
                    base_leakage=None):
        """An :class:`~repro.scpg.power_model.ScpgPowerModel` for the
        transformed design, with the unmodified design's base leakage
        wired in when supplied."""
        model = ScpgPowerModel.from_scpg_design(transformed, e_cycle,
                                                vdd=vdd)
        if base_leakage is not None:
            model.leak_comb_base = base_leakage.combinational
            model.leak_alwayson_base = base_leakage.always_on
        return model

    def sweep_model(self, transformed, *, library, e_cycle, base_leakage,
                    base_sta, vdd=None):
        model = self.power_model(transformed, e_cycle, vdd=vdd,
                                 base_leakage=base_leakage)
        return ScpgCompareModel(model)
