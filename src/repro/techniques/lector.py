"""LECTOR: leakage-control transistor insertion (arXiv 1805.07409).

LECTOR attacks active-mode leakage without any sleep signal at all: two
*leakage control transistors* (LCTs) are spliced between the pull-up and
pull-down networks of every gate, each LCT's gate driven by the source
of the other.  In any input state one LCT is near its cutoff region, so
every supply-to-ground path always contains a stacked, barely-on device
-- the transistor stacking effect -- and the gate keeps functioning with
no control logic, no state loss and no wake-up latency.  The price is an
extra series device: more area, a slower output, a little extra internal
capacitance.

The reproduction models this as a *library* transform:

* :func:`lector_library` derives a ``<lib>-lector`` variant library in
  which every combinational/buffer cell gains an ``_LCT`` twin --
  leakage divided by the device model's self-consistent stacking factor
  (:meth:`~repro.tech.transistor.DeviceModel.stack_leakage_factor`),
  area/delay/cap penalties amortised over the cell's input count (a
  2-transistor overhead on a ``2*n_in``-transistor CMOS gate).
* :meth:`LectorTechnique.transform` swaps every eligible instance for
  its twin with :func:`~repro.netlist.transform.remap_cells`, and the
  power/timing numbers come from running the ordinary leakage, activity
  and STA engines on the remapped netlist against the variant library.

The delay penalty is calibrated so an inverter (``n_in = 1``) slows by
~35 %, matching the LECTOR paper's reported propagation-delay cost,
and shrinks for wider gates where two extra devices matter less.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..netlist.core import Design
from ..netlist.stats import module_stats
from ..netlist.transform import remap_cells
from ..power.leakage import leakage_power
from ..power.probabilistic import vectorless_switching
from ..sta.analysis import TimingAnalysis
from ..tech.library import CellKind, Library
from .base import (
    Technique,
    TechniqueBreakdown,
    TechniqueModel,
    common_checks,
    register_model_kernel,
)

#: Suffix of the derived cell variants.
LCT_SUFFIX = "_LCT"

#: Fractional delay penalty of the two LCTs on a single-input gate.
DELAY_PENALTY = 0.35

#: Fractional internal-capacitance penalty on a single-input gate.
CAP_PENALTY = 0.5

#: Kinds that receive an LCT variant (the gates LECTOR rebuilds).
LCT_KINDS = (CellKind.COMBINATIONAL, CellKind.BUFFER)


def _lct_cell(cell, stack):
    """The ``_LCT`` twin of one combinational cell.

    ``stack`` is the leakage division factor from the stacking effect.
    Penalties scale with ``1/n_in``: LECTOR adds exactly two transistors
    to a gate that already has ``2 * n_in``, so wide gates pay
    proportionally less.
    """
    n_in = max(1, len(cell.inputs))
    states = [dataclasses.replace(s, power=s.power / stack)
              for s in cell.leakage_states]
    return dataclasses.replace(
        cell,
        name=cell.name + LCT_SUFFIX,
        area=cell.area * (1.0 + 1.0 / n_in),
        leakage=cell.leakage / stack,
        leakage_states=states,
        intrinsic_delay=cell.intrinsic_delay * (1.0 + DELAY_PENALTY / n_in),
        drive_resistance=cell.drive_resistance
        * (1.0 + DELAY_PENALTY / n_in),
        c_internal=cell.c_internal * (1.0 + CAP_PENALTY / n_in),
    )


def lector_library(library):
    """Derive the ``<name>-lector`` variant library.

    Keeps every original cell (sequential/clock/header cells are not
    touched by LECTOR) and adds an ``_LCT`` twin for each
    combinational/buffer cell with at least one input and one output.
    """
    stack = library.device_model("svt").stack_leakage_factor(library.vdd_nom)
    out = Library(
        library.name + "-lector",
        library.vdd_nom,
        dict(library.devices),
        temp_c=library.temp_c,
        wire_cap_per_fanout=library.wire_cap_per_fanout,
    )
    out.ref_devices = dict(library.ref_devices)
    for cell in library.cells():
        out.add_cell(cell)
        if cell.kind in LCT_KINDS and cell.inputs and cell.outputs:
            out.add_cell(_lct_cell(cell, stack))
    return out


@dataclass
class LectorDesign:
    """Everything produced by the LECTOR transform."""

    design: Design          # remapped design against the variant library
    base: Design            # the original design
    stack_factor: float     # leakage division per gated cell
    swapped: int            # number of instances remapped to _LCT twins

    @property
    def area(self):
        return module_stats(self.design.top).area

    @property
    def base_area(self):
        return module_stats(self.base.top).area

    @property
    def area_overhead_pct(self):
        return 100.0 * (self.area - self.base_area) / self.base_area


@register_model_kernel
@dataclass
class LectorModel(TechniqueModel):
    """Frequency -> power surface of a LECTOR-remapped design.

    No control overhead bucket: LECTOR has no sleep signal.  The
    technique's costs show up as a higher ``e_cycle`` (extra internal
    capacitance) and a lower ``fmax`` (slower gates); its benefit as a
    stacked-down ``leak_total``.
    """

    e_cycle: float
    leak_total: float
    fmax_hz: float
    vdd: float

    technique = "lector"

    def __fingerprint__(self):
        return ("technique-lector-v1", self.e_cycle, self.leak_total,
                self.fmax_hz, self.vdd)

    def fmax(self):
        return self.fmax_hz

    def breakdown(self, freq_hz):
        self._check_freq(freq_hz)
        return TechniqueBreakdown(
            technique="lector", freq_hz=freq_hz,
            p_dynamic=self.e_cycle * freq_hz,
            p_overhead=0.0,
            p_leak=self.leak_total)


@dataclass
class LectorTable:
    """Picklable artifact snapshot: the remapped design's measured
    numbers at the characterisation point, ready to rescale to any
    operating voltage without the netlist."""

    leak_nom: float         # leakage_power(...) at vdd_nom (W)
    t_eval: float
    t_setup: float
    sta_vdd: float
    e_ratio: float          # switched energy vs the base design
    swapped: int
    stack_factor: float

    @classmethod
    def compile(cls, transformed):
        lib = transformed.design.library
        top = transformed.design.top
        report = leakage_power(top, lib)
        sta = TimingAnalysis(top, lib).run()
        e_new, _ = vectorless_switching(top, lib)
        e_base, _ = vectorless_switching(transformed.base.top,
                                         transformed.base.library)
        return cls(
            leak_nom=report.total,
            t_eval=sta.eval_delay,
            t_setup=sta.setup,
            sta_vdd=sta.vdd,
            e_ratio=e_new / e_base if e_base > 0 else 1.0,
            swapped=transformed.swapped,
            stack_factor=transformed.stack_factor,
        )

    def build_model(self, library, e_cycle, base_leakage, vdd=None):
        vdd = library.vdd_nom if vdd is None else vdd
        leak_scale = library.leakage_scale(vdd, "svt")
        timing_scale = (library.delay_scale(vdd)
                        / library.delay_scale(self.sta_vdd))
        t_eval = self.t_eval * timing_scale
        t_setup = self.t_setup * timing_scale
        return LectorModel(
            e_cycle=e_cycle * self.e_ratio * library.energy_scale(vdd),
            leak_total=self.leak_nom * leak_scale,
            fmax_hz=1.0 / (t_eval + t_setup),
            vdd=vdd)


class LectorTechnique(Technique):
    """Leakage-control transistor insertion as a plugin."""

    name = "lector"
    paper = "LECTOR leakage-control transistors (arXiv 1805.07409)"

    def check(self, design, clock_port="clk"):
        # LECTOR needs no sleep/clock control at all.
        return common_checks(self.name, design, clock_port=clock_port,
                             needs_clock=False)

    def transform(self, design, **options):
        """Swap every eligible gate for its ``_LCT`` twin; returns a
        :class:`LectorDesign` bound to the variant library."""
        if options:
            raise TypeError(
                "lector transform takes no options: {}".format(
                    ", ".join(sorted(options))))
        lib_l = lector_library(design.library)
        cell_map = {}
        for cell in design.library.cells():
            if lib_l.has_cell(cell.name + LCT_SUFFIX):
                cell_map[cell.name] = lib_l.cell(cell.name + LCT_SUFFIX)
        swapped = sum(1 for inst in design.top.cell_instances()
                      if inst.cell.name in cell_map)
        top = remap_cells(design.top, cell_map)
        stack = design.library.device_model("svt") \
            .stack_leakage_factor(design.library.vdd_nom)
        return LectorDesign(
            design=Design(top, lib_l),
            base=design,
            stack_factor=stack,
            swapped=swapped,
        )

    def artifact_table(self, transformed):
        return LectorTable.compile(transformed)

    def sweep_model(self, transformed, *, library, e_cycle, base_leakage,
                    base_sta, vdd=None):
        return self.artifact_table(transformed).build_model(
            library, e_cycle, base_leakage, vdd=vdd)
