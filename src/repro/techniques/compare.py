"""Cross-technique comparison: one design, every registered scheme.

``Session.compare_techniques("mult16")`` (and ``repro compare`` on the
command line) applies each requested technique to the same design --
named by a registry alias, a database :class:`~repro.circuits.
generators.DesignKey` or a spec string like ``"multiplier(n=8)"`` --
builds its uniform :class:`~repro.techniques.base.TechniqueModel`, and
evaluates all of them -- plus an ungated baseline -- over one frequency
grid through the session's runner.  Every technique model carries a
registered batch kernel, so the evaluations ride the same chunked
dispatch / content-addressed cache as the SCPG sweeps, journalled under
``compare:<design>:<technique>`` labels.

The result is a :class:`TechniqueComparison`: per-technique Fmax, area
overhead and per-frequency power breakdowns with savings against the
shared baseline -- the cross-scheme analogue of the paper's Table I/II.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError
from ..runner import can_fingerprint, compile_kernel, stable_hash
from .base import TechniqueBreakdown, TechniqueModel, register_model_kernel

#: Grid used when the caller gives no frequencies (spans the paper's
#: measurement points up to near the designs' convergence region).
DEFAULT_COMPARE_FREQS = (1e4, 1e5, 1e6, 5e6)


@register_model_kernel
@dataclass
class BaselineModel(TechniqueModel):
    """The ungated reference every technique is scored against."""

    e_cycle: float
    leak_total: float
    t_eval: float
    t_setup: float
    vdd: float

    technique = "baseline"

    def __fingerprint__(self):
        return ("technique-baseline-v1", self.e_cycle, self.leak_total,
                self.t_eval, self.t_setup, self.vdd)

    def fmax(self):
        return 1.0 / (self.t_eval + self.t_setup)

    def breakdown(self, freq_hz):
        self._check_freq(freq_hz)
        return TechniqueBreakdown(
            technique="baseline", freq_hz=freq_hz,
            p_dynamic=self.e_cycle * freq_hz,
            p_overhead=0.0,
            p_leak=self.leak_total)


def _breakdown_point(model, freq_hz):
    """Module-level point function (workers unpickle it by reference)."""
    return model.breakdown(freq_hz)


def compare_cache_key(model):
    """Cache namespace for one technique model's breakdown evaluations
    (``None`` -- caching disabled -- without a content fingerprint)."""
    if not can_fingerprint(model):
        return None
    return stable_hash("technique-power-point", model)


@dataclass
class ComparisonEntry:
    """One technique's column of the comparison."""

    technique: str
    paper: str
    fmax_hz: float
    area_overhead_pct: float
    points: list = field(default_factory=list)   # TechniqueBreakdown|None
    savings_pct: list = field(default_factory=list)  # float|None

    def as_dict(self):
        """JSON-ready form (golden snapshots, ``--out`` files)."""
        return {
            "technique": self.technique,
            "paper": self.paper,
            "fmax_hz": self.fmax_hz,
            "area_overhead_pct": self.area_overhead_pct,
            "points": [
                None if b is None else {
                    "freq_hz": b.freq_hz,
                    "p_dynamic": b.p_dynamic,
                    "p_overhead": b.p_overhead,
                    "p_leak": b.p_leak,
                    "total": b.total,
                }
                for b in self.points
            ],
            "savings_pct": list(self.savings_pct),
        }


@dataclass
class TechniqueComparison:
    """Every requested technique on one design, over one grid."""

    design: str
    freqs: list
    baseline: ComparisonEntry
    entries: list = field(default_factory=list)

    def entry(self, technique):
        """The :class:`ComparisonEntry` for one technique name."""
        for e in self.entries:
            if e.technique == technique:
                return e
        raise KeyError(technique)

    @property
    def techniques(self):
        return [e.technique for e in self.entries]

    def as_dict(self):
        """JSON-ready form (golden snapshots, ``--out`` files)."""
        return {
            "design": self.design,
            "freqs": list(self.freqs),
            "baseline": self.baseline.as_dict(),
            "entries": [e.as_dict() for e in self.entries],
        }


def _eligible(technique, design):
    report = technique.check(design)
    report.raise_if_blocked()


def run_comparison(handle, freqs=None, techniques=None, vdd=None):
    """Compare techniques on one :class:`~repro.session.DesignHandle`.

    Parameters
    ----------
    handle:
        The design, inside its session (library + runner + caches).
    freqs:
        Frequency grid (default :data:`DEFAULT_COMPARE_FREQS`).
    techniques:
        Iterable of registry names (default: every registered
        technique, sorted).
    vdd:
        Operating supply (default: the library's nominal).

    Returns a :class:`TechniqueComparison`.  Grid points a technique
    cannot reach (above its Fmax) come back as ``None`` with a ``None``
    saving, exactly like infeasible points in the SCPG sweeps.
    """
    from . import available_techniques, technique as lookup

    session = handle.session
    lib = session.library
    runner = session.runner
    freqs = list(DEFAULT_COMPARE_FREQS if freqs is None else freqs)
    names = list(available_techniques() if techniques is None
                 else techniques)

    design = handle.design
    e_cycle, _ = handle.switching()
    base_leakage = handle.leakage()
    base_sta = handle.sta()

    def evaluate(model, label):
        return runner.run(_breakdown_point, freqs, context=model,
                          cache_key=compare_cache_key(model),
                          on_error=(ReproError,), label=label,
                          kernel=compile_kernel(model))

    baseline_model = BaselineModel(
        e_cycle=e_cycle, leak_total=base_leakage.total,
        t_eval=base_sta.eval_delay, t_setup=base_sta.setup,
        vdd=lib.vdd_nom if vdd is None else vdd)
    base_points = evaluate(baseline_model,
                           "compare:{}:baseline".format(handle.name))
    baseline = ComparisonEntry(
        technique="baseline", paper="", fmax_hz=baseline_model.fmax(),
        area_overhead_pct=0.0, points=base_points,
        savings_pct=[0.0 if b is not None else None
                     for b in base_points])

    out = TechniqueComparison(design=handle.name, freqs=freqs,
                              baseline=baseline)
    for name in names:
        tech = lookup(name)
        _eligible(tech, design)
        transformed = tech.transform_for_compare(design, e_cycle)
        model = tech.sweep_model(
            transformed, library=lib, e_cycle=e_cycle,
            base_leakage=base_leakage, base_sta=base_sta, vdd=vdd)
        points = evaluate(model,
                          "compare:{}:{}".format(handle.name, name))
        savings = [
            None if (b is None or ref is None) else b.saving_vs(ref)
            for b, ref in zip(points, base_points)
        ]
        out.entries.append(ComparisonEntry(
            technique=name, paper=tech.paper, fmax_hz=model.fmax(),
            area_overhead_pct=getattr(transformed, "area_overhead_pct",
                                      0.0),
            points=points, savings_pct=savings))
    return out


def format_comparison(comparison):
    """The comparison as a readable text table."""
    lines = []
    lines.append("technique comparison: {}".format(comparison.design))
    header = "{:<10} {:>10} {:>8}".format("technique", "fmax", "area+%")
    for f in comparison.freqs:
        header += " {:>12}".format(_si(f) + "Hz")
    lines.append(header)
    lines.append("-" * len(header))

    def row(entry):
        line = "{:<10} {:>10} {:>8}".format(
            entry.technique, _si(entry.fmax_hz) + "Hz",
            "{:.2f}".format(entry.area_overhead_pct))
        for b, s in zip(entry.points, entry.savings_pct):
            if b is None:
                line += " {:>12}".format("--")
            elif entry.technique == "baseline":
                line += " {:>12}".format("{:.3g}W".format(b.total))
            else:
                line += " {:>12}".format(
                    "{:.3g}W/{:+.0f}%".format(b.total, s))
        return line

    lines.append(row(comparison.baseline))
    for entry in comparison.entries:
        lines.append(row(entry))
    lines.append("(per-point cells: average power / saving vs baseline; "
                 "-- = above Fmax)")
    return "\n".join(lines)


def _si(value):
    """Compact SI rendering of a frequency-ish value."""
    for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if value >= scale:
            return "{:.3g}{}".format(value / scale, suffix)
    return "{:.3g}".format(value)
