"""Cluster-based tunable sleep transistor cells (CBTSTC, arXiv 1310.3203).

Where SCPG gates the whole combinational domain from the clock, CBTSTC
partitions the logic into *clusters*, gives each cluster its own sleep
transistor cell, and tunes every cell to its cluster's worst-case
discharge current and observed activity:

* **Clustering** -- gatable gates are grouped along the levelized
  topological order (:func:`repro.netlist.traverse.levelize`), so a
  cluster's gates share inputs and tend to idle together.
* **Sizing** -- each cluster gets the smallest library header whose IR
  drop under the cluster's peak-current share meets the budget (the
  same §III machinery SCPG uses, applied per cluster).
* **Tuning** -- the TSTC's off-state gate bias is a digital knob: idle-
  dominated clusters get a deeper (super-cutoff) bias that crushes the
  residual leakage, busy clusters stay at nominal bias to keep the
  wake energy low.  The residual ratio comes from the hvt device model
  (:meth:`~repro.tech.transistor.DeviceModel.biased_leakage`).
* **Power model** -- active-mode gating driven by per-cluster idle
  probability from the vectorless activity estimate: a cluster leaks
  fully while active and through its (biased) TSTC while idle; sleep
  transitions charge the TSTC gate and recharge the cluster's local
  rail every wake.

Calibrated against the same scl90 library as SCPG so the comparison in
``Session.compare_techniques`` is apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TechniqueError
from ..netlist.core import Design
from ..netlist.stats import module_stats
from ..netlist.transform import clone_flat_module
from ..netlist.traverse import levelize
from ..netlist.validate import validate_module
from ..power.headers import DEFAULT_IR_BUDGET, peak_current
from ..power.leakage import GATABLE_KINDS
from ..power.probabilistic import estimate_activity, vectorless_switching
from ..power.rails import RailParams
from ..sta.analysis import TimingAnalysis
from ..tech.library import CellKind
from .base import (
    Technique,
    TechniqueBreakdown,
    TechniqueModel,
    common_checks,
    register_model_kernel,
)

#: Default gates per cluster (the paper clusters tens of gates per TSTC).
DEFAULT_CLUSTER_SIZE = 24

#: Deepest super-cutoff gate bias, as a fraction of VDD.
MAX_BIAS_FRACTION = 0.15

#: Number of discrete tuning steps the TSTC bias DAC offers.
BIAS_STEPS = 3


@dataclass
class TstcCluster:
    """One cluster and its tuned sleep transistor cell."""

    index: int
    instances: list
    level_lo: int
    level_hi: int
    leak_base: float        # summed cell leakage at vdd_nom (W)
    c_internal: float       # summed internal cap (F) -- sizing share
    p_active: float         # probability the cluster switches in a cycle
    header_cell: str        # chosen TSTC (a library HEADER cell)
    header_ron: float       # its on-resistance (ohm)
    header_gate_cap: float  # its gate capacitance (F)
    header_leak: float      # its unbiased off-state residual (W at nom)
    bias_step: int          # chosen tuning step (0 = nominal bias)
    bias_v: float           # gate underdrive (V) of that step
    ir_drop: float          # IR drop at the cluster's peak current (V)


@dataclass
class CbtstcDesign:
    """Everything produced by the CBTSTC transform."""

    design: Design          # transformed flat design with TSTC instances
    base: Design            # the original design
    clusters: list = field(default_factory=list)
    sleep_port: str = "tstc_sleep"
    sta: object = None      # base design's timing result
    e_cycle_est: float = 0.0

    @property
    def area(self):
        return module_stats(self.design.top).area

    @property
    def base_area(self):
        return module_stats(self.base.top).area

    @property
    def area_overhead_pct(self):
        return 100.0 * (self.area - self.base_area) / self.base_area


@register_model_kernel
@dataclass
class CbtstcModel(TechniqueModel):
    """Frequency -> power surface of a CBTSTC-transformed design.

    All inputs are pre-reduced scalars (picklable, fingerprintable)::

        P(f) = E_cycle * f                      useful switching
             + E_ctl * f                        sleep-control + wake energy
             + P_leak_alwayson                  sequential / clock tree
             + sum_c [ p_on * P_leak_c          cluster awake
                     + (1 - p_on) * P_resid_c ] cluster gated (biased TSTC)
    """

    e_cycle: float
    e_ctl: float
    leak_alwayson: float
    leak_eff: float
    fmax_hz: float
    vdd: float

    technique = "cbtstc"

    def __fingerprint__(self):
        return ("technique-cbtstc-v1", self.e_cycle, self.e_ctl,
                self.leak_alwayson, self.leak_eff, self.fmax_hz, self.vdd)

    def fmax(self):
        return self.fmax_hz

    def breakdown(self, freq_hz):
        self._check_freq(freq_hz)
        return TechniqueBreakdown(
            technique="cbtstc", freq_hz=freq_hz,
            p_dynamic=self.e_cycle * freq_hz,
            p_overhead=self.e_ctl * freq_hz,
            p_leak=self.leak_alwayson + self.leak_eff)


@dataclass
class CbtstcTable:
    """Picklable snapshot of a CBTSTC transform (the per-technique
    artifact table): enough per-cluster scalars to rebuild the power
    model without the netlist, like
    :class:`~repro.runner.artifacts.ScpgModelTable` does for SCPG."""

    clusters: list
    t_eval: float
    t_setup: float
    sta_vdd: float
    e_cycle_est: float

    @classmethod
    def compile(cls, transformed):
        sta = transformed.sta
        return cls(clusters=list(transformed.clusters),
                   t_eval=sta.eval_delay, t_setup=sta.setup,
                   sta_vdd=sta.vdd,
                   e_cycle_est=transformed.e_cycle_est)

    def build_model(self, library, e_cycle, base_leakage, vdd=None):
        """Reduce the cluster table to a :class:`CbtstcModel` at ``vdd``.

        ``e_cycle`` is the base design's measured/estimated switched
        energy per cycle; ``base_leakage`` the base design's
        :class:`~repro.power.leakage.LeakageReport` at nominal.
        """
        vdd = library.vdd_nom if vdd is None else vdd
        svt_scale = library.leakage_scale(vdd, "svt")
        hvt_scale = library.leakage_scale(vdd, "hvt")
        hvt = library.device_model("hvt")
        unbiased = hvt.biased_leakage(vdd, 0.0)

        leak_eff = 0.0
        e_ctl = 0.0
        worst_ir = 0.0
        for c in self.clusters:
            leak_c = c.leak_base * svt_scale
            if unbiased > 0:
                bias_ratio = hvt.biased_leakage(vdd, -c.bias_v) / unbiased
            else:
                bias_ratio = 1.0
            resid_c = c.header_leak * hvt_scale * bias_ratio
            p_on = c.p_active
            leak_eff += p_on * leak_c + (1.0 - p_on) * resid_c
            # Sleep-control energy: the TSTC gate swings VDD + bias on
            # every sleep transition; each wake also recharges the
            # cluster's local virtual rail.
            p_trans = 2.0 * p_on * (1.0 - p_on)
            gate_swing = vdd + c.bias_v
            e_gate = c.header_gate_cap * gate_swing * gate_swing
            e_wake = (RailParams().rail_cap_fraction * c.c_internal
                      * vdd * vdd)
            e_ctl += p_trans * e_gate + 0.5 * p_trans * e_wake
            worst_ir = max(worst_ir, c.ir_drop)

        # The worst cluster's IR drop slows every path through it.
        delay_factor = (library.delay_scale(max(vdd - worst_ir, 1e-3))
                        / library.delay_scale(vdd))
        timing_scale = (library.delay_scale(vdd)
                        / library.delay_scale(self.sta_vdd))
        t_eval = self.t_eval * timing_scale * delay_factor
        t_setup = self.t_setup * timing_scale
        return CbtstcModel(
            e_cycle=e_cycle * library.energy_scale(vdd),
            e_ctl=e_ctl,
            leak_alwayson=base_leakage.always_on * svt_scale
            / library.leakage_scale(base_leakage.vdd, "svt"),
            leak_eff=leak_eff,
            fmax_hz=1.0 / (t_eval + t_setup),
            vdd=vdd)


class CbtstcTechnique(Technique):
    """Clustered tunable sleep transistor cells as a plugin."""

    name = "cbtstc"
    paper = "Cluster-based tunable sleep transistor cells (arXiv 1310.3203)"

    def check(self, design, clock_port="clk"):
        # CBTSTC's sleep control is activity-driven, not clock-derived.
        return common_checks(self.name, design, clock_port=clock_port,
                             needs_clock=False)

    def transform(self, design, cluster_size=DEFAULT_CLUSTER_SIZE,
                  ir_budget=DEFAULT_IR_BUDGET, sleep_port="tstc_sleep",
                  energy_per_cycle=None):
        """Cluster the gatable logic and instantiate one tuned TSTC per
        cluster; returns a :class:`CbtstcDesign`."""
        lib = design.library
        top_src = design.top
        validate_module(top_src).raise_if_errors()
        if cluster_size < 1:
            raise TechniqueError("cluster_size must be >= 1")

        sta = TimingAnalysis(top_src, lib).run()
        activity = estimate_activity(top_src)
        if energy_per_cycle is None:
            energy_per_cycle, _ = vectorless_switching(top_src, lib)

        levels = levelize(top_src)
        gatable = [i for i in top_src.cell_instances()
                   if i.cell.kind in GATABLE_KINDS]
        if not gatable:
            raise TechniqueError("design has no gatable logic to cluster")
        gatable.sort(key=lambda i: (levels.get(i.name, 0), i.name))
        groups = [gatable[k:k + cluster_size]
                  for k in range(0, len(gatable), cluster_size)]

        vdd = lib.vdd_nom
        headers = sorted(lib.cells_of_kind(CellKind.HEADER),
                         key=lambda c: c.drive_strength)
        if not headers:
            raise TechniqueError(
                "library {} has no header cells".format(lib.name))
        c_int_total = sum(i.cell.c_internal for i in gatable) or 1.0

        clusters = []
        for index, group in enumerate(groups):
            leak_base = sum(i.cell.leakage for i in group)
            c_int = sum(i.cell.c_internal for i in group)
            # Fraction of cycles the cluster must be awake.  Clusters
            # are level-contiguous, so their gates share fanin cones
            # and switch together; the perfectly-correlated estimate
            # ``max(density)`` models that (the independent-union bound
            # saturates to 1 over tens of gates and would never sleep).
            p_active = 0.0
            for inst in group:
                for _pin, net in _output_nets(inst):
                    dens = min(1.0, activity.density.get(net.name, 0.0))
                    p_active = max(p_active, dens)

            # Size: smallest TSTC meeting the IR budget at this
            # cluster's share of the peak current.
            share = c_int / c_int_total
            i_peak = peak_current(energy_per_cycle * share,
                                  sta.eval_delay, vdd)
            chosen = headers[-1]
            for cell in headers:
                if i_peak * cell.header_ron <= ir_budget * vdd:
                    chosen = cell
                    break

            # Tune: idle-dominated clusters take the deepest bias step.
            step = min(BIAS_STEPS,
                       int(round(BIAS_STEPS * (1.0 - p_active))))
            bias_v = vdd * MAX_BIAS_FRACTION * step / BIAS_STEPS

            cluster_levels = [levels.get(i.name, 0) for i in group]
            clusters.append(TstcCluster(
                index=index,
                instances=[i.name for i in group],
                level_lo=min(cluster_levels),
                level_hi=max(cluster_levels),
                leak_base=leak_base,
                c_internal=c_int,
                p_active=p_active,
                header_cell=chosen.name,
                header_ron=chosen.header_ron,
                header_gate_cap=chosen.pin("SLEEP").capacitance,
                header_leak=chosen.leakage,
                bias_step=step,
                bias_v=bias_v,
                ir_drop=i_peak * chosen.header_ron,
            ))

        # The transformed netlist: a structural copy plus one TSTC
        # instance per cluster, all slept from one control input (the
        # per-cluster activity detectors live in the model).
        top = clone_flat_module(top_src)
        sleep_net = top.add_input(sleep_port)
        for cluster in clusters:
            top.add_instance(
                "u_tstc_{}".format(cluster.index),
                lib.cell(cluster.header_cell),
                {"SLEEP": sleep_net})
        validate_module(top).raise_if_errors()

        return CbtstcDesign(
            design=Design(top, lib),
            base=design,
            clusters=clusters,
            sleep_port=sleep_port,
            sta=sta,
            e_cycle_est=energy_per_cycle,
        )

    def transform_for_compare(self, design, e_cycle):
        return self.transform(design, energy_per_cycle=e_cycle)

    def artifact_table(self, transformed):
        return CbtstcTable.compile(transformed)

    def sweep_model(self, transformed, *, library, e_cycle, base_leakage,
                    base_sta, vdd=None):
        return self.artifact_table(transformed).build_model(
            library, e_cycle, base_leakage, vdd=vdd)


def _output_nets(inst):
    """(pin, net) for each connected output pin of a cell instance."""
    out = []
    for pin_name in inst.output_pins():
        net = inst.connections.get(pin_name)
        if net is not None and not net.is_const:
            out.append((pin_name, net))
    return out
