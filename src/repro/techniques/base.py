"""The ``Technique`` plugin protocol.

SCPG is one point in the active-mode leakage design space; this module
defines the strategy interface every power-gating scheme implements so
the Session/runner/golden machinery stays technique-agnostic:

* :class:`Technique` -- one scheme: eligibility checks
  (:meth:`~Technique.check`), the netlist transform
  (:meth:`~Technique.transform`), a picklable per-technique artifact
  table (:meth:`~Technique.artifact_table`) and the uniform comparison
  model (:meth:`~Technique.sweep_model`).
* :class:`TechniqueModel` -- the frequency -> power surface every
  technique exposes: ``fmax()`` and ``breakdown(freq_hz)`` returning a
  :class:`TechniqueBreakdown`, with ``_power_points`` as the batch
  kernel entry point.
* :class:`TechniquePowerKernel` -- the :mod:`repro.runner.kernel`
  strategy that dispatches whole frequency axes; each concrete model
  class registers one instance, so ``Session.compare_techniques`` runs
  through the chunked runner exactly like the SCPG sweeps.
* :class:`EligibilityReport` -- the constraint-check outcome, with
  machine-readable issue codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError, TechniqueError
from ..runner.kernel import Kernel, register_kernel


@dataclass
class EligibilityIssue:
    """One reason a technique cannot (or should not) be applied."""

    code: str
    message: str


@dataclass
class EligibilityReport:
    """Outcome of :meth:`Technique.check` for one design."""

    technique: str
    issues: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.issues

    def raise_if_blocked(self):
        """Raise :class:`~repro.errors.TechniqueError` on any issue."""
        if self.issues:
            raise TechniqueError(
                "design not eligible for technique {!r}: {}".format(
                    self.technique,
                    "; ".join(i.message for i in self.issues)))
        return self


@dataclass
class TechniqueBreakdown:
    """One operating point of one technique (W, J).

    The cross-technique analogue of
    :class:`~repro.scpg.power_model.PowerBreakdown`: three buckets that
    every scheme can populate -- useful switching, technique-induced
    overhead (control, rail recharge, ...), and leakage.
    """

    technique: str
    freq_hz: float
    p_dynamic: float
    p_overhead: float
    p_leak: float
    #: Average power (W).  Defaults to the three buckets' sum; adapters
    #: wrapping a finer-grained breakdown pass the original total so the
    #: uniform view stays bit-identical to the technique's native one
    #: (float addition is order-sensitive at the last ulp).
    total: float = None

    def __post_init__(self):
        if self.total is None:
            self.total = self.p_dynamic + self.p_overhead + self.p_leak

    @property
    def energy_per_op(self):
        """Energy per operation (J) -- one operation per clock cycle."""
        return self.total / self.freq_hz

    def saving_vs(self, other):
        """Percent power saving relative to ``other`` (positive = better)."""
        return 100.0 * (other.total - self.total) / other.total


class TechniqueModel:
    """Uniform frequency -> power surface of one applied technique.

    Concrete models are plain picklable scalar bundles (the chunked
    parallel runner ships them to worker processes) and implement
    ``__fingerprint__`` so evaluations land in the content-addressed
    result cache.
    """

    #: Registry key of the technique this model evaluates.
    technique = "technique"

    def fmax(self):
        """Highest feasible frequency (Hz) of the transformed design."""
        raise NotImplementedError

    def breakdown(self, freq_hz):
        """Power decomposition at ``freq_hz``; raises
        :class:`~repro.errors.TechniqueError` (or another
        :class:`~repro.errors.ReproError`) when infeasible."""
        raise NotImplementedError

    def _check_freq(self, freq_hz):
        if freq_hz <= 0:
            raise TechniqueError("frequency must be positive")
        fmax = self.fmax()
        if freq_hz > fmax * 1.0001:
            raise TechniqueError(
                "{:.3g} Hz exceeds {} Fmax {:.3g} Hz".format(
                    freq_hz, self.technique, fmax))

    def _power_points(self, freqs):
        """Batch-evaluate a frequency axis; ``None`` marks infeasible
        points (what :class:`TechniquePowerKernel` dispatches)."""
        out = []
        for f in freqs:
            try:
                out.append(self.breakdown(f))
            except ReproError:
                out.append(None)
        return out


class TechniquePowerKernel(Kernel):
    """Batch kernel for frequency axes over a pristine technique model.

    One stateless instance per concrete model class (exact-type
    registry); the ``applies`` guard keeps subclassed or
    instance-patched models on the point-at-a-time path so their
    overrides stay honoured.
    """

    name = "technique-power"

    def __init__(self, model_cls):
        self.model_cls = model_cls

    def applies(self, model):
        return type(model) is self.model_cls and \
            "breakdown" not in getattr(model, "__dict__", {})

    def evaluate(self, model, points, library=None):
        return model._power_points(points)


def register_model_kernel(model_cls):
    """Register the shared batch kernel for ``model_cls`` (and return
    the class, so it doubles as a decorator)."""
    register_kernel(model_cls, TechniquePowerKernel(model_cls))
    return model_cls


class Technique:
    """Strategy interface: one power-gating scheme as a plugin.

    Instances are stateless; register one per scheme with
    :func:`repro.techniques.register_technique`.  The protocol:

    ``check(design)``
        Cheap eligibility/constraint checks; returns an
        :class:`EligibilityReport`.
    ``transform(design, **options)``
        The netlist transform; returns a technique-specific bundle
        (e.g. :class:`~repro.scpg.transform.ScpgDesign`).
    ``artifact_table(transformed)``
        A picklable snapshot of the transform, able to rebuild the
        power model without the netlist (the per-technique analogue of
        :class:`~repro.runner.artifacts.ScpgModelTable`).
    ``sweep_model(transformed, *, library, e_cycle, base_leakage,
    base_sta)``
        The uniform :class:`TechniqueModel` used by
        ``Session.compare_techniques``.
    """

    #: Registry key (``repro compare --techniques <name>,...``).
    name = "technique"

    #: One-line citation of the scheme being reproduced.
    paper = ""

    def check(self, design, clock_port="clk"):
        raise NotImplementedError

    def transform(self, design, **options):
        raise NotImplementedError

    def transform_for_compare(self, design, e_cycle):
        """Transform with the comparison's shared switched-energy
        estimate.  Techniques that size hardware from the per-cycle
        energy (SCPG/CBTSTC header sizing) override this to forward
        ``e_cycle``; the default ignores it."""
        return self.transform(design)

    def artifact_table(self, transformed):
        raise NotImplementedError

    def sweep_model(self, transformed, *, library, e_cycle, base_leakage,
                    base_sta, vdd=None):
        raise NotImplementedError

    def __repr__(self):
        return "{}({!r})".format(type(self).__name__, self.name)


def _flat_cell_instances(design):
    """Every instance of a flat design, or ``None`` when hierarchical."""
    instances = list(design.top.instances())
    if any(not inst.is_cell for inst in instances):
        return None
    return instances


def common_checks(technique, design, clock_port="clk",
                  needs_clock=True):
    """Eligibility issues every gating technique shares.

    A flat netlist, a clock port (for schemes that derive their control
    from the clock), and at least one gatable combinational cell.
    """
    from ..power.leakage import GATABLE_KINDS

    issues = []
    instances = _flat_cell_instances(design)
    if instances is None:
        issues.append(EligibilityIssue(
            "hierarchical",
            "design must be flat (call design.flatten() first)"))
        return EligibilityReport(technique, issues)
    if needs_clock and not design.top.has_port(clock_port):
        issues.append(EligibilityIssue(
            "no-clock",
            "design has no clock port {!r}".format(clock_port)))
    if not any(inst.cell.kind in GATABLE_KINDS for inst in instances):
        issues.append(EligibilityIssue(
            "no-gatable-logic",
            "design has no gatable combinational cells"))
    return EligibilityReport(technique, issues)
