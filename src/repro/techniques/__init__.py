"""Pluggable power-gating techniques.

The paper's sub-clock power gating is one point in the active-mode
leakage design space.  This package makes the scheme a *strategy*: each
technique implements the :class:`~repro.techniques.base.Technique`
protocol (eligibility checks, netlist transform, artifact table,
uniform power model) and registers under a key, so the Session, the
runner and the golden machinery stay technique-agnostic::

    from repro.techniques import technique, available_techniques

    scpg = technique("scpg")
    report = scpg.check(design)          # EligibilityReport
    transformed = scpg.transform(design) # ScpgDesign

Shipped techniques:

``scpg``
    The source paper's sub-clock power gating (DATE 2011) -- clock-
    derived sleep within every cycle, headers on a split combinational
    domain.
``cbtstc``
    Cluster-based tunable sleep transistor cells (arXiv 1310.3203) --
    per-cluster sized and bias-tuned sleep transistors, activity-driven
    gating.
``lector``
    Leakage-control transistor insertion (arXiv 1805.07409) -- self-
    stacked gates, no sleep control at all.

``Session.compare_techniques`` / ``repro compare`` evaluate any subset
of the registry on one design over one frequency grid (see
:mod:`repro.techniques.compare`).
"""

from __future__ import annotations

from ..errors import RegistryError
from .base import (
    EligibilityIssue,
    EligibilityReport,
    Technique,
    TechniqueBreakdown,
    TechniqueModel,
    TechniquePowerKernel,
    register_model_kernel,
)
from .cbtstc import CbtstcTechnique
from .compare import (
    DEFAULT_COMPARE_FREQS,
    TechniqueComparison,
    format_comparison,
    run_comparison,
)
from .lector import LectorTechnique
from .scpg import ScpgTechnique

__all__ = [
    "EligibilityIssue",
    "EligibilityReport",
    "Technique",
    "TechniqueBreakdown",
    "TechniqueModel",
    "TechniquePowerKernel",
    "register_model_kernel",
    "register_technique",
    "technique",
    "available_techniques",
    "run_comparison",
    "format_comparison",
    "TechniqueComparison",
    "DEFAULT_COMPARE_FREQS",
    "ScpgTechnique",
    "CbtstcTechnique",
    "LectorTechnique",
]

_REGISTRY = {}


def register_technique(tech):
    """Register a :class:`~repro.techniques.base.Technique` instance
    under its :attr:`~repro.techniques.base.Technique.name`.

    Duplicate names are an error -- replacing a scheme silently would
    corrupt cross-technique comparisons and cached artifacts.
    """
    if not isinstance(tech, Technique):
        raise RegistryError(
            "register_technique needs a Technique instance, got {!r}"
            .format(tech))
    if tech.name in _REGISTRY:
        raise RegistryError(
            "technique {!r} is already registered".format(tech.name))
    _REGISTRY[tech.name] = tech
    return tech


def technique(name):
    """Look up a registered technique by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise RegistryError(
            "unknown technique {!r}; available: {}".format(
                name, ", ".join(available_techniques()))) from None


def available_techniques():
    """Sorted names of every registered technique."""
    return sorted(_REGISTRY)


register_technique(ScpgTechnique())
register_technique(CbtstcTechnique())
register_technique(LectorTechnique())
