"""Design registry: names and keys -> circuits, database-backed.

Three spellings resolve to a design, in precedence order:

1. **Registered names** -- the legacy built-ins (``mult16``, ``m0lite``,
   ``counter16``, ``lfsr16``) are *aliases* into the parameterized
   design database (:mod:`repro.circuits.generators`): ``mult16`` is
   ``multiplier(n=16)`` with a bit-identical netlist fingerprint.  User
   code can still register ad-hoc builders::

       from repro.circuits.registry import register_design

       @register_design("myblock", width=8)
       def build_myblock(library, width):
           ...
           return module

2. **Design keys** -- a :class:`~repro.circuits.generators.DesignKey`
   object or spec string (``"multiplier(n=8)"``) elaborates through the
   database (lazy, memoised per library).

3. **Verilog paths** -- anything that looks like a file path falls back
   to the structural-Verilog reader.

Registering a name twice raises :class:`~repro.errors.RegistryError`
naming *both* registration sites -- a silent overwrite is how two
plugins end up silently measuring each other's circuit.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..errors import RegistryError
from .generators import DesignKey, _source_site, canonical_key, \
    elaborate, has_family, looks_like_key


@dataclass(frozen=True)
class DesignEntry:
    """One registered design: its builder and default parameters.

    Database aliases also carry ``key`` (the canonical
    :class:`~repro.circuits.generators.DesignKey` they elaborate) and
    ``renames`` (legacy keyword -> family parameter translations, e.g.
    ``mult16``'s historical ``width=`` becoming ``multiplier``'s ``n=``).
    """

    name: str
    builder: object
    defaults: dict = field(default_factory=dict)
    site: str = ""
    key: object = None          # canonical DesignKey for aliases
    renames: dict = field(default_factory=dict)

    @property
    def doc(self):
        """First line of the builder's docstring."""
        text = (self.builder.__doc__ or "").strip()
        return text.splitlines()[0] if text else ""


_REGISTRY = {}

#: Legacy name -> (family, base params, legacy keyword renames).  The
#: two paper designs and the two stimulus helpers stay addressable by
#: their historical names; the netlists they resolve to are the
#: database's, fingerprint-identical to the pre-database builders.
_ALIASES = {
    "mult16": ("multiplier", {"n": 16}, {"width": "n"}),
    "m0lite": ("m0lite", {}, {}),
    "counter16": ("counter", {"width": 16}, {}),
    "lfsr16": ("lfsr", {"width": 16}, {}),
}


def register_design(name, **defaults):
    """Parametrised decorator: register the decorated builder as ``name``.

    ``defaults`` become keyword arguments of the builder, overridable per
    :func:`build` call.  Re-registering a taken name raises
    :class:`~repro.errors.RegistryError` naming both registration sites
    (re-running the *identical* registration -- same builder, same
    defaults, e.g. an ``importlib.reload`` -- stays a no-op).
    """

    def decorate(builder):
        site = _source_site(builder)
        if name in _ALIASES:
            raise RegistryError(
                "design {!r} is a built-in database alias for {!r}; "
                "cannot re-register it at {}".format(
                    name, str(_alias_entry(name).key), site))
        existing = _REGISTRY.get(name)
        if existing is not None:
            if existing.builder is builder \
                    and existing.defaults == dict(defaults):
                return builder  # identical re-registration: no-op
            raise RegistryError(
                "design {!r} is already registered at {} "
                "(duplicate registration at {})".format(
                    name, existing.site or "<unknown>", site))
        _REGISTRY[name] = DesignEntry(name, builder, dict(defaults),
                                      site=site)
        return builder

    return decorate


def unregister_design(name):
    """Remove an ad-hoc registration (tests and plugin teardown).

    Built-in aliases cannot be removed; unknown names are a no-op.
    """
    if name in _ALIASES:
        raise RegistryError(
            "cannot unregister built-in design {!r}".format(name))
    _REGISTRY.pop(name, None)


def _alias_entry(name):
    """The :class:`DesignEntry` view of a built-in database alias."""
    from . import generators

    fam_name, base, renames = _ALIASES[name]
    fam = generators.family(fam_name)
    return DesignEntry(name, fam.builder, dict(base), site=fam.site,
                       key=fam.key(**base), renames=dict(renames))


def available_designs():
    """Sorted names of every registered design (aliases + ad-hoc)."""
    return sorted(set(_ALIASES) | set(_REGISTRY))


def entry(name):
    """The :class:`DesignEntry` for ``name``; raises when unknown."""
    if name in _ALIASES:
        return _alias_entry(name)
    try:
        return _REGISTRY[name]
    except KeyError:
        raise RegistryError(
            "unknown design {!r} (available: {})".format(
                name, ", ".join(available_designs()))) from None


def is_registered(name):
    """True when ``name`` resolves without touching the filesystem."""
    return name in _ALIASES or name in _REGISTRY


def design_key(name, **params):
    """The canonical :class:`~repro.circuits.generators.DesignKey` for a
    name, key or spec string -- ``None`` for ad-hoc registrations and
    Verilog paths (which have no database identity)."""
    if isinstance(name, DesignKey):
        return canonical_key(name.with_params(**params) if params
                             else name)
    if name in _ALIASES:
        e = _alias_entry(name)
        merged = dict(e.defaults)
        merged.update(_rename_params(e, params))
        return canonical_key(DesignKey(e.key.family, **merged))
    if name in _REGISTRY:
        return None
    if isinstance(name, str) and looks_like_key(name):
        key = DesignKey.parse(name)
        if has_family(key.family) or "(" in name:
            # A parenthesised spec is unambiguously meant as a key, so
            # an unknown family fails loudly inside canonical_key.
            return canonical_key(key.with_params(**params) if params
                                 else key)
    return None


def _rename_params(e, params):
    """Legacy keyword spellings translated to family parameter names."""
    return {e.renames.get(k, k): v for k, v in params.items()}


def build(name, library, **params):
    """Build design ``name`` on ``library``; returns the top Module.

    Always a *fresh* (private, mutable) module -- the historical
    contract of this function; :func:`resolve` is the memoised path.
    """
    if name in _ALIASES:
        return elaborate(design_key(name, **params), library, fresh=True)
    e = entry(name)
    merged = dict(e.defaults)
    merged.update(params)
    return e.builder(library, **merged)


def resolve(name, library, **params):
    """A :class:`~repro.netlist.core.Design` by name, key or Verilog path.

    Registered names (aliases first, then ad-hoc builders) win; a
    :class:`~repro.circuits.generators.DesignKey` or spec string
    elaborates through the database (memoised per library -- treat the
    module as read-only, exactly how every in-tree analysis and
    transform behaves); anything that looks like a file path falls back
    to the structural-Verilog reader (preserving the CLI's historical
    behaviour, including ``FileNotFoundError`` for missing files); other
    names raise :class:`~repro.errors.RegistryError` listing what exists.
    """
    from ..netlist.core import Design

    if isinstance(name, DesignKey) or name in _ALIASES:
        return Design(elaborate(design_key(name, **params), library),
                      library)
    if name in _REGISTRY:
        return Design(build(name, library, **params), library)
    key = design_key(name, **params)
    if key is not None:
        return Design(elaborate(key, library), library)
    if params:
        raise RegistryError(
            "parameters are only supported for registered designs and "
            "design keys, not Verilog paths ({!r})".format(name))
    if name.endswith(".v") or os.sep in name or os.path.exists(name):
        from ..netlist.verilog import read_verilog

        return read_verilog(name, library)
    raise RegistryError(
        "unknown design {!r} (available: {}; families: {}; or pass a "
        ".v file)".format(
            name, ", ".join(available_designs()),
            ", ".join(_family_names())))


def _family_names():
    from . import generators

    return generators.available_families()
