"""Design registry: name -> circuit builder, discoverable and extensible.

The CLI used to hard-code a name -> ``__import__`` lambda table; this
module replaces it with an explicit registry that user code can extend::

    from repro.circuits.registry import register_design

    @register_design("myblock", width=8)
    def build_myblock(library, width):
        ...
        return module

Builders take the library first and keyword parameters after; defaults
given at registration are overridable at :func:`build` time.  The built-in
designs (``mult16``, ``m0lite``, ``counter16``, ``lfsr16``) register
themselves when their modules import, and :func:`_ensure_builtins` imports
those modules lazily so ``import repro`` stays cheap.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..errors import RegistryError


@dataclass(frozen=True)
class DesignEntry:
    """One registered design: its builder and default parameters."""

    name: str
    builder: object
    defaults: dict = field(default_factory=dict)

    @property
    def doc(self):
        """First line of the builder's docstring."""
        text = (self.builder.__doc__ or "").strip()
        return text.splitlines()[0] if text else ""


_REGISTRY = {}
_BUILTINS = ("multiplier", "m0lite", "counters")
_builtins_loaded = False


def register_design(name, **defaults):
    """Parametrised decorator: register the decorated builder as ``name``.

    ``defaults`` become keyword arguments of the builder, overridable per
    :func:`build` call -- so one builder can back several named designs
    (``counter16`` is ``build_counter`` with ``width=16``).
    """
    def decorate(builder):
        existing = _REGISTRY.get(name)
        if existing is not None and existing.builder is not builder:
            raise RegistryError(
                "design {!r} is already registered".format(name))
        _REGISTRY[name] = DesignEntry(name, builder, dict(defaults))
        return builder

    return decorate


def _ensure_builtins():
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    import importlib

    for module in _BUILTINS:
        importlib.import_module("." + module, __package__)


def available_designs():
    """Sorted names of every registered design."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def entry(name):
    """The :class:`DesignEntry` for ``name``; raises when unknown."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise RegistryError(
            "unknown design {!r} (available: {})".format(
                name, ", ".join(available_designs()))) from None


def is_registered(name):
    """True when ``name`` resolves without touching the filesystem."""
    _ensure_builtins()
    return name in _REGISTRY


def build(name, library, **params):
    """Build design ``name`` on ``library``; returns the top Module."""
    e = entry(name)
    merged = dict(e.defaults)
    merged.update(params)
    return e.builder(library, **merged)


def resolve(name, library, **params):
    """A :class:`~repro.netlist.core.Design` by registry name or Verilog
    path.

    Registered names win; anything that looks like a file path falls back
    to the structural-Verilog reader (preserving the CLI's historical
    behaviour, including ``FileNotFoundError`` for missing files); other
    names raise :class:`~repro.errors.RegistryError` listing what exists.
    """
    from ..netlist.core import Design

    if is_registered(name):
        return Design(build(name, library, **params), library)
    if params:
        raise RegistryError(
            "parameters are only supported for registered designs, "
            "not Verilog paths ({!r})".format(name))
    if name.endswith(".v") or os.sep in name or os.path.exists(name):
        from ..netlist.verilog import read_verilog

        return read_verilog(name, library)
    raise RegistryError(
        "unknown design {!r} (available: {}, or pass a .v file)".format(
            name, ", ".join(available_designs())))
