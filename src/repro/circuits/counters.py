"""Small sequential circuits used by tests, examples and ablations."""

from __future__ import annotations

from ..netlist.core import Module
from .adders import ripple_incrementer
from .builder import CircuitBuilder

#: Taps (1-indexed from LSB=1, Fibonacci form) giving maximal-length LFSRs.
_LFSR_TAPS = {
    4: (4, 3),
    8: (8, 6, 5, 4),
    16: (16, 15, 13, 4),
    24: (24, 23, 22, 17),
    32: (32, 30, 26, 25),
}


def build_counter(library, width=8, name=None):
    """Free-running binary up-counter with count output bus ``q``."""
    module = Module(name or "counter{}".format(width))
    b = CircuitBuilder(module, library)
    clk = module.add_input("clk")
    q = b.output_bus("q", width)
    inc, _ = ripple_incrementer(b, q)
    b.register(inc, clk, q=q, name="cnt")
    return module


def build_lfsr(library, width=16, name=None):
    """Fibonacci LFSR (pseudo-random stimulus generator).

    All-zero lockup is avoided by feeding back XNOR of the taps when the
    state is zero -- implemented with the classic "XNOR form" so a
    zero-initialised register free-runs.
    """
    if width not in _LFSR_TAPS:
        raise ValueError("no tap table for width {}".format(width))
    module = Module(name or "lfsr{}".format(width))
    b = CircuitBuilder(module, library)
    clk = module.add_input("clk")
    q = b.output_bus("q", width)
    taps = _LFSR_TAPS[width]
    feedback = q[taps[0] - 1]
    for t in taps[1:]:
        feedback = b.xnor2(feedback, q[t - 1])
    nxt = [feedback] + q[:-1]
    b.register(nxt, clk, q=q, name="sr")
    return module
