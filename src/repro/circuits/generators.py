"""Parameterized design database: generator families, keyed and lazy.

The paper measures two circuits; every layer built since (chunked
parallel runner, artifact cache, the technique comparison) is starved
for scenario breadth.  This module turns the two hand-built designs into
a *design space*: netlist generators are registered as **families** with
declared, validated parameter spaces, and concrete designs are addressed
by a hashable :class:`DesignKey` -- ``DesignKey("multiplier", n=16)`` --
elaborated lazily and memoised per library (the PRGA-style keyed module
database, adapted to our flat gate-level netlists)::

    from repro.circuits.generators import DesignKey, elaborate, expand_family

    top = elaborate(DesignKey("multiplier", n=8), lib)
    keys = expand_family("multiplier", n=[4, 8, 16, 32])

Elaborated modules are shared (treat them as read-only -- every in-tree
transform clones or rebuilds); pass ``fresh=True`` for a private,
mutable instance.  Every family elaborates to the ordinary flat
:class:`~repro.netlist.core.Module` form, so struct-of-arrays lowering,
:class:`~repro.runner.artifacts.CircuitArtifacts`, all registered
techniques and the golden/sweep machinery work unchanged.

Registered built-in families: ``multiplier`` (the paper's case study 1
generalised to NxN), ``adder`` (ripple / carry-select trees),
``regfile_alu`` (register-file + ALU execute-stage slice), ``pipeline``
(counter/rotate pipeline of configurable depth), ``fir`` (FIR/MAC
datapath), plus ``m0lite``, ``counter`` and ``lfsr`` wrapping the
remaining legacy builders.  ``repro.circuits.registry`` resolves the
legacy names (``mult16``, ``m0lite``, ``counter16``, ``lfsr16``) through
this database with bit-identical netlist fingerprints.
"""

from __future__ import annotations

import itertools
import re
import weakref

from ..errors import GeneratorError, RegistryError
from ..netlist.core import Module

__all__ = [
    "DesignKey",
    "Param",
    "GeneratorFamily",
    "register_family",
    "available_families",
    "family",
    "has_family",
    "canonical_key",
    "elaborate",
    "expand_family",
]


def _source_site(fn):
    """``file:line`` of a builder function (for duplicate diagnostics)."""
    code = getattr(fn, "__code__", None)
    if code is None:
        return repr(fn)
    return "{}:{}".format(code.co_filename, code.co_firstlineno)


_SPEC_RE = re.compile(r"^\s*([A-Za-z_]\w*)\s*(?:\((.*)\))?\s*$", re.S)
_PAIR_RE = re.compile(r"^\s*([A-Za-z_]\w*)\s*=\s*(.+?)\s*$", re.S)


def _parse_value(text):
    """A key-spec parameter value: int, float, bool or bare/quoted str."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text, 0)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    return text


class DesignKey:
    """Hashable database key: a family name plus keyword parameters.

    Keys are immutable value objects -- equal keys hash equally, order of
    keyword arguments never matters, and :func:`repr` round-trips through
    :meth:`parse` (``multiplier(n=16)``).  A key does not have to spell
    every parameter: elaboration canonicalises it against the family's
    declared defaults first (see :func:`canonical_key`), so
    ``DesignKey("multiplier")`` and ``DesignKey("multiplier", n=16)``
    address the same design.
    """

    __slots__ = ("_family", "_params")

    def __init__(self, family, **params):
        if not isinstance(family, str) or not family:
            raise GeneratorError("design key needs a family name string")
        object.__setattr__(self, "_family", family)
        object.__setattr__(self, "_params",
                           tuple(sorted(params.items())))

    @property
    def family(self):
        """The generator family name."""
        return self._family

    @property
    def params(self):
        """The key's parameters as a fresh dict."""
        return dict(self._params)

    def with_params(self, **overrides):
        """A new key with ``overrides`` merged over this key's params."""
        merged = self.params
        merged.update(overrides)
        return DesignKey(self._family, **merged)

    def __setattr__(self, name, value):
        raise AttributeError("DesignKey is immutable")

    def __eq__(self, other):
        return (isinstance(other, DesignKey)
                and self._family == other._family
                and self._params == other._params)

    def __hash__(self):
        return hash((self._family, self._params))

    def __fingerprint__(self):
        """Content identity for result-cache keys (see repro.runner)."""
        return ("design-key-v1", self._family, self._params)

    def __repr__(self):
        if not self._params:
            return self._family
        body = ", ".join(
            "{}={}".format(k, v) for k, v in self._params)
        return "{}({})".format(self._family, body)

    __str__ = __repr__

    @classmethod
    def parse(cls, text):
        """Parse ``"family"`` or ``"family(a=1, b=true)"`` into a key.

        Values parse as int, float, ``true``/``false`` or (possibly
        quoted) strings.  Raises :class:`~repro.errors.GeneratorError`
        on anything else -- callers that also accept file paths should
        try :func:`looks_like_key` first.
        """
        match = _SPEC_RE.match(text or "")
        if match is None:
            raise GeneratorError(
                "malformed design key {!r} (expected "
                "'family' or 'family(name=value, ...)')".format(text))
        name, body = match.groups()
        params = {}
        if body is not None and body.strip():
            for chunk in body.split(","):
                pair = _PAIR_RE.match(chunk)
                if pair is None:
                    raise GeneratorError(
                        "malformed design key {!r}: bad parameter "
                        "{!r} (expected name=value)".format(text, chunk))
                params[pair.group(1)] = _parse_value(pair.group(2))
        return cls(name, **params)


def looks_like_key(text):
    """True when ``text`` parses as a design-key spec (syntax only --
    the family does not have to exist)."""
    if not isinstance(text, str):
        return isinstance(text, DesignKey)
    match = _SPEC_RE.match(text)
    if match is None:
        return False
    body = match.group(2)
    if body is None or not body.strip():
        return True
    return all(_PAIR_RE.match(chunk) for chunk in body.split(","))


class Param:
    """One declared generator parameter: type, range/choices, default.

    Parameters
    ----------
    name:
        Keyword name the builder receives.
    type:
        Accepted Python type (exact: ``bool`` is not an ``int`` here).
    default:
        Value used when the key leaves the parameter out.
    minimum / maximum:
        Inclusive range bounds (ordered types only).
    choices:
        Explicit allowed values (exclusive with the range bounds).
    doc:
        One-line description (rendered into ``docs/designs.md``).
    """

    __slots__ = ("name", "type", "default", "minimum", "maximum",
                 "choices", "doc")

    def __init__(self, name, type=int, default=None, minimum=None,
                 maximum=None, choices=None, doc=""):
        self.name = name
        self.type = type
        self.default = default
        self.minimum = minimum
        self.maximum = maximum
        self.choices = tuple(choices) if choices is not None else None
        self.doc = doc

    def validate(self, family, value):
        """``value`` checked against this spec; raises
        :class:`~repro.errors.GeneratorError` with the family, the
        parameter and the allowed space named."""
        where = "{}.{}".format(family, self.name)
        if self.type is not bool and isinstance(value, bool):
            raise GeneratorError(
                "{} must be {}, got bool {!r}".format(
                    where, self.type.__name__, value))
        if not isinstance(value, self.type):
            raise GeneratorError(
                "{} must be {}, got {} {!r}".format(
                    where, self.type.__name__,
                    type(value).__name__, value))
        if self.choices is not None and value not in self.choices:
            raise GeneratorError(
                "{} must be one of {}, got {!r}".format(
                    where, "/".join(str(c) for c in self.choices), value))
        if self.minimum is not None and value < self.minimum:
            raise GeneratorError(
                "{} must be >= {}, got {!r}".format(
                    where, self.minimum, value))
        if self.maximum is not None and value > self.maximum:
            raise GeneratorError(
                "{} must be <= {}, got {!r}".format(
                    where, self.maximum, value))
        return value

    def range_text(self):
        """Human-readable allowed space (for the generated catalog)."""
        if self.choices is not None:
            return "one of {}".format(
                ", ".join(str(c) for c in self.choices))
        if self.minimum is not None and self.maximum is not None:
            return "{} .. {}".format(self.minimum, self.maximum)
        if self.minimum is not None:
            return ">= {}".format(self.minimum)
        if self.maximum is not None:
            return "<= {}".format(self.maximum)
        return "any {}".format(self.type.__name__)

    def __repr__(self):
        return "Param({!r}, {}, default={!r})".format(
            self.name, self.type.__name__, self.default)


class GeneratorFamily:
    """One registered generator: a builder plus its parameter space.

    Instances are created by :func:`register_family`; user code reads
    them through :func:`family` / :func:`available_families` and
    elaborates through :func:`elaborate` (memoised) or
    :meth:`elaborate` here (always a fresh module).
    """

    def __init__(self, name, builder, params, catalog=(), paper=""):
        self.name = name
        self.builder = builder
        self.params = tuple(params)
        self.catalog = tuple(dict(c) for c in catalog)
        self.paper = paper
        self.site = _source_site(builder)
        self._by_name = {p.name: p for p in self.params}

    @property
    def doc(self):
        """First line of the builder's docstring."""
        text = (self.builder.__doc__ or "").strip()
        return text.splitlines()[0] if text else ""

    def spec(self, name):
        """The :class:`Param` spec for ``name`` (raises when unknown)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise GeneratorError(
                "family {!r} has no parameter {!r} (declared: {})".format(
                    self.name, name,
                    ", ".join(p.name for p in self.params) or "none",
                )) from None

    def normalize(self, params):
        """Defaults filled and every value validated; unknown parameter
        names raise :class:`~repro.errors.GeneratorError`."""
        for name in params:
            self.spec(name)  # unknown-parameter check with a clear error
        out = {}
        for p in self.params:
            value = params.get(p.name, p.default)
            if value is None:
                raise GeneratorError(
                    "{}.{} is required (no default declared)".format(
                        self.name, p.name))
            out[p.name] = p.validate(self.name, value)
        return out

    def key(self, **params):
        """The canonical (fully explicit, validated) key for ``params``."""
        return DesignKey(self.name, **self.normalize(params))

    def elaborate(self, library, **params):
        """Build a fresh :class:`~repro.netlist.core.Module` (never
        memoised -- the caller owns it and may mutate it)."""
        return self.builder(library, **self.normalize(params))

    def catalog_keys(self):
        """Canonical keys of the representative instantiations declared
        at registration (used by ``repro designs show`` and the
        generated catalog)."""
        return tuple(self.key(**entry) for entry in self.catalog)

    def __repr__(self):
        return "GeneratorFamily({!r}, params=[{}])".format(
            self.name, ", ".join(p.name for p in self.params))


_FAMILIES = {}

#: library -> {canonical DesignKey -> Module}; weak on the library so a
#: dropped corner library releases its elaborations.
_ELABORATED = weakref.WeakKeyDictionary()


def register_family(name, params=(), catalog=(), paper=""):
    """Parametrised decorator: register a generator family.

    ``params`` declares the family's parameter space as
    :class:`Param` entries; every elaboration validates against it.
    ``catalog`` lists representative parameter dicts rendered into the
    generated ``docs/designs.md``.  Registering an existing name raises
    :class:`~repro.errors.RegistryError` naming both registration sites.
    """

    def decorate(builder):
        existing = _FAMILIES.get(name)
        if existing is not None:
            raise RegistryError(
                "generator family {!r} is already registered at {} "
                "(duplicate registration at {})".format(
                    name, existing.site, _source_site(builder)))
        _FAMILIES[name] = GeneratorFamily(name, builder, params,
                                          catalog=catalog, paper=paper)
        return builder

    return decorate


def unregister_family(name):
    """Remove a registered family (test teardown helper).

    Built-in families are as removable as user ones -- the caller is
    expected to know what they are doing; memoised elaborations of the
    removed family stay alive only until their library is dropped.
    """
    if name not in _FAMILIES:
        raise GeneratorError(
            "cannot unregister unknown family {!r}".format(name))
    del _FAMILIES[name]


def available_families():
    """Sorted names of every registered generator family."""
    return sorted(_FAMILIES)


def has_family(name):
    """True when ``name`` is a registered generator family."""
    return name in _FAMILIES


def family(name):
    """The :class:`GeneratorFamily` for ``name``; raises when unknown."""
    try:
        return _FAMILIES[name]
    except KeyError:
        raise GeneratorError(
            "unknown generator family {!r} (available: {})".format(
                name, ", ".join(available_families()))) from None


def canonical_key(key):
    """``key`` with defaults filled and every parameter validated.

    Accepts a :class:`DesignKey` or a spec string; two keys addressing
    the same design canonicalise identically, which is what the
    elaboration memo and the artifact cache hash.
    """
    if isinstance(key, str):
        key = DesignKey.parse(key)
    return family(key.family).key(**key.params)


def elaborate(key, library, fresh=False):
    """The :class:`~repro.netlist.core.Module` for ``key`` on ``library``.

    Lazy and memoised: the first elaboration of a canonical key builds
    the netlist, later calls return the same module object (treat it as
    read-only -- every in-tree transform clones or splits into new
    modules).  ``fresh=True`` bypasses the memo in both directions and
    returns a private instance the caller may mutate.
    """
    canon = canonical_key(key)
    fam = family(canon.family)
    if fresh:
        return fam.builder(library, **canon.params)
    try:
        per_lib = _ELABORATED.setdefault(library, {})
    except TypeError:  # library without weakref support
        return fam.builder(library, **canon.params)
    module = per_lib.get(canon)
    if module is None:
        module = fam.builder(library, **canon.params)
        per_lib[canon] = module
    return module


def expand_family(name, **axes):
    """Design-space iteration: the cartesian product of parameter axes.

    Each keyword is a parameter name mapped to either one value or an
    iterable of values; unlisted parameters take their defaults.  Returns
    canonical :class:`DesignKey` objects in deterministic (row-major,
    declaration-ordered) order::

        expand_family("multiplier", n=[4, 8, 16, 32])
    """
    fam = family(name)
    ordered = []
    for p in fam.params:
        if p.name not in axes:
            continue
        values = axes.pop(p.name)
        if isinstance(values, (str, bytes)) or not hasattr(
                values, "__iter__"):
            values = (values,)
        ordered.append((p.name, tuple(values)))
    if axes:  # leftovers did not match any declared parameter
        fam.spec(sorted(axes)[0])
    keys = []
    for combo in itertools.product(*(vals for _, vals in ordered)):
        params = dict(zip((n for n, _ in ordered), combo))
        keys.append(fam.key(**params))
    return keys


# -- built-in families ---------------------------------------------------------

@register_family(
    "multiplier",
    params=(
        Param("n", int, default=16, minimum=1, maximum=128,
              doc="operand width in bits (the paper uses 16)"),
        Param("registered", bool, default=True,
              doc="register operand inputs and product outputs"),
    ),
    catalog=({"n": 4}, {"n": 8}, {"n": 16}),
    paper="DATE 2011 case study 1 (generalised NxN)")
def _build_multiplier_family(library, n, registered):
    """NxN registered array multiplier (carry-save rows, ripple finish)."""
    from .multiplier import build_mult16

    return build_mult16(library, width=n, registered=registered)


@register_family(
    "adder",
    params=(
        Param("width", int, default=32, minimum=2, maximum=256,
              doc="operand width in bits"),
        Param("kind", str, default="select",
              choices=("ripple", "select"),
              doc="carry structure: ripple chain or carry-select"),
        Param("block", int, default=8, minimum=2, maximum=64,
              doc="ripple block size of the carry-select variant"),
        Param("registered", bool, default=True,
              doc="register operands and the sum"),
    ),
    catalog=({"width": 16, "kind": "ripple"}, {"width": 32},
             {"width": 64, "block": 16}),
    paper="adder-tree scenario family")
def _build_adder_family(library, width, kind, block, registered):
    """Registered two-operand adder: ripple or carry-select carry path."""
    from .adders import carry_select_adder, ripple_adder
    from .builder import CircuitBuilder

    module = Module("add_{}{}".format(kind, width))
    b = CircuitBuilder(module, library)
    clk = module.add_input("clk") if registered else None
    a_in = b.input_bus("a", width)
    x_in = b.input_bus("b", width)
    sum_out = b.output_bus("s", width)
    carry_out = module.add_output("co")
    if registered:
        a = b.register(a_in, clk, name="ra")
        x = b.register(x_in, clk, name="rb")
    else:
        a, x = a_in, x_in
    if kind == "ripple":
        sums, carry = ripple_adder(b, a, x)
    else:
        sums, carry = carry_select_adder(b, a, x, block=block)
    if registered:
        b.register(sums, clk, q=sum_out, name="rs")
        b.dff(carry, clk, q=carry_out, name="rs_co")
    else:
        for net, port in zip(sums, sum_out):
            b.buf(net, y=port)
        b.buf(carry, y=carry_out)
    return module


@register_family(
    "regfile_alu",
    params=(
        Param("nregs", int, default=8, choices=(2, 4, 8, 16, 32),
              doc="register count (write-decoder wants a power of two)"),
        Param("width", int, default=16, minimum=2, maximum=64,
              doc="register and datapath width in bits"),
    ),
    catalog=({"nregs": 4, "width": 8}, {"nregs": 8, "width": 16}),
    paper="M0-lite execute-stage slice, parameterised")
def _build_regfile_alu_family(library, nregs, width):
    """Register-file + ALU execute-stage slice with result writeback."""
    import math

    from .alu import ALU_OPS, add_alu
    from .builder import CircuitBuilder
    from .regfile import add_register_file

    abits = max(1, int(math.log2(nregs)))
    sbits = max(1, math.ceil(math.log2(width)))
    module = Module("rfalu{}x{}".format(nregs, width))
    b = CircuitBuilder(module, library)
    clk = module.add_input("clk")
    we = module.add_input("we")
    waddr = b.input_bus("waddr", abits)
    raddr_a = b.input_bus("ra", abits)
    raddr_b = b.input_bus("rb", abits)
    ops = {op: module.add_input("op_" + op) for op in ALU_OPS}
    ops["shift_left"] = module.add_input("shift_left")
    ops["shift_arith"] = module.add_input("shift_arith")
    y = b.output_bus("y", width)

    # Read ports feed the ALU; the ALU result writes back through the
    # register file's single write port (a one-instruction datapath).
    result_d = b.bus("alu_d", width)
    rdata_a, rdata_b = add_register_file(b, clk, waddr, result_d, we,
                                         raddr_a, raddr_b)
    shamt = rdata_b[:sbits]
    result, flags = add_alu(b, rdata_a, rdata_b, shamt, ops)
    for net, d in zip(result, result_d):
        b.buf(net, y=d)
    for net, port in zip(result, y):
        b.buf(net, y=port)
    for fname in ("n", "z", "c", "v"):
        b.buf(flags[fname], y=module.add_output("f" + fname))
    return module


@register_family(
    "pipeline",
    params=(
        Param("depth", int, default=4, minimum=1, maximum=32,
              doc="pipeline stages (registers between transforms)"),
        Param("width", int, default=16, minimum=2, maximum=128,
              doc="datapath width in bits"),
    ),
    catalog=({"depth": 2, "width": 8}, {"depth": 4, "width": 16},
             {"depth": 8, "width": 16}),
    paper="pipeline-depth sweep scenario family")
def _build_pipeline_family(library, depth, width):
    """Counter/rotate pipeline: stage 0 free-runs, each later stage
    registers increment(prev) XOR rotate-left(prev)."""
    from .adders import ripple_incrementer
    from .builder import CircuitBuilder

    module = Module("pipe{}x{}".format(depth, width))
    b = CircuitBuilder(module, library)
    clk = module.add_input("clk")
    q_out = b.output_bus("q", width)

    # Stage 0: the free-running counter that feeds the pipe.
    head = b.bus("s0", width)
    inc, _ = ripple_incrementer(b, head)
    b.register(inc, clk, q=head, name="s0r")

    prev = head
    for stage in range(1, depth):
        inc, _ = ripple_incrementer(b, prev)
        rot = [prev[-1]] + list(prev[:-1])
        mixed = b.xor_bus(inc, rot)
        prev = b.register(mixed, clk, name="s{}r".format(stage))
    for net, port in zip(prev, q_out):
        b.buf(net, y=port)
    return module


@register_family(
    "fir",
    params=(
        Param("taps", int, default=4, minimum=1, maximum=32,
              doc="filter taps (multiply-accumulate stages)"),
        Param("width", int, default=8, minimum=2, maximum=32,
              doc="sample/coefficient width in bits (modulo arithmetic)"),
    ),
    catalog=({"taps": 2, "width": 4}, {"taps": 4, "width": 8}),
    paper="FIR/MAC datapath scenario family")
def _build_fir_family(library, taps, width):
    """Transposed-form FIR/MAC: per-tap multiplier into an adder/register
    accumulation chain (arithmetic modulo ``2**width``)."""
    from .adders import ripple_adder
    from .alu import lower_half_multiplier
    from .builder import CircuitBuilder

    module = Module("fir{}x{}".format(taps, width))
    b = CircuitBuilder(module, library)
    clk = module.add_input("clk")
    x_in = b.input_bus("x", width)
    coeffs = [b.input_bus("c{}".format(k), width) for k in range(taps)]
    y_out = b.output_bus("y", width)

    x = b.register(x_in, clk, name="rx")
    chain = None  # transposed chain: farthest tap first
    for k in reversed(range(taps)):
        product = lower_half_multiplier(b, x, coeffs[k])
        if chain is None:
            acc = product
        else:
            acc, _ = ripple_adder(b, product, chain)
        chain = b.register(acc, clk, name="acc{}".format(k))
    for net, port in zip(chain, y_out):
        b.buf(net, y=port)
    return module


@register_family(
    "m0lite",
    params=(),
    catalog=({},),
    paper="DATE 2011 case study 2 substitute (Cortex-M0 class core)")
def _build_m0lite_family(library):
    """The 3-stage M0-lite RISC core (the paper's case study 2)."""
    from .m0lite import build_m0lite

    return build_m0lite(library)


@register_family(
    "counter",
    params=(
        Param("width", int, default=8, minimum=1, maximum=128,
              doc="counter width in bits"),
    ),
    catalog=({"width": 8}, {"width": 16}),
    paper="stimulus/ablation helper")
def _build_counter_family(library, width):
    """Free-running binary up-counter."""
    from .counters import build_counter

    return build_counter(library, width=width)


@register_family(
    "lfsr",
    params=(
        Param("width", int, default=16, choices=(4, 8, 16, 24, 32),
              doc="shift-register width (widths with a tap table)"),
    ),
    catalog=({"width": 8}, {"width": 16}),
    paper="pseudo-random stimulus generator")
def _build_lfsr_family(library, width):
    """Maximal-length Fibonacci LFSR (XNOR form, self-starting)."""
    from .counters import build_lfsr

    return build_lfsr(library, width=width)
