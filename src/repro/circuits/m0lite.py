"""Gate-level M0-lite processor: the paper's case study 2 substitute.

A 3-stage pipeline (Fetch / Decode / Execute) over the M0-lite ISA
(:mod:`repro.isa.encoding`), functionally verified against the ISS by
lock-step co-simulation (:mod:`repro.isa.trace`).  Like the Cortex-M0 it
stands in for, it is a 32-bit RISC with a 16-bit instruction stream, a
16 x 32 register file, single-cycle ALU including MULS, and NZCV flags;
the multiplier array makes the execute stage the critical path.

Pipeline contract (matches the ISS architectural order):

* register read happens in EX, and writeback commits at the end of EX, so
  back-to-back dependent instructions need no forwarding;
* branches resolve in EX; taken branches flush the two younger stages
  (2-cycle penalty);
* memory is external and combinational within the cycle: ``iaddr`` (word
  address) out / ``idata`` in for fetch, ``daddr``/``dwdata``/``dwrite``/
  ``dread``/``drdata`` (byte address) for data, exactly the protocol
  implemented by :class:`repro.isa.trace.GateLevelCpu`.

Port summary (bit-blasted buses, LSB first): see :data:`M0LITE_PORTS`.
"""

from __future__ import annotations

from ..netlist.core import Module
from .adders import ripple_adder, ripple_incrementer
from .alu import add_alu
from .builder import CircuitBuilder

#: Port name -> width of the generated module (scalars have width 0).
M0LITE_PORTS = {
    "clk": 0,
    "rstn": 0,
    "idata": 16,
    "iaddr": 32,
    "drdata": 32,
    "daddr": 32,
    "dwdata": 32,
    "dwrite": 0,
    "dread": 0,
    "halted": 0,
}


def _match_const(b, bits, value):
    """AND-tree matching ``bits == value`` (with per-bit inversion)."""
    terms = []
    for i, bit in enumerate(bits):
        terms.append(bit if (value >> i) & 1 else b.inv(bit))
    return b.reduce_and(terms)


def _sext(b, bits, width):
    """Sign-extend a net list to ``width`` (reuses the top net)."""
    return list(bits) + [bits[-1]] * (width - len(bits))


def _zext(b, bits, width):
    """Zero-extend a net list to ``width``."""
    return list(bits) + [b.const(0)] * (width - len(bits))


def build_m0lite(library, name="m0lite"):
    """Generate the M0-lite core as a flat module."""
    module = Module(name)
    b = CircuitBuilder(module, library)

    clk = module.add_input("clk")
    rstn = module.add_input("rstn")
    idata = b.input_bus("idata", 16)
    drdata = b.input_bus("drdata", 32)
    iaddr = b.output_bus("iaddr", 32)
    daddr = b.output_bus("daddr", 32)
    dwdata = b.output_bus("dwdata", 32)
    dwrite_out = module.add_output("dwrite")
    dread_out = module.add_output("dread")
    halted_out = module.add_output("halted")

    zero = b.const(0)

    # ------------------------------------------------------------------ IF --
    pc = b.bus("pc", 32)
    next_pc = b.bus("next_pc", 32)
    b.register(next_pc, clk, q=pc, reset_n=rstn, name="pc")
    pc_plus1, _ = ripple_incrementer(b, pc)
    for src, port in zip(pc, iaddr):
        b.buf(src, y=port)

    # IR and the piped PC+1 (for branch targets).
    ir = b.register(idata, clk, name="ir")
    pc1_de = b.register(pc_plus1, clk, name="pc1de")

    flush = b.wire("flush")  # driven in EX
    v_ir = b.dffr(b.inv(flush), clk, rstn, name="v_ir")

    # ------------------------------------------------------------------ DE --
    op_bits = ir[12:16]
    is_movi = _match_const(b, op_bits, 0)
    is_addi = _match_const(b, op_bits, 1)
    is_alu = _match_const(b, op_bits, 2)
    is_ldr = _match_const(b, op_bits, 3)
    is_str = _match_const(b, op_bits, 4)
    is_b = _match_const(b, op_bits, 5)
    is_bcond = _match_const(b, op_bits, 6)
    is_sys = _match_const(b, op_bits, 7)
    is_mem = b.or2(is_ldr, is_str)

    funct_bits = ir[8:12]
    f = {
        fname: b.and2(is_alu, _match_const(b, funct_bits, k))
        for k, fname in enumerate(
            ["add", "sub", "and", "orr", "eor", "lsl", "lsr", "asr",
             "mul", "mov", "mvn", "cmp"]
        )
    }

    halt_de = b.and2(is_sys, b.reduce_and(ir[0:12]))

    # Register specifiers: ALU ops carry rd/rs in the low byte.
    rd_de = [b.mux2(ir[8 + i], ir[4 + i], is_alu) for i in range(4)]
    rs_de = [b.mux2(ir[4 + i], ir[0 + i], is_alu) for i in range(4)]

    # Immediate: MOVI zext8 / ADDI sext8 / LDR,STR zext4*4.
    imm_s8 = _sext(b, ir[0:8], 32)
    imm_z8 = _zext(b, ir[0:8], 32)
    imm_ls = _zext(b, [zero, zero] + ir[0:4], 32)
    imm_de = b.mux_bus(imm_s8, imm_z8, is_movi)
    imm_de = b.mux_bus(imm_de, imm_ls, is_mem)

    # Branch target: (pc+1 of this instruction) + offset (word units).
    boff12 = _sext(b, ir[0:12], 32)
    boff8 = _sext(b, ir[0:8], 32)
    boff = b.mux_bus(boff8, boff12, is_b)
    tgt_de, _ = ripple_adder(b, pc1_de, boff)

    # Control for EX.
    we_de = b.reduce_or(
        [is_movi, is_addi, is_ldr, b.and2(is_alu, b.inv(f["cmp"]))]
    )
    a_zero_de = b.or2(is_movi, f["mov"])
    a_use_b_de = is_mem
    b_use_imm_de = b.reduce_or([is_movi, is_addi, is_mem])
    flags_we_de = b.reduce_or([is_movi, is_addi, is_alu])
    flags_cv_de = b.reduce_or([is_addi, f["add"], f["sub"], f["cmp"]])
    op_sub_de = b.or2(f["sub"], f["cmp"])
    op_shift_de = b.reduce_or([f["lsl"], f["lsr"], f["asr"]])

    dff = b.dff
    v_ex = b.dffr(b.and2(v_ir, b.inv(flush)), clk, rstn, name="v_ex")
    rd_ex = b.register(rd_de, clk, name="rd_ex")
    rs_ex = b.register(rs_de, clk, name="rs_ex")
    imm_ex = b.register(imm_de, clk, name="imm_ex")
    tgt_ex = b.register(tgt_de, clk, name="tgt_ex")
    we_ex = b.dffr(we_de, clk, rstn, name="we_ex")
    a_zero_ex = dff(a_zero_de, clk, name="a_zero_ex")
    a_use_b_ex = dff(a_use_b_de, clk, name="a_use_b_ex")
    b_use_imm_ex = dff(b_use_imm_de, clk, name="b_use_imm_ex")
    flags_we_ex = dff(flags_we_de, clk, name="flags_we_ex")
    flags_cv_ex = dff(flags_cv_de, clk, name="flags_cv_ex")
    is_load_ex = b.dffr(is_ldr, clk, rstn, name="is_load_ex")
    is_store_ex = b.dffr(is_str, clk, rstn, name="is_store_ex")
    is_b_ex = dff(is_b, clk, name="is_b_ex")
    is_bcond_ex = dff(is_bcond, clk, name="is_bcond_ex")
    cond_ex = b.register(ir[8:11], clk, name="cond_ex")
    halt_ex = b.dffr(halt_de, clk, rstn, name="halt_ex")
    ops_ex = {
        "sub": dff(op_sub_de, clk, name="op_sub_ex"),
        "and": dff(f["and"], clk, name="op_and_ex"),
        "or": dff(f["orr"], clk, name="op_or_ex"),
        "xor": dff(f["eor"], clk, name="op_xor_ex"),
        "shift": dff(op_shift_de, clk, name="op_shift_ex"),
        "mul": dff(f["mul"], clk, name="op_mul_ex"),
        "mvn": dff(f["mvn"], clk, name="op_mvn_ex"),
        "shift_left": dff(f["lsl"], clk, name="op_shl_ex"),
        "shift_arith": dff(f["asr"], clk, name="op_sar_ex"),
    }
    ops_ex["add"] = zero  # adder is the mux-chain default; line unused

    # ------------------------------------------------------------------ EX --
    halted = b.wire("halted_q")
    not_halted = b.inv(halted)
    live = b.and2(v_ex, not_halted)

    # Register file (write data comes from the end of this stage).
    from .regfile import add_register_file

    wb_data = b.bus("wb_data", 32)
    we_gated = b.and2(we_ex, live)
    ra_val, rb_val = add_register_file(
        b, clk, rd_ex, wb_data, we_gated, rd_ex, rs_ex, name="rf"
    )

    # Operand selection.
    a_pre = b.mux_bus(ra_val, rb_val, a_use_b_ex)
    not_a_zero = b.inv(a_zero_ex)
    alu_a = b.fanout_and(not_a_zero, a_pre)
    alu_b = b.mux_bus(rb_val, imm_ex, b_use_imm_ex)

    result, new_flags = add_alu(b, alu_a, alu_b, rb_val[0:5], ops_ex)

    for src, port in zip(result, daddr):
        b.buf(src, y=port)
    for src, port in zip(ra_val, dwdata):
        b.buf(src, y=port)
    b.buf(b.and2(is_load_ex, live), y=dread_out)
    b.buf(b.and2(is_store_ex, live), y=dwrite_out)

    for net, port in zip(
        b.mux_bus(result, drdata, is_load_ex), wb_data
    ):
        b.buf(net, y=port)

    # Flags register.
    flags_en = b.and2(flags_we_ex, live)
    flags_cv_en = b.and2(flags_cv_ex, live)
    flag_n = b.wire("flag_n")
    flag_z = b.wire("flag_z")
    flag_c = b.wire("flag_c")
    flag_v = b.wire("flag_v")
    b.dffr(b.mux2(flag_n, new_flags["n"], flags_en), clk, rstn,
           q=flag_n, name="fl_n")
    b.dffr(b.mux2(flag_z, new_flags["z"], flags_en), clk, rstn,
           q=flag_z, name="fl_z")
    b.dffr(b.mux2(flag_c, new_flags["c"], flags_cv_en), clk, rstn,
           q=flag_c, name="fl_c")
    b.dffr(b.mux2(flag_v, new_flags["v"], flags_cv_en), clk, rstn,
           q=flag_v, name="fl_v")

    # Branch condition: pick a base signal by cond[2:1], invert per cond[0].
    base0 = flag_z                      # EQ / NE
    base1 = b.xor2(flag_n, flag_v)      # LT / GE
    base2 = flag_c                      # (inverted for LTU) / GEU
    base3 = flag_n                      # MI / PL
    base_lo = b.mux2(base0, base1, cond_ex[1])
    base_hi = b.mux2(base2, base3, cond_ex[1])
    base = b.mux2(base_lo, base_hi, cond_ex[2])
    pair2 = b.and2(cond_ex[2], b.inv(cond_ex[1]))  # the LTU/GEU pair
    invert = b.xor2(cond_ex[0], pair2)
    cond_ok = b.xor2(base, invert)

    taken = b.and2(
        live, b.or2(is_b_ex, b.and2(is_bcond_ex, cond_ok))
    )
    b.buf(taken, y=flush)

    # Halt latch.
    halting = b.and2(halt_ex, v_ex)
    b.dffr(b.or2(halted, halting), clk, rstn, q=halted, name="halted_r")
    b.buf(halted, y=halted_out)

    # Next PC.
    hold_pc = b.or2(halted, halting)
    seq_or_tgt = b.mux_bus(pc_plus1, tgt_ex, taken)
    for net, port in zip(b.mux_bus(seq_or_tgt, pc, hold_pc), next_pc):
        b.buf(net, y=port)

    return module
