"""M0-lite execute-stage ALU: add/sub/logic/shift/multiply with NZCV flags.

The adder is carry-select (so the 32-bit carry chain is not the critical
path); the multiplier is a lower-half (modulo 2^32) triangular array built
from decomposed full adders -- deliberately the deepest path in the core,
mirroring how a single-cycle MULS dominates timing in small Cortex-M
implementations.
"""

from __future__ import annotations

from ..netlist.core import Module
from .adders import carry_select_adder
from .builder import CircuitBuilder
from .shifter import add_barrel_shifter

#: Operation select lines the ALU understands (one-hot control).
ALU_OPS = (
    "add", "sub", "and", "or", "xor", "shift", "mul", "mvn",
)


def lower_half_multiplier(b, xs, ys):
    """Product of two buses modulo ``2**len(xs)`` (triangular CSA array).

    Uses decomposed full adders (5 gates each, synthesis style): the paper's
    Cortex-M0 netlist is a sea of simple gates, and the decomposition both
    matches that character and raises the combinational leakage share the
    way Table II implies.
    """
    width = len(xs)
    produced = []
    run = []          # running sums, run[i] at weight (j + i) for row j
    run_carry = None  # carries produced by the previous row
    for j in range(width):
        cols = width - j  # only weights < width are needed
        row = [b.and2(xs[i], ys[j]) for i in range(cols)]
        new_run = []
        new_carries = []
        for i in range(cols):
            operands = [row[i]]
            if i < len(run):
                operands.append(run[i])
            if run_carry is not None and i < len(run_carry) \
                    and run_carry[i] is not None:
                operands.append(run_carry[i])
            if len(operands) == 3:
                s, c = b.fa_gates(operands[0], operands[1], operands[2])
            elif len(operands) == 2:
                axb = b.xor2(operands[0], operands[1])
                c = b.and2(operands[0], operands[1])
                s = axb
            else:
                s, c = operands[0], None
            new_run.append(s)
            # Carries out of the top column would have weight >= width.
            new_carries.append(c if i < cols - 1 else None)
        produced.append(new_run[0])
        run = new_run[1:]
        run_carry = new_carries
    return produced


def add_alu(b, a_bus, b_bus, shift_amount, ops):
    """Emit the ALU; returns ``(result, flags)``.

    Parameters
    ----------
    b:
        :class:`CircuitBuilder`.
    a_bus / b_bus:
        32-bit operands (a is the accumulator ``rd``, b the ``rs`` operand
        or immediate).
    shift_amount:
        5 nets (the low bits of the b operand, pre-extracted by the caller).
    ops:
        Dict with one-hot control nets for each name in :data:`ALU_OPS`,
        plus ``shift_left`` and ``shift_arith`` for the shifter.

    Returns
    -------
    (result, flags):
        ``result`` is the 32-bit output bus; ``flags`` is a dict with nets
        ``n``, ``z``, ``c``, ``v`` (c/v meaningful for add/sub only).
    """
    width = len(a_bus)

    # Adder with conditional operand inversion for subtraction.
    b_eff = [b.xor2(x, ops["sub"]) for x in b_bus]
    sum_bus, carry_out = carry_select_adder(
        b, a_bus, b_eff, carry_in=ops["sub"], block=8
    )

    and_bus = b.and_bus(a_bus, b_bus)
    or_bus = b.or_bus(a_bus, b_bus)
    xor_bus = b.xor_bus(a_bus, b_bus)
    mvn_bus = b.inv_bus(b_bus)
    shift_bus = add_barrel_shifter(
        b, a_bus, shift_amount, ops["shift_left"], ops["shift_arith"]
    )
    mul_bus = lower_half_multiplier(b, a_bus, b_bus)

    # One-hot result selection as a mux chain (adder result is the default,
    # which also serves MOV/MOVI via a zeroed A operand).
    result = sum_bus
    for bus, op in (
        (and_bus, ops["and"]),
        (or_bus, ops["or"]),
        (xor_bus, ops["xor"]),
        (shift_bus, ops["shift"]),
        (mul_bus, ops["mul"]),
        (mvn_bus, ops["mvn"]),
    ):
        result = b.mux_bus(result, bus, op)

    flags = {
        "n": result[-1],
        "z": b.is_zero(result),
        "c": carry_out,
        # Signed overflow: operands agree in sign, result disagrees.
        "v": b.and2(
            b.xnor2(a_bus[-1], b_eff[-1]),
            b.xor2(a_bus[-1], sum_bus[-1]),
        ),
    }
    return result, flags


def build_alu(library, width=32, name=None):
    """Standalone ALU module (unit tests / examples).

    Control ports: one input per :data:`ALU_OPS` entry plus ``shift_left``
    and ``shift_arith``.  Outputs: ``y_*`` result bus and ``fn/fz/fc/fv``.
    """
    module = Module(name or "alu{}".format(width))
    b = CircuitBuilder(module, library)
    a_bus = b.input_bus("a", width)
    b_bus = b.input_bus("b", width)
    shamt = b.input_bus("shamt", 5)
    ops = {op: module.add_input("op_" + op) for op in ALU_OPS}
    ops["shift_left"] = module.add_input("shift_left")
    ops["shift_arith"] = module.add_input("shift_arith")
    y = b.output_bus("y", width)
    result, flags = add_alu(b, a_bus, b_bus, shamt, ops)
    for r, o in zip(result, y):
        b.buf(r, y=o)
    for fname in ("n", "z", "c", "v"):
        b.buf(flags[fname], y=module.add_output("f" + fname))
    return module
