"""Adder generators: ripple-carry, carry-select and incrementer.

All operate on LSB-first net lists and return ``(sum_bus, carry_out)``.
The carry-select variant trades ~2x the area of its upper blocks for a
carry path that grows with the block count instead of the bit width; the
M0-lite ALU uses it so the processor's critical path is set by the
multiplier array rather than a 32-bit ripple chain.
"""

from __future__ import annotations

from ..errors import NetlistError


def ripple_adder(b, xs, ys, carry_in=None, use_compound=True):
    """Ripple-carry adder. ``b`` is a :class:`CircuitBuilder`.

    ``use_compound=False`` decomposes each full adder into simple gates
    (5 cells/bit) as a synthesis tool without an FA cell would.
    """
    if len(xs) != len(ys):
        raise NetlistError("adder operand widths differ")
    fa = b.fa if use_compound else b.fa_gates
    carry = carry_in if carry_in is not None else b.const(0)
    sums = []
    for x, y in zip(xs, ys):
        s, carry = fa(x, y, carry)
        sums.append(s)
    return sums, carry


def ripple_incrementer(b, xs, step_bit=0):
    """``xs + (1 << step_bit)`` using half adders; returns ``(sum, carry)``.

    ``step_bit=1`` gives the +2 incrementer the M0-lite PC uses (16-bit
    instructions).
    """
    sums = list(xs[:step_bit])
    carry = b.const(1)
    for x in xs[step_bit:]:
        s, carry = b.ha(x, carry)
        sums.append(s)
    return sums, carry


def carry_select_adder(b, xs, ys, carry_in=None, block=8,
                       use_compound=True):
    """Carry-select adder with ripple blocks of ``block`` bits.

    Each block beyond the first is computed twice (carry-in 0 and 1) and the
    true result selected by the previous block's carry, so the carry path is
    one mux per block.
    """
    if len(xs) != len(ys):
        raise NetlistError("adder operand widths differ")
    width = len(xs)
    carry = carry_in if carry_in is not None else b.const(0)
    sums = []
    lo = 0
    first = True
    while lo < width:
        hi = min(lo + block, width)
        bx, by = xs[lo:hi], ys[lo:hi]
        if first:
            s, carry = ripple_adder(b, bx, by, carry, use_compound)
            sums.extend(s)
            first = False
        else:
            s0, c0 = ripple_adder(b, bx, by, b.const(0), use_compound)
            s1, c1 = ripple_adder(b, bx, by, b.const(1), use_compound)
            sums.extend(b.mux_bus(s0, s1, carry))
            carry = b.mux2(c0, c1, carry)
        lo = hi
    return sums, carry


def subtractor(b, xs, ys, use_compound=True, select=True):
    """``xs - ys`` via two's complement; returns ``(diff, carry_out)``.

    ``carry_out == 1`` means no borrow (i.e. ``xs >= ys`` unsigned).
    """
    inv_ys = b.inv_bus(ys)
    adder = carry_select_adder if select else ripple_adder
    return adder(b, xs, inv_ys, carry_in=b.const(1),
                 use_compound=use_compound)
