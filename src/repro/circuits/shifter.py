"""32-bit barrel shifter (LSL / LSR / ASR) for the M0-lite execute stage.

Right-shift core of log2(width) mux stages; left shifts reuse it by
reversing the operand and the result.  The shift amount is taken modulo the
width (amounts >= 32 need the full 5 select bits plus saturation logic that
the M0-lite ISS also omits -- both sides agree).
"""

from __future__ import annotations

from ..netlist.core import Module
from .builder import CircuitBuilder


def add_barrel_shifter(b, data, amount, left, arith):
    """Shifter as in-place gates; returns the 32-bit (well, len(data)) result.

    Parameters
    ----------
    b:
        :class:`CircuitBuilder` to emit gates into.
    data:
        Operand bus (LSB first).
    amount:
        Shift amount bits (LSB first, ``log2(len(data))`` of them).
    left:
        Control net: 1 = shift left (LSL), 0 = shift right.
    arith:
        Control net: with ``left = 0``, 1 = ASR (sign fill), 0 = LSR.
    """
    width = len(data)
    # Fill bit: sign for ASR; left shifts always fill 0 (handled by the
    # reversal, so the fill must be suppressed when left=1).
    fill = b.and3(arith, data[-1], b.inv(left))

    # Reverse operand when shifting left.
    rev_in = [
        b.mux2(data[i], data[width - 1 - i], left) for i in range(width)
    ]

    current = rev_in
    for k, amt_bit in enumerate(amount):
        step = 1 << k
        shifted = []
        for i in range(width):
            src = current[i + step] if i + step < width else fill
            shifted.append(b.mux2(current[i], src, amt_bit))
        current = shifted

    # Undo the reversal for left shifts.
    return [
        b.mux2(current[i], current[width - 1 - i], left) for i in range(width)
    ]


def build_barrel_shifter(library, width=32, name=None):
    """Standalone shifter module (for unit tests and examples)."""
    import math

    module = Module(name or "bshift{}".format(width))
    b = CircuitBuilder(module, library)
    data = b.input_bus("d", width)
    amount = b.input_bus("amt", max(1, int(math.log2(width))))
    left = module.add_input("left")
    arith = module.add_input("arith")
    out = b.output_bus("y", width)
    result = add_barrel_shifter(b, data, amount, left, arith)
    for r, o in zip(result, out):
        b.buf(r, y=o)
    return module
