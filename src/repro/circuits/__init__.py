"""Programmatic gate-level circuit generators and the design database.

These replace the netlists the paper obtained from RTL synthesis: a 16-bit
parallel (array) multiplier matching the paper's case study 1, the blocks of
the M0-lite processor (case study 2), and small circuits used by tests and
examples.  Every generator returns a flat :class:`~repro.netlist.core.Module`
built from scl90 cells (or any library with the same cell names).

:mod:`repro.circuits.generators` organises the generators into a keyed
design database: parameterized families with declared parameter spaces,
addressed by hashable :class:`~repro.circuits.generators.DesignKey`,
lazily elaborated and memoised.  :mod:`repro.circuits.registry` resolves
legacy names (``mult16`` is ``multiplier(n=16)``), ad-hoc registrations
and Verilog paths on top of it.
"""

from .builder import CircuitBuilder
from .adders import ripple_adder, carry_select_adder, ripple_incrementer
from .multiplier import build_mult16
from .alu import build_alu, ALU_OPS
from .shifter import build_barrel_shifter
from .regfile import build_register_file
from .m0lite import build_m0lite, M0LITE_PORTS
from .counters import build_counter, build_lfsr
from .generators import (
    DesignKey,
    GeneratorFamily,
    Param,
    available_families,
    canonical_key,
    elaborate,
    expand_family,
    family,
    register_family,
)

__all__ = [
    "CircuitBuilder",
    "ripple_adder",
    "carry_select_adder",
    "ripple_incrementer",
    "build_mult16",
    "build_alu",
    "ALU_OPS",
    "build_barrel_shifter",
    "build_register_file",
    "build_m0lite",
    "M0LITE_PORTS",
    "build_counter",
    "build_lfsr",
    "DesignKey",
    "GeneratorFamily",
    "Param",
    "available_families",
    "canonical_key",
    "elaborate",
    "expand_family",
    "family",
    "register_family",
]
