"""The paper's case study 1: a registered 16-bit parallel binary multiplier.

Classic array multiplier: a 16x16 grid of AND partial products reduced with
carry-save full-adder rows and a final ripple stage.  Input operands and the
32-bit product are registered, matching the paper's design (the large block
of purely combinational logic between register banks is exactly what makes
it a good SCPG showcase: *"chosen because of its large concentration of
combinational logic"*).

The paper's multiplier has 556 combinational gates; this generator produces
a closely comparable count (about 530 array cells for width 16 -- compare
with :func:`repro.netlist.stats.module_stats`).
"""

from __future__ import annotations

from ..netlist.core import Module
from .builder import CircuitBuilder


def build_mult16(library, width=16, registered=True, name=None):
    """Build the multiplier module.

    Parameters
    ----------
    library:
        Cell library (needs AND2/HA/FA/DFF).
    width:
        Operand width; the paper uses 16.
    registered:
        Add input operand registers and product output registers (the
        paper's configuration).  Unregistered is useful for pure-logic
        tests.
    name:
        Module name; defaults to ``mult<width>``.
    """
    module = Module(name or "mult{}".format(width))
    b = CircuitBuilder(module, library)

    clk = module.add_input("clk") if registered else None
    a_in = b.input_bus("a", width)
    x_in = b.input_bus("b", width)
    product_out = b.output_bus("p", 2 * width)

    if registered:
        a = b.register(a_in, clk, name="ra")
        x = b.register(x_in, clk, name="rb")
    else:
        a, x = a_in, x_in

    # Partial products: pp[j][i] = a[i] & x[j].
    pp = [[b.and2(a[i], x[j]) for i in range(width)] for j in range(width)]

    # Row 0 is the initial running sum (shifted left j positions per row).
    # Each subsequent row is added with a carry-save chain: for row j, the
    # running sum bits align with pp[j] shifted by j.
    produced = [pp[0][0]]           # final product bits, LSB first
    run = pp[0][1:]                 # running sum, bit i aligns product bit i+1
    run_carry = None                # carry bus alongside (None for first row)

    for j in range(1, width):
        row = pp[j]
        new_run = []
        new_carries = []
        # Align: running sum bit k corresponds to product bit j - 1 + k...
        # Standard array formulation: add row to (run >> 1) with the carries.
        for i in range(width):
            s_in = run[i] if i < len(run) else None
            c_in = (
                run_carry[i]
                if run_carry is not None and run_carry[i] is not None
                else None
            )
            operands = [v for v in (row[i], s_in, c_in) if v is not None]
            if len(operands) == 3:
                s, c = b.fa(operands[0], operands[1], operands[2])
            elif len(operands) == 2:
                s, c = b.ha(operands[0], operands[1])
            else:
                s, c = operands[0], None
            new_run.append(s)
            new_carries.append(c)
        produced.append(new_run[0])
        run = new_run[1:]
        run_carry = new_carries
        # Drop the leading None carries (bit 0 of a row never carries in).

    # Final stage: resolve remaining carries with a ripple chain.
    # run holds bits width..(2*width-2) sums; run_carry holds their carries.
    carry = None
    for i in range(len(run)):
        c_in = (
            run_carry[i]
            if run_carry is not None and run_carry[i] is not None
            else None
        )
        operands = [run[i]]
        if c_in is not None:
            operands.append(c_in)
        if carry is not None:
            operands.append(carry)
        if len(operands) == 3:
            s, carry = b.fa(operands[0], operands[1], operands[2])
        elif len(operands) == 2:
            s, carry = b.ha(operands[0], operands[1])
        else:
            s, carry = operands[0], None
        produced.append(s)
    top_carry = run_carry[-1] if run_carry else None
    if carry is not None and top_carry is not None:
        produced.append(b.or2(carry, top_carry))  # cannot both be 1... safe OR
    elif carry is not None:
        produced.append(carry)
    elif top_carry is not None:
        produced.append(top_carry)
    else:
        produced.append(b.const(0))

    if registered:
        b.register(produced, clk, q=product_out, name="rp")
    else:
        for net, port_net in zip(produced, product_out):
            b.buf(net, y=port_net)

    return module
